#include "src/sim/oracles.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <utility>

#include "src/common/string_util.h"
#include "src/engine/engine.h"
#include "src/io/csv.h"
#include "src/metrics/ideal.h"
#include "src/metrics/rms.h"
#include "src/obs/export.h"
#include "src/plan/binder.h"
#include "src/server/stream_server.h"
#include "src/sql/parser.h"

namespace datatriage::sim {
namespace {

using engine::StreamEvent;

QueryRunOutput CollectSession(server::QuerySession& session,
                              const SimQuery& query) {
  QueryRunOutput out;
  out.results = session.TakeResults();
  out.results_csv = io::FormatResultsCsv(out.results, query.columns);
  out.snapshot = session.StatsSnapshot();
  out.metrics_json = obs::MetricsJson(session.metrics(), &session.trace());
  return out;
}

/// First difference between two snapshots, or "" when identical.
std::string DiffSnapshots(const engine::EngineStatsSnapshot& a,
                          const engine::EngineStatsSnapshot& b) {
  const auto& ca = a.core;
  const auto& cb = b.core;
  if (ca.tuples_ingested != cb.tuples_ingested) {
    return StringPrintf("tuples_ingested %lld vs %lld",
                        static_cast<long long>(ca.tuples_ingested),
                        static_cast<long long>(cb.tuples_ingested));
  }
  if (ca.tuples_kept != cb.tuples_kept) {
    return StringPrintf("tuples_kept %lld vs %lld",
                        static_cast<long long>(ca.tuples_kept),
                        static_cast<long long>(cb.tuples_kept));
  }
  if (ca.tuples_dropped != cb.tuples_dropped) {
    return StringPrintf("tuples_dropped %lld vs %lld",
                        static_cast<long long>(ca.tuples_dropped),
                        static_cast<long long>(cb.tuples_dropped));
  }
  if (ca.windows_emitted != cb.windows_emitted) {
    return StringPrintf("windows_emitted %lld vs %lld",
                        static_cast<long long>(ca.windows_emitted),
                        static_cast<long long>(cb.windows_emitted));
  }
  if (ca.exact_work_seconds != cb.exact_work_seconds) {
    return "exact_work_seconds differ";
  }
  if (ca.synopsis_work_seconds != cb.synopsis_work_seconds) {
    return "synopsis_work_seconds differ";
  }
  if (ca.final_engine_time != cb.final_engine_time) {
    return "final_engine_time differ";
  }
  if (a.counters != b.counters) return "counter maps differ";
  if (a.gauges != b.gauges) return "gauge maps differ";
  if (a.gauge_maxima != b.gauge_maxima) return "gauge maxima differ";
  return "";
}

Status CompareOutputs(const QueryRunOutput& a, const QueryRunOutput& b,
                      size_t session, std::string_view a_label,
                      std::string_view b_label) {
  if (a.results_csv != b.results_csv) {
    return Status::Internal(StringPrintf(
        "session %zu results CSV differs between %s and %s", session,
        std::string(a_label).c_str(), std::string(b_label).c_str()));
  }
  const std::string diff = DiffSnapshots(a.snapshot, b.snapshot);
  if (!diff.empty()) {
    return Status::Internal(StringPrintf(
        "session %zu stats differ between %s and %s: %s", session,
        std::string(a_label).c_str(), std::string(b_label).c_str(),
        diff.c_str()));
  }
  if (a.metrics_json != b.metrics_json) {
    return Status::Internal(StringPrintf(
        "session %zu metrics JSON differs between %s and %s", session,
        std::string(a_label).c_str(), std::string(b_label).c_str()));
  }
  return Status::OK();
}

/// Events (from the pushed prefix) on the streams `query` reads, cut to
/// the query's churn envelope: nothing before `admit_from`, nothing at
/// or past its unregistration point.
std::vector<StreamEvent> QueryFeed(const SimScenario& scenario,
                                   const SimQuery& query,
                                   VirtualTime admit_from) {
  std::vector<StreamEvent> feed;
  const size_t limit =
      std::min(scenario.events_to_push, query.unregister_at_event);
  for (size_t i = 0; i < limit; ++i) {
    const StreamEvent& event = scenario.events[i];
    if (event.tuple.timestamp() < admit_from) continue;
    for (const std::string& stream : query.streams) {
      if (event.stream == stream) {
        feed.push_back(event);
        break;
      }
    }
  }
  return feed;
}

}  // namespace

Result<ServerRunOutput> RunOnServer(const SimScenario& scenario,
                                    size_t worker_threads,
                                    bool install_faults) {
  engine::StreamServerOptions options = scenario.options;
  options.scheduler.worker_threads = worker_threads;
  if (worker_threads == 0) {
    // The serial sweep point: no scheduler, so no morsel pool either
    // (intra_session_threads > 1 requires workers). Output must still
    // match every parallel point — that is the oracle.
    options.scheduler.intra_session_threads = 0;
  }
  server::StreamServer server(scenario.catalog, options);
  if (install_faults) {
    DT_RETURN_IF_ERROR(server.SetSimFaults(&scenario.faults));
  }
  const size_t num_queries = scenario.queries.size();
  std::vector<server::SessionId> ids(num_queries, 0);
  ServerRunOutput out;
  out.sessions.resize(num_queries);

  const auto register_query = [&](size_t q) -> Status {
    DT_ASSIGN_OR_RETURN(ids[q],
                        server.RegisterQuery(scenario.queries[q].sql,
                                             scenario.queries[q].config));
    out.sessions[q].admit_from = server.session(ids[q]).effective_from();
    return Status::OK();
  };
  for (size_t q = 0; q < num_queries; ++q) {
    if (scenario.queries[q].register_at_event == 0) {
      DT_RETURN_IF_ERROR(register_query(q));
    }
  }

  // Churn plan: lifecycle ops run immediately before their event index
  // is pushed. Batches are split at op points, so a PushBatch never
  // straddles a registration, unregistration, or snapshot.
  const auto apply_ops_before = [&](size_t i) -> Status {
    for (size_t q = 0; q < num_queries; ++q) {
      if (scenario.queries[q].register_at_event == i && i > 0) {
        DT_RETURN_IF_ERROR(register_query(q));
      }
      if (scenario.queries[q].unregister_at_event == i) {
        DT_RETURN_IF_ERROR(server.UnregisterQuery(ids[q]));
      }
    }
    if (scenario.snapshot_at_event == i) {
      DT_ASSIGN_OR_RETURN(server::SessionSnapshot snapshot,
                          server.SnapshotSession(ids[0]));
      out.session_snapshot = std::move(snapshot.bytes);
    }
    return Status::OK();
  };
  std::vector<size_t> op_points;
  for (const SimQuery& query : scenario.queries) {
    if (query.register_at_event > 0) {
      op_points.push_back(query.register_at_event);
    }
    if (query.unregister_at_event != SIZE_MAX) {
      op_points.push_back(query.unregister_at_event);
    }
  }
  if (scenario.snapshot_at_event != SIZE_MAX) {
    op_points.push_back(scenario.snapshot_at_event);
  }
  std::sort(op_points.begin(), op_points.end());
  op_points.erase(std::unique(op_points.begin(), op_points.end()),
                  op_points.end());

  const std::span<const StreamEvent> feed(scenario.events.data(),
                                          scenario.events_to_push);
  // The poison batch lands mid-feed, between two regular pushes, so its
  // (required) atomic rejection is observable as "nothing changed".
  const size_t poison_at =
      scenario.inject_poison_batch ? feed.size() / 2 : feed.size() + 1;
  size_t i = 0;
  size_t next_op = 0;
  while (i < feed.size()) {
    if (next_op < op_points.size() && op_points[next_op] == i) {
      DT_RETURN_IF_ERROR(apply_ops_before(i));
      ++next_op;
    }
    if (i == poison_at) {
      std::vector<StreamEvent> poison;
      poison.push_back(feed[i]);  // valid lead event: must NOT leak in
      StreamEvent bad = feed[i];
      bad.tuple.set_timestamp(std::numeric_limits<double>::quiet_NaN());
      poison.push_back(std::move(bad));
      const Status status = server.PushBatch(poison);
      if (status.ok()) {
        return Status::Internal(
            "poison batch with a NaN timestamp was accepted; PushBatch "
            "validation must reject it with nothing ingested");
      }
    }
    if (scenario.push_batch_size == 0) {
      DT_RETURN_IF_ERROR(server.Push(feed[i]));
      ++i;
    } else {
      size_t n = std::min(scenario.push_batch_size, feed.size() - i);
      if (i < poison_at && poison_at < i + n) n = poison_at - i;
      if (next_op < op_points.size() && op_points[next_op] < i + n) {
        n = op_points[next_op] - i;
      }
      DT_RETURN_IF_ERROR(server.PushBatch(feed.subspan(i, n)));
      i += n;
    }
  }
  DT_RETURN_IF_ERROR(server.Finish());

  for (size_t q = 0; q < num_queries; ++q) {
    const VirtualTime admit_from = out.sessions[q].admit_from;
    out.sessions[q] =
        CollectSession(server.session(ids[q]), scenario.queries[q]);
    out.sessions[q].admit_from = admit_from;
  }
  return out;
}

Result<QueryRunOutput> RunOnEngine(const SimScenario& scenario,
                                   size_t query_index,
                                   VirtualTime admit_from) {
  const SimQuery& query = scenario.queries[query_index];
  DT_ASSIGN_OR_RETURN(std::unique_ptr<engine::ContinuousQueryEngine> eng,
                      engine::ContinuousQueryEngine::Make(
                          scenario.catalog, query.sql, query.config));
  // A mid-stream-registered session sees only events at or after its
  // admission horizon; an unregistered one drains exactly like Finish,
  // so the standalone reference stops at its unregistration point.
  const size_t limit =
      std::min(scenario.events_to_push, query.unregister_at_event);
  for (size_t i = 0; i < limit; ++i) {
    if (scenario.events[i].tuple.timestamp() < admit_from) continue;
    const Status status = eng->Push(scenario.events[i]);
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  DT_RETURN_IF_ERROR(eng->Finish());
  QueryRunOutput out;
  out.results = eng->TakeResults();
  out.results_csv = io::FormatResultsCsv(out.results, query.columns);
  out.snapshot = eng->StatsSnapshot();
  out.metrics_json = obs::MetricsJson(eng->metrics(), &eng->trace());
  out.admit_from = admit_from;
  return out;
}

Status CheckRunsEquivalent(const ServerRunOutput& a,
                           const ServerRunOutput& b,
                           std::string_view a_label,
                           std::string_view b_label,
                           bool compare_snapshots) {
  if (a.sessions.size() != b.sessions.size()) {
    return Status::Internal(StringPrintf(
        "session count differs between %s (%zu) and %s (%zu)",
        std::string(a_label).c_str(), a.sessions.size(),
        std::string(b_label).c_str(), b.sessions.size()));
  }
  for (size_t s = 0; s < a.sessions.size(); ++s) {
    if (a.sessions[s].admit_from != b.sessions[s].admit_from) {
      return Status::Internal(StringPrintf(
          "session %zu admission horizon differs between %s (%g) and "
          "%s (%g)",
          s, std::string(a_label).c_str(), a.sessions[s].admit_from,
          std::string(b_label).c_str(), b.sessions[s].admit_from));
    }
    DT_RETURN_IF_ERROR(CompareOutputs(a.sessions[s], b.sessions[s], s,
                                      a_label, b_label));
  }
  if (compare_snapshots && a.session_snapshot != b.session_snapshot) {
    return Status::Internal(StringPrintf(
        "session 0 snapshot bytes differ between %s (%zu byte(s)) and "
        "%s (%zu byte(s))",
        std::string(a_label).c_str(), a.session_snapshot.size(),
        std::string(b_label).c_str(), b.session_snapshot.size()));
  }
  return Status::OK();
}

Status CheckEngineEquivalence(const SimScenario& scenario,
                              const ServerRunOutput& server_run) {
  for (size_t q = 0; q < scenario.queries.size(); ++q) {
    DT_ASSIGN_OR_RETURN(
        QueryRunOutput standalone,
        RunOnEngine(scenario, q, server_run.sessions[q].admit_from));
    DT_RETURN_IF_ERROR(CompareOutputs(server_run.sessions[q], standalone,
                                      q, "hosted session",
                                      "standalone engine"));
  }
  return Status::OK();
}

Status CheckSnapshotRestore(const SimScenario& scenario,
                            const ServerRunOutput& base,
                            bool install_faults) {
  if (base.session_snapshot.empty()) return Status::OK();
  engine::StreamServerOptions options = scenario.options;
  // Serial restore target. dispatch and parallel_min_rows keep the
  // scenario's values so the snapshot's scheduler stamp cross-checks
  // cleanly (they are stamped; thread counts are not).
  options.scheduler.worker_threads = 0;
  options.scheduler.intra_session_threads = 0;
  server::StreamServer server(scenario.catalog, options);
  if (install_faults) {
    DT_RETURN_IF_ERROR(server.SetSimFaults(&scenario.faults));
  }
  auto restored =
      server.RestoreSession(server::SessionSnapshot{base.session_snapshot});
  if (!restored.ok()) {
    return Status::Internal(StringPrintf(
        "snapshot restore failed: %s",
        restored.status().ToString().c_str()));
  }
  // Replay only the remainder of the donor's pushed feed: everything
  // before the snapshot point is baked into the restored state, and the
  // restored arrival clock refuses the past. The donor's poison batch
  // (if any) is not replayed — its rejection was atomic, so it left no
  // trace in the snapshot. Outputs must match the donor's full run.
  for (size_t i = scenario.snapshot_at_event; i < scenario.events_to_push;
       ++i) {
    DT_RETURN_IF_ERROR(server.Push(scenario.events[i]));
  }
  DT_RETURN_IF_ERROR(server.Finish());
  QueryRunOutput collected =
      CollectSession(server.session(*restored), scenario.queries[0]);
  return CompareOutputs(collected, base.sessions[0], 0,
                        "restored session", "donor session");
}

Status CheckConservation(const QueryRunOutput& run) {
  const engine::EngineStats& core = run.snapshot.core;
  if (core.tuples_ingested != core.tuples_kept + core.tuples_dropped) {
    return Status::Internal(StringPrintf(
        "conservation: ingested %lld != kept %lld + dropped %lld",
        static_cast<long long>(core.tuples_ingested),
        static_cast<long long>(core.tuples_kept),
        static_cast<long long>(core.tuples_dropped)));
  }
  const auto expect_counter = [&](const char* name,
                                  int64_t want) -> Status {
    const auto it = run.snapshot.counters.find(name);
    if (it == run.snapshot.counters.end()) {
      return Status::Internal(
          StringPrintf("conservation: counter %s missing", name));
    }
    if (it->second != want) {
      return Status::Internal(StringPrintf(
          "conservation: counter %s = %lld, core says %lld", name,
          static_cast<long long>(it->second),
          static_cast<long long>(want)));
    }
    return Status::OK();
  };
  DT_RETURN_IF_ERROR(
      expect_counter("engine.tuples_ingested", core.tuples_ingested));
  DT_RETURN_IF_ERROR(
      expect_counter("engine.tuples_kept", core.tuples_kept));
  DT_RETURN_IF_ERROR(
      expect_counter("engine.tuples_dropped", core.tuples_dropped));
  DT_RETURN_IF_ERROR(
      expect_counter("engine.windows_emitted", core.windows_emitted));

  // The drop-cause counters partition the dropped count: policy
  // eviction, force shed, summarize bypass, and fault shed are
  // exhaustive and disjoint.
  int64_t by_cause = 0;
  for (const auto& [name, value] : run.snapshot.counters) {
    if (name.rfind("stream.", 0) == 0 &&
        name.find(".dropped.") != std::string::npos) {
      by_cause += value;
    }
  }
  if (by_cause != core.tuples_dropped) {
    return Status::Internal(StringPrintf(
        "conservation: drop causes sum to %lld, dropped = %lld",
        static_cast<long long>(by_cause),
        static_cast<long long>(core.tuples_dropped)));
  }

  if (static_cast<int64_t>(run.results.size()) != core.windows_emitted) {
    return Status::Internal(StringPrintf(
        "conservation: %zu results but windows_emitted = %lld",
        run.results.size(), static_cast<long long>(core.windows_emitted)));
  }
  for (size_t i = 0; i < run.results.size(); ++i) {
    const engine::WindowResult& r = run.results[i];
    if (r.kept_tuples < 0 || r.dropped_tuples < 0) {
      return Status::Internal(StringPrintf(
          "conservation: window %lld has negative volume accounting",
          static_cast<long long>(r.window)));
    }
    if (i > 0) {
      if (r.window <= run.results[i - 1].window) {
        return Status::Internal(StringPrintf(
            "conservation: window ids not strictly increasing "
            "(%lld after %lld)",
            static_cast<long long>(r.window),
            static_cast<long long>(run.results[i - 1].window)));
      }
      if (r.emit_time < run.results[i - 1].emit_time) {
        return Status::Internal(StringPrintf(
            "conservation: emit times regress at window %lld",
            static_cast<long long>(r.window)));
      }
    }
  }
  return Status::OK();
}

Status CheckMemoryAccounting(const QueryRunOutput& run, bool budgeted) {
  // Always-on part: accounting must drain to zero once the session is
  // finished — every charge has a matching release (window buffers emit,
  // queues evict stragglers, synopses are taken, merge transients are
  // scoped).
  static constexpr const char* kComponentGauges[] = {
      "mem.window_buffers.bytes", "mem.triage_queues.bytes",
      "mem.synopses.bytes", "mem.merge_state.bytes"};
  for (const char* name : kComponentGauges) {
    const auto it = run.snapshot.gauges.find(name);
    if (it == run.snapshot.gauges.end()) {
      return Status::Internal(StringPrintf(
          "mem accounting: gauge %s missing from the export", name));
    }
    if (it->second != 0.0) {
      return Status::Internal(StringPrintf(
          "mem accounting: gauge %s reads %g byte(s) after Finish "
          "(expected 0 — some charge was never released)",
          name, it->second));
    }
  }
  if (!budgeted) return Status::OK();
  // Budgeted part: the enforcement self-checks must have stayed silent —
  // no boundary left over budget with foldable state, and every
  // double-entry audit matched.
  const auto expect_zero = [&](const char* name) -> Status {
    const auto it = run.snapshot.counters.find(name);
    if (it == run.snapshot.counters.end()) {
      return Status::Internal(StringPrintf(
          "mem accounting: counter %s missing from a budgeted run",
          name));
    }
    if (it->second != 0) {
      return Status::Internal(StringPrintf(
          "mem accounting: counter %s = %lld (expected 0)", name,
          static_cast<long long>(it->second)));
    }
    return Status::OK();
  };
  DT_RETURN_IF_ERROR(expect_zero("mem.boundary_over_budget"));
  DT_RETURN_IF_ERROR(expect_zero("mem.invariant_violations"));
  return Status::OK();
}

Status CheckAccuracy(const SimScenario& scenario, size_t query_index,
                     const QueryRunOutput& run) {
  const SimQuery& query = scenario.queries[query_index];
  if (!query.AccuracyEligible()) return Status::OK();

  DT_ASSIGN_OR_RETURN(sql::Statement statement,
                      sql::ParseStatement(query.sql));
  DT_ASSIGN_OR_RETURN(plan::BoundQuery bound,
                      plan::BindStatement(statement, scenario.catalog));
  const std::vector<StreamEvent> feed =
      QueryFeed(scenario, query, run.admit_from);
  auto ideal_result = metrics::ComputeIdealResults(
      bound, feed, scenario.window_seconds, scenario.window_slide);
  if (!ideal_result.ok()) return ideal_result.status();
  const std::map<WindowId, exec::Relation>& ideal = *ideal_result;

  // (a) The scenario run (shedding, faults and all) must stay on the
  // rails numerically: a NaN or infinite estimate anywhere in the merged
  // channel poisons the RMS.
  DT_ASSIGN_OR_RETURN(
      const double rms,
      metrics::RmsError(ideal, run.results, query.num_group_columns,
                        metrics::ResultChannel::kMerged));
  if (!std::isfinite(rms) || rms < 0.0) {
    return Status::Internal(StringPrintf(
        "accuracy: query %zu merged RMS error is %g (must be finite and "
        ">= 0)",
        query_index, rms));
  }

  // (b) With infinite capacity (zero-cost model, queue larger than the
  // whole feed) nothing may be shed and the result must equal the ideal
  // exactly.
  engine::EngineConfig config = query.config;
  config.strategy = triage::SheddingStrategy::kDropOnly;
  config.drop_policy = triage::DropPolicyKind::kRandom;
  config.queue_capacity = scenario.events.size() + 16;
  config.cost_model.exact_tuple_cost = 0.0;
  config.cost_model.synopsis_insert_cost = 0.0;
  config.cost_model.exact_work_unit_cost = 0.0;
  config.cost_model.synopsis_work_unit_cost = 0.0;
  config.cost_model.emission_overhead = 0.0;
  config.cost_model.delay_factor = 1.0;
  // The ideal run is unbudgeted: a memory budget would trigger
  // memory_shed drops despite the zero-cost model.
  config.memory_budget_bytes = 0;
  DT_ASSIGN_OR_RETURN(std::unique_ptr<engine::ContinuousQueryEngine> eng,
                      engine::ContinuousQueryEngine::Make(
                          scenario.catalog, query.sql, config));
  for (const StreamEvent& event : feed) {
    DT_RETURN_IF_ERROR(eng->Push(event));
  }
  DT_RETURN_IF_ERROR(eng->Finish());
  const engine::EngineStatsSnapshot snapshot = eng->StatsSnapshot();
  if (snapshot.core.tuples_dropped != 0) {
    return Status::Internal(StringPrintf(
        "accuracy: ideal run of query %zu shed %lld tuple(s) despite "
        "zero-cost model and capacity %zu",
        query_index, static_cast<long long>(snapshot.core.tuples_dropped),
        config.queue_capacity));
  }
  DT_ASSIGN_OR_RETURN(
      const double ideal_rms,
      metrics::RmsError(ideal, eng->TakeResults(),
                        query.num_group_columns,
                        metrics::ResultChannel::kMerged));
  if (ideal_rms != 0.0) {
    return Status::Internal(StringPrintf(
        "accuracy: ideal run of query %zu has RMS error %g (expected "
        "exactly 0)",
        query_index, ideal_rms));
  }
  return Status::OK();
}

namespace {

/// Multiset of exact-channel result rows per window, keyed by the row's
/// rendered values. emit_time is deliberately excluded: it depends on
/// the cost model, and the pattern oracle compares *what* matched, not
/// when the engine got around to emitting it.
std::map<WindowId, std::map<std::string, int>> PatternRowsByWindow(
    const std::vector<engine::WindowResult>& results) {
  std::map<WindowId, std::map<std::string, int>> rows;
  for (const engine::WindowResult& result : results) {
    std::map<std::string, int>& window = rows[result.window];
    for (const Tuple& tuple : result.exact_rows) {
      std::string key;
      for (size_t i = 0; i < tuple.size(); ++i) {
        key += tuple.value(i).ToString();
        key += '|';
      }
      ++window[key];
    }
  }
  return rows;
}

/// Runs `query` alone over `feed` with infinite capacity and a zero-cost
/// model under `policy` (the pattern analogue of CheckAccuracy's ideal
/// run), asserts it shed nothing, and returns the emitted windows.
Result<std::vector<engine::WindowResult>> RunPatternIdeal(
    const SimScenario& scenario, size_t query_index,
    const std::vector<StreamEvent>& feed,
    triage::DropPolicyKind policy) {
  const SimQuery& query = scenario.queries[query_index];
  engine::EngineConfig config = query.config;
  config.strategy = triage::SheddingStrategy::kDropOnly;
  config.drop_policy = policy;
  config.queue_capacity = scenario.events.size() + 16;
  config.cost_model.exact_tuple_cost = 0.0;
  config.cost_model.synopsis_insert_cost = 0.0;
  config.cost_model.exact_work_unit_cost = 0.0;
  config.cost_model.synopsis_work_unit_cost = 0.0;
  config.cost_model.emission_overhead = 0.0;
  config.cost_model.delay_factor = 1.0;
  config.memory_budget_bytes = 0;
  DT_ASSIGN_OR_RETURN(std::unique_ptr<engine::ContinuousQueryEngine> eng,
                      engine::ContinuousQueryEngine::Make(
                          scenario.catalog, query.sql, config));
  for (const StreamEvent& event : feed) {
    DT_RETURN_IF_ERROR(eng->Push(event));
  }
  DT_RETURN_IF_ERROR(eng->Finish());
  const engine::EngineStatsSnapshot snapshot = eng->StatsSnapshot();
  if (snapshot.core.tuples_dropped != 0) {
    return Status::Internal(StringPrintf(
        "pattern: ideal %.*s-policy run of query %zu shed %lld tuple(s) "
        "despite zero-cost model and capacity %zu",
        static_cast<int>(triage::DropPolicyKindToString(policy).size()),
        triage::DropPolicyKindToString(policy).data(), query_index,
        static_cast<long long>(snapshot.core.tuples_dropped),
        config.queue_capacity));
  }
  return eng->TakeResults();
}

}  // namespace

Status CheckPattern(const SimScenario& scenario, size_t query_index,
                    const QueryRunOutput& run) {
  const SimQuery& query = scenario.queries[query_index];
  if (!query.is_pattern) return Status::OK();

  const std::vector<StreamEvent> feed =
      QueryFeed(scenario, query, run.admit_from);
  DT_ASSIGN_OR_RETURN(
      const std::vector<engine::WindowResult> ideal_random,
      RunPatternIdeal(scenario, query_index, feed,
                      triage::DropPolicyKind::kRandom));
  DT_ASSIGN_OR_RETURN(
      const std::vector<engine::WindowResult> ideal_utility,
      RunPatternIdeal(scenario, query_index, feed,
                      triage::DropPolicyKind::kUtility));

  const std::map<WindowId, std::map<std::string, int>> ideal_rows =
      PatternRowsByWindow(ideal_random);

  // (c) Zero-shed parity across policies: a drop policy chooses what to
  // shed and nothing else, so when nothing is shed the NFA must compute
  // identical matches under either policy.
  if (PatternRowsByWindow(ideal_utility) != ideal_rows) {
    return Status::Internal(StringPrintf(
        "pattern: zero-shed ideal runs of query %zu disagree between "
        "the random and utility drop policies — the policy changed what "
        "the NFA computed, not just what was shed",
        query_index));
  }

  // (a) Monotonicity: shedding may lose matches, never invent them —
  // every row the scenario run emitted must appear in the zero-shed run
  // with at least the same per-window multiplicity.
  const std::map<WindowId, std::map<std::string, int>> actual_rows =
      PatternRowsByWindow(run.results);
  for (const auto& [window, rows] : actual_rows) {
    const auto ideal_it = ideal_rows.find(window);
    for (const auto& [row, count] : rows) {
      int ideal_count = 0;
      if (ideal_it != ideal_rows.end()) {
        const auto row_it = ideal_it->second.find(row);
        if (row_it != ideal_it->second.end()) ideal_count = row_it->second;
      }
      if (count > ideal_count) {
        return Status::Internal(StringPrintf(
            "pattern: query %zu window %lld emitted match row [%s] x%d "
            "but the zero-shed ideal run has only x%d — shedding "
            "invented a match",
            query_index, static_cast<long long>(window), row.c_str(),
            count, ideal_count));
      }
    }
  }

  // (b) When the scenario run shed nothing, the containment is two-way.
  if (run.snapshot.core.tuples_dropped == 0 && actual_rows != ideal_rows) {
    return Status::Internal(StringPrintf(
        "pattern: query %zu shed nothing but its match rows differ from "
        "the zero-shed ideal run's",
        query_index));
  }
  return Status::OK();
}

}  // namespace datatriage::sim
