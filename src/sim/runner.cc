#include "src/sim/runner.h"

#include <chrono>
#include <fstream>

#include "src/common/string_util.h"
#include "src/sim/oracles.h"
#include "src/sim/scenario_gen.h"

namespace datatriage::sim {
namespace {

Status Annotate(Status status, uint64_t seed, const char* oracle) {
  if (status.ok()) return status;
  return Status::Internal(StringPrintf(
      "seed %llu, oracle %s: %s",
      static_cast<unsigned long long>(seed), oracle,
      status.ToString().c_str()));
}

/// Writes the failing scenario's session snapshot (when one was taken)
/// to options.snapshot_dump_dir, so CI uploads the exact bytes.
void MaybeDumpSnapshot(uint64_t seed, const ServerRunOutput& base,
                       const SimOptions& options, std::ostream* out) {
  if (options.snapshot_dump_dir.empty()) return;
  if (base.session_snapshot.empty()) return;
  const std::string path = StringPrintf(
      "%s/seed-%llu.dtss", options.snapshot_dump_dir.c_str(),
      static_cast<unsigned long long>(seed));
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    if (out != nullptr) {
      *out << "could not write snapshot dump " << path << "\n";
    }
    return;
  }
  file.write(base.session_snapshot.data(),
             static_cast<std::streamsize>(base.session_snapshot.size()));
  if (out != nullptr) {
    *out << "  snapshot dumped: " << path << "\n";
  }
}

/// Every oracle after the base serial run, in order. Split out so
/// RunScenarioOnce can dump the failing scenario's snapshot regardless
/// of which oracle tripped.
Status RunOracles(uint64_t seed, const SimScenario& scenario,
                  const ServerRunOutput& base, bool install_faults,
                  const SimOptions& options) {
  // Determinism: the serial run replayed must be byte-identical — this
  // is what makes every other oracle's failure a stable reproduction.
  auto replay = RunOnServer(scenario, 0, install_faults);
  if (!replay.ok()) {
    return Annotate(replay.status(), seed, "serial-replay");
  }
  DT_RETURN_IF_ERROR(Annotate(
      CheckRunsEquivalent(base, *replay, "serial", "serial-replay"),
      seed, "replay-determinism"));

  // Parallel equivalence: every worker count must match the serial
  // baseline per session, faults and all (faults are functions of
  // virtual time, never of scheduling). Includes the session-0 snapshot
  // bytes: a snapshot is a pure function of the delivered subsequence,
  // so it may not depend on the worker count either.
  for (size_t workers : options.worker_counts) {
    auto parallel = RunOnServer(scenario, workers, install_faults);
    if (!parallel.ok()) {
      return Annotate(parallel.status(), seed, "parallel-run");
    }
    const std::string label = "workers=" + std::to_string(workers);
    DT_RETURN_IF_ERROR(Annotate(
        CheckRunsEquivalent(base, *parallel, "serial", label), seed,
        "parallel-equivalence"));
  }

  // Snapshot round-trip: restoring the mid-run snapshot into a fresh
  // server and replaying the remaining feed must reproduce the donor
  // session byte for byte.
  DT_RETURN_IF_ERROR(Annotate(
      CheckSnapshotRestore(scenario, base, install_faults), seed,
      "snapshot-restore"));

  // Executor equivalence: rerun the scenario with every session's
  // executor mode flipped (vectorized <-> scalar, thresholds cleared).
  // The columnar executor's contract is byte-for-byte parity — results
  // CSV, window traces, and the metrics/stats counters must all match
  // the baseline exactly, faults included. Snapshot bytes are exempt:
  // they serialize the (deliberately different) config.
  {
    SimScenario flipped = scenario;
    for (SimQuery& query : flipped.queries) {
      query.config.vectorized_exec = !query.config.vectorized_exec;
      query.config.vectorized_min_rows = 0;
    }
    auto flipped_run = RunOnServer(flipped, 0, install_faults);
    if (!flipped_run.ok()) {
      return Annotate(flipped_run.status(), seed, "exec-mode-flip-run");
    }
    DT_RETURN_IF_ERROR(Annotate(
        CheckRunsEquivalent(base, *flipped_run, "serial", "exec-flipped",
                            /*compare_snapshots=*/false),
        seed, "exec-mode-equivalence"));
  }

  // Dispatch-mode equivalence: rerun the scenario with the dispatch
  // mode flipped (kStealing <-> kStatic; kLeastLoaded flips to
  // kStealing) at every parallel worker count. Placement policy moves
  // *when* a session runs, never *what* it computes, so per-session
  // output must match the serial baseline exactly. Snapshot bytes are
  // exempt: the stamp serializes the (deliberately different) mode.
  {
    SimScenario flipped = scenario;
    engine::SchedulerOptions& sched = flipped.options.scheduler;
    sched.dispatch = sched.dispatch == engine::DispatchMode::kStealing
                         ? engine::DispatchMode::kStatic
                         : engine::DispatchMode::kStealing;
    for (size_t workers : options.worker_counts) {
      if (workers == 0) continue;  // no scheduler, nothing to flip
      auto flipped_run = RunOnServer(flipped, workers, install_faults);
      if (!flipped_run.ok()) {
        return Annotate(flipped_run.status(), seed,
                        "dispatch-mode-flip-run");
      }
      const std::string label = "dispatch-flipped workers=" +
                                std::to_string(workers);
      DT_RETURN_IF_ERROR(Annotate(
          CheckRunsEquivalent(base, *flipped_run, "serial", label,
                              /*compare_snapshots=*/false),
          seed, "dispatch-mode-equivalence"));
    }
  }

  // Standalone-engine equivalence needs a fault-free server: a
  // ContinuousQueryEngine has no fault hooks to mirror them (and the
  // fault-shed counter alone would already skew the metrics export).
  // Churned sessions compare against a standalone engine fed their
  // churn envelope of the feed (admission horizon to unregistration).
  if (!install_faults) {
    DT_RETURN_IF_ERROR(Annotate(CheckEngineEquivalence(scenario, base),
                                seed, "engine-equivalence"));
  }

  for (size_t q = 0; q < base.sessions.size(); ++q) {
    DT_RETURN_IF_ERROR(Annotate(CheckConservation(base.sessions[q]),
                                seed, "conservation"));
    const bool budgeted =
        scenario.queries[q].config.memory_budget_bytes > 0;
    DT_RETURN_IF_ERROR(Annotate(
        CheckMemoryAccounting(base.sessions[q], budgeted), seed,
        "mem-accounting"));
    DT_RETURN_IF_ERROR(Annotate(
        CheckAccuracy(scenario, q, base.sessions[q]), seed, "accuracy"));
    DT_RETURN_IF_ERROR(Annotate(
        CheckPattern(scenario, q, base.sessions[q]), seed, "pattern"));
  }
  return Status::OK();
}

}  // namespace

std::string ReplayCommand(uint64_t seed, const SimOptions& options) {
  std::string workers;
  for (size_t i = 0; i < options.worker_counts.size(); ++i) {
    if (i > 0) workers += ",";
    workers += std::to_string(options.worker_counts[i]);
  }
  std::string command = StringPrintf(
      "sim_main --replay-seed %llu --workers %s",
      static_cast<unsigned long long>(seed), workers.c_str());
  if (!options.with_faults) command += " --no-faults";
  if (options.force_memory_budgets) command += " --force-memory-budgets";
  if (options.force_pattern_queries) command += " --force-pattern-queries";
  return command;
}

Status RunScenarioOnce(uint64_t seed, const SimOptions& options,
                       std::ostream* out) {
  SimScenario scenario = GenerateScenario(seed);
  if (options.force_pattern_queries) {
    // Converts every query, including any the generator already
    // converted organically (ConvertToPatternQuery is idempotent in the
    // sense that reconverting just derives the same pattern again).
    for (size_t q = 0; q < scenario.queries.size(); ++q) {
      ConvertToPatternQuery(&scenario, q);
    }
  }
  if (options.force_memory_budgets) {
    // Same choice table as the generator's organic draw; keyed by
    // (seed, query index) so the override is a pure function of the
    // replay command.
    static constexpr size_t kBudgetChoices[] = {64 * 1024, 96 * 1024,
                                                160 * 1024, 512 * 1024};
    for (size_t q = 0; q < scenario.queries.size(); ++q) {
      scenario.queries[q].config.memory_budget_bytes =
          kBudgetChoices[(seed + q) & 3];
    }
  }
  const bool install_faults = options.with_faults && scenario.use_faults;
  if (options.verbose && out != nullptr) {
    *out << Describe(scenario);
  }

  auto base = RunOnServer(scenario, 0, install_faults);
  if (!base.ok()) {
    return Annotate(base.status(), seed, "serial-run");
  }

  const Status status =
      RunOracles(seed, scenario, *base, install_faults, options);
  if (!status.ok()) {
    MaybeDumpSnapshot(seed, *base, options, out);
  }
  return status;
}

SimReport RunSimulations(const SimOptions& options, std::ostream* out) {
  using clock = std::chrono::steady_clock;
  const clock::time_point start = clock::now();
  SimReport report;
  std::ofstream failures_file;
  if (!options.failures_path.empty()) {
    failures_file.open(options.failures_path, std::ios::trunc);
  }
  for (size_t i = 0; i < options.num_scenarios; ++i) {
    if (options.max_wall_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(clock::now() - start).count();
      if (elapsed >= options.max_wall_seconds) {
        if (out != nullptr) {
          *out << "time budget reached after " << report.scenarios_run
               << " scenario(s)\n";
        }
        break;
      }
    }
    const uint64_t seed = options.first_seed + i;
    const Status status = RunScenarioOnce(seed, options, out);
    ++report.scenarios_run;
    if (!status.ok()) {
      report.failures.push_back(SimFailure{seed, status.ToString()});
      if (out != nullptr) {
        *out << "FAIL " << status.ToString() << "\n"
             << "  replay: " << ReplayCommand(seed, options) << "\n";
      }
      if (failures_file.is_open()) {
        failures_file << seed << " " << status.ToString() << "\n";
        failures_file.flush();
      }
    } else if (options.verbose && out != nullptr) {
      *out << "ok seed " << seed << "\n";
    }
    if (out != nullptr && !options.verbose &&
        report.scenarios_run % 50 == 0) {
      *out << "..." << report.scenarios_run << "/"
           << options.num_scenarios << " scenarios, "
           << report.failures.size() << " failure(s)\n";
    }
  }
  if (out != nullptr) {
    *out << report.scenarios_run << " scenario(s), "
         << report.failures.size() << " failure(s)\n";
  }
  return report;
}

}  // namespace datatriage::sim
