#ifndef DATATRIAGE_SIM_ORACLES_H_
#define DATATRIAGE_SIM_ORACLES_H_

#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/virtual_time.h"
#include "src/engine/window_result.h"
#include "src/sim/scenario_gen.h"

namespace datatriage::sim {

/// One query's normalized run output, the unit every differential oracle
/// compares: results CSV, stats snapshot, and metrics+trace JSON are the
/// three byte-comparable projections of a session's observable state.
struct QueryRunOutput {
  std::string results_csv;
  engine::EngineStatsSnapshot snapshot;
  std::string metrics_json;
  std::vector<engine::WindowResult> results;
  /// Admission horizon stamped at registration (DESIGN.md Sec. 14):
  /// -inf for sessions registered up front, the next window boundary
  /// after the arrival clock for sessions registered mid-stream. The
  /// suffix-equivalence oracle feeds a standalone engine only events at
  /// or after this time.
  VirtualTime admit_from = -std::numeric_limits<double>::infinity();
};

/// Per-session outputs of one server run (indexed like scenario.queries).
/// Plane-level ("server" section) metrics are deliberately excluded:
/// worker gauges carry wall-clock readings, which are not deterministic
/// across worker counts by design.
struct ServerRunOutput {
  std::vector<QueryRunOutput> sessions;
  /// Sealed SnapshotSession bytes of session 0 taken immediately before
  /// event scenario.snapshot_at_event; empty when the scenario takes no
  /// snapshot. Must be byte-identical across worker counts (the snapshot
  /// is a pure function of the delivered subsequence).
  std::string session_snapshot;
};

/// Runs the scenario on a StreamServer with `worker_threads` workers
/// (0 = serial inline mode), honoring the scenario's push plan (batch
/// size, poison batch, mid-stream finish) and churn plan (mid-stream
/// registration, unregistration, and the session-0 snapshot point).
/// `install_faults` wires scenario.faults into the server before
/// registration.
Result<ServerRunOutput> RunOnServer(const SimScenario& scenario,
                                    size_t worker_threads,
                                    bool install_faults);

/// Runs query `query_index` alone on a standalone ContinuousQueryEngine
/// over the same pushed prefix (per-event, tolerating NotFound for
/// events on streams the query does not read), cut to the query's churn
/// envelope: events before `admit_from` are skipped and the feed stops
/// at the query's unregister_at_event (unregistration drains exactly
/// like Finish, so the prefix run is the reference).
Result<QueryRunOutput> RunOnEngine(
    const SimScenario& scenario, size_t query_index,
    VirtualTime admit_from = -std::numeric_limits<double>::infinity());

/// Oracle: two server runs are byte-identical per session (results CSV,
/// snapshot, metrics JSON). Used serial-vs-replay and serial-vs-parallel.
/// `compare_snapshots` additionally demands byte-identical session-0
/// snapshot bytes — on for replay/parallel comparisons, off when the two
/// runs legitimately serialize different configs (executor-mode flips).
Status CheckRunsEquivalent(const ServerRunOutput& a,
                           const ServerRunOutput& b,
                           std::string_view a_label,
                           std::string_view b_label,
                           bool compare_snapshots = true);

/// Oracle: the session-0 snapshot taken mid-run restores into a fresh
/// server (same catalog and fault plan, serial) that, fed the remaining
/// events of the pushed feed, finishes byte-identical to the donor
/// session's full run. No-op when the scenario took no snapshot.
Status CheckSnapshotRestore(const SimScenario& scenario,
                            const ServerRunOutput& base,
                            bool install_faults);

/// Oracle: every hosted session matches its standalone engine run byte
/// for byte. Only valid when no faults were installed on the server (a
/// standalone engine cannot receive them).
Status CheckEngineEquivalence(const SimScenario& scenario,
                              const ServerRunOutput& server_run);

/// Oracle: conservation invariants of one session — ingested = kept +
/// dropped, the drop-cause counters partition the dropped count, core
/// stats agree with the registry counters, and windows emit in strictly
/// increasing order at non-decreasing emit times.
Status CheckConservation(const QueryRunOutput& run);

/// Oracle: memory-accounting invariants of one session (DESIGN.md §15).
/// Always: every mem.<component>.bytes gauge reads 0 after Finish (each
/// charge had a matching release). When `budgeted`, additionally: the
/// enforcement self-check counters mem.boundary_over_budget and
/// mem.invariant_violations exist and are exactly 0.
Status CheckMemoryAccounting(const QueryRunOutput& run, bool budgeted);

/// Oracle: accuracy against the offline ideal evaluation, for queries
/// with AccuracyEligible(). Checks (a) the scenario run's merged-channel
/// RMS error vs the ideal is finite, and (b) an ideal engine run of the
/// same query (zero-cost model, queue larger than the feed) sheds
/// nothing and has exactly zero RMS error.
Status CheckAccuracy(const SimScenario& scenario, size_t query_index,
                     const QueryRunOutput& run);

/// Oracle for MATCH queries (no-op for others):
/// (a) Monotonicity — every exact match row the scenario run emitted
///     appears (with at least that multiplicity, per window) in an ideal
///     zero-shed run of the same query: shedding may lose matches but
///     can never invent one.
/// (b) When the scenario run shed nothing, its match rows equal the
///     ideal run's exactly.
/// (c) Utility-vs-random parity at zero shed: ideal runs under the
///     utility and random drop policies emit identical match rows (the
///     policies may only differ in *which* tuples they shed, never in
///     what the NFA computes over kept tuples).
Status CheckPattern(const SimScenario& scenario, size_t query_index,
                    const QueryRunOutput& run);

}  // namespace datatriage::sim

#endif  // DATATRIAGE_SIM_ORACLES_H_
