#ifndef DATATRIAGE_SIM_ORACLES_H_
#define DATATRIAGE_SIM_ORACLES_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/engine/window_result.h"
#include "src/sim/scenario_gen.h"

namespace datatriage::sim {

/// One query's normalized run output, the unit every differential oracle
/// compares: results CSV, stats snapshot, and metrics+trace JSON are the
/// three byte-comparable projections of a session's observable state.
struct QueryRunOutput {
  std::string results_csv;
  engine::EngineStatsSnapshot snapshot;
  std::string metrics_json;
  std::vector<engine::WindowResult> results;
};

/// Per-session outputs of one server run (indexed like scenario.queries).
/// Plane-level ("server" section) metrics are deliberately excluded:
/// worker gauges carry wall-clock readings, which are not deterministic
/// across worker counts by design.
struct ServerRunOutput {
  std::vector<QueryRunOutput> sessions;
};

/// Runs the scenario on a StreamServer with `worker_threads` workers
/// (0 = serial inline mode), honoring the scenario's push plan (batch
/// size, poison batch, mid-stream finish). `install_faults` wires
/// scenario.faults into the server before registration.
Result<ServerRunOutput> RunOnServer(const SimScenario& scenario,
                                    size_t worker_threads,
                                    bool install_faults);

/// Runs query `query_index` alone on a standalone ContinuousQueryEngine
/// over the same pushed prefix (per-event, tolerating NotFound for
/// events on streams the query does not read).
Result<QueryRunOutput> RunOnEngine(const SimScenario& scenario,
                                   size_t query_index);

/// Oracle: two server runs are byte-identical per session (results CSV,
/// snapshot, metrics JSON). Used serial-vs-replay and serial-vs-parallel.
Status CheckRunsEquivalent(const ServerRunOutput& a,
                           const ServerRunOutput& b, std::string_view
                           a_label, std::string_view b_label);

/// Oracle: every hosted session matches its standalone engine run byte
/// for byte. Only valid when no faults were installed on the server (a
/// standalone engine cannot receive them).
Status CheckEngineEquivalence(const SimScenario& scenario,
                              const ServerRunOutput& server_run);

/// Oracle: conservation invariants of one session — ingested = kept +
/// dropped, the drop-cause counters partition the dropped count, core
/// stats agree with the registry counters, and windows emit in strictly
/// increasing order at non-decreasing emit times.
Status CheckConservation(const QueryRunOutput& run);

/// Oracle: accuracy against the offline ideal evaluation, for queries
/// with AccuracyEligible(). Checks (a) the scenario run's merged-channel
/// RMS error vs the ideal is finite, and (b) an ideal engine run of the
/// same query (zero-cost model, queue larger than the feed) sheds
/// nothing and has exactly zero RMS error.
Status CheckAccuracy(const SimScenario& scenario, size_t query_index,
                     const QueryRunOutput& run);

}  // namespace datatriage::sim

#endif  // DATATRIAGE_SIM_ORACLES_H_
