#include "src/sim/scenario_gen.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/io/csv.h"
#include "src/workload/arrival.h"

namespace datatriage::sim {
namespace {

using engine::StreamEvent;
using triage::DropPolicyKind;
using triage::SheddingStrategy;

/// Per-stream generation state kept alongside the catalog entry.
struct StreamPlan {
  std::string name;
  size_t num_columns = 0;
  /// Value domain per column: values are uniform in [0, domain).
  std::vector<int64_t> domains;
};

std::string ColumnName(size_t stream, size_t column) {
  // Globally unique across streams, so unqualified references in
  // generated WHERE / GROUP BY clauses are never ambiguous.
  return StringPrintf("f%zu_%zu", stream, column);
}

std::vector<StreamPlan> GenerateStreams(Rng& rng, Catalog* catalog) {
  const size_t num_streams = static_cast<size_t>(rng.UniformInt(1, 3));
  std::vector<StreamPlan> plans;
  for (size_t i = 0; i < num_streams; ++i) {
    StreamPlan plan;
    plan.name = StringPrintf("s%zu", i);
    plan.num_columns = static_cast<size_t>(rng.UniformInt(2, 4));
    StreamDef def;
    def.name = plan.name;
    for (size_t j = 0; j < plan.num_columns; ++j) {
      // Column 0 shares one small domain across streams so generated
      // equijoins actually match; the rest draw their own widths.
      const int64_t domain = j == 0 ? 16 : rng.UniformInt(4, 48);
      plan.domains.push_back(domain);
      Status added = def.schema.AddField(
          Field{ColumnName(i, j), FieldType::kInt64});
      DT_CHECK(added.ok()) << added.ToString();
    }
    Status registered = catalog->RegisterStream(std::move(def));
    DT_CHECK(registered.ok()) << registered.ToString();
    plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<StreamEvent> GenerateEvents(
    Rng& rng, const std::vector<StreamPlan>& streams) {
  std::vector<StreamEvent> events;
  for (size_t i = 0; i < streams.size(); ++i) {
    const StreamPlan& plan = streams[i];
    const size_t count = static_cast<size_t>(rng.UniformInt(150, 400));
    const double phase = 0.013 * static_cast<double>(i);
    std::unique_ptr<workload::ArrivalProcess> process;
    if (rng.Bernoulli(0.35)) {
      workload::MarkovBurstConfig burst;
      burst.base_rate = rng.UniformDouble(40.0, 120.0);
      burst.burst_speedup = rng.UniformDouble(3.0, 12.0);
      burst.expected_burst_length =
          static_cast<double>(rng.UniformInt(20, 60));
      auto made =
          workload::MarkovBurstArrivals::Make(burst, rng.Fork(), phase);
      DT_CHECK(made.ok()) << made.status().ToString();
      process = std::move(*made);
    } else {
      auto made = workload::ConstantRateArrivals::Make(
          rng.UniformDouble(60.0, 300.0), phase);
      DT_CHECK(made.ok()) << made.status().ToString();
      process = std::move(*made);
    }
    Rng values(rng.Fork());
    for (const workload::ArrivalSlot& slot :
         workload::TakeArrivals(process.get(), count)) {
      std::vector<Value> row;
      row.reserve(plan.num_columns);
      for (int64_t domain : plan.domains) {
        row.push_back(Value::Int64(values.UniformInt(0, domain - 1)));
      }
      events.push_back(
          StreamEvent{plan.name, Tuple(std::move(row), slot.time)});
    }
  }
  io::SortEventsByTime(&events);
  return events;
}

engine::EngineConfig GenerateConfig(Rng& rng) {
  engine::EngineConfig config;
  const int64_t strategy = rng.UniformInt(0, 9);
  if (strategy < 3) {
    config.strategy = SheddingStrategy::kDropOnly;
  } else if (strategy < 5) {
    config.strategy = SheddingStrategy::kSummarizeOnly;
  } else {
    config.strategy = SheddingStrategy::kDataTriage;
  }
  config.queue_capacity = static_cast<size_t>(rng.UniformInt(8, 160));
  const bool synergistic_ok =
      config.strategy == SheddingStrategy::kDataTriage;
  const int64_t policy = rng.UniformInt(0, synergistic_ok ? 3 : 2);
  config.drop_policy = static_cast<DropPolicyKind>(policy);
  config.synergistic_candidates = static_cast<size_t>(rng.UniformInt(2, 6));
  config.synopsis.type = synopsis::SynopsisType::kGridHistogram;
  const int64_t widths[] = {2, 4, 8};
  config.synopsis.grid.cell_width =
      static_cast<double>(widths[rng.UniformInt(0, 2)]);
  config.cost_model.exact_tuple_cost =
      1.0 / static_cast<double>(rng.UniformInt(100, 700));
  config.cost_model.delay_factor = rng.UniformDouble(0.5, 2.0);
  config.seed = rng.Fork();
  // Executor mode fuzzing, derived from the already-drawn seed rather
  // than fresh rng draws so the scenario generation streams of existing
  // seeds stay byte-identical. Roughly half the scenarios run
  // vectorized, and a quarter of those exercise the min-rows threshold
  // (mixed vectorized/scalar windows within one run).
  config.vectorized_exec = (config.seed & 1) != 0;
  static constexpr size_t kMinRowsChoices[] = {0, 0, 16, 64};
  config.vectorized_min_rows =
      config.vectorized_exec ? kMinRowsChoices[(config.seed >> 1) & 3] : 0;
  // Memory-budget fuzzing, same seed-bit idiom: ~1/8 of scenarios run
  // budgeted, spread across tight (memory-triggered triage fires
  // constantly) through roomy (it fires rarely), so the accounting
  // oracle sees both regimes.
  if (((config.seed >> 3) & 7) == 0) {
    static constexpr size_t kBudgetChoices[] = {
        64 * 1024, 96 * 1024, 160 * 1024, 512 * 1024};
    config.memory_budget_bytes = kBudgetChoices[(config.seed >> 6) & 3];
  }
  Status valid = config.Validate();
  DT_CHECK(valid.ok()) << valid.ToString();
  return config;
}

/// Appends the shared WINDOW clause for `streams` to `sql`.
void AppendWindowClause(const SimScenario& scenario,
                        const std::vector<std::string>& streams,
                        std::string* sql) {
  *sql += " WINDOW ";
  for (size_t i = 0; i < streams.size(); ++i) {
    if (i > 0) *sql += ", ";
    if (scenario.window_slide < scenario.window_seconds) {
      *sql += StringPrintf("%s['%.9f seconds', '%.9f seconds']",
                           streams[i].c_str(), scenario.window_seconds,
                           scenario.window_slide);
    } else {
      *sql += StringPrintf("%s['%.9f seconds']", streams[i].c_str(),
                           scenario.window_seconds);
    }
  }
}

/// "agg(col)" selection: COUNT(*) or SUM/AVG/MIN/MAX over a column.
std::string AggregateExpr(Rng& rng, size_t stream, size_t num_columns) {
  const int64_t kind = rng.UniformInt(0, 4);
  if (kind == 0) return "COUNT(*)";
  const char* names[] = {"", "SUM", "AVG", "MIN", "MAX"};
  const size_t col =
      static_cast<size_t>(rng.UniformInt(0, num_columns - 1));
  return StringPrintf("%s(%s)", names[kind],
                      ColumnName(stream, col).c_str());
}

/// Adds ORDER BY over every output column (a total order up to full-row
/// equality, so ties cannot make the comparison flaky) plus an optional
/// LIMIT. Returns true when anything was appended.
bool MaybeAppendPresentation(Rng& rng,
                             const std::vector<std::string>& columns,
                             std::string* sql) {
  bool appended = false;
  if (rng.Bernoulli(0.35)) {
    *sql += " ORDER BY ";
    const bool descending = rng.Bernoulli(0.5);
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i > 0) *sql += ", ";
      *sql += columns[i];
      if (i == 0 && descending) *sql += " DESC";
    }
    appended = true;
  }
  if (rng.Bernoulli(0.3)) {
    *sql += StringPrintf(" LIMIT %lld",
                         static_cast<long long>(rng.UniformInt(1, 12)));
    appended = true;
  }
  return appended;
}

SimQuery GenerateQuery(Rng& rng, const SimScenario& scenario,
                       const std::vector<StreamPlan>& streams) {
  SimQuery query;
  query.config = GenerateConfig(rng);

  enum Shape { kSingleAgg, kJoinAgg, kProjection };
  Shape shape;
  if (streams.size() >= 2) {
    const int64_t pick = rng.UniformInt(0, 9);
    shape = pick < 4 ? kSingleAgg : (pick < 7 ? kJoinAgg : kProjection);
  } else {
    shape = rng.Bernoulli(0.6) ? kSingleAgg : kProjection;
  }

  const size_t a = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(streams.size()) - 1));

  if (shape == kProjection) {
    const StreamPlan& s = streams[a];
    const size_t c1 =
        static_cast<size_t>(rng.UniformInt(0, s.num_columns - 1));
    size_t c2 = static_cast<size_t>(rng.UniformInt(0, s.num_columns - 1));
    if (c2 == c1) c2 = (c1 + 1) % s.num_columns;
    query.columns = {ColumnName(a, c1), ColumnName(a, c2)};
    query.streams = {s.name};
    query.sql = StringPrintf("SELECT %s, %s FROM %s",
                             query.columns[0].c_str(),
                             query.columns[1].c_str(), s.name.c_str());
    if (rng.Bernoulli(0.4)) {
      const size_t f =
          static_cast<size_t>(rng.UniformInt(0, s.num_columns - 1));
      query.sql += StringPrintf(
          " WHERE %s >= %lld", ColumnName(a, f).c_str(),
          static_cast<long long>(rng.UniformInt(0, s.domains[f] / 2)));
    }
    query.has_presentation =
        MaybeAppendPresentation(rng, query.columns, &query.sql);
    AppendWindowClause(scenario, query.streams, &query.sql);
    return query;
  }

  // Grouped aggregate, over one stream or a two-stream equijoin.
  query.has_aggregate = true;
  const StreamPlan& lhs = streams[a];
  std::string from = lhs.name;
  std::vector<std::string> predicates;
  size_t agg_stream = a;
  if (shape == kJoinAgg) {
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(streams.size()) - 1));
    if (b == a) b = (a + 1) % streams.size();
    const StreamPlan& rhs = streams[b];
    from += ", " + rhs.name;
    predicates.push_back(StringPrintf(
        "%s.%s = %s.%s", lhs.name.c_str(), ColumnName(a, 0).c_str(),
        rhs.name.c_str(), ColumnName(b, 0).c_str()));
    query.streams = {lhs.name, rhs.name};
    if (rng.Bernoulli(0.5)) agg_stream = b;
  } else {
    query.streams = {lhs.name};
  }

  const StreamPlan& agg_source = streams[agg_stream];
  const size_t group_col =
      static_cast<size_t>(rng.UniformInt(0, agg_source.num_columns - 1));
  std::string group_by = ColumnName(agg_stream, group_col);
  query.columns = {group_by};
  query.num_group_columns = 1;
  if (agg_source.num_columns >= 3 && rng.Bernoulli(0.3)) {
    size_t second =
        static_cast<size_t>(rng.UniformInt(0, agg_source.num_columns - 1));
    if (second == group_col) second = (group_col + 1) % agg_source.num_columns;
    group_by += ", " + ColumnName(agg_stream, second);
    query.columns.push_back(ColumnName(agg_stream, second));
    query.num_group_columns = 2;
  }
  const std::string agg =
      AggregateExpr(rng, agg_stream, agg_source.num_columns);
  query.columns.push_back("agg0");

  if (rng.Bernoulli(0.4)) {
    const size_t f =
        static_cast<size_t>(rng.UniformInt(0, lhs.num_columns - 1));
    predicates.push_back(StringPrintf(
        "%s >= %lld", ColumnName(a, f).c_str(),
        static_cast<long long>(rng.UniformInt(0, lhs.domains[f] / 2))));
  }

  query.sql = StringPrintf("SELECT %s, %s AS agg0 FROM %s",
                           group_by.c_str(), agg.c_str(), from.c_str());
  for (size_t i = 0; i < predicates.size(); ++i) {
    query.sql += (i == 0 ? " WHERE " : " AND ") + predicates[i];
  }
  query.sql += " GROUP BY " + group_by;
  if (rng.Bernoulli(0.25)) {
    query.sql += StringPrintf(" HAVING agg0 >= %lld",
                              static_cast<long long>(rng.UniformInt(1, 3)));
    query.has_presentation = true;
  }
  if (MaybeAppendPresentation(rng, query.columns, &query.sql)) {
    query.has_presentation = true;
  }
  AppendWindowClause(scenario, query.streams, &query.sql);
  return query;
}

void GenerateFaults(Rng& rng, VirtualTime t_end, SimScenario* scenario) {
  scenario->use_faults = rng.Bernoulli(0.6);
  // Draw every knob unconditionally so the downstream draw sequence does
  // not depend on use_faults — keeps the generator easy to reason about.
  server::SimFaults& faults = scenario->faults;
  if (rng.Bernoulli(0.5)) {
    faults.force_overflow = true;
    faults.overflow_from = rng.UniformDouble(0.1, 0.6) * t_end;
    faults.overflow_to =
        faults.overflow_from + rng.UniformDouble(0.05, 0.3) * t_end;
  }
  if (rng.Bernoulli(0.4)) {
    faults.stall_seconds = rng.UniformDouble(0.002, 0.02);
    faults.stall_from = rng.UniformDouble(0.0, 0.5) * t_end;
    faults.stall_to =
        faults.stall_from + rng.UniformDouble(0.1, 0.4) * t_end;
  }
  faults.sharding =
      static_cast<server::SimFaults::Sharding>(rng.UniformInt(0, 2));
  if (rng.Bernoulli(0.3)) {
    const size_t rings[] = {2, 4, 8, 16};
    faults.task_queue_capacity_override = rings[rng.UniformInt(0, 3)];
  }
  if (rng.Bernoulli(0.3)) {
    faults.dispatch_yield_every =
        static_cast<uint64_t>(rng.UniformInt(1, 8));
  }
}

}  // namespace

SimScenario GenerateScenario(uint64_t seed) {
  SimScenario scenario;
  scenario.seed = seed;
  Rng rng(seed);

  const std::vector<StreamPlan> streams =
      GenerateStreams(rng, &scenario.catalog);
  scenario.events = GenerateEvents(rng, streams);
  DT_CHECK(!scenario.events.empty());
  const VirtualTime t_end = scenario.events.back().tuple.timestamp();

  // Window geometry: aim for a few dozen tuples per window so each run
  // emits several windows without drowning the scenario in emissions.
  const double target_per_window =
      static_cast<double>(rng.UniformInt(25, 90));
  const double total = static_cast<double>(scenario.events.size());
  scenario.window_seconds =
      std::clamp(t_end * target_per_window / total, 0.05, 10.0);
  scenario.window_slide = scenario.window_seconds;
  if (rng.Bernoulli(0.3)) {
    scenario.window_slide =
        scenario.window_seconds / static_cast<double>(rng.UniformInt(2, 3));
  }
  // Snap the geometry to the precision the SQL WINDOW clause renders at
  // (%.9f). The engine runs on the *parsed* durations, the offline ideal
  // on these fields; if they differ in the 10th decimal, tuples near
  // window boundaries land in different windows and the zero-RMS oracle
  // reports phantom drift (fuzz seed 149 caught exactly that).
  const auto snap = [](double seconds) {
    return std::strtod(StringPrintf("%.9f", seconds).c_str(), nullptr);
  };
  scenario.window_seconds = snap(scenario.window_seconds);
  scenario.window_slide = snap(scenario.window_slide);

  const size_t num_queries = static_cast<size_t>(rng.UniformInt(1, 3));
  for (size_t i = 0; i < num_queries; ++i) {
    scenario.queries.push_back(GenerateQuery(rng, scenario, streams));
  }

  GenerateFaults(rng, t_end, &scenario);

  scenario.events_to_push = scenario.events.size();
  if (rng.Bernoulli(0.2)) {
    scenario.events_to_push = std::max<size_t>(
        1, static_cast<size_t>(rng.UniformDouble(0.3, 0.9) *
                               static_cast<double>(scenario.events.size())));
  }
  scenario.inject_poison_batch = rng.Bernoulli(0.25);
  const size_t batch_sizes[] = {0, 1, 32, 128};
  scenario.push_batch_size = batch_sizes[rng.UniformInt(0, 3)];

  // Churn plan (DESIGN.md Sec. 14), drawn after every pre-existing draw
  // so the scenario streams of existing seeds stay byte-identical. Query
  // 0 is pinned resident for the whole run: the feed is never pushed
  // into a zero-live-session server, and the snapshot oracle always has
  // a session that spans the full feed. Every knob is drawn
  // unconditionally (the GenerateFaults idiom) so the draw sequence does
  // not depend on which ops were selected.
  const size_t push_count = scenario.events_to_push;
  for (size_t i = 1; i < scenario.queries.size(); ++i) {
    SimQuery& query = scenario.queries[i];
    const bool join_late = rng.Bernoulli(0.35);
    const bool leave_early = rng.Bernoulli(0.3);
    const size_t join_at = static_cast<size_t>(
        rng.UniformDouble(0.15, 0.7) * static_cast<double>(push_count));
    const size_t leave_at = static_cast<size_t>(
        rng.UniformDouble(0.5, 0.95) * static_cast<double>(push_count));
    if (join_late && join_at > 0) query.register_at_event = join_at;
    if (leave_early && leave_at > query.register_at_event &&
        leave_at < push_count) {
      query.unregister_at_event = leave_at;
    }
  }
  // Snapshot session 0 mid-run on every 4th seed, plus a random extra
  // cohort — CI's round-trip smoke rides on these scenarios.
  const bool snapshot_drawn = rng.Bernoulli(0.2);
  const size_t snapshot_at = static_cast<size_t>(
      rng.UniformDouble(0.25, 0.75) * static_cast<double>(push_count));
  if ((seed % 4 == 0 || snapshot_drawn) && snapshot_at > 0 &&
      snapshot_at < push_count) {
    scenario.snapshot_at_event = snapshot_at;
  }
  // Scheduler fuzzing (DESIGN.md §16), seed-bit idiom so the rng draw
  // sequence of existing seeds stays byte-identical: ~1/4 of scenarios
  // pick a non-default SchedulerOptions. worker_threads stays 0 here —
  // the runner sweeps worker counts itself — but dispatch mode, the
  // intra-session morsel fan-out, and the morsel floor ride in the
  // scenario so every oracle (including the snapshot round-trip, which
  // cross-checks the scheduler stamp) sees them.
  if ((seed & 3) == 2) {
    engine::SchedulerOptions& sched = scenario.options.scheduler;
    sched.dispatch = ((seed >> 2) & 1) != 0
                         ? engine::DispatchMode::kStealing
                         : engine::DispatchMode::kLeastLoaded;
    sched.intra_session_threads = 1 + ((seed >> 4) & 3);
    static constexpr size_t kMinRowsChoices[] = {0, 0, 64, 256};
    sched.parallel_min_rows = kMinRowsChoices[(seed >> 6) & 3];
  }
  // MATCH pattern cohort (DESIGN.md §17), ~1/4 of seeds: one query is
  // rewritten into a pattern query. The conversion draws nothing from
  // the rng (pure function of seed bits), so every pre-existing seed's
  // draw sequence — and therefore every other query of the scenario —
  // stays byte-identical.
  if (((seed >> 7) & 3) == 1) {
    ConvertToPatternQuery(&scenario,
                          (seed >> 9) % scenario.queries.size());
  }
  return scenario;
}

void ConvertToPatternQuery(SimScenario* scenario, size_t query_index) {
  DT_CHECK_LT(query_index, scenario->queries.size());
  SimQuery& query = scenario->queries[query_index];
  // splitmix64-style bit mix of (seed, index): deterministic, distinct
  // per query, and independent of the generator's rng draw order.
  uint64_t bits =
      scenario->seed + 0x9e3779b97f4a7c15ull * (query_index + 1);
  bits ^= bits >> 30;
  bits *= 0xbf58476d1ce4e5b9ull;
  bits ^= bits >> 27;
  bits *= 0x94d049bb133111ebull;
  bits ^= bits >> 31;

  const size_t num_streams = scenario->catalog.num_streams();
  DT_CHECK_GT(num_streams, 0u);
  const size_t stream_index = bits % num_streams;
  const std::string stream = StringPrintf("s%zu", stream_index);
  auto def = scenario->catalog.GetStream(stream);
  DT_CHECK(def.ok()) << def.status().ToString();
  const size_t num_columns = def->schema.num_fields();
  DT_CHECK_GE(num_columns, 2u);
  const size_t k = 2 + ((bits >> 8) & 1);  // 2 or 3 steps

  // Step predicates over the non-key columns (column 0 partitions; its
  // shared 16-value domain makes key collisions routine). Thresholds
  // stay <= 3, valid for every generated domain (>= 4), with mixed
  // forms so steps span selective and permissive.
  std::string match = " MATCH (";
  for (size_t j = 0; j < k; ++j) {
    if (j > 0) match += " THEN ";
    const uint64_t step_bits = bits >> (10 + 6 * j);
    const size_t col = 1 + (step_bits % (num_columns - 1));
    const std::string name = ColumnName(stream_index, col);
    switch ((step_bits >> 2) % 3) {
      case 0:
        match += StringPrintf("%s >= %llu", name.c_str(),
                              static_cast<unsigned long long>(
                                  1 + ((step_bits >> 4) & 1)));
        break;
      case 1:
        match += StringPrintf("%s < %llu", name.c_str(),
                              static_cast<unsigned long long>(
                                  2 + ((step_bits >> 4) & 1)));
        break;
      default:
        match += StringPrintf("%s = %llu", name.c_str(),
                              static_cast<unsigned long long>(
                                  (step_bits >> 4) & 3));
        break;
    }
  }
  static constexpr double kWithinFractions[] = {0.3, 0.5, 0.8, 1.0};
  const double within =
      scenario->window_seconds * kWithinFractions[(bits >> 32) & 3];
  match += StringPrintf(") PARTITION BY %s WITHIN '%.9f seconds'",
                        ColumnName(stream_index, 0).c_str(), within);

  query.sql = "SELECT * FROM " + stream + match;
  query.streams = {stream};
  query.columns = {"key"};
  for (size_t j = 0; j < k; ++j) {
    query.columns.push_back(StringPrintf("t%zu", j + 1));
  }
  query.has_aggregate = false;
  query.has_presentation = false;
  query.num_group_columns = 0;
  query.is_pattern = true;
  // Pattern queries run exact-over-kept only: no synopsis side, shed by
  // the utility policy (half the cohort) or random.
  query.config.strategy = SheddingStrategy::kDropOnly;
  query.config.drop_policy = ((bits >> 34) & 1) != 0
                                 ? DropPolicyKind::kUtility
                                 : DropPolicyKind::kRandom;
  AppendWindowClause(*scenario, query.streams, &query.sql);
  Status valid = query.config.Validate();
  DT_CHECK(valid.ok()) << valid.ToString();
}

std::string Describe(const SimScenario& scenario) {
  std::string out = StringPrintf(
      "scenario seed=%llu: %zu events on %zu stream(s), window=%.6fs "
      "slide=%.6fs, push=%zu/%zu batch=%zu poison=%d\n",
      static_cast<unsigned long long>(scenario.seed),
      scenario.events.size(), scenario.catalog.num_streams(),
      scenario.window_seconds, scenario.window_slide,
      scenario.events_to_push, scenario.events.size(),
      scenario.push_batch_size, scenario.inject_poison_batch ? 1 : 0);
  if (scenario.snapshot_at_event != SIZE_MAX) {
    out += StringPrintf("  snapshot: session 0 before event %zu\n",
                        scenario.snapshot_at_event);
  }
  const engine::SchedulerOptions& sched = scenario.options.scheduler;
  if (sched.dispatch != engine::DispatchMode::kStatic ||
      sched.intra_session_threads > 0 || sched.parallel_min_rows > 0) {
    out += StringPrintf(
        "  scheduler: dispatch=%s intra=%zu parallel_min_rows=%zu\n",
        std::string(engine::DispatchModeToString(sched.dispatch)).c_str(),
        sched.intra_session_threads, sched.parallel_min_rows);
  }
  for (size_t i = 0; i < scenario.queries.size(); ++i) {
    const SimQuery& q = scenario.queries[i];
    if (q.register_at_event > 0 || q.unregister_at_event != SIZE_MAX) {
      out += StringPrintf("  churn: query %zu registers at %zu", i,
                          q.register_at_event);
      if (q.unregister_at_event != SIZE_MAX) {
        out += StringPrintf(", unregisters before event %zu",
                            q.unregister_at_event);
      }
      out += "\n";
    }
    out += StringPrintf(
        "  query %zu [%s cap=%zu policy=%s]: %s\n", i,
        std::string(triage::SheddingStrategyToString(q.config.strategy))
            .c_str(),
        q.config.queue_capacity,
        std::string(triage::DropPolicyKindToString(q.config.drop_policy))
            .c_str(),
        q.sql.c_str());
  }
  if (scenario.use_faults) {
    const server::SimFaults& f = scenario.faults;
    out += StringPrintf(
        "  faults: overflow=%d[%.3f,%.3f) stall=%.4fs[%.3f,%.3f) "
        "sharding=%d ring_override=%zu yield_every=%llu\n",
        f.force_overflow ? 1 : 0, f.overflow_from, f.overflow_to,
        f.stall_seconds, f.stall_from, f.stall_to,
        static_cast<int>(f.sharding), f.task_queue_capacity_override,
        static_cast<unsigned long long>(f.dispatch_yield_every));
  } else {
    out += "  faults: none\n";
  }
  return out;
}

}  // namespace datatriage::sim
