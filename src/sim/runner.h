#ifndef DATATRIAGE_SIM_RUNNER_H_
#define DATATRIAGE_SIM_RUNNER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace datatriage::sim {

/// Knobs of one simulation campaign (mirrors sim_main's flags).
struct SimOptions {
  uint64_t first_seed = 1;
  size_t num_scenarios = 100;
  /// Parallel runs to compare against the serial (workers = 0) baseline.
  std::vector<size_t> worker_counts = {1, 2, 4};
  /// Install each scenario's generated SimFaults (--no-faults clears).
  bool with_faults = true;
  /// Override every generated query config with a tight, seed-derived
  /// memory budget (DESIGN.md §15), so a whole campaign exercises
  /// memory-triggered triage instead of the ~1/8 of seeds the generator
  /// budgets organically. The override is deterministic per (seed,
  /// query), so replay commands stay exact reproductions.
  bool force_memory_budgets = false;
  /// Rewrite every generated query into a MATCH pattern query
  /// (DESIGN.md §17), so a whole campaign exercises the NFA executor and
  /// the utility drop policy instead of the ~1/4 of seeds the generator
  /// converts organically. Deterministic per (seed, query), so replay
  /// commands stay exact reproductions.
  bool force_pattern_queries = false;
  /// Wall-clock budget in seconds; 0 = no budget. Checked between
  /// scenarios, so a campaign overruns by at most one scenario.
  double max_wall_seconds = 0.0;
  /// When set, failing seeds are appended to this file, one
  /// "<seed> <first oracle failure>" line each (the CI artifact).
  std::string failures_path;
  /// When set, the base run's session snapshot (if the scenario took
  /// one) is written to <dir>/seed-<seed>.dtss for every failing seed,
  /// so CI can upload the exact bytes that misbehaved. The directory
  /// must already exist.
  std::string snapshot_dump_dir;
  bool verbose = false;
};

struct SimFailure {
  uint64_t seed = 0;
  std::string message;
};

struct SimReport {
  size_t scenarios_run = 0;
  std::vector<SimFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// The one-line command that reproduces `seed` under `options`.
std::string ReplayCommand(uint64_t seed, const SimOptions& options);

/// Generates the scenario for `seed` and runs every oracle against it:
/// serial determinism (two serial runs byte-identical), parallel
/// equivalence for each worker count, standalone-engine equivalence
/// (fault-free scenarios), conservation, and the accuracy oracles.
/// Returns the first oracle failure, annotated with the seed.
Status RunScenarioOnce(uint64_t seed, const SimOptions& options,
                       std::ostream* out);

/// Runs `options.num_scenarios` seeds starting at `options.first_seed`.
/// Progress and failures go to `out` (may be null); every failure is
/// reported with its replay command.
SimReport RunSimulations(const SimOptions& options, std::ostream* out);

}  // namespace datatriage::sim

#endif  // DATATRIAGE_SIM_RUNNER_H_
