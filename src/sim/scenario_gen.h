#ifndef DATATRIAGE_SIM_SCENARIO_GEN_H_
#define DATATRIAGE_SIM_SCENARIO_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/virtual_time.h"
#include "src/engine/config.h"
#include "src/server/sim_faults.h"

namespace datatriage::sim {

/// One generated query: random-but-valid SQL from the supported subset
/// (windowed equijoins, filters, grouped aggregates, HAVING / ORDER BY /
/// LIMIT) plus a random EngineConfig, ready to register on a
/// StreamServer or run on a standalone ContinuousQueryEngine.
struct SimQuery {
  std::string sql;
  engine::EngineConfig config;
  /// Result column labels, for io::FormatResultsCsv.
  std::vector<std::string> columns;
  /// Catalog streams the query reads (FROM-clause streams).
  std::vector<std::string> streams;
  size_t num_group_columns = 0;
  bool has_aggregate = false;
  /// MATCH pattern query (DESIGN.md §17). Pattern queries run drop-only
  /// (the synopsis algebra cannot represent match subsequences) and are
  /// covered by the pattern-monotonicity oracle instead of the RMS
  /// accuracy oracle.
  bool is_pattern = false;
  // --- Churn plan (DESIGN.md Sec. 14) ---------------------------------
  /// Event index at which the query registers: 0 registers up front,
  /// i > 0 registers mid-stream immediately before event i is pushed
  /// (the session then observes only whole windows from its admission
  /// horizon on). Query 0 is always 0 — the server never runs with zero
  /// live sessions.
  size_t register_at_event = 0;
  /// Event index immediately before which the session is unregistered
  /// (drained + detached); SIZE_MAX = stays resident to the end. Always
  /// > register_at_event when set.
  size_t unregister_at_event = SIZE_MAX;
  /// HAVING / ORDER BY / LIMIT present. Presentation clauses reshape
  /// per-window rows, so the accuracy oracles (which compare against the
  /// clause-free ideal evaluation) skip these queries; the differential
  /// byte-equivalence oracles still cover them.
  bool has_presentation = false;

  /// Eligible for the ideal / RMS accuracy oracles.
  bool AccuracyEligible() const {
    return has_aggregate && !has_presentation;
  }
};

/// One seeded scenario: everything a simulation run needs, derived
/// deterministically from the seed alone. Two processes generating the
/// same seed get byte-identical scenarios — that is what makes
/// `sim_main --replay-seed S` a complete reproduction.
struct SimScenario {
  uint64_t seed = 0;
  Catalog catalog;
  /// The interleaved event feed, time-sorted, non-decreasing timestamps.
  std::vector<engine::StreamEvent> events;
  std::vector<SimQuery> queries;
  /// Shared window geometry (every query of the scenario uses it).
  VirtualDuration window_seconds = 1.0;
  VirtualDuration window_slide = 1.0;  // == window_seconds when tumbling
  engine::StreamServerOptions options;

  // --- Fault plan -------------------------------------------------------
  /// Whether this scenario wires scenario.faults into the server (the
  /// runner's --no-faults flag overrides this to off).
  bool use_faults = false;
  server::SimFaults faults;
  /// Number of leading events actually pushed; < events.size() simulates
  /// a mid-stream Finish (the rest of the feed is never delivered).
  size_t events_to_push = 0;
  /// Push one deliberately invalid batch (non-finite timestamp) midway:
  /// it must bounce with InvalidArgument and, batch-atomically, leave
  /// every session byte-identical to a run that never saw it.
  bool inject_poison_batch = false;
  /// 0 pushes event by event; N > 0 pushes PushBatch chunks of N.
  size_t push_batch_size = 0;
  /// Event index immediately before which session 0 is snapshotted
  /// (SnapshotSession is non-invasive, so the run's outputs are
  /// unchanged); SIZE_MAX = no snapshot. The runner's snapshot oracle
  /// restores the bytes into a fresh server, replays the remaining feed,
  /// and demands byte-identical outputs; the bytes themselves must also
  /// be identical across worker counts.
  size_t snapshot_at_event = SIZE_MAX;

  /// True when any query joins late or leaves early.
  bool HasChurn() const {
    for (const SimQuery& query : queries) {
      if (query.register_at_event > 0) return true;
      if (query.unregister_at_event != SIZE_MAX) return true;
    }
    return false;
  }

  /// True when the installed faults change session *semantics* (shed or
  /// stall) as opposed to only scheduling (sharding, ring size, yields).
  bool HasSemanticFaults() const {
    return use_faults &&
           (faults.force_overflow || faults.stall_seconds > 0.0);
  }
};

/// Derives a full scenario from `seed`. Pure function of the seed.
SimScenario GenerateScenario(uint64_t seed);

/// Rewrites query `query_index` of a generated scenario into a MATCH
/// pattern query — random 2–3 step pattern over the query's stream,
/// PARTITION BY its column 0, WITHIN a fraction of the window, shed by
/// the utility or random drop policy. Deterministic in
/// (scenario.seed, query_index) with no rng-stream draws, so the
/// runner's --force-pattern-queries override is a pure function of the
/// replay command; GenerateScenario uses it for the organic pattern
/// cohort (~1/4 of seeds).
void ConvertToPatternQuery(SimScenario* scenario, size_t query_index);

/// Human-readable summary (streams, queries, faults) for failure reports.
std::string Describe(const SimScenario& scenario);

}  // namespace datatriage::sim

#endif  // DATATRIAGE_SIM_SCENARIO_GEN_H_
