#ifndef DATATRIAGE_SERVER_TASK_SCHEDULER_H_
#define DATATRIAGE_SERVER_TASK_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/engine/config.h"
#include "src/server/parallel.h"

namespace datatriage::server {

/// Post-run accounting of one worker, read after Drain()/Stop() only.
/// tasks/busy_seconds are written by the worker thread and published by
/// the Stop() join; queue_depth_hwm is owned by the dispatching thread
/// outright.
struct TaskWorkerStats {
  int64_t tasks = 0;
  /// Wall-clock seconds spent executing tasks (not idling). Wall time is
  /// observability-only — everything deterministic runs on virtual
  /// clocks — so this is the one place the server reads a real clock.
  double busy_seconds = 0.0;
  int64_t queue_depth_hwm = 0;
};

/// Fixed pool of worker threads consuming per-*session* bounded SPSC
/// task rings, fed by a single dispatching thread (the StreamServer's
/// ingest thread). Which worker runs a session is the dispatch policy's
/// business (engine::DispatchMode): static modulo homes, least-loaded
/// re-homing at each empty→non-empty transition, or work stealing where
/// any idle worker may claim any pending session.
///
/// The determinism contract (DESIGN.md §11, §16.1) is policy-free: a
/// session's tasks sit in one FIFO ring and a claim flag serializes
/// consumers, so every mode consumes each session in feed order on one
/// thread *at a time*. Placement moves *when* a session runs across
/// wall-clock time, never *what* it computes — per-session output is
/// byte-identical across modes and worker counts.
///
/// Error model: task execution is asynchronous, so a failing task cannot
/// fail the Push that enqueued it. The first error per session is
/// recorded and the session's remaining tasks are skipped (popped and
/// counted, not executed), mirroring how a serial run would have stopped
/// at its first failure. Drain()/Stop() surface the error of the
/// lowest-id errored session — a deterministic choice, thread timing
/// never picks the winner — and the dispatcher can poll error_seen()
/// between pushes to fail fast.
class TaskScheduler {
 public:
  /// Starts `workers` (>= 1) threads. Each session added later gets its
  /// own task ring of at least `queue_capacity` slots.
  TaskScheduler(engine::DispatchMode dispatch, size_t workers,
                size_t queue_capacity);

  /// Stops and joins outstanding workers (draining every ring first).
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Registers session `session_id` with its initial home worker.
  /// Session ids must arrive dense and in order (they index the ring
  /// table). Safe while workers run — mid-stream registration adds
  /// sessions between pushes; workers pick the new ring up on their
  /// next scan.
  void AddSession(uint32_t session_id, size_t home_worker);

  /// Enqueues `task` on `session_id`'s ring, blocking (yield loop)
  /// while the ring is full. Must only be called from the single
  /// dispatching thread, and not after Stop(). Under kLeastLoaded an
  /// empty→non-empty ring is first re-homed to the worker with the
  /// fewest outstanding tasks (ties to the lowest index).
  void Dispatch(uint32_t session_id, WorkerTask task);

  /// Simulation hook (SimFaults::dispatch_yield_every): when `every_n`
  /// is > 0 the dispatching thread yields after every N enqueued tasks,
  /// perturbing thread interleavings without touching any virtual clock.
  void SetDispatchYield(uint64_t every_n) { dispatch_yield_every_ = every_n; }

  /// Barrier: blocks until every dispatched task has executed, walking
  /// sessions in id order. Returns the deterministic first error (see
  /// class comment), OK when no task failed.
  Status Drain();

  /// Drain() + shut the threads down and join them. Idempotent; the
  /// scheduler cannot be restarted.
  Status Stop();

  /// True once any task has failed; cheap enough for per-push polling.
  bool error_seen() const {
    return error_seen_.load(std::memory_order_acquire);
  }

  /// The error of the lowest-id errored session; OK when none.
  Status first_error() const;

  size_t size() const { return workers_.size(); }

  /// Valid after Stop() (the join publishes worker-thread counters).
  TaskWorkerStats stats(size_t worker) const;

 private:
  /// One session's task ring plus the claim protocol that serializes
  /// its consumers across dispatch modes.
  struct SessionQueue {
    SessionQueue(uint32_t session_id, size_t queue_capacity,
                 size_t home_worker)
        : id(session_id), queue(queue_capacity), home(home_worker) {}

    const uint32_t id;
    SpscTaskQueue queue;
    /// Placement hint: which worker scans this ring (ignored by
    /// stealing workers, which scan every ring). Producer-written
    /// under kLeastLoaded; a hint only, the claim below is what
    /// serializes consumption.
    std::atomic<size_t> home;
    /// Exactly one worker consumes the ring at a time: acquire-CAS to
    /// claim, release-store to release, so ring consumer state hands
    /// off cleanly between workers under stealing/re-homing.
    std::atomic<bool> claimed{false};
    /// Producer cursor (single writer: the dispatching thread);
    /// release-published after the slot lands so scanning workers see
    /// the ring non-empty only once the task is poppable.
    std::atomic<uint64_t> enqueued{0};
    /// Tasks completed; release-stored after each task so Drain()'s
    /// acquire load observes the task's session-state side effects.
    alignas(64) std::atomic<uint64_t> executed{0};
    /// Set at the session's first task failure; later tasks are
    /// skipped (popped and counted, never executed).
    std::atomic<bool> errored{false};
  };

  struct Worker {
    std::thread thread;
    // Consumer-side accounting (owned by the worker thread until the
    // Stop() join publishes it).
    double busy_seconds = 0.0;
    int64_t tasks = 0;
  };

  void RunWorker(size_t k);
  /// Pops and runs `q`'s tasks until its ring is empty; returns whether
  /// any task was popped. Caller must hold the claim.
  bool DrainSession(Worker* w, SessionQueue* q);
  static Status ExecuteTask(const WorkerTask& task);
  void RecordError(uint32_t session_id, Status status);
  /// The dispatching thread's cached ring table, refreshed from
  /// sessions_ when the generation counter moved.
  void RefreshProducerView();

  const engine::DispatchMode dispatch_;
  const size_t queue_capacity_;

  /// Ring table: index == session id. Guarded by sessions_mutex_ for
  /// growth; generation_ bumps on every AddSession so workers (and the
  /// producer) refresh their pointer snapshots without locking on the
  /// hot path.
  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<SessionQueue>> sessions_;
  std::atomic<uint64_t> generation_{0};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool joined_ = false;

  // Dispatching-thread-only state.
  std::vector<SessionQueue*> producer_view_;
  uint64_t producer_generation_ = 0;
  std::vector<int64_t> depth_hwm_;  // per home worker, producer-owned
  uint64_t dispatch_yield_every_ = 0;
  uint64_t dispatched_since_yield_ = 0;

  mutable std::mutex error_mutex_;
  /// First error per session id; min key wins at the barrier.
  std::map<uint32_t, Status> errors_;
  std::atomic<bool> error_seen_{false};
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_TASK_SCHEDULER_H_
