#include "src/server/worker_pool.h"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "src/common/logging.h"
#include "src/server/ingest.h"
#include "src/server/query_session.h"
#include "src/server/sim_faults.h"

namespace datatriage::server {

namespace {

/// Bounded spin before parking: queues stay hot under load (the pop/push
/// succeeds within a few tries), and an idle worker backs off to a short
/// sleep instead of burning its core.
constexpr int kSpinsBeforeSleep = 64;
constexpr std::chrono::microseconds kIdleSleep{50};

uint32_t SessionIdOf(const WorkerTask& task) {
  return task.kind == WorkerTask::Kind::kFinish
             ? task.session->id()
             : task.lane->session->id();
}

}  // namespace

WorkerPool::WorkerPool(size_t workers, size_t queue_capacity) {
  DT_CHECK(workers > 0);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(queue_capacity));
  }
  // Spawn only after the vector is fully built: workers never touch
  // their siblings, but the spawn loop must not reallocate under them.
  for (std::unique_ptr<Worker>& worker : workers_) {
    worker->thread =
        std::thread([this, w = worker.get()] { RunWorker(w); });
  }
}

WorkerPool::~WorkerPool() { Stop(); }

void WorkerPool::Dispatch(size_t worker, WorkerTask task) {
  DT_CHECK(worker < workers_.size());
  DT_CHECK(!joined_) << "WorkerPool::Dispatch after Stop";
  Worker& w = *workers_[worker];
  while (!w.queue.TryPush(std::move(task))) {
    // Full ring: the consumer is behind. Backpressure the feed rather
    // than dropping — shedding is the triage queues' job.
    std::this_thread::yield();
  }
  ++w.enqueued;
  const int64_t depth = static_cast<int64_t>(
      w.enqueued - w.executed.load(std::memory_order_relaxed));
  if (depth > w.depth_hwm) w.depth_hwm = depth;
  if (dispatch_yield_every_ > 0 &&
      ++dispatched_since_yield_ >= dispatch_yield_every_) {
    dispatched_since_yield_ = 0;
    std::this_thread::yield();
  }
}

size_t WorkerForSessionFaulted(uint32_t session_id, size_t workers,
                               const SimFaults* faults) {
  if (faults == nullptr || workers == 0) {
    return WorkerForSession(session_id, workers);
  }
  switch (faults->sharding) {
    case SimFaults::Sharding::kModulo:
      return WorkerForSession(session_id, workers);
    case SimFaults::Sharding::kSingleWorker:
      return 0;
    case SimFaults::Sharding::kReversed:
      return workers - 1 - WorkerForSession(session_id, workers);
  }
  return WorkerForSession(session_id, workers);
}

Status WorkerPool::Drain() {
  // Session-ordered barrier: wait workers out in index order. The order
  // only affects which worker is waited on first — completion of all of
  // them is what the barrier guarantees — but walking a fixed order
  // (and picking the min-session error below) keeps everything the
  // caller observes independent of thread timing.
  for (std::unique_ptr<Worker>& worker : workers_) {
    int spins = 0;
    while (worker->executed.load(std::memory_order_acquire) !=
           worker->enqueued) {
      if (++spins < kSpinsBeforeSleep) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kIdleSleep);
      }
    }
  }
  return first_error();
}

Status WorkerPool::Stop() {
  if (joined_) return first_error();
  Status drained = Drain();
  stop_.store(true, std::memory_order_release);
  for (std::unique_ptr<Worker>& worker : workers_) {
    worker->thread.join();
  }
  joined_ = true;
  return drained;
}

Status WorkerPool::first_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (errors_.empty()) return Status::OK();
  return errors_.begin()->second;
}

WorkerPoolStats WorkerPool::stats(size_t worker) const {
  DT_CHECK(worker < workers_.size());
  const Worker& w = *workers_[worker];
  WorkerPoolStats out;
  out.tasks = w.tasks;
  out.busy_seconds = w.busy_seconds;
  out.queue_depth_hwm = w.depth_hwm;
  return out;
}

void WorkerPool::RecordError(uint32_t session_id, Status status) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    errors_.emplace(session_id, std::move(status));  // first error wins
  }
  error_seen_.store(true, std::memory_order_release);
}

Status WorkerPool::ExecuteTask(const WorkerTask& task) {
  switch (task.kind) {
    case WorkerTask::Kind::kIngest:
      return task.lane->session->Ingest(task.lane, task.tuple);
    case WorkerTask::Kind::kFinish:
      return task.session->Finish();
  }
  return Status::Internal("unknown worker task kind");
}

void WorkerPool::RunWorker(Worker* worker) {
  using clock = std::chrono::steady_clock;
  // Sessions whose pipeline already failed: skip their remaining tasks,
  // the way a serial run would have stopped at the first error. Worker-
  // local (no lock): a session's tasks all land on one worker.
  std::unordered_set<uint32_t> errored;
  int spins = 0;
  for (;;) {
    WorkerTask task;
    if (worker->queue.TryPop(&task)) {
      spins = 0;
      if (errored.find(SessionIdOf(task)) == errored.end()) {
        const clock::time_point start = clock::now();
        Status status = ExecuteTask(task);
        worker->busy_seconds +=
            std::chrono::duration<double>(clock::now() - start).count();
        if (!status.ok()) {
          errored.insert(SessionIdOf(task));
          RecordError(SessionIdOf(task), std::move(status));
        }
      }
      ++worker->tasks;
      // Publishes the task's side effects (session state, the counters
      // above) to the dispatcher's acquire load in Drain().
      worker->executed.fetch_add(1, std::memory_order_release);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (++spins < kSpinsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

}  // namespace datatriage::server
