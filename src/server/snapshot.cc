#include "src/server/snapshot.h"

#include <utility>

#include "src/common/digest.h"
#include "src/common/serde.h"
#include "src/common/string_util.h"

namespace datatriage::server {

namespace {

constexpr std::string_view kMagic = "DTSS";
constexpr size_t kMd5HexLength = 32;

}  // namespace

std::string SealSnapshot(std::string payload) {
  serde::Writer header;
  for (const char c : kMagic) {
    header.WriteU8(static_cast<uint8_t>(c));
  }
  header.WriteU32(kSnapshotVersion);
  header.WriteU64(payload.size());
  std::string bytes = std::move(header).TakeBytes();
  const std::string digest = Md5Hex(payload);
  bytes += payload;
  bytes += digest;
  return bytes;
}

Result<std::string> OpenSnapshot(std::string_view bytes) {
  serde::Reader reader(bytes);
  for (size_t i = 0; i < kMagic.size(); ++i) {
    DT_ASSIGN_OR_RETURN(const uint8_t byte, reader.ReadU8());
    if (byte != static_cast<uint8_t>(kMagic[i])) {
      return Status::InvalidArgument(
          "snapshot: bad magic — not a StreamServer session snapshot");
    }
  }
  DT_ASSIGN_OR_RETURN(const uint32_t version, reader.ReadU32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: version %u is not supported (this build reads "
        "version %u)",
        version, kSnapshotVersion));
  }
  DT_ASSIGN_OR_RETURN(const uint64_t payload_size, reader.ReadU64());
  if (reader.remaining() != payload_size + kMd5HexLength) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: frame declares a %llu-byte payload but %zu byte(s) "
        "follow the header (expected payload + 32-char MD5)",
        static_cast<unsigned long long>(payload_size),
        reader.remaining()));
  }
  const size_t payload_offset = bytes.size() - reader.remaining();
  const std::string_view payload =
      bytes.substr(payload_offset, payload_size);
  const std::string_view stored_digest =
      bytes.substr(payload_offset + payload_size);
  const std::string computed_digest = Md5Hex(payload);
  if (computed_digest != stored_digest) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: payload MD5 %s does not match the stored digest "
        "%.*s — the snapshot is corrupt",
        computed_digest.c_str(), static_cast<int>(stored_digest.size()),
        stored_digest.data()));
  }
  return std::string(payload);
}

void SaveEngineConfig(serde::Writer* writer,
                      const engine::EngineConfig& config) {
  writer->WriteU8(static_cast<uint8_t>(config.strategy));
  writer->WriteU8(static_cast<uint8_t>(config.synopsis.type));
  writer->WriteDouble(config.synopsis.grid.cell_width);
  writer->WriteU64(config.synopsis.mhist.max_buckets);
  writer->WriteBool(config.synopsis.mhist.aligned);
  writer->WriteDouble(config.synopsis.mhist.alignment_step);
  writer->WriteU64(config.synopsis.reservoir.capacity);
  writer->WriteU64(config.synopsis.reservoir.seed);
  writer->WriteDouble(config.synopsis.avi.cell_width);
  writer->WriteBool(config.synopsis.vectorized_exec);
  writer->WriteU64(config.queue_capacity);
  writer->WriteU8(static_cast<uint8_t>(config.drop_policy));
  writer->WriteU64(config.synergistic_candidates);
  writer->WriteDouble(config.cost_model.exact_tuple_cost);
  writer->WriteDouble(config.cost_model.synopsis_insert_cost);
  writer->WriteDouble(config.cost_model.exact_work_unit_cost);
  writer->WriteDouble(config.cost_model.synopsis_work_unit_cost);
  writer->WriteDouble(config.cost_model.emission_overhead);
  writer->WriteDouble(config.cost_model.delay_factor);
  writer->WriteU64(config.seed);
  writer->WriteBool(config.vectorized_exec);
  writer->WriteU64(config.vectorized_min_rows);
  writer->WriteU64(config.memory_budget_bytes);
}

Result<engine::EngineConfig> LoadEngineConfig(serde::Reader* reader) {
  engine::EngineConfig config;
  DT_ASSIGN_OR_RETURN(const uint8_t strategy, reader->ReadU8());
  if (strategy > static_cast<uint8_t>(
                     triage::SheddingStrategy::kDataTriage)) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: unknown shedding strategy tag %d", strategy));
  }
  config.strategy = static_cast<triage::SheddingStrategy>(strategy);
  DT_ASSIGN_OR_RETURN(const uint8_t synopsis_type, reader->ReadU8());
  if (synopsis_type > static_cast<uint8_t>(synopsis::SynopsisType::kExact)) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: unknown synopsis type tag %d", synopsis_type));
  }
  config.synopsis.type =
      static_cast<synopsis::SynopsisType>(synopsis_type);
  DT_ASSIGN_OR_RETURN(config.synopsis.grid.cell_width,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.synopsis.mhist.max_buckets,
                      reader->ReadU64());
  DT_ASSIGN_OR_RETURN(config.synopsis.mhist.aligned, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(config.synopsis.mhist.alignment_step,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.synopsis.reservoir.capacity,
                      reader->ReadU64());
  DT_ASSIGN_OR_RETURN(config.synopsis.reservoir.seed, reader->ReadU64());
  DT_ASSIGN_OR_RETURN(config.synopsis.avi.cell_width,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.synopsis.vectorized_exec,
                      reader->ReadBool());
  DT_ASSIGN_OR_RETURN(config.queue_capacity, reader->ReadU64());
  DT_ASSIGN_OR_RETURN(const uint8_t drop_policy, reader->ReadU8());
  if (drop_policy >
      static_cast<uint8_t>(triage::DropPolicyKind::kUtility)) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: unknown drop policy tag %d", drop_policy));
  }
  config.drop_policy = static_cast<triage::DropPolicyKind>(drop_policy);
  DT_ASSIGN_OR_RETURN(config.synergistic_candidates, reader->ReadU64());
  DT_ASSIGN_OR_RETURN(config.cost_model.exact_tuple_cost,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.cost_model.synopsis_insert_cost,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.cost_model.exact_work_unit_cost,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.cost_model.synopsis_work_unit_cost,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.cost_model.emission_overhead,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.cost_model.delay_factor,
                      reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(config.seed, reader->ReadU64());
  DT_ASSIGN_OR_RETURN(config.vectorized_exec, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(config.vectorized_min_rows, reader->ReadU64());
  DT_ASSIGN_OR_RETURN(config.memory_budget_bytes, reader->ReadU64());
  return config;
}

}  // namespace datatriage::server
