#ifndef DATATRIAGE_SERVER_WORKER_POOL_H_
#define DATATRIAGE_SERVER_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/server/parallel.h"

namespace datatriage::server {

/// Post-run accounting of one worker, read after Drain()/Stop() only.
/// tasks/busy_seconds are written by the worker thread and published by
/// its executed-counter release store; queue_depth_hwm is owned by the
/// dispatching thread outright.
struct WorkerPoolStats {
  int64_t tasks = 0;
  /// Wall-clock seconds spent executing tasks (not idling). Wall time is
  /// observability-only — everything deterministic runs on virtual
  /// clocks — so this is the one place the server reads a real clock.
  double busy_seconds = 0.0;
  int64_t queue_depth_hwm = 0;
};

/// Fixed pool of worker threads, one bounded SPSC task queue each, fed
/// by a single dispatching thread (the StreamServer's ingest thread).
/// Sessions are statically sharded across workers (WorkerForSession);
/// the pool itself is policy-free — callers pick the worker index.
///
/// Error model: task execution is asynchronous, so a failing task cannot
/// fail the Push that enqueued it. Workers record the first error per
/// session; Drain()/Stop() surface the error of the lowest-id errored
/// session (a deterministic choice — thread timing never picks the
/// winner), and the dispatcher can poll error_seen() to fail fast
/// between pushes. A session that has errored has its remaining tasks
/// skipped, mirroring how a serial run would have stopped at the first
/// failure.
class WorkerPool {
 public:
  /// Starts `workers` (>= 1) threads, each with a task ring of at least
  /// `queue_capacity` slots.
  WorkerPool(size_t workers, size_t queue_capacity);

  /// Stops and joins outstanding workers (draining their queues first).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues `task` on `worker`'s ring, blocking (yield loop) while the
  /// ring is full. Must only be called from the single dispatching
  /// thread, and not after Stop().
  void Dispatch(size_t worker, WorkerTask task);

  /// Simulation hook (SimFaults::dispatch_yield_every): when `every_n`
  /// is > 0 the dispatching thread yields after every N enqueued tasks,
  /// perturbing thread interleavings without touching any virtual clock.
  void SetDispatchYield(uint64_t every_n) { dispatch_yield_every_ = every_n; }

  /// Barrier: blocks until every dispatched task has executed, walking
  /// workers in index order. Returns the deterministic first error (see
  /// class comment), OK when no task failed.
  Status Drain();

  /// Drain() + shut the threads down and join them. Idempotent; the
  /// pool cannot be restarted.
  Status Stop();

  /// True once any task has failed; cheap enough for per-push polling.
  bool error_seen() const {
    return error_seen_.load(std::memory_order_acquire);
  }

  /// The error of the lowest-id errored session; OK when none.
  Status first_error() const;

  size_t size() const { return workers_.size(); }

  /// Valid after Drain()/Stop() (the barrier publishes the counters).
  WorkerPoolStats stats(size_t worker) const;

 private:
  struct Worker {
    explicit Worker(size_t queue_capacity) : queue(queue_capacity) {}
    SpscTaskQueue queue;
    std::thread thread;
    /// Tasks completed; release-stored after each task so the
    /// dispatcher's acquire load in Drain() publishes busy_seconds and
    /// tasks below along with it.
    alignas(64) std::atomic<uint64_t> executed{0};
    // Consumer-side accounting (worker thread only until the barrier).
    double busy_seconds = 0.0;
    int64_t tasks = 0;
    // Producer-side accounting (dispatching thread only).
    uint64_t enqueued = 0;
    int64_t depth_hwm = 0;
  };

  void RunWorker(Worker* worker);
  Status ExecuteTask(const WorkerTask& task);
  void RecordError(uint32_t session_id, Status status);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool joined_ = false;

  // Dispatching-thread-only yield fault state (see SetDispatchYield).
  uint64_t dispatch_yield_every_ = 0;
  uint64_t dispatched_since_yield_ = 0;

  mutable std::mutex error_mutex_;
  /// First error per session id; min key wins at the barrier.
  std::map<uint32_t, Status> errors_;
  std::atomic<bool> error_seen_{false};
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_WORKER_POOL_H_
