#ifndef DATATRIAGE_SERVER_QUERY_SESSION_H_
#define DATATRIAGE_SERVER_QUERY_SESSION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mem_accounting.h"
#include "src/common/result.h"
#include "src/engine/config.h"
#include "src/engine/merge.h"
#include "src/engine/window_result.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rewrite/data_triage_rewrite.h"
#include "src/server/ingest.h"

namespace datatriage::exec {
class TaskPool;
}  // namespace datatriage::exec

namespace datatriage::serde {
class Writer;
class Reader;
}  // namespace datatriage::serde

namespace datatriage::server {

using SessionId = uint32_t;

/// Per-session lifecycle (DESIGN.md §14). A session is kActive from
/// RegisterQuery until UnregisterQuery detaches its lanes; a detached
/// session is drained (Finish ran) and keeps serving results, stats, and
/// metrics reads but receives no further arrivals.
enum class SessionLifecycle {
  kActive,
  kDetached,
};

std::string_view SessionLifecycleToString(SessionLifecycle lifecycle);

/// One bound continuous query hosted by a StreamServer: the exact plan,
/// shadow plan, merge state, window sink, per-session obs registry, and
/// the session's virtual processing clock. The session consumes arrivals
/// from its StreamLanes in the shared IngestPlane; all per-query state
/// lives here, all per-stream ingest state lives in the plane.
///
/// Determinism contract: a session's results, stats, metrics, and trace
/// are a function of (its query, its config, the event subsequence on its
/// streams) only — co-hosted sessions cannot perturb each other. That is
/// what makes a Q-session server byte-equivalent to Q standalone engines
/// (tests/stream_server_test.cc).
class QuerySession {
 public:
  using WindowSink = std::function<void(engine::WindowResult&&)>;

  /// Rewrites `query` for Data Triage and wires the session's lanes into
  /// `plane`. `config` must already be validated.
  static Result<std::unique_ptr<QuerySession>> Make(
      SessionId id, IngestPlane* plane, plan::BoundQuery query,
      engine::EngineConfig config);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Delivers one validated arrival from the ingest plane. `lane` must be
  /// one of this session's lanes.
  Status Ingest(StreamLane* lane, const Tuple& tuple);

  /// Drains the session's lanes and emits every remaining window
  /// (through the window sink when one is set).
  Status Finish();

  /// Moves out the results emitted so far (in window order). Empty when a
  /// window sink is installed — the sink already consumed them.
  std::vector<engine::WindowResult> TakeResults();

  /// Streaming results API: `sink` is invoked once per window, at
  /// emission time on the session's virtual clock, in window order —
  /// exactly the windows (content and order) that TakeResults() would
  /// have buffered. Results already buffered when the sink is installed
  /// are flushed through it immediately. Pass nullptr to return to
  /// buffered delivery.
  void SetWindowSink(WindowSink sink);

  /// Copies the run accounting plus the obs registry totals (counters
  /// and gauge high-watermarks) into one value.
  engine::EngineStatsSnapshot StatsSnapshot() const;

  /// Session-local metrics registry (counters/gauges/histograms), updated
  /// while a run is in flight. Names are unscoped (DESIGN.md Sec. 9.2);
  /// server-level exports prefix them with "session.<id>." (Sec. 10).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Per-window emission trace, in emission order.
  const obs::WindowTraceRecorder& trace() const { return trace_; }
  const rewrite::TriagedQuery& triaged_query() const { return triaged_; }
  /// Window range (span length).
  VirtualDuration window_seconds() const { return window_seconds_; }
  /// Hop between consecutive windows; equals window_seconds() for
  /// tumbling windows.
  VirtualDuration window_slide_seconds() const { return window_slide_; }
  SessionId id() const { return id_; }

  /// True when `name` is one of the query's FROM streams.
  bool ReadsStream(std::string_view name) const {
    return lanes_by_name_.find(name) != lanes_by_name_.end();
  }

  SessionLifecycle lifecycle() const { return lifecycle_; }
  /// Marks the session detached. Called by the server after Finish, once
  /// the session's lanes have been removed from routing.
  void MarkDetached() { lifecycle_ = SessionLifecycle::kDetached; }

  /// The SQL text the session was registered with; empty when it was
  /// registered from an already-bound query (such sessions cannot be
  /// snapshotted — the snapshot re-binds from SQL on restore).
  const std::string& sql() const { return sql_; }
  void set_sql(std::string sql) { sql_ = std::move(sql); }

  const engine::EngineConfig& config() const { return config_; }

  /// Memory-budget plumbing (DESIGN.md §15). The session always accounts
  /// its state bytes (window buffers, triage queues, synopses, merge
  /// transients); enforcement only engages when the effective budget is
  /// nonzero.
  const mem::SessionAccount& memory_account() const { return account_; }
  /// Forwards every session charge into the server-wide accountant.
  /// Called by the server at registration, before any arrival.
  void SetServerAccountant(mem::MemoryAccountant* accountant) {
    account_.SetServerAccountant(accountant);
  }
  /// This session's share of the server-wide budget (0 = no server
  /// budget). Recomputed by the server whenever the live-session count
  /// changes; the effective budget is the tighter of this and
  /// config().memory_budget_bytes.
  void SetServerBudgetShare(size_t bytes);
  size_t EffectiveMemoryBudget() const;

  /// Intra-session operator parallelism (DESIGN.md §16.2): window
  /// evaluation splits join/aggregation work into morsels run on `pool`
  /// when a relation reaches `parallel_min_rows` rows. The partials
  /// merge deterministically, so results stay byte-identical to the
  /// serial path — the pool is a throughput knob only. Pass nullptr to
  /// stay serial. Called by the server before the session's first
  /// arrival (or at mid-stream registration).
  void SetTaskPool(exec::TaskPool* pool, size_t parallel_min_rows) {
    task_pool_ = pool;
    parallel_min_rows_ = parallel_min_rows;
  }

  /// Mid-stream registration (DESIGN.md §14): admits events from `t` on
  /// by stamping every lane's admission horizon. Must be called before
  /// the session sees any arrival.
  void SetEffectiveFrom(VirtualTime t);
  /// The admission horizon; -inf for sessions registered before the
  /// first push.
  VirtualTime effective_from() const { return effective_from_; }

  /// Session-snapshot hooks (DESIGN.md §14): everything the session's
  /// future behavior and exports depend on beyond (SQL, config) — both
  /// clock states, window bookkeeping, per-lane queue/synopsis/buffer
  /// state, buffered results, the trace, and the metrics registry.
  /// LoadState expects a freshly Made session for the same (SQL, config)
  /// and overwrites its state in place; the registry is restored last so
  /// gauge writes during lane restore are corrected to absolute values.
  void SaveState(serde::Writer* writer) const;
  Status LoadState(serde::Reader* reader);

 private:
  QuerySession(SessionId id, rewrite::TriagedQuery triaged,
               engine::EngineConfig config);

  Status Init(IngestPlane* plane);

  /// Advances the session clock to `until`, interleaving queued-tuple
  /// processing with window emissions whose deadlines pass.
  Status ProcessUntil(VirtualTime until);

  /// True if any lane's queue holds a tuple.
  bool HasQueuedTuple() const;

  /// Pops and processes the queued tuple with the earliest timestamp.
  Status ProcessOneQueuedTuple();

  /// Routes a fully shed tuple (it will never be processed) according to
  /// the strategy: it counts as dropped for every not-yet-emitted window
  /// covering it.
  Status ShedTuple(StreamLane* lane, const Tuple& tuple);

  /// Marks a still-queued tuple as dropped *for one window* whose
  /// deadline arrived before the session reached the tuple; it may yet be
  /// kept for later windows (sliding-window case).
  Status ShedTupleForWindow(StreamLane* lane, const Tuple& tuple,
                            WindowId window);

  /// Windows covering `t` that have not been emitted yet.
  WindowSpan PendingWindowsFor(VirtualTime t) const;

  Status EmitWindow(WindowId window);

  /// Hands a finished window to the sink (when set) or the result buffer.
  void DeliverResult(engine::WindowResult&& result);

  /// Resolves the session-level and per-stream instruments from metrics_
  /// and attaches the queue/synopsizer hooks. Called once from Init.
  void InitInstruments();

  /// Registers the budget-only instruments (mem.boundary_over_budget,
  /// mem.invariant_violations, stream.*.dropped.memory_shed). Idempotent;
  /// called the first time the session runs with a nonzero budget so
  /// unbudgeted metric exports stay byte-identical.
  void EnsureMemoryInstruments();

  /// Memory-triggered triage (the paper's second overload trigger): while
  /// the session is over its effective budget and a foldable window
  /// remains, fold the coldest buffered window — LRU by last-append
  /// arrival timestamp, ties broken by stream name then window id — into
  /// its dropped synopsis. Runs at the end of Ingest and EmitWindow.
  Status MaybeShedForMemory();

  /// Folds kept_buffers[window] of `lane` into the window's dropped
  /// synopsis: every folded tuple counts as dropped for that window;
  /// tuples whose *last* covering window this is flip from kept to
  /// dropped globally under the memory_shed cause (earlier sliding
  /// windows may still keep their copies).
  Status FoldWindowForMemory(StreamLane* lane, WindowId window);

  /// True when some lane still buffers a not-yet-emitted window.
  bool HasFoldableWindow() const;

  /// Double-entry audit at a window boundary (budgeted sessions only):
  /// recomputes ground-truth bytes from the owners and compares against
  /// the account; also flags a boundary left over budget with foldable
  /// state remaining. Violations increment counters the sim oracle
  /// asserts are zero.
  void CheckMemoryBoundary();

  void ChargeSynopsisTime(double seconds) {
    session_time_ += seconds;
    stats_.synopsis_work_seconds += seconds;
  }
  /// Per-stream variant: also gauges the lane's synopsis build time.
  void ChargeSynopsisTime(StreamLane* lane, double seconds) {
    ChargeSynopsisTime(seconds);
    if (lane->synopsis_build_seconds != nullptr) {
      lane->synopsis_build_seconds->Add(seconds);
    }
  }
  void ChargeExactTime(double seconds) {
    session_time_ += seconds;
    stats_.exact_work_seconds += seconds;
  }

  SessionId id_;
  rewrite::TriagedQuery triaged_;
  engine::EngineConfig config_;
  engine::AggregationSpec agg_spec_;  // valid when the query aggregates

  /// This session's lanes, keyed (and iterated) by stream name so
  /// queue-drain tie-breaking and per-window emission walk streams in the
  /// same deterministic order the single-query engine always used. The
  /// lanes themselves are owned by the ingest plane.
  std::map<std::string, StreamLane*, std::less<>> lanes_by_name_;
  VirtualDuration window_seconds_ = 1.0;  // range
  VirtualDuration window_slide_ = 1.0;    // hop (== range when tumbling)

  /// The session's processing clock: charged for this session's exact,
  /// synopsis, and emission work only. Arrival timestamps come from the
  /// plane's shared arrival clock, so overload on a feed pushes every
  /// consuming session past the same deadlines.
  VirtualTime session_time_ = 0.0;
  bool saw_arrival_ = false;
  WindowId next_window_to_emit_ = 0;
  WindowId last_window_seen_ = -1;

  std::vector<engine::WindowResult> results_;
  WindowSink sink_;
  engine::EngineStats stats_;

  /// Shared morsel pool (owned by the server); null in serial mode.
  exec::TaskPool* task_pool_ = nullptr;
  size_t parallel_min_rows_ = 0;

  /// Per-session byte account (DESIGN.md §15): single-writer, exact,
  /// and the enforcement input for memory-triggered triage.
  mem::SessionAccount account_;
  size_t server_budget_share_ = 0;
  bool finished_ = false;
  SessionLifecycle lifecycle_ = SessionLifecycle::kActive;
  std::string sql_;
  VirtualTime effective_from_ =
      -std::numeric_limits<VirtualTime>::infinity();

  // --- Observability (src/obs/). The registry owns every metric; the
  // pointers below are hot-path handles resolved once in Init.
  obs::MetricsRegistry metrics_;
  obs::WindowTraceRecorder trace_;
  obs::Counter* ingested_counter_ = nullptr;
  obs::Counter* kept_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* windows_counter_ = nullptr;
  obs::Counter* exec_scanned_ = nullptr;
  obs::Counter* exec_output_ = nullptr;
  obs::Counter* exec_probes_ = nullptr;
  obs::Counter* exec_build_inserts_ = nullptr;
  obs::Counter* exec_comparisons_ = nullptr;
  obs::Counter* shadow_work_ = nullptr;
  obs::Histogram* emission_latency_ = nullptr;
  /// Budget-only self-check counters; null until the first nonzero
  /// budget (see EnsureMemoryInstruments).
  obs::Counter* mem_over_budget_ = nullptr;
  obs::Counter* mem_invariant_violations_ = nullptr;
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_QUERY_SESSION_H_
