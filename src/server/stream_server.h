#ifndef DATATRIAGE_SERVER_STREAM_SERVER_H_
#define DATATRIAGE_SERVER_STREAM_SERVER_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/mem_accounting.h"
#include "src/common/result.h"
#include "src/engine/config.h"
#include "src/server/ingest.h"
#include "src/server/query_session.h"
#include "src/exec/task_pool.h"
#include "src/server/snapshot.h"
#include "src/server/task_scheduler.h"

namespace datatriage::server {

/// Coarse server phase. The transitions are one-way:
/// kRegistering --first Push/PushBatch--> kStreaming --Finish--> kFinished.
/// The phase gates only what is sealed: pushing and registering both end
/// at kFinished, and results/metrics accessors are meaningful once
/// kFinished (in parallel mode, safe only then — workers may still be
/// executing while kStreaming). Query membership is NOT gated by the
/// phase: sessions have their own lifecycle (SessionLifecycle, DESIGN.md
/// §14) and may register, unregister, snapshot, and restore while the
/// server is kRegistering or kStreaming.
enum class ServerState { kRegistering, kStreaming, kFinished };

/// "kRegistering" / "kStreaming" / "kFinished", for error messages.
std::string_view ServerStateName(ServerState state);

/// Multi-query facade over one shared ingest plane (paper Fig. 1 scaled
/// out: one triage queue per data source *per consumer*, one boundary per
/// feed). Register queries — up front or mid-stream — push one
/// interleaved event feed, and read each session's results and stats
/// independently:
///
///   StreamServer server(catalog, {.scheduler = {.worker_threads = 4}});
///   auto a = server.RegisterQuery(sql_a, config_a);
///   server.PushBatch(morning_events);
///   auto b = server.RegisterQuery(sql_b, config_b);  // joins live
///   server.PushBatch(afternoon_events);
///   server.UnregisterQuery(*a);                      // drains + detaches
///   server.Finish();
///   for (WindowResult& r : server.session(*b).TakeResults()) ...
///
/// Each session's output is byte-identical to a standalone
/// ContinuousQueryEngine run of the same (query, config) over the same
/// events — co-hosting shares the ingest boundary (name resolution,
/// validation, routing), never the per-query triage state — and that
/// holds for every SchedulerOptions setting (worker count, dispatch
/// mode, intra-session threads): each session's tasks live in one FIFO
/// ring consumed in feed order by exactly one worker at a time, and
/// morsel-parallel operators merge their partials deterministically
/// (DESIGN.md Sec. 11, Sec. 16).
///
/// Mid-stream lifecycle (DESIGN.md §14): a query registered at arrival
/// time t observes exactly the windows whose span starts on or after the
/// next window boundary after t — byte-identical to a standalone engine
/// fed that suffix of the feed. UnregisterQuery drains the session
/// (emitting its in-flight windows) before detaching its lanes; the
/// detached session keeps serving results, stats, and metrics.
/// SnapshotSession/RestoreSession round-trip a session through a sealed,
/// versioned byte format for migration and recovery.
class StreamServer {
 public:
  explicit StreamServer(Catalog catalog,
                        engine::StreamServerOptions options = {});

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  ~StreamServer();

  /// Parses, binds, rewrites, and hosts one continuous query. Legal while
  /// kRegistering or kStreaming — FailedPrecondition once kFinished. A
  /// query registered mid-stream (after arrivals) is stamped with an
  /// admission horizon at the next window boundary of its own slide after
  /// the arrival clock, so it observes exactly the whole-window suffix of
  /// the feed (DESIGN.md §14) and its results stay byte-identical to a
  /// standalone engine fed that suffix.
  Result<SessionId> RegisterQuery(const std::string& query_sql,
                                  engine::EngineConfig config);
  Result<SessionId> RegisterQuery(plan::BoundQuery query,
                                  engine::EngineConfig config);

  /// Drains `id` — its queued tuples are processed or shed and every
  /// in-flight window emits, exactly as Finish would — then detaches its
  /// lanes from routing and marks it kDetached. The session object stays
  /// owned by the server: results, stats, metrics, and trace remain
  /// readable. NotFound for an unknown id; FailedPrecondition when the
  /// session is already detached or the server is finished. In parallel
  /// mode the pool is drained first, so the detach is quiescent.
  Status UnregisterQuery(SessionId id);

  /// Serializes session `id` into a sealed, versioned byte format
  /// (src/server/snapshot.h): SQL, config, plane clock, window buffers,
  /// triage-queue contents, synopses, drop-RNG state, results, trace, and
  /// metrics — everything needed for RestoreSession to resume the session
  /// byte-identically on this or another server over the same catalog.
  /// NotFound for an unknown id; FailedPrecondition for a detached
  /// session or one registered from an already-bound query (restore
  /// re-binds from SQL). Non-invasive: the donor session is unchanged.
  Result<SessionSnapshot> SnapshotSession(SessionId id);

  /// Rebuilds a session from `snapshot` under a fresh dense id, restoring
  /// its full state and fast-forwarding this server's arrival clock to at
  /// least the donor's. The restored session's future output is
  /// byte-identical to the donor's had it kept running.
  /// FailedPrecondition once kFinished; InvalidArgument for a corrupt,
  /// truncated, or version-skewed snapshot.
  Result<SessionId> RestoreSession(const SessionSnapshot& snapshot);

  /// Resolves a stream name to its interned id ahead of pushing, so hot
  /// ingest loops can use the id overload of Push and skip per-event
  /// name hashing entirely.
  Result<StreamId> InternStream(std::string_view name);

  /// Installs deterministic fault injection (simulation testing only —
  /// DESIGN.md Sec. 12). Legal only while kRegistering with no sessions
  /// yet registered, so every lane and counter is wired consistently;
  /// `faults` must outlive the server. Production servers never call
  /// this and carry no fault state.
  Status SetSimFaults(const SimFaults* faults);

  /// Delivers one arrival to every session reading its stream. Events
  /// must have finite, non-decreasing timestamps; violations return
  /// InvalidArgument and leave every session untouched. The first push
  /// moves the server to kStreaming (starting the task scheduler and
  /// morsel pool when configured); pushing on a finished server, or with
  /// zero live sessions, is FailedPrecondition.
  Status Push(const engine::StreamEvent& event);
  Status Push(StreamId stream, const Tuple& tuple);

  /// Batched ingest: timestamps are validated once over the whole batch
  /// before any event is ingested (an invalid timestamp anywhere rejects
  /// the batch atomically), and stream routing is memoized across runs
  /// of same-stream events. For valid input the result is byte-identical
  /// to pushing the events one by one — PushBatch is the amortization,
  /// not a semantic variant.
  Status PushBatch(std::span<const engine::StreamEvent> events);

  /// Drains every session (in parallel mode: on a scheduler worker, with
  /// a deterministic session-ordered barrier before returning), emits
  /// all remaining windows, and joins the scheduler. Idempotent.
  Status Finish();

  ServerState state() const { return state_; }

  /// All sessions ever hosted, attached or detached (ids are dense in
  /// [0, session_count())).
  size_t session_count() const { return sessions_.size(); }

  /// Sessions currently attached to routing (lifecycle kActive). Pushing
  /// with zero live sessions is FailedPrecondition — the whole feed would
  /// be dropped on the floor.
  size_t live_session_count() const;

  /// The session behind `id` (results, sink, stats, metrics, trace).
  /// Ids are dense: 0 <= id < session_count(). CHECK-fails on an
  /// out-of-range id — use FindSession when the id is not trusted.
  QuerySession& session(SessionId id);
  const QuerySession& session(SessionId id) const;

  /// Bounds-checked lookup: NotFound (naming the valid range) instead of
  /// a crash when `id` is stale or from another server. The pointer is
  /// owned by the server and valid for its lifetime.
  Result<QuerySession*> FindSession(SessionId id);
  Result<const QuerySession*> FindSession(SessionId id) const;

  /// Plane-level ingest metrics (server.events_pushed, ...; after a
  /// parallel Finish also server.worker.<k>.tasks / .busy_seconds /
  /// .queue_depth).
  const obs::MetricsRegistry& server_metrics() const {
    return plane_.metrics();
  }

  /// Server-wide memory accountant (DESIGN.md §15): every session charge
  /// is mirrored here, so TotalBytes/PeakBytes aggregate the whole
  /// server's accounted state. The server-wide budget
  /// (StreamServerOptions::memory_budget_bytes) is split evenly across
  /// live sessions; each share is recomputed whenever the live-session
  /// count changes.
  const mem::MemoryAccountant& memory_accountant() const {
    return accountant_;
  }

  /// Combined deterministic JSON export: the plane's registry under
  /// "server", then one entry per session whose metric names are scoped
  /// with the "session.<id>." prefix (DESIGN.md Sec. 10). Single-session
  /// callers that need the legacy schema should export the session's
  /// registry directly with obs::MetricsJson. Note the worker gauges in
  /// the "server" section carry wall-clock readings — per-session
  /// sections stay deterministic, the server section is deterministic
  /// only with scheduler.worker_threads == 0.
  std::string MetricsJson() const;

 private:
  /// Moves kRegistering -> kStreaming on the first push and, when the
  /// effective scheduler has worker_threads > 0, starts the TaskScheduler
  /// (and the intra-session morsel pool when intra_session_threads > 1)
  /// and installs the plane dispatcher (the worker count is fixed here;
  /// sessions registered later home onto the existing workers). Rejects
  /// pushes on a finished server or with zero live sessions, and surfaces
  /// any error a worker recorded since the previous push.
  Status EnsureStreaming();

  /// Quiesces the scheduler (barrier over every dispatched task) so
  /// lifecycle operations can touch session state on this thread. No-op
  /// in serial mode.
  Status Quiesce();

  /// Bumps the plane-registry counter session.<id>.lifecycle.<event>.
  /// Lifecycle counters live in the plane registry — not the session's —
  /// so a session's own metrics stay byte-identical to a standalone
  /// engine run.
  void CountLifecycleEvent(SessionId id, std::string_view event);

  /// Folds the scheduler's post-barrier accounting into the plane
  /// registry as server.worker.<k>.* instruments.
  void FlushWorkerMetrics();

  /// Re-splits the server-wide memory budget across the live sessions
  /// (budget / live count, floored, at least 1 byte). Callers must have
  /// quiesced the pool first — shares are read on the owning workers.
  void RecomputeBudgetShares();

  engine::StreamServerOptions options_;
  IngestPlane plane_;
  mem::MemoryAccountant accountant_;
  std::vector<std::unique_ptr<QuerySession>> sessions_;
  ServerState state_ = ServerState::kRegistering;
  /// Inter-session dispatch: per-session task rings + worker threads.
  std::unique_ptr<TaskScheduler> scheduler_;
  /// Intra-session morsel helpers, shared by every session; null unless
  /// scheduler.intra_session_threads > 1.
  std::unique_ptr<exec::TaskPool> task_pool_;
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_STREAM_SERVER_H_
