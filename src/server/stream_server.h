#ifndef DATATRIAGE_SERVER_STREAM_SERVER_H_
#define DATATRIAGE_SERVER_STREAM_SERVER_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/config.h"
#include "src/server/ingest.h"
#include "src/server/query_session.h"
#include "src/server/worker_pool.h"

namespace datatriage::server {

/// Explicit server lifecycle. The transitions are one-way:
/// kRegistering --first Push/PushBatch--> kStreaming --Finish--> kFinished.
/// RegisterQuery is legal only while kRegistering; Push/PushBatch are
/// legal until kFinished; results/metrics accessors are meaningful once
/// kFinished (and, in parallel mode, safe only then — workers may still
/// be executing while kStreaming).
enum class ServerState { kRegistering, kStreaming, kFinished };

/// "kRegistering" / "kStreaming" / "kFinished", for error messages.
std::string_view ServerStateName(ServerState state);

/// Multi-query facade over one shared ingest plane (paper Fig. 1 scaled
/// out: one triage queue per data source *per consumer*, one boundary per
/// feed). Register every query up front, push one interleaved event feed,
/// and read each session's results and stats independently:
///
///   StreamServer server(catalog, {.worker_threads = 4});
///   auto a = server.RegisterQuery(sql_a, config_a);
///   auto b = server.RegisterQuery(sql_b, config_b);
///   server.PushBatch(events);
///   server.Finish();
///   for (WindowResult& r : server.session(*a).TakeResults()) ...
///
/// Each session's output is byte-identical to a standalone
/// ContinuousQueryEngine run of the same (query, config) over the same
/// events — co-hosting shares the ingest boundary (name resolution,
/// validation, routing), never the per-query triage state — and that
/// holds for every worker_threads setting: sessions are statically
/// sharded across the pool, so each one is still consumed in feed order
/// by a single thread (DESIGN.md Sec. 11).
class StreamServer {
 public:
  explicit StreamServer(Catalog catalog,
                        engine::StreamServerOptions options = {});

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  ~StreamServer();

  /// Parses, binds, rewrites, and hosts one continuous query. Legal only
  /// in state kRegistering (before the first push) — FailedPrecondition
  /// otherwise.
  Result<SessionId> RegisterQuery(const std::string& query_sql,
                                  engine::EngineConfig config);
  Result<SessionId> RegisterQuery(plan::BoundQuery query,
                                  engine::EngineConfig config);

  /// Resolves a stream name to its interned id ahead of pushing, so hot
  /// ingest loops can use the id overload of Push and skip per-event
  /// name hashing entirely.
  Result<StreamId> InternStream(std::string_view name);

  /// Installs deterministic fault injection (simulation testing only —
  /// DESIGN.md Sec. 12). Legal only while kRegistering with no sessions
  /// yet registered, so every lane and counter is wired consistently;
  /// `faults` must outlive the server. Production servers never call
  /// this and carry no fault state.
  Status SetSimFaults(const SimFaults* faults);

  /// Delivers one arrival to every session reading its stream. Events
  /// must have finite, non-decreasing timestamps; violations return
  /// InvalidArgument and leave every session untouched. The first push
  /// (even a failing one) moves the server to kStreaming and seals
  /// registration; pushing on a finished server is FailedPrecondition.
  Status Push(const engine::StreamEvent& event);
  Status Push(StreamId stream, const Tuple& tuple);

  /// Batched ingest: timestamps are validated once over the whole batch
  /// before any event is ingested (an invalid timestamp anywhere rejects
  /// the batch atomically), and stream routing is memoized across runs
  /// of same-stream events. For valid input the result is byte-identical
  /// to pushing the events one by one — PushBatch is the amortization,
  /// not a semantic variant.
  Status PushBatch(std::span<const engine::StreamEvent> events);

  /// Drains every session (in parallel mode: on its owning worker, with
  /// a deterministic session-ordered barrier before returning), emits
  /// all remaining windows, and joins the pool. Idempotent.
  Status Finish();

  ServerState state() const { return state_; }
  [[deprecated("use state() == ServerState::kFinished")]] bool finished()
      const {
    return state_ == ServerState::kFinished;
  }

  size_t session_count() const { return sessions_.size(); }

  /// The session behind `id` (results, sink, stats, metrics, trace).
  /// Ids are dense: 0 <= id < session_count(). CHECK-fails on an
  /// out-of-range id — use FindSession when the id is not trusted.
  QuerySession& session(SessionId id);
  const QuerySession& session(SessionId id) const;

  /// Bounds-checked lookup: NotFound (naming the valid range) instead of
  /// a crash when `id` is stale or from another server. The pointer is
  /// owned by the server and valid for its lifetime.
  Result<QuerySession*> FindSession(SessionId id);
  Result<const QuerySession*> FindSession(SessionId id) const;

  /// Plane-level ingest metrics (server.events_pushed, ...; after a
  /// parallel Finish also server.worker.<k>.tasks / .busy_seconds /
  /// .queue_depth).
  const obs::MetricsRegistry& server_metrics() const {
    return plane_.metrics();
  }

  /// Combined deterministic JSON export: the plane's registry under
  /// "server", then one entry per session whose metric names are scoped
  /// with the "session.<id>." prefix (DESIGN.md Sec. 10). Single-session
  /// callers that need the legacy schema should export the session's
  /// registry directly with obs::MetricsJson. Note the worker gauges in
  /// the "server" section carry wall-clock readings — per-session
  /// sections stay deterministic, the server section is deterministic
  /// only at worker_threads == 0.
  std::string MetricsJson() const;

 private:
  /// Moves kRegistering -> kStreaming on the first push: seals
  /// registration and, when worker_threads > 0, starts the pool and
  /// installs the plane dispatcher. Also surfaces any error a worker
  /// recorded since the previous push (FailedPrecondition on kFinished).
  Status EnsureStreaming();

  /// Folds the pool's post-barrier accounting into the plane registry
  /// as server.worker.<k>.* instruments.
  void FlushWorkerMetrics();

  engine::StreamServerOptions options_;
  IngestPlane plane_;
  std::vector<std::unique_ptr<QuerySession>> sessions_;
  ServerState state_ = ServerState::kRegistering;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_STREAM_SERVER_H_
