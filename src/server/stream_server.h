#ifndef DATATRIAGE_SERVER_STREAM_SERVER_H_
#define DATATRIAGE_SERVER_STREAM_SERVER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/config.h"
#include "src/server/ingest.h"
#include "src/server/query_session.h"

namespace datatriage::server {

/// Multi-query facade over one shared ingest plane (paper Fig. 1 scaled
/// out: one triage queue per data source *per consumer*, one boundary per
/// feed). Register every query up front, push one interleaved event feed,
/// and read each session's results and stats independently:
///
///   StreamServer server(catalog);
///   auto a = server.RegisterQuery(sql_a, config_a);
///   auto b = server.RegisterQuery(sql_b, config_b);
///   for (const StreamEvent& e : events) server.Push(e);
///   server.Finish();
///   for (WindowResult& r : server.session(*a).TakeResults()) ...
///
/// Each session's output is byte-identical to a standalone
/// ContinuousQueryEngine run of the same (query, config) over the same
/// events — co-hosting shares the ingest boundary (name resolution,
/// validation, routing), never the per-query triage state.
class StreamServer {
 public:
  explicit StreamServer(Catalog catalog);

  StreamServer(const StreamServer&) = delete;
  StreamServer& operator=(const StreamServer&) = delete;

  /// Parses, binds, rewrites, and hosts one continuous query. All
  /// registration must happen before the first Push.
  Result<SessionId> RegisterQuery(const std::string& query_sql,
                                  engine::EngineConfig config);
  Result<SessionId> RegisterQuery(plan::BoundQuery query,
                                  engine::EngineConfig config);

  /// Resolves a stream name to its interned id ahead of pushing, so hot
  /// ingest loops can use the id overload of Push and skip per-event
  /// name hashing entirely.
  Result<StreamId> InternStream(std::string_view name);

  /// Delivers one arrival to every session reading its stream. Events
  /// must have finite, non-decreasing timestamps; violations return
  /// InvalidArgument and leave every session untouched.
  Status Push(const engine::StreamEvent& event);
  Status Push(StreamId stream, const Tuple& tuple);

  /// Drains every session's lanes and emits all remaining windows.
  /// Idempotent.
  Status Finish();
  bool finished() const { return finished_; }

  size_t session_count() const { return sessions_.size(); }

  /// The session behind `id` (results, sink, stats, metrics, trace).
  /// Ids are dense: 0 <= id < session_count().
  QuerySession& session(SessionId id);
  const QuerySession& session(SessionId id) const;

  /// Plane-level ingest metrics (server.events_pushed, ...).
  const obs::MetricsRegistry& server_metrics() const {
    return plane_.metrics();
  }

  /// Combined deterministic JSON export: the plane's registry under
  /// "server", then one entry per session whose metric names are scoped
  /// with the "session.<id>." prefix (DESIGN.md Sec. 10). Single-session
  /// callers that need the legacy schema should export the session's
  /// registry directly with obs::MetricsJson.
  std::string MetricsJson() const;

 private:
  IngestPlane plane_;
  std::vector<std::unique_ptr<QuerySession>> sessions_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_STREAM_SERVER_H_
