#include "src/server/parallel.h"

#include <utility>

#include "src/common/logging.h"

namespace datatriage::server {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SpscTaskQueue::SpscTaskQueue(size_t min_capacity) {
  DT_CHECK(min_capacity > 0);
  slots_.resize(NextPowerOfTwo(min_capacity));
  mask_ = slots_.size() - 1;
}

bool SpscTaskQueue::TryPush(WorkerTask&& task) {
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  const uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head == slots_.size()) return false;  // full
  slots_[tail & mask_] = std::move(task);
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool SpscTaskQueue::TryPop(WorkerTask* out) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head == tail) return false;  // empty
  *out = std::move(slots_[head & mask_]);
  head_.store(head + 1, std::memory_order_release);
  return true;
}

}  // namespace datatriage::server
