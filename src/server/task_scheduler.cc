#include "src/server/task_scheduler.h"

#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/server/ingest.h"
#include "src/server/query_session.h"
#include "src/server/sim_faults.h"

namespace datatriage::server {

namespace {

/// Bounded spin before parking: rings stay hot under load (the pop/push
/// succeeds within a few tries), and an idle worker backs off to a short
/// sleep instead of burning its core.
constexpr int kSpinsBeforeSleep = 64;
constexpr std::chrono::microseconds kIdleSleep{50};

}  // namespace

size_t WorkerForSessionFaulted(uint32_t session_id, size_t workers,
                               const SimFaults* faults) {
  if (faults == nullptr || workers == 0) {
    return WorkerForSession(session_id, workers);
  }
  switch (faults->sharding) {
    case SimFaults::Sharding::kModulo:
      return WorkerForSession(session_id, workers);
    case SimFaults::Sharding::kSingleWorker:
      return 0;
    case SimFaults::Sharding::kReversed:
      return workers - 1 - WorkerForSession(session_id, workers);
  }
  return WorkerForSession(session_id, workers);
}

TaskScheduler::TaskScheduler(engine::DispatchMode dispatch, size_t workers,
                             size_t queue_capacity)
    : dispatch_(dispatch), queue_capacity_(queue_capacity) {
  DT_CHECK(workers > 0);
  depth_hwm_.assign(workers, 0);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Spawn only after the vector is fully built: workers never touch
  // their siblings, but the spawn loop must not reallocate under them.
  for (size_t k = 0; k < workers; ++k) {
    workers_[k]->thread = std::thread([this, k] { RunWorker(k); });
  }
}

TaskScheduler::~TaskScheduler() { Stop(); }

void TaskScheduler::AddSession(uint32_t session_id, size_t home_worker) {
  DT_CHECK(!joined_) << "TaskScheduler::AddSession after Stop";
  DT_CHECK(home_worker < workers_.size());
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  DT_CHECK(session_id == sessions_.size())
      << "session ids must arrive dense and in order";
  sessions_.push_back(std::make_unique<SessionQueue>(
      session_id, queue_capacity_, home_worker));
  generation_.fetch_add(1, std::memory_order_release);
}

void TaskScheduler::RefreshProducerView() {
  if (generation_.load(std::memory_order_acquire) == producer_generation_) {
    return;
  }
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  producer_generation_ = generation_.load(std::memory_order_relaxed);
  producer_view_.clear();
  producer_view_.reserve(sessions_.size());
  for (const std::unique_ptr<SessionQueue>& q : sessions_) {
    producer_view_.push_back(q.get());
  }
}

void TaskScheduler::Dispatch(uint32_t session_id, WorkerTask task) {
  DT_CHECK(!joined_) << "TaskScheduler::Dispatch after Stop";
  RefreshProducerView();
  DT_CHECK(session_id < producer_view_.size());
  SessionQueue& q = *producer_view_[session_id];
  const uint64_t enqueued = q.enqueued.load(std::memory_order_relaxed);
  if (dispatch_ == engine::DispatchMode::kLeastLoaded &&
      enqueued == q.executed.load(std::memory_order_acquire)) {
    // Empty→non-empty transition: re-home onto the worker with the
    // fewest outstanding tasks (ties to the lowest index). A hint, not
    // a lock — the claim protocol keeps consumption serialized even if
    // the old home is still mid-scan.
    std::vector<uint64_t> load(workers_.size(), 0);
    for (const SessionQueue* s : producer_view_) {
      load[s->home.load(std::memory_order_relaxed)] +=
          s->enqueued.load(std::memory_order_relaxed) -
          s->executed.load(std::memory_order_relaxed);
    }
    size_t best = 0;
    for (size_t w = 1; w < load.size(); ++w) {
      if (load[w] < load[best]) best = w;
    }
    q.home.store(best, std::memory_order_relaxed);
  }
  while (!q.queue.TryPush(std::move(task))) {
    // Full ring: the consumer is behind. Backpressure the feed rather
    // than dropping — shedding is the triage queues' job.
    std::this_thread::yield();
  }
  q.enqueued.store(enqueued + 1, std::memory_order_release);
  const int64_t depth = static_cast<int64_t>(
      enqueued + 1 - q.executed.load(std::memory_order_relaxed));
  const size_t home = q.home.load(std::memory_order_relaxed);
  if (depth > depth_hwm_[home]) depth_hwm_[home] = depth;
  if (dispatch_yield_every_ > 0 &&
      ++dispatched_since_yield_ >= dispatch_yield_every_) {
    dispatched_since_yield_ = 0;
    std::this_thread::yield();
  }
}

Status TaskScheduler::Drain() {
  // Session-ordered barrier: wait rings out in id order. The order only
  // affects which ring is waited on first — completion of all of them
  // is what the barrier guarantees — but walking a fixed order (and
  // picking the min-session error below) keeps everything the caller
  // observes independent of thread timing.
  RefreshProducerView();
  for (SessionQueue* q : producer_view_) {
    int spins = 0;
    while (q->executed.load(std::memory_order_acquire) !=
           q->enqueued.load(std::memory_order_relaxed)) {
      if (++spins < kSpinsBeforeSleep) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kIdleSleep);
      }
    }
  }
  return first_error();
}

Status TaskScheduler::Stop() {
  if (joined_) return first_error();
  Status drained = Drain();
  stop_.store(true, std::memory_order_release);
  for (std::unique_ptr<Worker>& worker : workers_) {
    worker->thread.join();
  }
  joined_ = true;
  return drained;
}

Status TaskScheduler::first_error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (errors_.empty()) return Status::OK();
  return errors_.begin()->second;
}

TaskWorkerStats TaskScheduler::stats(size_t worker) const {
  DT_CHECK(worker < workers_.size());
  TaskWorkerStats out;
  out.tasks = workers_[worker]->tasks;
  out.busy_seconds = workers_[worker]->busy_seconds;
  out.queue_depth_hwm = depth_hwm_[worker];
  return out;
}

void TaskScheduler::RecordError(uint32_t session_id, Status status) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    errors_.emplace(session_id, std::move(status));  // first error wins
  }
  error_seen_.store(true, std::memory_order_release);
}

Status TaskScheduler::ExecuteTask(const WorkerTask& task) {
  switch (task.kind) {
    case WorkerTask::Kind::kIngest:
      return task.lane->session->Ingest(task.lane, task.tuple);
    case WorkerTask::Kind::kFinish:
      return task.session->Finish();
  }
  return Status::Internal("unknown worker task kind");
}

bool TaskScheduler::DrainSession(Worker* w, SessionQueue* q) {
  using clock = std::chrono::steady_clock;
  bool any = false;
  WorkerTask task;
  while (q->queue.TryPop(&task)) {
    any = true;
    if (!q->errored.load(std::memory_order_relaxed)) {
      const clock::time_point start = clock::now();
      Status status = ExecuteTask(task);
      w->busy_seconds +=
          std::chrono::duration<double>(clock::now() - start).count();
      if (!status.ok()) {
        // Skip the session's remaining tasks, the way a serial run
        // would have stopped at the first error.
        q->errored.store(true, std::memory_order_relaxed);
        RecordError(q->id, std::move(status));
      }
    }
    ++w->tasks;
    // Publishes the task's side effects (session state, the counters
    // above) to Drain()'s acquire load and to the next claimant.
    q->executed.fetch_add(1, std::memory_order_release);
  }
  return any;
}

void TaskScheduler::RunWorker(size_t k) {
  Worker* self = workers_[k].get();
  std::vector<SessionQueue*> view;
  uint64_t seen_generation = 0;
  int spins = 0;
  const bool steal = dispatch_ == engine::DispatchMode::kStealing;
  for (;;) {
    if (generation_.load(std::memory_order_acquire) != seen_generation) {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      seen_generation = generation_.load(std::memory_order_relaxed);
      view.clear();
      view.reserve(sessions_.size());
      for (const std::unique_ptr<SessionQueue>& q : sessions_) {
        view.push_back(q.get());
      }
    }
    bool did_work = false;
    for (SessionQueue* q : view) {
      // Static and least-loaded workers scan only their homed rings; a
      // stealing worker scans every ring and claims any with pending
      // tasks (its own home rings first, by scan order).
      if (!steal && q->home.load(std::memory_order_relaxed) != k) continue;
      if (q->executed.load(std::memory_order_relaxed) ==
          q->enqueued.load(std::memory_order_acquire)) {
        continue;
      }
      bool expected = false;
      // Acquire pairs with the previous claimant's release: the ring's
      // consumer cursor and the session's single-threaded state are
      // fully visible before any task runs here.
      if (!q->claimed.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        continue;
      }
      did_work |= DrainSession(self, q);
      q->claimed.store(false, std::memory_order_release);
    }
    if (did_work) {
      spins = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (++spins < kSpinsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

}  // namespace datatriage::server
