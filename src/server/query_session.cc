#include "src/server/query_session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/serde.h"
#include "src/common/string_util.h"
#include "src/exec/evaluator.h"
#include "src/rewrite/shadow_plan.h"
#include "src/synopsis/serde.h"
#include "src/tuple/serde.h"

namespace datatriage::server {

using engine::WindowResult;
using triage::SheddingStrategy;

std::string_view SessionLifecycleToString(SessionLifecycle lifecycle) {
  switch (lifecycle) {
    case SessionLifecycle::kActive:
      return "kActive";
    case SessionLifecycle::kDetached:
      return "kDetached";
  }
  return "?";
}

Result<std::unique_ptr<QuerySession>> QuerySession::Make(
    SessionId id, IngestPlane* plane, plan::BoundQuery query,
    engine::EngineConfig config) {
  DT_ASSIGN_OR_RETURN(rewrite::TriagedQuery triaged,
                      rewrite::RewriteForDataTriage(std::move(query)));
  if (!triaged.plus_is_empty &&
      config.strategy != SheddingStrategy::kDropOnly) {
    return Status::Unimplemented(
        "queries whose differential plus-plan is non-empty (EXCEPT) "
        "cannot run with synopsis-based shedding");
  }
  auto session = std::unique_ptr<QuerySession>(
      new QuerySession(id, std::move(triaged), std::move(config)));
  DT_RETURN_IF_ERROR(session->Init(plane));
  return session;
}

QuerySession::QuerySession(SessionId id, rewrite::TriagedQuery triaged,
                           engine::EngineConfig config)
    : id_(id), triaged_(std::move(triaged)), config_(std::move(config)) {
  // The shadow algebra's exact synopses follow the executor's mode so a
  // session is either fully vectorized or fully scalar.
  config_.synopsis.vectorized_exec = config_.vectorized_exec;
}

Status QuerySession::Init(IngestPlane* plane) {
  const plan::BoundQuery& query = triaged_.query;
  if (query.from_streams.empty()) {
    return Status::InvalidArgument("query reads no streams");
  }
  // Uniform windows: the session emits one composite result per window,
  // so all streams must agree on the window range and slide (as in the
  // paper's experiments).
  window_seconds_ = query.window_seconds.begin()->second;
  for (const auto& [stream, seconds] : query.window_seconds) {
    if (seconds != window_seconds_) {
      return Status::Unimplemented(
          "the engine requires one window length across all streams "
          "of a query");
    }
  }
  window_slide_ = window_seconds_;
  if (!query.window_slide_seconds.empty()) {
    window_slide_ = query.window_slide_seconds.begin()->second;
    for (const auto& [stream, slide] : query.window_slide_seconds) {
      if (slide != window_slide_) {
        return Status::Unimplemented(
            "the engine requires one window slide across all streams "
            "of a query");
      }
    }
  }
  if (window_slide_ <= 0) {
    return Status::InvalidArgument("window slide must be positive");
  }
  if (query.has_aggregate) {
    DT_ASSIGN_OR_RETURN(agg_spec_, engine::MakeAggregationSpec(query));
  }

  // The utility drop policy needs the MATCH pattern to score against;
  // Subscribe rejects kUtility when no spec is available (non-MATCH
  // queries).
  triage::UtilityPatternSpec utility_spec;
  const triage::UtilityPatternSpec* utility_spec_ptr = nullptr;
  if (query.is_pattern() &&
      config_.drop_policy == triage::DropPolicyKind::kUtility) {
    utility_spec.steps = query.pattern_node->pattern_steps();
    utility_spec.key_index = query.pattern_node->pattern_key_index();
    utility_spec.within_seconds =
        query.pattern_node->pattern_within_seconds();
    utility_spec_ptr = &utility_spec;
  }

  // Lanes are created (and drop-policy Rngs forked) in FROM-clause order,
  // matching the single-query engine's seeding exactly.
  Rng seeder(config_.seed);
  for (const std::string& stream : query.from_streams) {
    if (lanes_by_name_.count(stream) > 0) continue;  // self-join: one lane
    DT_ASSIGN_OR_RETURN(
        StreamLane * lane,
        plane->Subscribe(this, stream, config_, window_seconds_,
                         window_slide_, &seeder, utility_spec_ptr));
    lanes_by_name_.emplace(stream, lane);
  }
  InitInstruments();
  return Status::OK();
}

void QuerySession::InitInstruments() {
  // Byte accounting is always on (the mem.*.bytes gauges and their
  // high-watermarks are part of every export); only the enforcement
  // counters are budget-gated.
  account_.BindGauges(&metrics_);
  ingested_counter_ = metrics_.GetCounter("engine.tuples_ingested");
  kept_counter_ = metrics_.GetCounter("engine.tuples_kept");
  dropped_counter_ = metrics_.GetCounter("engine.tuples_dropped");
  windows_counter_ = metrics_.GetCounter("engine.windows_emitted");
  exec_scanned_ = metrics_.GetCounter("exec.tuples_scanned");
  exec_output_ = metrics_.GetCounter("exec.tuples_output");
  exec_probes_ = metrics_.GetCounter("exec.join_probes");
  exec_build_inserts_ = metrics_.GetCounter("exec.join_build_inserts");
  exec_comparisons_ = metrics_.GetCounter("exec.comparisons");
  shadow_work_ = metrics_.GetCounter("shadow.work_units");
  // Latency past the emission deadline, in virtual seconds. The floor is
  // the emission overhead (~2e-4 s); heavy backlog pushes emissions whole
  // windows late, hence the wide top end.
  emission_latency_ = metrics_.GetHistogram(
      "engine.emission_latency_seconds",
      {0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
       1.0, 2.0, 5.0});

  for (auto& [name, lane] : lanes_by_name_) {
    const std::string prefix = "stream." + name;
    if (lane->queue != nullptr) {
      lane->queue->SetAccount(&account_);
      triage::QueueInstruments queue_instruments;
      queue_instruments.depth =
          metrics_.GetGauge(prefix + ".queue_depth");
      // Utility-shed victims get their own drop cause: the conservation
      // oracle partitions dropped tuples over stream.*.dropped.*, so the
      // rename folds in without any oracle change.
      queue_instruments.policy_evicted = metrics_.GetCounter(
          prefix +
          (config_.drop_policy == triage::DropPolicyKind::kUtility
               ? ".dropped.utility_shed"
               : ".dropped.policy_evicted"));
      queue_instruments.force_evicted =
          metrics_.GetCounter(prefix + ".dropped.force_shed");
      lane->queue->SetInstruments(queue_instruments);
    }
    if (lane->synopsizer != nullptr) {
      lane->synopsizer->SetAccount(&account_);
      triage::SynopsizerInstruments synopsizer_instruments;
      synopsizer_instruments.kept_folded =
          metrics_.GetCounter(prefix + ".synopsis.kept_folded");
      synopsizer_instruments.dropped_folded =
          metrics_.GetCounter(prefix + ".synopsis.dropped_folded");
      lane->synopsizer->SetInstruments(synopsizer_instruments);
      lane->synopsis_build_seconds =
          metrics_.GetGauge(prefix + ".synopsis.build_seconds");
    }
    if (config_.strategy == SheddingStrategy::kSummarizeOnly) {
      lane->summarized_dropped =
          metrics_.GetCounter(prefix + ".dropped.summarized");
    }
    if (lane->sim_faults != nullptr) {
      // Fault-injected sheds get their own cause so the drop-cause
      // partition invariant (dropped == sum of stream.*.dropped.*) holds
      // under injection too. Only registered when faults are installed:
      // production exports stay byte-identical.
      lane->fault_shed =
          metrics_.GetCounter(prefix + ".dropped.fault_shed");
    }
  }
  if (config_.memory_budget_bytes > 0) EnsureMemoryInstruments();
}

void QuerySession::EnsureMemoryInstruments() {
  if (mem_over_budget_ != nullptr) return;
  // Self-check counters (asserted zero by the sim accounting oracle) and
  // the memory_shed drop cause. Registered only for budgeted sessions so
  // unbudgeted metric exports are byte-identical to earlier versions.
  mem_over_budget_ = metrics_.GetCounter("mem.boundary_over_budget");
  mem_invariant_violations_ =
      metrics_.GetCounter("mem.invariant_violations");
  for (auto& [name, lane] : lanes_by_name_) {
    lane->memory_shed =
        metrics_.GetCounter("stream." + name + ".dropped.memory_shed");
  }
}

void QuerySession::SetServerBudgetShare(size_t bytes) {
  server_budget_share_ = bytes;
  if (bytes > 0) EnsureMemoryInstruments();
}

size_t QuerySession::EffectiveMemoryBudget() const {
  size_t budget = config_.memory_budget_bytes;
  if (server_budget_share_ > 0 &&
      (budget == 0 || server_budget_share_ < budget)) {
    budget = server_budget_share_;
  }
  return budget;
}

Status QuerySession::Ingest(StreamLane* lane, const Tuple& tuple) {
  DT_CHECK(lane->session == this);
  const VirtualTime arrival = tuple.timestamp();
  const WindowSpan covering =
      CoveringWindows(arrival, window_seconds_, window_slide_);
  if (!saw_arrival_) {
    saw_arrival_ = true;
    next_window_to_emit_ =
        covering.empty() ? covering.last : covering.first;
    if (next_window_to_emit_ < 0) next_window_to_emit_ = 0;
  }
  last_window_seen_ =
      std::max(last_window_seen_,
               std::max(covering.last, static_cast<WindowId>(0)));

  DT_RETURN_IF_ERROR(ProcessUntil(arrival));

  ++stats_.tuples_ingested;
  ingested_counter_->Add(1);
  if (lane->sim_faults != nullptr) {
    // Simulation fault hooks (sim_faults.h). Decisions depend only on
    // the arrival timestamp and session-local state, so they replay
    // identically at every worker count.
    const SimFaults& faults = *lane->sim_faults;
    if (faults.stall_seconds > 0.0 && arrival >= faults.stall_from &&
        arrival < faults.stall_to) {
      // Delayed consumer: bill the stall as exact-path work.
      ChargeExactTime(faults.stall_seconds);
    }
    if (faults.force_overflow &&
        config_.strategy != SheddingStrategy::kSummarizeOnly &&
        arrival >= faults.overflow_from && arrival < faults.overflow_to) {
      // Forced overflow: the arrival never reaches the queue — shed it
      // through the normal victim path under the fault_shed cause.
      lane->fault_shed->Add(1);
      DT_RETURN_IF_ERROR(ShedTuple(lane, tuple));
      return MaybeShedForMemory();
    }
  }
  if (config_.strategy == SheddingStrategy::kSummarizeOnly) {
    // Summarize-only bypasses the triage queue entirely (paper
    // Sec. 5.2.1): every tuple is folded into the window synopses.
    ++stats_.tuples_dropped;
    dropped_counter_->Add(1);
    lane->summarized_dropped->Add(1);
    for (WindowId w = std::max(covering.first, next_window_to_emit_);
         w <= covering.last; ++w) {
      DT_RETURN_IF_ERROR(lane->synopsizer->AddDroppedToWindow(tuple, w));
      ChargeSynopsisTime(lane, config_.cost_model.synopsis_insert_cost);
      lane->dropped_counts[w] += 1;
    }
    return MaybeShedForMemory();
  }
  std::optional<Tuple> victim = lane->queue->Push(tuple);
  if (victim.has_value()) {
    DT_RETURN_IF_ERROR(ShedTuple(lane, *victim));
  }
  return MaybeShedForMemory();
}

Status QuerySession::ShedTuple(StreamLane* lane, const Tuple& tuple) {
  ++stats_.tuples_dropped;
  dropped_counter_->Add(1);
  const WindowSpan pending = PendingWindowsFor(tuple.timestamp());
  for (WindowId w = pending.first; w <= pending.last; ++w) {
    DT_RETURN_IF_ERROR(ShedTupleForWindow(lane, tuple, w));
  }
  return Status::OK();
}

Status QuerySession::ShedTupleForWindow(StreamLane* lane,
                                        const Tuple& tuple,
                                        WindowId window) {
  lane->dropped_counts[window] += 1;
  if (config_.strategy == SheddingStrategy::kDataTriage ||
      config_.strategy == SheddingStrategy::kSummarizeOnly) {
    DT_RETURN_IF_ERROR(lane->synopsizer->AddDroppedToWindow(tuple, window));
    ChargeSynopsisTime(lane, config_.cost_model.synopsis_insert_cost);
  }
  // Drop-only: the tuple is discarded; only the count remains.
  return Status::OK();
}

WindowSpan QuerySession::PendingWindowsFor(VirtualTime t) const {
  WindowSpan span = CoveringWindows(t, window_seconds_, window_slide_);
  span.first = std::max(span.first, next_window_to_emit_);
  return span;
}

bool QuerySession::HasQueuedTuple() const {
  for (const auto& [name, lane] : lanes_by_name_) {
    if (!lane->queue->empty()) return true;
  }
  return false;
}

Status QuerySession::ProcessOneQueuedTuple() {
  StreamLane* best = nullptr;
  VirtualTime best_time = std::numeric_limits<double>::infinity();
  for (auto& [name, lane] : lanes_by_name_) {
    if (lane->queue->empty()) continue;
    if (lane->queue->Front().timestamp() < best_time) {
      best_time = lane->queue->Front().timestamp();
      best = lane;
    }
  }
  DT_CHECK(best != nullptr);
  Tuple tuple = best->queue->PopFront();
  ++stats_.tuples_kept;
  kept_counter_->Add(1);
  ChargeExactTime(config_.cost_model.exact_tuple_cost);
  // The tuple becomes a kept tuple of every covering window that has not
  // yet emitted (windows whose deadline already passed counted it as
  // dropped at their emission).
  const WindowSpan pending = PendingWindowsFor(tuple.timestamp());
  const size_t tuple_bytes = mem::TupleBytes(tuple);
  const VirtualTime touch = tuple.timestamp();
  for (WindowId w = pending.first; w <= pending.last; ++w) {
    if (config_.strategy == SheddingStrategy::kDataTriage) {
      // Data Triage also synopsizes kept tuples so the shadow plan can
      // join dropped data against them (paper Sec. 5.1).
      DT_RETURN_IF_ERROR(best->synopsizer->AddKeptToWindow(tuple, w));
      ChargeSynopsisTime(best, config_.cost_model.synopsis_insert_cost);
    }
    account_.Charge(mem::Component::kWindowBuffers, tuple_bytes);
    best->buffer_touch[w] = touch;
    // The last covering window takes the tuple by move (the common
    // tumbling-window case copies nothing); earlier sliding windows copy.
    if (w == pending.last) {
      best->kept_buffers[w].push_back(std::move(tuple));
    } else {
      best->kept_buffers[w].push_back(tuple);
    }
  }
  return Status::OK();
}

bool QuerySession::HasFoldableWindow() const {
  for (const auto& [name, lane] : lanes_by_name_) {
    if (!lane->buffer_touch.empty()) return true;
  }
  return false;
}

Status QuerySession::MaybeShedForMemory() {
  const size_t budget = EffectiveMemoryBudget();
  if (budget == 0) return Status::OK();
  EnsureMemoryInstruments();
  while (account_.TotalBytes() > budget) {
    // Coldest foldable window: least recently appended-to by arrival
    // timestamp; lanes iterate in stream-name order and windows in id
    // order, so the strict `<` breaks ties by (touch, stream, window) —
    // fully deterministic, never wall-clock.
    StreamLane* coldest_lane = nullptr;
    WindowId coldest_window = 0;
    VirtualTime coldest_touch =
        std::numeric_limits<VirtualTime>::infinity();
    for (auto& [name, lane] : lanes_by_name_) {
      for (const auto& [window, touched] : lane->buffer_touch) {
        if (window < next_window_to_emit_) continue;
        if (touched < coldest_touch) {
          coldest_touch = touched;
          coldest_lane = lane;
          coldest_window = window;
        }
      }
    }
    // Nothing left to fold: the remaining bytes are irreducible state
    // (queue capacity is bounded; synopses cannot shrink). The loop
    // terminates because each fold erases one buffered window.
    if (coldest_lane == nullptr) break;
    DT_RETURN_IF_ERROR(
        FoldWindowForMemory(coldest_lane, coldest_window));
  }
  return Status::OK();
}

Status QuerySession::FoldWindowForMemory(StreamLane* lane,
                                         WindowId window) {
  auto it = lane->kept_buffers.find(window);
  DT_CHECK(it != lane->kept_buffers.end());
  exec::Relation rows = std::move(it->second);
  lane->kept_buffers.erase(it);
  lane->buffer_touch.erase(window);
  account_.Release(mem::Component::kWindowBuffers,
                   mem::RelationBytes(rows));
  for (const Tuple& tuple : rows) {
    // For this window the tuple is now a dropped tuple: it is counted
    // (and, under synopsizing strategies, folded) exactly like a tuple
    // the deadline overran. Its kept copies in earlier sliding windows
    // are untouched.
    DT_RETURN_IF_ERROR(ShedTupleForWindow(lane, tuple, window));
    const WindowSpan covering = CoveringWindows(
        tuple.timestamp(), window_seconds_, window_slide_);
    if (covering.last == window) {
      // This was the tuple's final covering window, so it can no longer
      // reach any exact plan: flip it from kept to dropped globally
      // under the memory_shed cause. The conservation invariant
      // (ingested == kept + dropped) and the drop-cause partition both
      // stay exact.
      --stats_.tuples_kept;
      ++stats_.tuples_dropped;
      kept_counter_->Add(-1);
      dropped_counter_->Add(1);
      lane->memory_shed->Add(1);
    }
  }
  return Status::OK();
}

void QuerySession::CheckMemoryBoundary() {
  const size_t budget = EffectiveMemoryBudget();
  if (budget == 0) return;
  EnsureMemoryInstruments();
  // MaybeShedForMemory only stops while over budget when nothing is
  // foldable; a boundary that is over budget *with* foldable state left
  // means enforcement failed.
  if (account_.TotalBytes() > budget && HasFoldableWindow()) {
    mem_over_budget_->Add(1);
  }
  // Double-entry audit: recompute ground truth from the owners and
  // compare against the account. Merge transients must have drained
  // (ScopedCharge) by every boundary.
  size_t queue_bytes = 0;
  size_t synopsis_bytes = 0;
  size_t buffer_bytes = 0;
  for (const auto& [name, lane] : lanes_by_name_) {
    if (lane->queue != nullptr) {
      queue_bytes += lane->queue->MemoryBytes();
    }
    if (lane->synopsizer != nullptr) {
      synopsis_bytes += lane->synopsizer->MemoryBytes();
    }
    for (const auto& [window, relation] : lane->kept_buffers) {
      buffer_bytes += mem::RelationBytes(relation);
    }
  }
  if (queue_bytes != account_.bytes(mem::Component::kTriageQueues) ||
      synopsis_bytes != account_.bytes(mem::Component::kSynopses) ||
      buffer_bytes != account_.bytes(mem::Component::kWindowBuffers) ||
      account_.bytes(mem::Component::kMergeState) != 0) {
    mem_invariant_violations_->Add(1);
  }
}

Status QuerySession::ProcessUntil(VirtualTime until) {
  while (true) {
    // Emission takes priority once the session clock passes a deadline.
    if (next_window_to_emit_ <= last_window_seen_) {
      const VirtualTime deadline = config_.cost_model.EmissionDeadline(
          next_window_to_emit_, window_seconds_, window_slide_);
      if (session_time_ >= deadline) {
        DT_RETURN_IF_ERROR(EmitWindow(next_window_to_emit_));
        ++next_window_to_emit_;
        continue;
      }
    }
    if (session_time_ >= until) break;
    if (HasQueuedTuple()) {
      DT_RETURN_IF_ERROR(ProcessOneQueuedTuple());
      continue;
    }
    // Idle: jump the clock to the next interesting instant.
    VirtualTime target = until;
    if (next_window_to_emit_ <= last_window_seen_) {
      target = std::min(
          target, config_.cost_model.EmissionDeadline(
                      next_window_to_emit_, window_seconds_,
                      window_slide_));
    }
    session_time_ = target;
    if (session_time_ >= until) break;
  }
  return Status::OK();
}

Status QuerySession::EmitWindow(WindowId window) {
  const plan::BoundQuery& query = triaged_.query;
  const VirtualTime span_start =
      WindowSpanStart(window, window_seconds_, window_slide_);
  const VirtualTime span_end =
      WindowSpanEnd(window, window_seconds_, window_slide_);

  obs::WindowTraceRecord trace_record;
  trace_record.window = window;
  trace_record.deadline = config_.cost_model.EmissionDeadline(
      window, window_seconds_, window_slide_);

  // Account for window tuples the session did not reach before the
  // deadline. Tuples covering no window after this one are force-shed
  // for good; tuples that also belong to later (sliding) windows count
  // as dropped for this window but stay queued — they may still be kept
  // for the windows ahead.
  const VirtualTime final_cutoff =
      static_cast<double>(window + 1) * window_slide_;
  for (auto& [name, lane] : lanes_by_name_) {
    std::vector<Tuple> force_shed =
        lane->queue->EvictOlderThan(final_cutoff);
    trace_record.force_shed_by_stream[name] =
        static_cast<int64_t>(force_shed.size());
    for (Tuple& tuple : force_shed) {
      DT_RETURN_IF_ERROR(ShedTuple(lane, tuple));
    }
    if (window_slide_ < window_seconds_) {
      StreamLane* lane_ptr = lane;
      Status shed_status;
      lane->queue->ForEach([&](const Tuple& tuple) {
        if (!shed_status.ok()) return;
        if (tuple.timestamp() >= span_start &&
            tuple.timestamp() < span_end) {
          shed_status = ShedTupleForWindow(lane_ptr, tuple, window);
        }
      });
      DT_RETURN_IF_ERROR(shed_status);
    }
  }

  WindowResult result;
  result.window = window;

  // Exact side: evaluate the kept plan over this window's buffers.
  exec::RelationProvider kept_inputs;
  for (auto& [name, lane] : lanes_by_name_) {
    auto it = lane->kept_buffers.find(window);
    if (it != lane->kept_buffers.end()) {
      account_.Release(mem::Component::kWindowBuffers,
                       mem::RelationBytes(it->second));
      result.kept_tuples += static_cast<int64_t>(it->second.size());
      kept_inputs[exec::ChannelKey{name, plan::Channel::kKept}] =
          std::move(it->second);
      lane->kept_buffers.erase(it);
      lane->buffer_touch.erase(window);
    }
    auto dropped_it = lane->dropped_counts.find(window);
    if (dropped_it != lane->dropped_counts.end()) {
      result.dropped_tuples += dropped_it->second;
      lane->dropped_counts.erase(dropped_it);
    }
  }
  // Aggregate queries need the raw SPJ rows for the merge accumulators;
  // non-aggregate queries evaluate their full output plan (projection or
  // computed projection included).
  const plan::LogicalPlan& exact_plan =
      query.has_aggregate ? *triaged_.kept_plan
                          : *triaged_.kept_output_plan;
  exec::ExecStats exec_stats;
  DT_ASSIGN_OR_RETURN(
      exec::Relation kept_rows,
      exec::EvaluatePlan(exact_plan, kept_inputs, &exec_stats,
                         exec::EvalOptions{config_.vectorized_exec,
                                           config_.vectorized_min_rows,
                                           task_pool_,
                                           parallel_min_rows_}));
  ChargeExactTime(static_cast<double>(exec_stats.TotalWork()) *
                  config_.cost_model.exact_work_unit_cost);
  // Roll this window's executor accounting into the registry.
  exec_scanned_->Add(exec_stats.tuples_scanned);
  exec_output_->Add(exec_stats.tuples_output);
  exec_probes_->Add(exec_stats.join_probes);
  exec_build_inserts_->Add(exec_stats.join_build_inserts);
  exec_comparisons_->Add(exec_stats.comparisons);
  trace_record.exact_work_units = exec_stats.TotalWork();

  // Shadow side: evaluate the dropped plan over the window's synopses.
  synopsis::SynopsisPtr shadow_result;
  if (config_.strategy != SheddingStrategy::kDropOnly) {
    rewrite::SynopsisProvider synopses;
    std::vector<synopsis::SynopsisPtr> owned;
    for (auto& [name, lane] : lanes_by_name_) {
      triage::WindowSynopsizer::WindowSynopses window_synopses =
          lane->synopsizer->TakeWindow(window);
      if (window_synopses.kept != nullptr) {
        synopses[exec::ChannelKey{name, plan::Channel::kKept}] =
            window_synopses.kept.get();
        owned.push_back(std::move(window_synopses.kept));
      }
      if (window_synopses.dropped != nullptr) {
        synopses[exec::ChannelKey{name, plan::Channel::kDropped}] =
            window_synopses.dropped.get();
        owned.push_back(std::move(window_synopses.dropped));
      }
    }
    synopsis::OpStats op_stats;
    DT_ASSIGN_OR_RETURN(
        shadow_result,
        rewrite::EvaluateShadowPlan(*triaged_.dropped_plan, synopses,
                                    config_.synopsis, &op_stats));
    ChargeSynopsisTime(static_cast<double>(op_stats.work) *
                       config_.cost_model.synopsis_work_unit_cost);
    shadow_work_->Add(op_stats.work);
    trace_record.shadow_work_units = op_stats.work;
  }

  // Merge (paper Fig. 2): exact rows + estimated lost results.
  if (query.has_aggregate) {
    synopsis::GroupedEstimate exact_groups =
        engine::AccumulateExact(kept_rows, agg_spec_,
                                config_.vectorized_exec, &account_);
    DT_ASSIGN_OR_RETURN(
        result.exact_rows,
        engine::BuildAggregateRows(exact_groups, query, agg_spec_,
                           /*exact_types=*/true));
    synopsis::GroupedEstimate merged = exact_groups;
    if (shadow_result != nullptr) {
      DT_ASSIGN_OR_RETURN(
          result.shadow_estimate,
          shadow_result->EstimateGroups(agg_spec_.group_columns,
                                        agg_spec_.agg_columns));
      engine::MergeGroupedEstimates(&merged, result.shadow_estimate);
    }
    DT_ASSIGN_OR_RETURN(
        result.merged_rows,
        engine::BuildAggregateRows(merged, query, agg_spec_,
                           /*exact_types=*/false));
    if (query.having != nullptr) {
      auto apply_having = [&](exec::Relation* rows) {
        exec::Relation filtered;
        filtered.reserve(rows->size());
        for (Tuple& row : *rows) {
          if (query.having->EvaluatesToTrue(row)) {
            filtered.push_back(std::move(row));
          }
        }
        *rows = std::move(filtered);
      };
      apply_having(&result.exact_rows);
      apply_having(&result.merged_rows);
    }
  } else {
    // Non-aggregate query: exact rows come straight from the output
    // plan; the loss estimate is delivered as a synopsis over the output
    // columns (plain projections only — computed expressions have no
    // synopsis counterpart).
    result.exact_rows = kept_rows;
    result.merged_rows = std::move(kept_rows);
    // MATCH queries have no loss estimate: a dropped tuple invalidates
    // whole match subsequences, which a synopsis over single tuples
    // cannot represent (DESIGN.md §17).
    if (shadow_result != nullptr && !query.is_pattern() &&
        !query.computed_projection && !query.projection.empty()) {
      DT_ASSIGN_OR_RETURN(
          result.result_synopsis,
          shadow_result->ProjectColumns(query.projection,
                                        query.projection_names, nullptr));
    }
  }

  // Presentation: per-window ORDER BY and LIMIT (top-k results).
  if (!query.sort_keys.empty() || query.limit >= 0) {
    auto apply = [&](exec::Relation* rows) {
      if (!query.sort_keys.empty()) {
        std::stable_sort(
            rows->begin(), rows->end(),
            [&](const Tuple& a, const Tuple& b) {
              for (const auto& [index, descending] : query.sort_keys) {
                const Value& va = a.value(index);
                const Value& vb = b.value(index);
                if (va < vb) return !descending;
                if (vb < va) return descending;
              }
              return false;
            });
      }
      if (query.limit >= 0 &&
          rows->size() > static_cast<size_t>(query.limit)) {
        rows->resize(static_cast<size_t>(query.limit));
      }
    };
    apply(&result.exact_rows);
    apply(&result.merged_rows);
  }

  session_time_ += config_.cost_model.emission_overhead;
  result.emit_time = session_time_;
  ++stats_.windows_emitted;
  windows_counter_->Add(1);

  trace_record.emit_time = result.emit_time;
  trace_record.latency = result.emit_time - trace_record.deadline;
  trace_record.kept_tuples = result.kept_tuples;
  trace_record.dropped_tuples = result.dropped_tuples;
  trace_record.exact_rows = static_cast<int64_t>(result.exact_rows.size());
  trace_record.merged_rows =
      static_cast<int64_t>(result.merged_rows.size());
  emission_latency_->Observe(trace_record.latency);
  trace_.Record(std::move(trace_record));

  DeliverResult(std::move(result));
  // Emission freed this window's buffers but grew nothing foldable;
  // still re-check (sliding windows may leave later buffers over the
  // budget) and audit the account at the boundary.
  DT_RETURN_IF_ERROR(MaybeShedForMemory());
  CheckMemoryBoundary();
  return Status::OK();
}

void QuerySession::DeliverResult(WindowResult&& result) {
  if (sink_) {
    sink_(std::move(result));
  } else {
    results_.push_back(std::move(result));
  }
}

void QuerySession::SetWindowSink(WindowSink sink) {
  sink_ = std::move(sink);
  if (!sink_) return;
  // Flush anything buffered before the sink existed so the sink sees the
  // same windows, in the same order, as TakeResults() would have.
  std::vector<WindowResult> buffered = std::move(results_);
  results_.clear();
  for (WindowResult& result : buffered) {
    sink_(std::move(result));
  }
}

engine::EngineStatsSnapshot QuerySession::StatsSnapshot() const {
  engine::EngineStatsSnapshot snapshot;
  snapshot.core = stats_;
  // Mid-run snapshots report the clock as of now; Finish pins the final
  // value into stats_ and the two then agree.
  snapshot.core.final_engine_time = session_time_;
  snapshot.counters = metrics_.CounterTotals();
  metrics_.ForEachGauge(
      [&snapshot](const std::string& name, const obs::Gauge& gauge) {
        snapshot.gauges.emplace(name, gauge.value());
      });
  snapshot.gauge_maxima = metrics_.GaugeMaxima();
  return snapshot;
}

Status QuerySession::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (!saw_arrival_) return Status::OK();
  // Run the clock past the last window's deadline; ProcessUntil
  // interleaves the remaining processing and emissions.
  const VirtualTime last_deadline = config_.cost_model.EmissionDeadline(
      last_window_seen_, window_seconds_, window_slide_);
  DT_RETURN_IF_ERROR(
      ProcessUntil(last_deadline + window_seconds_));
  // The loop above stops once the clock passes the target; make sure
  // every window actually emitted (processing backlog may have pushed the
  // clock further).
  while (next_window_to_emit_ <= last_window_seen_) {
    DT_RETURN_IF_ERROR(EmitWindow(next_window_to_emit_));
    ++next_window_to_emit_;
  }
  // A clock that ran ahead of the arrivals (processing backlog, or a
  // pathological cost model) can emit a window before all of its tuples
  // arrive; those stragglers are still queued here, with every covering
  // window already emitted. Evict them as force-shed so the conservation
  // invariant (ingested == kept + dropped) holds at end of stream.
  for (auto& [name, lane] : lanes_by_name_) {
    (void)name;
    std::vector<Tuple> stragglers = lane->queue->EvictOlderThan(
        std::numeric_limits<VirtualTime>::infinity());
    for (Tuple& tuple : stragglers) {
      DT_RETURN_IF_ERROR(ShedTuple(lane, tuple));
    }
    // Stateful drop policies (kUtility) release their observed state so
    // the mem.triage_queues gauge drains to zero with the queues empty.
    lane->queue->ClearPolicyState();
  }
  stats_.final_engine_time = session_time_;
  return Status::OK();
}

std::vector<WindowResult> QuerySession::TakeResults() {
  return std::move(results_);
}

void QuerySession::SetEffectiveFrom(VirtualTime t) {
  DT_CHECK(!saw_arrival_)
      << "effective-from must be set before the first arrival";
  effective_from_ = t;
  for (auto& [name, lane] : lanes_by_name_) {
    (void)name;
    lane->admit_from = t;
  }
}

// ---------------------------------------------------------------------
// Session snapshot serialization (DESIGN.md §14).
// ---------------------------------------------------------------------

namespace {

void SaveRelation(serde::Writer* writer, const exec::Relation& rows) {
  writer->WriteU64(rows.size());
  for (const Tuple& t : rows) SaveTuple(writer, t);
}

Status LoadRelation(serde::Reader* reader, exec::Relation* rows) {
  DT_ASSIGN_OR_RETURN(const uint64_t size, reader->ReadCount(16));
  rows->clear();
  rows->reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    DT_ASSIGN_OR_RETURN(Tuple t, LoadTuple(reader));
    rows->push_back(std::move(t));
  }
  return Status::OK();
}

void SaveGroupedEstimate(serde::Writer* writer,
                         const synopsis::GroupedEstimate& estimate) {
  writer->WriteU64(estimate.size());
  for (const auto& [key, accumulators] : estimate) {
    writer->WriteU64(key.size());
    for (const Value& v : key) SaveValue(writer, v);
    writer->WriteU64(accumulators.size());
    for (const synopsis::AggAccumulator& acc : accumulators) {
      writer->WriteDouble(acc.count);
      writer->WriteDouble(acc.sum);
      writer->WriteDouble(acc.min);
      writer->WriteDouble(acc.max);
    }
  }
}

Status LoadGroupedEstimate(serde::Reader* reader,
                           synopsis::GroupedEstimate* estimate) {
  estimate->clear();
  DT_ASSIGN_OR_RETURN(const uint64_t groups, reader->ReadCount(16));
  for (uint64_t g = 0; g < groups; ++g) {
    DT_ASSIGN_OR_RETURN(const uint64_t key_size, reader->ReadCount(8));
    std::vector<Value> key;
    key.reserve(key_size);
    for (uint64_t i = 0; i < key_size; ++i) {
      DT_ASSIGN_OR_RETURN(Value v, LoadValue(reader));
      key.push_back(std::move(v));
    }
    DT_ASSIGN_OR_RETURN(const uint64_t num_accs, reader->ReadCount(32));
    std::vector<synopsis::AggAccumulator> accumulators(num_accs);
    for (uint64_t i = 0; i < num_accs; ++i) {
      DT_ASSIGN_OR_RETURN(accumulators[i].count, reader->ReadDouble());
      DT_ASSIGN_OR_RETURN(accumulators[i].sum, reader->ReadDouble());
      DT_ASSIGN_OR_RETURN(accumulators[i].min, reader->ReadDouble());
      DT_ASSIGN_OR_RETURN(accumulators[i].max, reader->ReadDouble());
    }
    estimate->emplace(std::move(key), std::move(accumulators));
  }
  return Status::OK();
}

void SaveWindowResult(serde::Writer* writer, const WindowResult& result) {
  writer->WriteI64(result.window);
  writer->WriteDouble(result.emit_time);
  SaveRelation(writer, result.exact_rows);
  SaveRelation(writer, result.merged_rows);
  SaveGroupedEstimate(writer, result.shadow_estimate);
  synopsis::SaveSynopsis(writer, result.result_synopsis.get());
  writer->WriteI64(result.kept_tuples);
  writer->WriteI64(result.dropped_tuples);
}

Status LoadWindowResult(serde::Reader* reader, WindowResult* result) {
  DT_ASSIGN_OR_RETURN(result->window, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(result->emit_time, reader->ReadDouble());
  DT_RETURN_IF_ERROR(LoadRelation(reader, &result->exact_rows));
  DT_RETURN_IF_ERROR(LoadRelation(reader, &result->merged_rows));
  DT_RETURN_IF_ERROR(LoadGroupedEstimate(reader, &result->shadow_estimate));
  DT_ASSIGN_OR_RETURN(result->result_synopsis,
                      synopsis::LoadSynopsis(reader));
  DT_ASSIGN_OR_RETURN(result->kept_tuples, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(result->dropped_tuples, reader->ReadI64());
  return Status::OK();
}

void SaveTraceRecord(serde::Writer* writer,
                     const obs::WindowTraceRecord& record) {
  writer->WriteI64(record.window);
  writer->WriteDouble(record.deadline);
  writer->WriteDouble(record.emit_time);
  writer->WriteDouble(record.latency);
  writer->WriteI64(record.kept_tuples);
  writer->WriteI64(record.dropped_tuples);
  writer->WriteU64(record.force_shed_by_stream.size());
  for (const auto& [stream, count] : record.force_shed_by_stream) {
    writer->WriteString(stream);
    writer->WriteI64(count);
  }
  writer->WriteI64(record.exact_rows);
  writer->WriteI64(record.merged_rows);
  writer->WriteI64(record.exact_work_units);
  writer->WriteI64(record.shadow_work_units);
}

Status LoadTraceRecord(serde::Reader* reader,
                       obs::WindowTraceRecord* record) {
  DT_ASSIGN_OR_RETURN(record->window, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(record->deadline, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(record->emit_time, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(record->latency, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(record->kept_tuples, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(record->dropped_tuples, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(const uint64_t streams, reader->ReadCount(16));
  for (uint64_t i = 0; i < streams; ++i) {
    DT_ASSIGN_OR_RETURN(std::string stream, reader->ReadString());
    DT_ASSIGN_OR_RETURN(const int64_t count, reader->ReadI64());
    record->force_shed_by_stream.emplace(std::move(stream), count);
  }
  DT_ASSIGN_OR_RETURN(record->exact_rows, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(record->merged_rows, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(record->exact_work_units, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(record->shadow_work_units, reader->ReadI64());
  return Status::OK();
}

void SaveRegistry(serde::Writer* writer,
                  const obs::MetricsRegistry& registry) {
  const std::map<std::string, int64_t> counters = registry.CounterTotals();
  writer->WriteU64(counters.size());
  for (const auto& [name, value] : counters) {
    writer->WriteString(name);
    writer->WriteI64(value);
  }
  size_t num_gauges = 0;
  registry.ForEachGauge(
      [&num_gauges](const std::string&, const obs::Gauge&) {
        ++num_gauges;
      });
  writer->WriteU64(num_gauges);
  registry.ForEachGauge(
      [writer](const std::string& name, const obs::Gauge& gauge) {
        writer->WriteString(name);
        writer->WriteDouble(gauge.value());
        writer->WriteDouble(gauge.max());
      });
  size_t num_histograms = 0;
  registry.ForEachHistogram(
      [&num_histograms](const std::string&, const obs::Histogram&) {
        ++num_histograms;
      });
  writer->WriteU64(num_histograms);
  registry.ForEachHistogram([writer](const std::string& name,
                                     const obs::Histogram& histogram) {
    writer->WriteString(name);
    writer->WriteU64(histogram.upper_bounds().size());
    for (const double bound : histogram.upper_bounds()) {
      writer->WriteDouble(bound);
    }
    writer->WriteI64(histogram.count());
    writer->WriteDouble(histogram.sum());
    writer->WriteDouble(histogram.min());
    writer->WriteDouble(histogram.max());
    for (const int64_t bucket : histogram.bucket_counts()) {
      writer->WriteI64(bucket);
    }
  });
}

Status LoadRegistry(serde::Reader* reader, obs::MetricsRegistry* registry) {
  DT_ASSIGN_OR_RETURN(const uint64_t num_counters, reader->ReadCount(16));
  for (uint64_t i = 0; i < num_counters; ++i) {
    DT_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
    DT_ASSIGN_OR_RETURN(const int64_t value, reader->ReadI64());
    registry->GetCounter(name)->Restore(value);
  }
  DT_ASSIGN_OR_RETURN(const uint64_t num_gauges, reader->ReadCount(24));
  for (uint64_t i = 0; i < num_gauges; ++i) {
    DT_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
    DT_ASSIGN_OR_RETURN(const double value, reader->ReadDouble());
    DT_ASSIGN_OR_RETURN(const double max, reader->ReadDouble());
    registry->GetGauge(name)->Restore(value, max);
  }
  DT_ASSIGN_OR_RETURN(const uint64_t num_histograms, reader->ReadCount(16));
  for (uint64_t i = 0; i < num_histograms; ++i) {
    DT_ASSIGN_OR_RETURN(const std::string name, reader->ReadString());
    DT_ASSIGN_OR_RETURN(const uint64_t num_bounds, reader->ReadCount(8));
    std::vector<double> bounds(num_bounds);
    for (uint64_t b = 0; b < num_bounds; ++b) {
      DT_ASSIGN_OR_RETURN(bounds[b], reader->ReadDouble());
    }
    DT_ASSIGN_OR_RETURN(const int64_t count, reader->ReadI64());
    DT_ASSIGN_OR_RETURN(const double sum, reader->ReadDouble());
    DT_ASSIGN_OR_RETURN(const double min, reader->ReadDouble());
    DT_ASSIGN_OR_RETURN(const double max, reader->ReadDouble());
    std::vector<int64_t> buckets(num_bounds + 1);
    for (uint64_t b = 0; b < buckets.size(); ++b) {
      DT_ASSIGN_OR_RETURN(buckets[b], reader->ReadI64());
    }
    registry->GetHistogram(name, bounds)
        ->Restore(count, sum, min, max, std::move(buckets));
  }
  return Status::OK();
}

}  // namespace

void QuerySession::SaveState(serde::Writer* writer) const {
  writer->WriteDouble(session_time_);
  writer->WriteBool(saw_arrival_);
  writer->WriteI64(next_window_to_emit_);
  writer->WriteI64(last_window_seen_);
  writer->WriteBool(finished_);
  writer->WriteDouble(effective_from_);

  writer->WriteI64(stats_.tuples_ingested);
  writer->WriteI64(stats_.tuples_kept);
  writer->WriteI64(stats_.tuples_dropped);
  writer->WriteI64(stats_.windows_emitted);
  writer->WriteDouble(stats_.exact_work_seconds);
  writer->WriteDouble(stats_.synopsis_work_seconds);
  writer->WriteDouble(stats_.final_engine_time);

  writer->WriteU64(lanes_by_name_.size());
  for (const auto& [name, lane] : lanes_by_name_) {
    writer->WriteString(name);
    writer->WriteDouble(lane->admit_from);
    lane->queue->SaveState(writer);
    writer->WriteBool(lane->synopsizer != nullptr);
    if (lane->synopsizer != nullptr) lane->synopsizer->SaveState(writer);
    writer->WriteU64(lane->kept_buffers.size());
    for (const auto& [window, relation] : lane->kept_buffers) {
      writer->WriteI64(window);
      SaveRelation(writer, relation);
    }
    writer->WriteU64(lane->dropped_counts.size());
    for (const auto& [window, count] : lane->dropped_counts) {
      writer->WriteI64(window);
      writer->WriteI64(count);
    }
    writer->WriteU64(lane->buffer_touch.size());
    for (const auto& [window, touched] : lane->buffer_touch) {
      writer->WriteI64(window);
      writer->WriteDouble(touched);
    }
  }

  writer->WriteU64(results_.size());
  for (const WindowResult& result : results_) {
    SaveWindowResult(writer, result);
  }

  writer->WriteU64(trace_.records().size());
  for (const obs::WindowTraceRecord& record : trace_.records()) {
    SaveTraceRecord(writer, record);
  }
  writer->WriteI64(trace_.total_recorded());

  // Memory-account state (format v2): live bytes are redundant with the
  // lane state above (LoadState cross-checks them), peaks are not.
  for (size_t i = 0; i < mem::kNumComponents; ++i) {
    const auto component = static_cast<mem::Component>(i);
    writer->WriteU64(account_.bytes(component));
    writer->WriteU64(account_.peak_bytes(component));
  }

  SaveRegistry(writer, metrics_);
}

Status QuerySession::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(session_time_, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(saw_arrival_, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(next_window_to_emit_, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(last_window_seen_, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(finished_, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(effective_from_, reader->ReadDouble());

  DT_ASSIGN_OR_RETURN(stats_.tuples_ingested, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(stats_.tuples_kept, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(stats_.tuples_dropped, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(stats_.windows_emitted, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(stats_.exact_work_seconds, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(stats_.synopsis_work_seconds, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(stats_.final_engine_time, reader->ReadDouble());

  // Window-buffer charges belong to the session (not a lane object), so
  // drop any existing ones before the lanes re-charge their state.
  account_.Release(mem::Component::kWindowBuffers,
                   account_.bytes(mem::Component::kWindowBuffers));

  DT_ASSIGN_OR_RETURN(const uint64_t num_lanes, reader->ReadCount(8));
  if (num_lanes != lanes_by_name_.size()) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: lane count %llu does not match the rebuilt query's "
        "%zu lane(s)",
        static_cast<unsigned long long>(num_lanes),
        lanes_by_name_.size()));
  }
  for (auto& [name, lane] : lanes_by_name_) {
    DT_ASSIGN_OR_RETURN(const std::string saved_name,
                        reader->ReadString());
    if (saved_name != name) {
      return Status::InvalidArgument(StringPrintf(
          "snapshot: lane '%s' does not match the rebuilt query's "
          "lane '%s'",
          saved_name.c_str(), name.c_str()));
    }
    DT_ASSIGN_OR_RETURN(lane->admit_from, reader->ReadDouble());
    DT_RETURN_IF_ERROR(lane->queue->LoadState(reader));
    DT_ASSIGN_OR_RETURN(const bool has_synopsizer, reader->ReadBool());
    if (has_synopsizer != (lane->synopsizer != nullptr)) {
      return Status::InvalidArgument(
          "snapshot: synopsizer presence does not match the rebuilt "
          "session's shedding strategy");
    }
    if (lane->synopsizer != nullptr) {
      DT_RETURN_IF_ERROR(lane->synopsizer->LoadState(reader));
    }
    DT_ASSIGN_OR_RETURN(const uint64_t num_buffers, reader->ReadCount(16));
    lane->kept_buffers.clear();
    for (uint64_t i = 0; i < num_buffers; ++i) {
      DT_ASSIGN_OR_RETURN(const WindowId window, reader->ReadI64());
      exec::Relation relation;
      DT_RETURN_IF_ERROR(LoadRelation(reader, &relation));
      account_.Charge(mem::Component::kWindowBuffers,
                      mem::RelationBytes(relation));
      lane->kept_buffers.emplace(window, std::move(relation));
    }
    DT_ASSIGN_OR_RETURN(const uint64_t num_counts, reader->ReadCount(16));
    lane->dropped_counts.clear();
    for (uint64_t i = 0; i < num_counts; ++i) {
      DT_ASSIGN_OR_RETURN(const WindowId window, reader->ReadI64());
      DT_ASSIGN_OR_RETURN(const int64_t count, reader->ReadI64());
      lane->dropped_counts.emplace(window, count);
    }
    DT_ASSIGN_OR_RETURN(const uint64_t num_touches,
                        reader->ReadCount(16));
    lane->buffer_touch.clear();
    for (uint64_t i = 0; i < num_touches; ++i) {
      DT_ASSIGN_OR_RETURN(const WindowId window, reader->ReadI64());
      DT_ASSIGN_OR_RETURN(const VirtualTime touched,
                          reader->ReadDouble());
      lane->buffer_touch.emplace(window, touched);
    }
  }

  DT_ASSIGN_OR_RETURN(const uint64_t num_results, reader->ReadCount(16));
  results_.clear();
  for (uint64_t i = 0; i < num_results; ++i) {
    WindowResult result;
    DT_RETURN_IF_ERROR(LoadWindowResult(reader, &result));
    results_.push_back(std::move(result));
  }

  DT_ASSIGN_OR_RETURN(const uint64_t num_records, reader->ReadCount(16));
  std::vector<obs::WindowTraceRecord> records(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    DT_RETURN_IF_ERROR(LoadTraceRecord(reader, &records[i]));
  }
  DT_ASSIGN_OR_RETURN(const int64_t total_recorded, reader->ReadI64());
  trace_.Restore(std::move(records), total_recorded);

  // Memory accounts: the lane restores above already re-charged every
  // byte, so the saved live bytes are a cross-check of snapshot
  // consistency; only the peaks carry new information.
  for (size_t i = 0; i < mem::kNumComponents; ++i) {
    const auto component = static_cast<mem::Component>(i);
    DT_ASSIGN_OR_RETURN(const uint64_t saved_bytes, reader->ReadU64());
    DT_ASSIGN_OR_RETURN(const uint64_t saved_peak, reader->ReadU64());
    if (saved_bytes != account_.bytes(component)) {
      const std::string_view name = mem::ComponentName(component);
      return Status::InvalidArgument(StringPrintf(
          "snapshot: mem.%.*s account saved %llu byte(s) but the "
          "restored state rebuilds to %zu byte(s) — the snapshot is "
          "inconsistent",
          static_cast<int>(name.size()), name.data(),
          static_cast<unsigned long long>(saved_bytes),
          account_.bytes(component)));
    }
    account_.RestorePeak(component, saved_peak);
  }
  if (EffectiveMemoryBudget() > 0) EnsureMemoryInstruments();

  // The registry restores last: lane restore above touched the depth
  // gauges (SetInstruments/LoadState re-set them), and absolute restore
  // corrects every value and high-watermark to the donor's.
  return LoadRegistry(reader, &metrics_);
}

}  // namespace datatriage::server
