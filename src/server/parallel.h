#ifndef DATATRIAGE_SERVER_PARALLEL_H_
#define DATATRIAGE_SERVER_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/tuple/tuple.h"

namespace datatriage::server {

class QuerySession;
struct StreamLane;

/// One unit of work handed from the ingest thread to a session's worker.
/// kIngest delivers a validated arrival to `lane` (the tuple travels by
/// value: the ingest thread keeps no reference once the task is
/// enqueued); kFinish runs `session`'s end-of-stream drain on its owning
/// worker so Finish work parallelizes like ingest work does.
struct WorkerTask {
  enum class Kind : uint8_t { kIngest, kFinish };
  Kind kind = Kind::kIngest;
  StreamLane* lane = nullptr;       // kIngest only
  QuerySession* session = nullptr;  // kFinish only
  Tuple tuple;                      // kIngest only
};

/// Bounded single-producer/single-consumer ring of WorkerTasks. The
/// ingest thread is the only producer and the owning worker the only
/// consumer, so the ring needs exactly two atomics: `tail_` (producer
/// cursor, release-published after the slot is written) and `head_`
/// (consumer cursor, release-published after the slot is moved out).
/// Capacity is rounded up to a power of two so wrap-around is a mask.
class SpscTaskQueue {
 public:
  /// `min_capacity` must be positive; the ring allocates the next power
  /// of two at or above it.
  explicit SpscTaskQueue(size_t min_capacity);

  SpscTaskQueue(const SpscTaskQueue&) = delete;
  SpscTaskQueue& operator=(const SpscTaskQueue&) = delete;

  /// Producer side. False when the ring is full (caller backs off and
  /// retries — backpressure, never loss).
  bool TryPush(WorkerTask&& task);

  /// Consumer side. False when the ring is empty.
  bool TryPop(WorkerTask* out);

  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<WorkerTask> slots_;
  size_t mask_;
  /// Separate cache lines: the producer spins on tail_ (own) + head_
  /// (theirs) and the consumer on the opposite pair; sharing a line
  /// would ping-pong it on every task.
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to fill
};

/// The static placement rule: session `id` starts homed on worker
/// `id % workers`. This is a *placement* choice, not what keeps the
/// parallel run byte-identical to the serial one — the equivalence
/// contract is that each session's tasks live in one FIFO ring and are
/// consumed in feed order by exactly one worker at a time (the
/// TaskScheduler's claim protocol serializes consumers), so the
/// session's processing clock, RNGs, and window emission order never
/// depend on which worker runs it. Least-loaded re-homing and work
/// stealing move sessions between workers without touching that
/// invariant (DESIGN.md Sec. 11, Sec. 16.1).
inline size_t WorkerForSession(uint32_t session_id, size_t workers) {
  return workers == 0 ? 0 : static_cast<size_t>(session_id) % workers;
}

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_PARALLEL_H_
