#ifndef DATATRIAGE_SERVER_SNAPSHOT_H_
#define DATATRIAGE_SERVER_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/engine/config.h"

namespace datatriage::serde {
class Writer;
class Reader;
}  // namespace datatriage::serde

namespace datatriage::server {

/// A sealed, self-describing session snapshot (DESIGN.md §14): everything
/// needed to rebuild one QuerySession on any StreamServer over the same
/// catalog — SQL text, engine config, plane-clock state, and the session's
/// full SaveState blob — framed with a magic/version header and an MD5 of
/// the payload so corruption and version skew fail loudly instead of
/// restoring garbage.
///
/// Determinism contract: restore(snapshot(s)) is byte-equivalent to never
/// snapshotting — the restored session's future results, metrics JSON, and
/// drop-cause partitions match the donor's exactly (tests/ and src/sim/
/// oracles enforce this at worker counts 0..4).
struct SessionSnapshot {
  std::string bytes;
};

/// Current snapshot wire version. Bump when the payload layout changes;
/// OpenSnapshot rejects snapshots from other versions by name.
/// v2: EngineConfig gained memory_budget_bytes, and the session payload
/// carries per-lane window-buffer touch clocks plus the per-component
/// memory-account bytes and peaks (DESIGN.md §15).
/// v3: a scheduler stamp (dispatch-mode tag + parallel_min_rows) follows
/// the engine config; RestoreSession cross-checks it against the target
/// server's effective SchedulerOptions (DESIGN.md §16.3). Worker and
/// intra-session thread counts are deployment properties and are not
/// stamped.
/// v4: the drop-policy tag admits kUtility, whose per-lane queue state
/// carries the policy's partial-match tracker (DESIGN.md §17). The
/// payload layout is otherwise unchanged, but a v3 reader cannot parse a
/// utility lane, so the version gates it.
inline constexpr uint32_t kSnapshotVersion = 4;

/// Frames `payload` as a complete snapshot byte string:
/// magic "DTSS" + u32 version + u64 payload size + payload + 32-char MD5
/// hex of the payload.
std::string SealSnapshot(std::string payload);

/// Validates the frame (magic, version, length, MD5) and returns the
/// payload. InvalidArgument with a specific message on any mismatch.
Result<std::string> OpenSnapshot(std::string_view bytes);

/// EngineConfig serialization for the snapshot payload. Every field that
/// affects behavior is round-tripped — the restored session must make the
/// same shedding, synopsis, and cost-model decisions as the donor.
void SaveEngineConfig(serde::Writer* writer,
                      const engine::EngineConfig& config);
Result<engine::EngineConfig> LoadEngineConfig(serde::Reader* reader);

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_SNAPSHOT_H_
