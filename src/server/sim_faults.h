#ifndef DATATRIAGE_SERVER_SIM_FAULTS_H_
#define DATATRIAGE_SERVER_SIM_FAULTS_H_

#include <cstddef>
#include <cstdint>

#include "src/common/virtual_time.h"

namespace datatriage::server {

/// Deterministic fault injection for simulation testing (src/sim/,
/// DESIGN.md Sec. 12). A StreamServer under test takes one SimFaults via
/// SetSimFaults() *before* any RegisterQuery; the hooks fire at fixed
/// points of the ingest and task-scheduler paths. Every fault is a pure
/// function of virtual time and per-session state — never of wall-clock
/// or thread scheduling — so a faulted run stays byte-identical across
/// worker counts, which is exactly what lets the differential oracles
/// compare serial and parallel executions of the same faulted scenario.
struct SimFaults {
  // --- Ingest-plane faults (src/server/ingest.*, query_session.cc) ---

  /// Forced queue overflow ("zero-capacity window"): every arrival whose
  /// timestamp falls in [overflow_from, overflow_to) is shed at the
  /// queue boundary as if the triage queue were full with the arrival
  /// itself chosen as victim — it is synopsized or discarded by the
  /// session's normal shed path and counted under the dedicated
  /// stream.<name>.dropped.fault_shed cause, keeping the drop-cause
  /// partition invariant intact.
  bool force_overflow = false;
  VirtualTime overflow_from = 0.0;
  VirtualTime overflow_to = 0.0;

  /// Delayed consumer ("delayed window"): `stall_seconds` of extra
  /// virtual processing time charged to the session clock for every
  /// arrival in [stall_from, stall_to), pushing emissions past their
  /// deadlines and forcing deadline sheds without touching the queue.
  double stall_seconds = 0.0;
  VirtualTime stall_from = 0.0;
  VirtualTime stall_to = 0.0;

  // --- Scheduler faults (src/server/task_scheduler.*, parallel.h) ---

  /// Initial session-to-worker placement override. kModulo is the
  /// production rule (session id % workers); the adversarial variants
  /// pile every session onto one worker or reverse the assignment. The
  /// override sets each session's *initial* home under every
  /// DispatchMode (least-loaded re-homing and stealing then move work
  /// from that adversarial start) — per-session output must not change
  /// either way.
  enum class Sharding : uint8_t { kModulo, kSingleWorker, kReversed };
  Sharding sharding = Sharding::kModulo;

  /// When > 0, overrides StreamServerOptions::task_queue_capacity with a
  /// deliberately tiny ring so the dispatching thread constantly hits
  /// the backpressure (full-ring) path.
  size_t task_queue_capacity_override = 0;

  /// When > 0, the dispatching thread yields after every N enqueued
  /// tasks — a scheduling perturbation that shuffles thread
  /// interleavings (useful under TSan) without affecting any virtual
  /// clock.
  uint64_t dispatch_yield_every = 0;
};

/// The sharding rule with the fault override applied; reduces to
/// WorkerForSession (parallel.h) when `faults` is null or kModulo.
size_t WorkerForSessionFaulted(uint32_t session_id, size_t workers,
                               const SimFaults* faults);

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_SIM_FAULTS_H_
