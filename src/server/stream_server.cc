#include "src/server/stream_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/serde.h"
#include "src/common/string_util.h"
#include "src/obs/export.h"
#include "src/plan/binder.h"
#include "src/sql/parser.h"

namespace datatriage::server {

std::string_view ServerStateName(ServerState state) {
  switch (state) {
    case ServerState::kRegistering:
      return "kRegistering";
    case ServerState::kStreaming:
      return "kStreaming";
    case ServerState::kFinished:
      return "kFinished";
  }
  return "unknown";
}

StreamServer::StreamServer(Catalog catalog,
                           engine::StreamServerOptions options)
    : options_(options),
      plane_(std::move(catalog)),
      accountant_(options.memory_budget_bytes) {
  Status valid = options_.Validate();
  DT_CHECK(valid.ok()) << valid.ToString();
}

StreamServer::~StreamServer() {
  // The scheduler (if streaming never reached Finish) must stop before
  // the sessions and lanes its queued tasks point into are torn down.
  if (scheduler_ != nullptr) {
    scheduler_->Stop();
    plane_.SetDispatcher(nullptr);
  }
}

Result<SessionId> StreamServer::RegisterQuery(
    const std::string& query_sql, engine::EngineConfig config) {
  DT_RETURN_IF_ERROR(config.Validate());
  DT_ASSIGN_OR_RETURN(sql::Statement statement,
                      sql::ParseStatement(query_sql));
  DT_ASSIGN_OR_RETURN(plan::BoundQuery bound,
                      plan::BindStatement(statement, plane_.catalog()));
  DT_ASSIGN_OR_RETURN(const SessionId id,
                      RegisterQuery(std::move(bound), std::move(config)));
  // Keep the SQL text: it is what SnapshotSession serializes so restore
  // can re-parse and re-bind the query on the target server.
  sessions_[id]->set_sql(query_sql);
  return id;
}

Result<SessionId> StreamServer::RegisterQuery(plan::BoundQuery query,
                                              engine::EngineConfig config) {
  DT_RETURN_IF_ERROR(config.Validate());
  if (state_ == ServerState::kFinished) {
    return Status::FailedPrecondition(
        "RegisterQuery on a finished StreamServer (state kFinished): "
        "results are sealed once Finish has run");
  }
  const SessionId id = static_cast<SessionId>(sessions_.size());
  DT_ASSIGN_OR_RETURN(
      std::unique_ptr<QuerySession> session,
      QuerySession::Make(id, &plane_, std::move(query), std::move(config)));
  if (plane_.saw_arrival()) {
    // Mid-stream registration (DESIGN.md §14): admit from the next window
    // boundary of this session's own slide after the arrival clock, so
    // the session only ever observes whole windows — its output matches a
    // standalone engine fed the feed suffix from that boundary on.
    const VirtualDuration slide = session->window_slide_seconds();
    const VirtualTime effective_from =
        (std::floor(plane_.now() / slide) + 1.0) * slide;
    session->SetEffectiveFrom(effective_from);
    CountLifecycleEvent(id, "registered_mid_stream");
  }
  session->SetServerAccountant(&accountant_);
  if (scheduler_ != nullptr) {
    // Mid-stream registrant while the scheduler runs: give it a task
    // ring (initial home by the static placement rule, fault-adjusted)
    // and the shared morsel pool before its first arrival.
    scheduler_->AddSession(
        id, WorkerForSessionFaulted(id, scheduler_->size(),
                                    plane_.sim_faults()));
    session->SetTaskPool(task_pool_.get(),
                         options_.EffectiveScheduler().parallel_min_rows);
  }
  sessions_.push_back(std::move(session));
  if (options_.memory_budget_bytes > 0) {
    // Shares are read on the owning workers, so quiesce before
    // re-splitting. Unbudgeted servers skip this: no drain, no
    // behavioral perturbation.
    DT_RETURN_IF_ERROR(Quiesce());
    RecomputeBudgetShares();
  }
  CountLifecycleEvent(id, "registered");
  return id;
}

Status StreamServer::UnregisterQuery(SessionId id) {
  DT_ASSIGN_OR_RETURN(QuerySession * session, FindSession(id));
  if (state_ == ServerState::kFinished) {
    return Status::FailedPrecondition(
        "UnregisterQuery on a finished StreamServer (state kFinished): "
        "Finish already drained and detached every session");
  }
  if (session->lifecycle() == SessionLifecycle::kDetached) {
    return Status::FailedPrecondition(StringPrintf(
        "session %u is already kDetached: UnregisterQuery drains and "
        "detaches a session once; its results and metrics stay readable",
        id));
  }
  // Quiesce the pool so the drain below owns the session's state, then
  // finish inline: queued tuples process or shed, in-flight windows emit.
  DT_RETURN_IF_ERROR(Quiesce());
  Status drained = session->Finish();
  plane_.Unsubscribe(session);
  session->MarkDetached();
  if (options_.memory_budget_bytes > 0) RecomputeBudgetShares();
  CountLifecycleEvent(id, "unregistered");
  return drained;
}

Result<SessionSnapshot> StreamServer::SnapshotSession(SessionId id) {
  DT_ASSIGN_OR_RETURN(QuerySession * session, FindSession(id));
  if (session->lifecycle() == SessionLifecycle::kDetached) {
    return Status::FailedPrecondition(StringPrintf(
        "session %u is kDetached: a drained session has no live state "
        "to snapshot — snapshot before UnregisterQuery",
        id));
  }
  if (session->sql().empty()) {
    return Status::FailedPrecondition(StringPrintf(
        "session %u was registered from an already-bound query: "
        "snapshots serialize the SQL text so restore can re-bind — "
        "register via the SQL overload to make a session snapshottable",
        id));
  }
  DT_RETURN_IF_ERROR(Quiesce());
  serde::Writer writer;
  writer.WriteString(session->sql());
  SaveEngineConfig(&writer, session->config());
  // v3 scheduler stamp: the knobs that shape a session's bytes
  // (dispatch gates nothing today but is recorded for cross-checking;
  // parallel_min_rows feeds the morsel gate). worker_threads and
  // intra_session_threads are deployment properties — deliberately not
  // stamped, so snapshot bytes stay identical across worker-count
  // sweeps.
  const engine::SchedulerOptions effective = options_.EffectiveScheduler();
  writer.WriteU8(static_cast<uint8_t>(effective.dispatch));
  writer.WriteU64(effective.parallel_min_rows);
  writer.WriteBool(plane_.saw_arrival());
  writer.WriteDouble(plane_.now());
  session->SaveState(&writer);
  CountLifecycleEvent(id, "snapshots");
  return SessionSnapshot{SealSnapshot(std::move(writer).TakeBytes())};
}

Result<SessionId> StreamServer::RestoreSession(
    const SessionSnapshot& snapshot) {
  if (state_ == ServerState::kFinished) {
    return Status::FailedPrecondition(
        "RestoreSession on a finished StreamServer (state kFinished): "
        "results are sealed once Finish has run");
  }
  DT_ASSIGN_OR_RETURN(const std::string payload,
                      OpenSnapshot(snapshot.bytes));
  serde::Reader reader(payload);
  DT_ASSIGN_OR_RETURN(const std::string sql, reader.ReadString());
  DT_ASSIGN_OR_RETURN(engine::EngineConfig config,
                      LoadEngineConfig(&reader));
  DT_ASSIGN_OR_RETURN(const uint8_t dispatch_tag, reader.ReadU8());
  if (dispatch_tag > static_cast<uint8_t>(engine::DispatchMode::kStealing)) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: unknown dispatch mode tag %u", dispatch_tag));
  }
  DT_ASSIGN_OR_RETURN(const uint64_t donor_min_rows, reader.ReadU64());
  // Strict scheduler cross-check: the donor's stamped dispatch mode and
  // morsel floor must match this server's, or the restored session's
  // future bytes could diverge from the donor's.
  const engine::SchedulerOptions effective = options_.EffectiveScheduler();
  if (dispatch_tag != static_cast<uint8_t>(effective.dispatch)) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: donor dispatch mode %s does not match this server's "
        "%s — restore onto a server with the same "
        "SchedulerOptions::dispatch",
        std::string(engine::DispatchModeToString(
                        static_cast<engine::DispatchMode>(dispatch_tag)))
            .c_str(),
        std::string(engine::DispatchModeToString(effective.dispatch))
            .c_str()));
  }
  if (donor_min_rows != effective.parallel_min_rows) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: donor parallel_min_rows %llu does not match this "
        "server's %llu — restore onto a server with the same "
        "SchedulerOptions::parallel_min_rows",
        static_cast<unsigned long long>(donor_min_rows),
        static_cast<unsigned long long>(effective.parallel_min_rows)));
  }
  DT_ASSIGN_OR_RETURN(const bool donor_saw_arrival, reader.ReadBool());
  DT_ASSIGN_OR_RETURN(const VirtualTime donor_clock, reader.ReadDouble());
  // Rebuild the session the same way it was first made (parse, bind,
  // rewrite, subscribe), then overwrite its state from the snapshot —
  // LoadState also restores each lane's admission horizon, superseding
  // any effective-from stamp the re-registration just applied.
  DT_ASSIGN_OR_RETURN(const SessionId id,
                      RegisterQuery(sql, std::move(config)));
  DT_RETURN_IF_ERROR(sessions_[id]->LoadState(&reader));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(StringPrintf(
        "snapshot: %zu trailing byte(s) after the session state",
        reader.remaining()));
  }
  if (donor_saw_arrival) {
    // The restored plane must refuse out-of-order arrivals the donor's
    // plane had already rejected the past of.
    plane_.AdvanceClock(donor_clock);
  }
  CountLifecycleEvent(id, "restored");
  return id;
}

size_t StreamServer::live_session_count() const {
  size_t live = 0;
  for (const std::unique_ptr<QuerySession>& session : sessions_) {
    if (session->lifecycle() == SessionLifecycle::kActive) ++live;
  }
  return live;
}

Status StreamServer::Quiesce() {
  if (scheduler_ == nullptr) return Status::OK();
  return scheduler_->Drain();
}

void StreamServer::RecomputeBudgetShares() {
  const size_t live = live_session_count();
  if (live == 0) return;
  const size_t share =
      std::max<size_t>(1, options_.memory_budget_bytes / live);
  for (std::unique_ptr<QuerySession>& session : sessions_) {
    if (session->lifecycle() == SessionLifecycle::kActive) {
      session->SetServerBudgetShare(share);
    }
  }
}

void StreamServer::CountLifecycleEvent(SessionId id,
                                       std::string_view event) {
  plane_.mutable_metrics()
      .GetCounter(StringPrintf("session.%u.lifecycle.%.*s", id,
                               static_cast<int>(event.size()),
                               event.data()))
      ->Add(1);
}

Result<StreamId> StreamServer::InternStream(std::string_view name) {
  return plane_.Intern(name);
}

Status StreamServer::SetSimFaults(const SimFaults* faults) {
  if (state_ != ServerState::kRegistering || !sessions_.empty()) {
    return Status::FailedPrecondition(
        "SetSimFaults must run before any RegisterQuery (state "
        "kRegistering, no sessions): lanes wire their fault hooks at "
        "Subscribe time");
  }
  plane_.SetSimFaults(faults);
  return Status::OK();
}

Status StreamServer::EnsureStreaming() {
  if (state_ == ServerState::kFinished) {
    return Status::FailedPrecondition(
        "Push on a finished StreamServer (state kFinished): results are "
        "sealed once Finish has run");
  }
  if (live_session_count() == 0) {
    // Reject before any state change (in particular, before the
    // kRegistering -> kStreaming transition): a feed pushed at a server
    // with no attached session would be dropped wholesale, which is
    // load shedding by accident, not by policy.
    return Status::FailedPrecondition(StringPrintf(
        "Push with zero live sessions: this server hosts %zu "
        "session(s) but none is attached — RegisterQuery (or "
        "RestoreSession) before pushing",
        sessions_.size()));
  }
  if (state_ == ServerState::kRegistering) {
    state_ = ServerState::kStreaming;
    const engine::SchedulerOptions effective = options_.EffectiveScheduler();
    // Without intra-session parallelism there is nothing for a worker
    // beyond one-per-session to do, so clamp to the session count; with
    // morsel helpers configured the full complement stays useful (the
    // helpers are the TaskPool's own threads, but scheduler workers
    // overlap sessions' serial stretches).
    const size_t workers =
        effective.intra_session_threads > 1
            ? effective.worker_threads
            : std::min(effective.worker_threads, sessions_.size());
    if (workers > 0) {
      const SimFaults* faults = plane_.sim_faults();
      size_t queue_capacity = options_.task_queue_capacity;
      if (faults != nullptr && faults->task_queue_capacity_override > 0) {
        queue_capacity = faults->task_queue_capacity_override;
      }
      scheduler_ = std::make_unique<TaskScheduler>(effective.dispatch,
                                                   workers, queue_capacity);
      if (faults != nullptr) {
        scheduler_->SetDispatchYield(faults->dispatch_yield_every);
      }
      for (std::unique_ptr<QuerySession>& session : sessions_) {
        scheduler_->AddSession(
            session->id(),
            WorkerForSessionFaulted(session->id(), workers, faults));
      }
      if (effective.intra_session_threads > 1) {
        task_pool_ = std::make_unique<exec::TaskPool>(
            effective.intra_session_threads - 1);
      }
      for (std::unique_ptr<QuerySession>& session : sessions_) {
        session->SetTaskPool(task_pool_.get(),
                             effective.parallel_min_rows);
      }
      plane_.SetDispatcher([this](StreamLane* lane, const Tuple& tuple) {
        WorkerTask task;
        task.kind = WorkerTask::Kind::kIngest;
        task.lane = lane;
        task.tuple = tuple;  // by value: the plane's reference dies here
        scheduler_->Dispatch(lane->session->id(), std::move(task));
        return Status::OK();
      });
    }
  }
  // Asynchronous execution defers errors; surface the earliest one on
  // the next push rather than silently feeding a dead session.
  if (scheduler_ != nullptr && scheduler_->error_seen()) {
    return scheduler_->first_error();
  }
  return Status::OK();
}

Status StreamServer::Push(const engine::StreamEvent& event) {
  DT_RETURN_IF_ERROR(EnsureStreaming());
  return plane_.Push(event);
}

Status StreamServer::Push(StreamId stream, const Tuple& tuple) {
  DT_RETURN_IF_ERROR(EnsureStreaming());
  return plane_.Push(stream, tuple);
}

Status StreamServer::PushBatch(
    std::span<const engine::StreamEvent> events) {
  DT_RETURN_IF_ERROR(EnsureStreaming());
  return plane_.PushBatch(events);
}

Status StreamServer::Finish() {
  if (state_ == ServerState::kFinished) return Status::OK();
  state_ = ServerState::kFinished;
  if (scheduler_ != nullptr) {
    // Each session finishes on a scheduler worker — end-of-stream drain
    // parallelizes like ingest — then the scheduler's barrier walks
    // sessions in id order and reports the lowest-id session error, so
    // what the caller observes never depends on thread timing.
    for (std::unique_ptr<QuerySession>& session : sessions_) {
      WorkerTask task;
      task.kind = WorkerTask::Kind::kFinish;
      task.session = session.get();
      scheduler_->Dispatch(session->id(), std::move(task));
    }
    Status status = scheduler_->Stop();
    plane_.SetDispatcher(nullptr);
    FlushWorkerMetrics();
    scheduler_.reset();
    task_pool_.reset();
    return status;
  }
  for (std::unique_ptr<QuerySession>& session : sessions_) {
    DT_RETURN_IF_ERROR(session->Finish());
  }
  return Status::OK();
}

void StreamServer::FlushWorkerMetrics() {
  obs::MetricsRegistry& registry = plane_.mutable_metrics();
  for (size_t k = 0; k < scheduler_->size(); ++k) {
    const TaskWorkerStats stats = scheduler_->stats(k);
    const std::string prefix = "server.worker." + std::to_string(k);
    registry.GetCounter(prefix + ".tasks")->Add(stats.tasks);
    registry.GetGauge(prefix + ".busy_seconds")->Set(stats.busy_seconds);
    // Set once: value and high-watermark both read as the HWM.
    registry.GetGauge(prefix + ".queue_depth")
        ->Set(static_cast<double>(stats.queue_depth_hwm));
  }
}

QuerySession& StreamServer::session(SessionId id) {
  DT_CHECK(id < sessions_.size())
      << "StreamServer::session: id " << id << " out of range [0, "
      << sessions_.size()
      << ") — stale or foreign SessionId? FindSession() returns an "
         "error instead of crashing";
  return *sessions_[id];
}

const QuerySession& StreamServer::session(SessionId id) const {
  DT_CHECK(id < sessions_.size())
      << "StreamServer::session: id " << id << " out of range [0, "
      << sessions_.size()
      << ") — stale or foreign SessionId? FindSession() returns an "
         "error instead of crashing";
  return *sessions_[id];
}

Result<QuerySession*> StreamServer::FindSession(SessionId id) {
  if (id >= sessions_.size()) {
    return Status::NotFound(StringPrintf(
        "no session with id %u: this server hosts %zu session(s), ids "
        "are dense in [0, %zu)",
        id, sessions_.size(), sessions_.size()));
  }
  return sessions_[id].get();
}

Result<const QuerySession*> StreamServer::FindSession(SessionId id) const {
  if (id >= sessions_.size()) {
    return Status::NotFound(StringPrintf(
        "no session with id %u: this server hosts %zu session(s), ids "
        "are dense in [0, %zu)",
        id, sessions_.size(), sessions_.size()));
  }
  return sessions_[id].get();
}

std::string StreamServer::MetricsJson() const {
  std::string out = "{\n\"schema_version\": 1,\n\"server\": ";
  out += obs::MetricsJson(plane_.metrics(), nullptr);
  out += ",\n\"sessions\": [";
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n{\"session\": " + std::to_string(i) +
           ", \"prefix\": \"session." + std::to_string(i) +
           ".\", \"metrics\": ";
    out += obs::MetricsJson(sessions_[i]->metrics(),
                            &sessions_[i]->trace());
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

}  // namespace datatriage::server
