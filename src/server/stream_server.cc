#include "src/server/stream_server.h"

#include <utility>

#include "src/obs/export.h"
#include "src/plan/binder.h"
#include "src/sql/parser.h"

namespace datatriage::server {

StreamServer::StreamServer(Catalog catalog)
    : plane_(std::move(catalog)) {}

Result<SessionId> StreamServer::RegisterQuery(
    const std::string& query_sql, engine::EngineConfig config) {
  DT_RETURN_IF_ERROR(config.Validate());
  DT_ASSIGN_OR_RETURN(sql::Statement statement,
                      sql::ParseStatement(query_sql));
  DT_ASSIGN_OR_RETURN(plan::BoundQuery bound,
                      plan::BindStatement(statement, plane_.catalog()));
  return RegisterQuery(std::move(bound), std::move(config));
}

Result<SessionId> StreamServer::RegisterQuery(plan::BoundQuery query,
                                              engine::EngineConfig config) {
  DT_RETURN_IF_ERROR(config.Validate());
  if (started_) {
    return Status::InvalidArgument(
        "RegisterQuery after Push: register every query before the "
        "first arrival so sessions see the whole feed");
  }
  if (finished_) {
    return Status::InvalidArgument("RegisterQuery after Finish");
  }
  const SessionId id = static_cast<SessionId>(sessions_.size());
  DT_ASSIGN_OR_RETURN(
      std::unique_ptr<QuerySession> session,
      QuerySession::Make(id, &plane_, std::move(query), std::move(config)));
  sessions_.push_back(std::move(session));
  return id;
}

Result<StreamId> StreamServer::InternStream(std::string_view name) {
  return plane_.Intern(name);
}

Status StreamServer::Push(const engine::StreamEvent& event) {
  if (finished_) {
    return Status::InvalidArgument("Push after Finish");
  }
  started_ = true;
  return plane_.Push(event);
}

Status StreamServer::Push(StreamId stream, const Tuple& tuple) {
  if (finished_) {
    return Status::InvalidArgument("Push after Finish");
  }
  started_ = true;
  return plane_.Push(stream, tuple);
}

Status StreamServer::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  for (std::unique_ptr<QuerySession>& session : sessions_) {
    DT_RETURN_IF_ERROR(session->Finish());
  }
  return Status::OK();
}

QuerySession& StreamServer::session(SessionId id) {
  DT_CHECK(id < sessions_.size());
  return *sessions_[id];
}

const QuerySession& StreamServer::session(SessionId id) const {
  DT_CHECK(id < sessions_.size());
  return *sessions_[id];
}

std::string StreamServer::MetricsJson() const {
  std::string out = "{\n\"schema_version\": 1,\n\"server\": ";
  out += obs::MetricsJson(plane_.metrics(), nullptr);
  out += ",\n\"sessions\": [";
  for (size_t i = 0; i < sessions_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n{\"session\": " + std::to_string(i) +
           ", \"prefix\": \"session." + std::to_string(i) +
           ".\", \"metrics\": ";
    out += obs::MetricsJson(sessions_[i]->metrics(),
                            &sessions_[i]->trace());
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

}  // namespace datatriage::server
