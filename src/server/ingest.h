#ifndef DATATRIAGE_SERVER_INGEST_H_
#define DATATRIAGE_SERVER_INGEST_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/engine/config.h"
#include "src/exec/relation.h"
#include "src/obs/metrics.h"
#include "src/server/sim_faults.h"
#include "src/triage/synopsizer.h"
#include "src/triage/triage_queue.h"
#include "src/triage/utility_policy.h"

namespace datatriage::server {

class QuerySession;

/// Interned stream identity. Names are the wire format of an arrival; the
/// ingest plane resolves each name to a StreamId once (hash lookup at the
/// boundary, or ahead of time via InternStream) and routes by id after
/// that, so the hot ingest path never touches a std::string.
using StreamId = uint32_t;

/// Coverage oracle for the synergistic drop policy: a tuple is "free" to
/// shed when its window's dropped synopsis already has mass at its
/// location (paper Sec. 8.1).
class DroppedCoverageProbe final : public triage::SynopsisCoverageProbe {
 public:
  DroppedCoverageProbe(const triage::WindowSynopsizer* synopsizer,
                       VirtualDuration range, VirtualDuration slide)
      : synopsizer_(synopsizer), range_(range), slide_(slide) {}

  bool IsCovered(const Tuple& tuple) const override {
    const WindowSpan span =
        CoveringWindows(tuple.timestamp(), range_, slide_);
    for (WindowId w = span.first; w <= span.last; ++w) {
      const synopsis::Synopsis* dropped = synopsizer_->PeekDropped(w);
      if (dropped != nullptr && dropped->EstimatePointCount(tuple) > 0) {
        return true;
      }
    }
    return false;
  }

 private:
  const triage::WindowSynopsizer* synopsizer_;
  VirtualDuration range_;
  VirtualDuration slide_;
};

/// One session's triage state for one stream (paper Fig. 1: the triage
/// queue and summarizer sitting between a data source and a query). The
/// ingest plane owns every lane; a session holds borrowed pointers to its
/// own lanes and consumes from them under its virtual clock.
struct StreamLane {
  QuerySession* session = nullptr;
  StreamId stream_id = 0;
  std::string stream_name;
  std::unique_ptr<triage::TriageQueue> queue;
  std::unique_ptr<triage::WindowSynopsizer> synopsizer;
  std::unique_ptr<DroppedCoverageProbe> coverage_probe;
  /// Kept tuples per open window.
  std::map<WindowId, exec::Relation> kept_buffers;
  std::map<WindowId, int64_t> dropped_counts;
  /// Arrival-clock LRU key for memory-triggered triage (DESIGN.md §15):
  /// timestamp of the last tuple appended to kept_buffers[w]. Never
  /// wall-clock — eviction order must replay identically at any worker
  /// count. Erased together with the buffer entry.
  std::map<WindowId, VirtualTime> buffer_touch;
  /// Obs hooks, resolved once at session init (owned by the session's
  /// registry).
  obs::Counter* summarized_dropped = nullptr;
  obs::Gauge* synopsis_build_seconds = nullptr;
  /// Simulation-only fault injection (null in production). Set at
  /// Subscribe time from the plane's installed SimFaults; read by the
  /// session's Ingest on the lane's owning thread, so fault decisions
  /// ride the same deterministic path as the tuples themselves.
  const SimFaults* sim_faults = nullptr;
  /// Drop-cause counter for fault-injected sheds; registered only when
  /// sim_faults is installed so production metric exports are unchanged.
  obs::Counter* fault_shed = nullptr;
  /// Drop-cause counter for memory-triggered sheds (budget eviction);
  /// registered only when the session runs with a memory budget so
  /// unbudgeted metric exports are unchanged.
  obs::Counter* memory_shed = nullptr;
  /// Admission horizon for mid-stream registration (DESIGN.md §14): the
  /// plane skips this lane for events with timestamp < admit_from, so a
  /// session registered at virtual time t observes exactly the feed
  /// suffix from the next window boundary on. -inf (the default) admits
  /// everything — the up-front-registration behavior.
  VirtualTime admit_from = -std::numeric_limits<VirtualTime>::infinity();
};

/// The shared ingest plane of a StreamServer: one boundary for all
/// sessions. It owns the catalog, the stream-name interner, the shared
/// arrival clock, and every per-(session, stream) StreamLane — so arrival
/// validation (finite timestamp, global order, arity) happens once per
/// event no matter how many queries consume it, and routing is a vector
/// walk over subscribed lanes.
class IngestPlane {
 public:
  explicit IngestPlane(Catalog catalog);

  IngestPlane(const IngestPlane&) = delete;
  IngestPlane& operator=(const IngestPlane&) = delete;

  /// Resolves `name` to its interned id, creating the id on first use.
  /// Fails with NotFound when the catalog does not define the stream.
  Result<StreamId> Intern(std::string_view name);

  /// Id of an already interned stream, or an error if never interned.
  Result<StreamId> Find(std::string_view name) const;

  const std::string& NameOf(StreamId id) const;
  const Schema& SchemaOf(StreamId id) const;
  const Catalog& catalog() const { return catalog_; }

  /// Builds a lane for `session` on `stream` — queue, drop policy (with
  /// an Rng forked from `seeder`), and, for synopsizing strategies, the
  /// window synopsizer and coverage probe — and registers it for routing.
  /// The returned lane stays owned by the plane and valid for its
  /// lifetime. `utility_spec` is the MATCH pattern of the session's query
  /// and is required (non-null) iff the config selects the utility drop
  /// policy, which scores queued tuples against it.
  Result<StreamLane*> Subscribe(
      QuerySession* session, const std::string& stream,
      const engine::EngineConfig& config, VirtualDuration window_seconds,
      VirtualDuration window_slide, Rng* seeder,
      const triage::UtilityPatternSpec* utility_spec = nullptr);

  /// Detaches every lane of `session` from event routing. The lane
  /// objects stay owned by the plane (their queues/buffers remain
  /// readable by the drained session), but no future arrival reaches
  /// them. Safe mid-stream: routing mutates only on the pushing thread.
  void Unsubscribe(const QuerySession* session);

  /// Fast-forwards the arrival clock to at least `t` without delivering
  /// an event. Snapshot restore only: the restored plane must refuse the
  /// out-of-order past the donor server had already accepted.
  void AdvanceClock(VirtualTime t);

  /// True once any arrival was accepted (the arrival clock is live).
  bool saw_arrival() const { return saw_arrival_; }

  /// Validates one arrival (finite timestamp, global timestamp order,
  /// tuple arity against the stream schema) and delivers it to every
  /// subscribed lane. An arrival on a stream no session reads is counted
  /// as unrouted and otherwise ignored. Validation failures leave every
  /// session untouched.
  Status Push(StreamId stream, const Tuple& tuple);

  /// Name-resolving variant (one interner lookup, then Push by id).
  Status Push(const engine::StreamEvent& event);

  /// Batched push with the validation hoisted out of the per-event path:
  /// one pass checks every timestamp (finite, non-decreasing within the
  /// batch and against the arrival clock) before any state changes — an
  /// invalid timestamp anywhere rejects the whole batch with no event
  /// ingested — then the delivery pass routes each event, memoizing the
  /// previous event's stream so runs of same-stream arrivals skip the
  /// interner entirely. For valid input the observable effects (lane
  /// deliveries, counters, arrival clock) are exactly those of pushing
  /// the events one by one. A mid-batch arity error keeps loop
  /// semantics: events before the offender stay ingested.
  Status PushBatch(std::span<const engine::StreamEvent> events);

  /// Routing override for parallel execution: when set, every validated
  /// arrival is handed to `dispatcher` (which enqueues it on the owning
  /// session's worker) instead of running the lane's session inline.
  /// Pass nullptr to restore inline delivery. Validation, the arrival
  /// clock, and plane metrics stay on the pushing thread either way —
  /// the arrival clock keeps a single writer (DESIGN.md Sec. 11).
  using LaneDispatcher = std::function<Status(StreamLane*, const Tuple&)>;
  void SetDispatcher(LaneDispatcher dispatcher);

  /// Installs deterministic fault injection (DESIGN.md Sec. 12). Must be
  /// called before any Subscribe so every lane (and its fault-shed
  /// drop-cause counter) is wired consistently; `faults` must outlive
  /// the plane. Pass nullptr to disable for lanes created afterwards.
  void SetSimFaults(const SimFaults* faults) { sim_faults_ = faults; }
  const SimFaults* sim_faults() const { return sim_faults_; }

  /// The shared arrival clock: timestamp of the latest accepted arrival.
  VirtualTime now() const { return last_arrival_time_; }

  /// Plane-level metrics: server.events_pushed, server.events_unrouted,
  /// server.streams_interned (plus, after a parallel run's Finish, the
  /// flushed server.worker.<k>.* instruments).
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Mutable registry access for the server to flush worker-pool
  /// accounting into after the Finish barrier (single-threaded again by
  /// then).
  obs::MetricsRegistry& mutable_metrics() { return metrics_; }

 private:
  struct StreamEntry {
    std::string name;
    Schema schema;
    /// Routing fan-out: one lane per session subscribed to this stream.
    std::vector<StreamLane*> lanes;
  };

  /// The post-validation tail of Push: clock advance, counters, and
  /// delivery to every subscribed lane (via the dispatcher when set).
  Status Deliver(StreamEntry& entry, const Tuple& tuple);

  Catalog catalog_;
  /// deque: stable StreamEntry addresses across Intern calls.
  std::deque<StreamEntry> streams_;
  std::map<std::string, StreamId, std::less<>> ids_;
  std::vector<std::unique_ptr<StreamLane>> lanes_;

  VirtualTime last_arrival_time_ = 0.0;
  bool saw_arrival_ = false;
  LaneDispatcher dispatcher_;
  const SimFaults* sim_faults_ = nullptr;

  obs::MetricsRegistry metrics_;
  obs::Counter* events_pushed_ = nullptr;
  obs::Counter* events_unrouted_ = nullptr;
  obs::Counter* streams_interned_ = nullptr;
};

}  // namespace datatriage::server

#endif  // DATATRIAGE_SERVER_INGEST_H_
