#include "src/server/ingest.h"

#include <cmath>
#include <utility>

#include "src/common/string_util.h"
#include "src/server/query_session.h"

namespace datatriage::server {

using triage::SheddingStrategy;

IngestPlane::IngestPlane(Catalog catalog) : catalog_(std::move(catalog)) {
  events_pushed_ = metrics_.GetCounter("server.events_pushed");
  events_unrouted_ = metrics_.GetCounter("server.events_unrouted");
  streams_interned_ = metrics_.GetCounter("server.streams_interned");
}

Result<StreamId> IngestPlane::Intern(std::string_view name) {
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  DT_ASSIGN_OR_RETURN(StreamDef def,
                      catalog_.GetStream(std::string(name)));
  const StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(StreamEntry{std::string(name), std::move(def.schema),
                                 {}});
  ids_.emplace(streams_.back().name, id);
  streams_interned_->Add(1);
  return id;
}

Result<StreamId> IngestPlane::Find(std::string_view name) const {
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  return Status::NotFound("stream '" + std::string(name) +
                          "' is not read by any registered query");
}

const std::string& IngestPlane::NameOf(StreamId id) const {
  DT_CHECK(id < streams_.size());
  return streams_[id].name;
}

const Schema& IngestPlane::SchemaOf(StreamId id) const {
  DT_CHECK(id < streams_.size());
  return streams_[id].schema;
}

Result<StreamLane*> IngestPlane::Subscribe(
    QuerySession* session, const std::string& stream,
    const engine::EngineConfig& config, VirtualDuration window_seconds,
    VirtualDuration window_slide, Rng* seeder,
    const triage::UtilityPatternSpec* utility_spec) {
  DT_ASSIGN_OR_RETURN(StreamId id, Intern(stream));
  StreamEntry& entry = streams_[id];

  auto lane = std::make_unique<StreamLane>();
  lane->session = session;
  lane->stream_id = id;
  lane->stream_name = entry.name;
  lane->sim_faults = sim_faults_;
  if (config.strategy != SheddingStrategy::kDropOnly) {
    DT_RETURN_IF_ERROR(
        synopsis::Synopsis::CheckNumericSchema(entry.schema));
    lane->synopsizer = std::make_unique<triage::WindowSynopsizer>(
        entry.name, entry.schema, config.synopsis, window_seconds);
  }
  if (config.drop_policy == triage::DropPolicyKind::kSynergistic) {
    // EngineConfig::Validate rejected synergistic-without-synopsizer.
    DT_CHECK(lane->synopsizer != nullptr);
    lane->coverage_probe = std::make_unique<DroppedCoverageProbe>(
        lane->synopsizer.get(), window_seconds, window_slide);
    lane->queue = std::make_unique<triage::TriageQueue>(
        config.queue_capacity,
        triage::DropPolicy::MakeSynergistic(
            seeder->Fork(), lane->coverage_probe.get(),
            config.synergistic_candidates));
  } else if (config.drop_policy == triage::DropPolicyKind::kUtility) {
    if (utility_spec == nullptr) {
      return Status::InvalidArgument(
          "the utility drop policy scores queued tuples against a MATCH "
          "pattern; only MATCH queries can select drop_policy=utility "
          "(DESIGN.md §17)");
    }
    lane->queue = std::make_unique<triage::TriageQueue>(
        config.queue_capacity, triage::MakeUtilityPolicy(*utility_spec));
    // The deterministic utility policy draws no randomness, but forking
    // keeps the seeder's draw sequence aligned with every other policy so
    // a config differing only in drop_policy replays the same stream.
    (void)seeder->Fork();
  } else {
    lane->queue = std::make_unique<triage::TriageQueue>(
        config.queue_capacity,
        triage::DropPolicy::Make(config.drop_policy, seeder->Fork()));
  }
  StreamLane* raw = lane.get();
  lanes_.push_back(std::move(lane));
  entry.lanes.push_back(raw);
  return raw;
}

void IngestPlane::Unsubscribe(const QuerySession* session) {
  for (StreamEntry& entry : streams_) {
    std::erase_if(entry.lanes, [session](const StreamLane* lane) {
      return lane->session == session;
    });
  }
}

void IngestPlane::AdvanceClock(VirtualTime t) {
  if (!saw_arrival_ || t > last_arrival_time_) {
    saw_arrival_ = true;
    last_arrival_time_ = t;
  }
}

void IngestPlane::SetDispatcher(LaneDispatcher dispatcher) {
  dispatcher_ = std::move(dispatcher);
}

Status IngestPlane::Deliver(StreamEntry& entry, const Tuple& tuple) {
  if (tuple.size() != entry.schema.num_fields()) {
    return Status::InvalidArgument(
        StringPrintf("tuple arity %zu does not match stream '%s' (%zu)",
                     tuple.size(), entry.name.c_str(),
                     entry.schema.num_fields()));
  }
  saw_arrival_ = true;
  last_arrival_time_ = tuple.timestamp();
  events_pushed_->Add(1);
  if (entry.lanes.empty()) {
    events_unrouted_->Add(1);
    return Status::OK();
  }
  for (StreamLane* lane : entry.lanes) {
    // Effective-from admission (DESIGN.md §14): a mid-stream-registered
    // session's lanes only see events from its admission horizon on.
    if (tuple.timestamp() < lane->admit_from) continue;
    if (dispatcher_) {
      DT_RETURN_IF_ERROR(dispatcher_(lane, tuple));
    } else {
      DT_RETURN_IF_ERROR(lane->session->Ingest(lane, tuple));
    }
  }
  return Status::OK();
}

Status IngestPlane::Push(StreamId stream, const Tuple& tuple) {
  DT_CHECK(stream < streams_.size());
  StreamEntry& entry = streams_[stream];
  const VirtualTime arrival = tuple.timestamp();
  // Reject non-finite timestamps before any state changes: a NaN would
  // slide past the ordering check below (every comparison is false) and
  // an infinity would register a window at id ~2^63, hanging Finish —
  // silent misbehavior either way once the cast to WindowId happens.
  if (!std::isfinite(arrival)) {
    return Status::InvalidArgument(StringPrintf(
        "event timestamp on stream '%s' must be finite (got %g)",
        entry.name.c_str(), arrival));
  }
  if (saw_arrival_ && arrival < last_arrival_time_) {
    return Status::InvalidArgument(StringPrintf(
        "events must arrive in timestamp order (%g after %g)", arrival,
        last_arrival_time_));
  }
  return Deliver(entry, tuple);
}

Status IngestPlane::PushBatch(std::span<const engine::StreamEvent> events) {
  // Pass 1 — timestamps, batch-atomically: every failure here leaves the
  // plane (and every session) untouched, which per-event Push cannot
  // promise for an error in the middle of a burst.
  VirtualTime previous = last_arrival_time_;
  bool saw_previous = saw_arrival_;
  for (size_t i = 0; i < events.size(); ++i) {
    const VirtualTime arrival = events[i].tuple.timestamp();
    if (!std::isfinite(arrival)) {
      return Status::InvalidArgument(StringPrintf(
          "batch event %zu on stream '%s': timestamp must be finite "
          "(got %g); no event of the batch was ingested",
          i, events[i].stream.c_str(), arrival));
    }
    if (saw_previous && arrival < previous) {
      return Status::InvalidArgument(StringPrintf(
          "batch event %zu: events must arrive in timestamp order "
          "(%g after %g); no event of the batch was ingested",
          i, arrival, previous));
    }
    saw_previous = true;
    previous = arrival;
  }
  // Pass 2 — delivery, with the interner lookup memoized across runs of
  // same-stream events (bursts from one source are the common case).
  StreamEntry* entry = nullptr;
  std::string_view entry_name;
  for (const engine::StreamEvent& event : events) {
    if (entry == nullptr || event.stream != entry_name) {
      DT_ASSIGN_OR_RETURN(StreamId id, Intern(event.stream));
      entry = &streams_[id];
      entry_name = entry->name;
    }
    DT_RETURN_IF_ERROR(Deliver(*entry, event.tuple));
  }
  return Status::OK();
}

Status IngestPlane::Push(const engine::StreamEvent& event) {
  // Intern rather than Find: an arrival on a catalog stream that no
  // session reads is still a valid (unrouted) arrival; only streams the
  // catalog does not define are rejected.
  DT_ASSIGN_OR_RETURN(StreamId id, Intern(event.stream));
  return Push(id, event.tuple);
}

}  // namespace datatriage::server
