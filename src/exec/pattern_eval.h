#ifndef DATATRIAGE_EXEC_PATTERN_EVAL_H_
#define DATATRIAGE_EXEC_PATTERN_EVAL_H_

#include "src/exec/evaluator.h"
#include "src/exec/relation.h"
#include "src/plan/logical_plan.h"

namespace datatriage::exec {

/// NFA-style evaluation of a kPattern plan node over one window's input
/// (DESIGN.md §17). Semantics are skip-till-any-match over the window:
/// one output row per strictly ordered index subsequence i1 < ... < ik of
/// the input whose tuples all carry the same partition-key value, satisfy
/// step predicate j at position j, and span at most `within` seconds from
/// the first to the last timestamp. Matches never cross windows.
///
/// The matcher keeps per-key partial-match lists (one level per matched
/// prefix length) and extends them tuple-at-a-time in input order, so the
/// cost is proportional to the number of live partials rather than n^k
/// when the pattern is selective. Output rows are (key, t1, ..., tk) with
/// the last event's timestamp as the row timestamp, emitted in creation
/// order: ascending final index, then ascending earlier indices
/// right-to-left (i.e. sorted by the reversed index sequence).
RelationView EvaluatePattern(const plan::LogicalPlan& plan,
                             const RelationView& input, ExecStats* stats);

/// Brute-force O(n^k) reference matcher: enumerates every index
/// subsequence and filters by key/step/WITHIN, then orders rows exactly
/// like EvaluatePattern. Differential-test oracle only — never on a hot
/// path.
Relation EvaluatePatternBruteForce(const plan::LogicalPlan& plan,
                                   const Relation& input);

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_PATTERN_EVAL_H_
