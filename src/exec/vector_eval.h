#ifndef DATATRIAGE_EXEC_VECTOR_EVAL_H_
#define DATATRIAGE_EXEC_VECTOR_EVAL_H_

#include <map>
#include <memory>

#include "src/common/result.h"
#include "src/exec/column_batch.h"
#include "src/exec/evaluator.h"
#include "src/exec/relation.h"
#include "src/plan/logical_plan.h"

namespace datatriage::exec {

/// Column-major plan evaluator: the batch-at-a-time counterpart of
/// Evaluator. Operators exchange BatchViews (shared column batches plus
/// selection vectors) instead of RelationViews; filters and predicates run
/// as tight loops over typed arrays producing selection vectors, equijoins
/// hash whole key columns at once into FlatTable, and grouped aggregation
/// accumulates into a flat per-(group, aggregate) arena.
///
/// Contract: for any plan and inputs, the result Relation and the ExecStats
/// are byte-for-byte identical to Evaluator's — same rows, same row order,
/// same timestamps, same counter values. Every kernel reproduces the scalar
/// semantics exactly (double promotion in hashes/comparisons, FlatTable
/// slot-order outputs, FP accumulation in row-arrival order); rows the
/// kernels cannot vectorize (mixed-type "exception" columns, string
/// expressions inside arithmetic) fall back to per-row Value evaluation
/// within the same operator, never to a different answer.
///
/// The evaluator borrows from `*inputs` (string cells in scan batches point
/// into provider tuples), so it must not outlive the provider.
class VectorEvaluator {
 public:
  /// With a non-null `pool`, join and aggregate kernels split inputs of
  /// at least `parallel_min_rows` rows into morsels across the pool's
  /// threads; the deterministic central merge keeps the byte-identity
  /// contract above intact (DESIGN.md §16.2).
  explicit VectorEvaluator(const RelationProvider* inputs,
                           TaskPool* pool = nullptr,
                           size_t parallel_min_rows = 0)
      : inputs_(inputs),
        pool_(pool),
        parallel_min_rows_(parallel_min_rows) {}

  VectorEvaluator(const VectorEvaluator&) = delete;
  VectorEvaluator& operator=(const VectorEvaluator&) = delete;

  /// Evaluates `plan`; the result's column order matches plan.schema().
  Result<Relation> Evaluate(const plan::LogicalPlan& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  Result<BatchView> EvaluateView(const plan::LogicalPlan& plan);

  Result<BatchView> EvaluateScan(const plan::LogicalPlan& plan);

  const RelationProvider* inputs_;
  TaskPool* pool_;
  size_t parallel_min_rows_;
  ExecStats stats_;
  /// Row→column conversion happens once per scanned channel per
  /// evaluation, at the window-buffer boundary; plans that scan the same
  /// channel twice (differential rewrites) share the batch.
  std::map<ChannelKey, std::shared_ptr<const ColumnBatch>> scan_cache_;
};

/// The vectorized operator kernels, the batch-at-a-time mirror of
/// `namespace scalar` in evaluator.h. Each takes fully-evaluated child
/// BatchViews, charges `stats` exactly as the scalar kernel does, and
/// returns the operator's output view without materializing rows. Exposed
/// so per-operator benchmarks (and future pipeline stages) can drive one
/// kernel over prebuilt batches; VectorEvaluator is a thin dispatcher
/// over these.
namespace vectorized {

BatchView Filter(const plan::LogicalPlan& plan, const BatchView& input,
                 ExecStats* stats);
BatchView Project(const plan::LogicalPlan& plan, const BatchView& input,
                  ExecStats* stats);
BatchView Compute(const plan::LogicalPlan& plan, const BatchView& input,
                  ExecStats* stats);
/// Join and Aggregate optionally run morsel-parallel: with a pool and an
/// input of at least `parallel_min_rows` rows, build/probe (join) and
/// group discovery (aggregate) split into fixed-size morsels whose
/// per-thread partial tables merge centrally in morsel order,
/// reproducing the serial kernel's bytes exactly (DESIGN.md §16.2).
/// Defaults keep both kernels single-threaded.
BatchView Join(const plan::LogicalPlan& plan, const BatchView& left,
               const BatchView& right, ExecStats* stats,
               TaskPool* pool = nullptr, size_t parallel_min_rows = 0);
BatchView UnionAll(const BatchView& left, const BatchView& right,
                   ExecStats* stats);
BatchView SetDifference(const BatchView& left, const BatchView& right,
                        ExecStats* stats);
Result<BatchView> Aggregate(const plan::LogicalPlan& plan,
                            const BatchView& input, ExecStats* stats,
                            TaskPool* pool = nullptr,
                            size_t parallel_min_rows = 0);

}  // namespace vectorized

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_VECTOR_EVAL_H_
