#ifndef DATATRIAGE_EXEC_TASK_POOL_H_
#define DATATRIAGE_EXEC_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace datatriage::exec {

/// A shared pool of helper threads for intra-operator parallelism
/// (DESIGN.md §16.2). Operator kernels call ParallelFor to split a
/// morsel loop across the helpers; the *calling* thread always
/// participates, so a ParallelFor never deadlocks when every helper is
/// busy with another session's job (and a pool with zero helpers is
/// just a serial loop). Multiple sessions may run ParallelFor
/// concurrently: jobs queue FIFO and helpers drain whichever is
/// oldest.
///
/// Determinism contract: ParallelFor only promises that fn(i) runs
/// exactly once for every i in [0, n), on some thread, before the call
/// returns. Callers keep results byte-identical to a serial loop by
/// writing each morsel's output to its own disjoint slot and merging
/// the slots in index order afterwards — the two-phase pattern the
/// vectorized join/aggregate kernels use.
class TaskPool {
 public:
  /// Starts `helper_threads` dedicated helpers. A session configured
  /// with intra_session_threads = T gets T-way kernels from a pool of
  /// T - 1 helpers plus its own worker.
  explicit TaskPool(size_t helper_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Maximum threads one ParallelFor can spread across: the helpers
  /// plus the calling thread.
  size_t parallelism() const { return helpers_.size() + 1; }

  /// Runs fn(i) exactly once for every i in [0, n), on the calling
  /// thread and any idle helpers, and returns when all n calls have
  /// finished. fn must not throw and must not call ParallelFor on the
  /// same pool (nested jobs would deadlock the caller's wait).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// One ParallelFor in flight: helpers claim indices from `next` and
  /// bump `done`; the submitting thread waits for done == n.
  struct Job {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  /// Claims and runs indices of `job` until none remain; returns the
  /// number of indices this thread executed.
  static size_t WorkOn(Job* job);

  void RunHelper();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> helpers_;
};

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_TASK_POOL_H_
