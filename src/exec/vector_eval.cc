#include "src/exec/vector_eval.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/flat_table.h"
#include "src/common/logging.h"
#include "src/exec/task_pool.h"
#include "src/plan/expression.h"
#include "src/sql/ast.h"

namespace datatriage::exec {

namespace {

using plan::BoundExpr;
using plan::LogicalPlan;

constexpr uint32_t kNil = UINT32_MAX;

/// Rows per morsel for the parallel join/aggregate phases. The value is
/// a speed knob only: every split merges back in morsel order, so the
/// output bytes never depend on it.
constexpr size_t kMorselRows = 1024;

/// Number of morsels an `n`-row kernel input splits into under `pool`,
/// or 0 when the input stays on the single-threaded loop: no pool (or a
/// pool with no helpers), fewer rows than the configured floor, or too
/// few rows to fill two morsels.
size_t MorselCount(const TaskPool* pool, size_t parallel_min_rows,
                   size_t n) {
  if (pool == nullptr || pool->parallelism() < 2) return 0;
  if (n < parallel_min_rows || n < 2 * kMorselRows) return 0;
  return (n + kMorselRows - 1) / kMorselRows;
}

/// HashRows, split across the pool when the domain is large enough.
/// Each position's hash is independent, so the bytes match the serial
/// pass exactly.
void HashDomain(TaskPool* pool, size_t parallel_min_rows,
                const std::vector<const Column*>& cols,
                const uint32_t* rows, size_t n,
                std::vector<uint64_t>* out) {
  const size_t num_morsels = MorselCount(pool, parallel_min_rows, n);
  if (num_morsels == 0) {
    HashRows(cols, rows, n, out);
    return;
  }
  out->resize(n);
  uint64_t* dst = out->data();
  pool->ParallelFor(num_morsels, [&](size_t m) {
    const size_t start = m * kMorselRows;
    HashRowsRange(cols, rows, start, std::min(kMorselRows, n - start),
                  dst);
  });
}

/// The row domain a kernel operates over: `rows == nullptr` means rows
/// 0..n-1 of the batch, otherwise `rows[0..n)` are absolute row indices.
struct Domain {
  const ColumnBatch* batch = nullptr;  // may be null only when n == 0
  const uint32_t* rows = nullptr;
  size_t n = 0;

  uint32_t Abs(size_t i) const {
    return rows != nullptr ? rows[i] : static_cast<uint32_t>(i);
  }
};

Domain DomainOf(const BatchView& view) {
  return Domain{view.batch.get(),
                view.sel != nullptr ? view.sel->data() : nullptr,
                view.size()};
}

/// Dense numeric expression result. `f64` always holds the promoted
/// doubles (what Value::AsDouble would return); `i64` is additionally
/// valid when every row is a runtime Int64 (`is_i64`), which is exactly
/// when BoundExpr::Evaluate would have produced Value::Int64 rows — the
/// distinction drives the int64-vs-double arithmetic paths below.
struct NumVec {
  std::vector<double> f64;
  std::vector<int64_t> i64;
  bool is_i64 = false;
};

std::vector<uint8_t> EvalBool(const BoundExpr& e, const Domain& d);

NumVec MaskToNum(std::vector<uint8_t> mask) {
  NumVec out;
  out.is_i64 = true;
  const size_t n = mask.size();
  out.i64.resize(n);
  out.f64.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out.i64[i] = mask[i] ? 1 : 0;
    out.f64[i] = mask[i] ? 1.0 : 0.0;
  }
  return out;
}

/// True when every row of `e` can be computed from the typed arrays
/// alone, with results identical to per-row BoundExpr::Evaluate. Columns
/// must be exception-free (so static types equal runtime types), and
/// comparisons must not mix string and numeric operands (the binder
/// rejects those; the per-row path is the conservative catch-all).
bool ExprVectorizable(const BoundExpr& e, const ColumnBatch& batch) {
  switch (e.kind()) {
    case BoundExpr::Kind::kColumn:
      return e.column_index() < batch.num_cols() &&
             batch.col(e.column_index()).clean();
    case BoundExpr::Kind::kLiteral:
      return true;
    case BoundExpr::Kind::kUnary:
      return ExprVectorizable(*e.lhs(), batch);
    case BoundExpr::Kind::kBinary: {
      if (sql::IsComparisonOp(e.binary_op()) &&
          (e.lhs()->result_type() == FieldType::kString) !=
              (e.rhs()->result_type() == FieldType::kString)) {
        return false;
      }
      return ExprVectorizable(*e.lhs(), batch) &&
             ExprVectorizable(*e.rhs(), batch);
    }
  }
  return false;
}

/// Dense string-pointer expression result; only bare string columns and
/// string literals produce strings (arithmetic on strings is a bind
/// error), so those are the only cases.
std::vector<const std::string*> EvalStr(const BoundExpr& e, const Domain& d) {
  std::vector<const std::string*> out(d.n);
  if (e.kind() == BoundExpr::Kind::kColumn) {
    const Column& col = d.batch->col(e.column_index());
    DT_CHECK(col.is_string()) << "string eval of non-string column";
    for (size_t i = 0; i < d.n; ++i) out[i] = col.str[d.Abs(i)];
    return out;
  }
  DT_CHECK(e.kind() == BoundExpr::Kind::kLiteral && e.literal().is_string())
      << "string eval of non-string expression";
  const std::string* s = &e.literal().str();
  for (size_t i = 0; i < d.n; ++i) out[i] = s;
  return out;
}

NumVec EvalNum(const BoundExpr& e, const Domain& d) {
  const size_t n = d.n;
  NumVec out;
  switch (e.kind()) {
    case BoundExpr::Kind::kColumn: {
      const Column& col = d.batch->col(e.column_index());
      DT_CHECK(!col.is_string()) << "numeric eval of string column";
      out.f64.resize(n);
      const double* f = col.f64.data();
      for (size_t i = 0; i < n; ++i) out.f64[i] = f[d.Abs(i)];
      if (col.kind == FieldType::kInt64) {
        out.is_i64 = true;
        out.i64.resize(n);
        const int64_t* x = col.i64.data();
        for (size_t i = 0; i < n; ++i) out.i64[i] = x[d.Abs(i)];
      }
      return out;
    }
    case BoundExpr::Kind::kLiteral: {
      const Value& v = e.literal();
      DT_CHECK(v.is_numeric()) << "numeric eval of string literal";
      out.f64.assign(n, v.AsDouble());
      if (v.is_int64()) {
        out.is_i64 = true;
        out.i64.assign(n, v.int64());
      }
      return out;
    }
    case BoundExpr::Kind::kUnary: {
      if (e.unary_op() == sql::UnaryOp::kNot) {
        return MaskToNum(EvalBool(*e.lhs(), d));
      }
      // Negation: Int64 rows stay Int64, everything else becomes Double
      // (matching the scalar runtime-type dispatch).
      NumVec a = EvalNum(*e.lhs(), d);
      if (a.is_i64) {
        for (size_t i = 0; i < n; ++i) {
          a.i64[i] = -a.i64[i];
          a.f64[i] = static_cast<double>(a.i64[i]);
        }
      } else {
        for (size_t i = 0; i < n; ++i) a.f64[i] = -a.f64[i];
      }
      return a;
    }
    case BoundExpr::Kind::kBinary: {
      const sql::BinaryOp op = e.binary_op();
      if (sql::IsComparisonOp(op) || op == sql::BinaryOp::kAnd ||
          op == sql::BinaryOp::kOr) {
        return MaskToNum(EvalBool(e, d));
      }
      NumVec a = EvalNum(*e.lhs(), d);
      NumVec b = EvalNum(*e.rhs(), d);
      // Exact int64 arithmetic when both operands are runtime Int64 and
      // the op is not division, as in the scalar evaluator.
      if (a.is_i64 && b.is_i64 && op != sql::BinaryOp::kDiv) {
        out.is_i64 = true;
        out.i64.resize(n);
        out.f64.resize(n);
        switch (op) {
          case sql::BinaryOp::kAdd:
            for (size_t i = 0; i < n; ++i) out.i64[i] = a.i64[i] + b.i64[i];
            break;
          case sql::BinaryOp::kSub:
            for (size_t i = 0; i < n; ++i) out.i64[i] = a.i64[i] - b.i64[i];
            break;
          default:
            for (size_t i = 0; i < n; ++i) out.i64[i] = a.i64[i] * b.i64[i];
            break;
        }
        for (size_t i = 0; i < n; ++i) {
          out.f64[i] = static_cast<double>(out.i64[i]);
        }
        return out;
      }
      out.f64.resize(n);
      const double* x = a.f64.data();
      const double* y = b.f64.data();
      switch (op) {
        case sql::BinaryOp::kAdd:
          for (size_t i = 0; i < n; ++i) out.f64[i] = x[i] + y[i];
          break;
        case sql::BinaryOp::kSub:
          for (size_t i = 0; i < n; ++i) out.f64[i] = x[i] - y[i];
          break;
        case sql::BinaryOp::kMul:
          for (size_t i = 0; i < n; ++i) out.f64[i] = x[i] * y[i];
          break;
        case sql::BinaryOp::kDiv:
          for (size_t i = 0; i < n; ++i) {
            out.f64[i] = y[i] == 0.0 ? 0.0 : x[i] / y[i];
          }
          break;
        default:
          DT_CHECK(false) << "unhandled binary op in vectorized eval";
      }
      return out;
    }
  }
  DT_CHECK(false) << "unhandled expression kind";
  return out;
}

std::vector<uint8_t> EvalBool(const BoundExpr& e, const Domain& d) {
  const size_t n = d.n;
  if (e.kind() == BoundExpr::Kind::kUnary &&
      e.unary_op() == sql::UnaryOp::kNot) {
    std::vector<uint8_t> a = EvalBool(*e.lhs(), d);
    for (size_t i = 0; i < n; ++i) a[i] = a[i] == 0 ? 1 : 0;
    return a;
  }
  if (e.kind() == BoundExpr::Kind::kBinary) {
    const sql::BinaryOp op = e.binary_op();
    // The scalar evaluator short-circuits AND/OR, but expressions are
    // pure, so evaluating both sides gives the same truth value.
    if (op == sql::BinaryOp::kAnd || op == sql::BinaryOp::kOr) {
      std::vector<uint8_t> a = EvalBool(*e.lhs(), d);
      std::vector<uint8_t> b = EvalBool(*e.rhs(), d);
      if (op == sql::BinaryOp::kAnd) {
        for (size_t i = 0; i < n; ++i) a[i] = a[i] & b[i];
      } else {
        for (size_t i = 0; i < n; ++i) a[i] = a[i] | b[i];
      }
      return a;
    }
    if (sql::IsComparisonOp(op)) {
      std::vector<uint8_t> m(n);
      if (e.lhs()->result_type() == FieldType::kString) {
        // ExprVectorizable guarantees both sides are strings.
        std::vector<const std::string*> a = EvalStr(*e.lhs(), d);
        std::vector<const std::string*> b = EvalStr(*e.rhs(), d);
        switch (op) {
          case sql::BinaryOp::kEq:
            for (size_t i = 0; i < n; ++i) m[i] = *a[i] == *b[i];
            break;
          case sql::BinaryOp::kNotEq:
            for (size_t i = 0; i < n; ++i) m[i] = !(*a[i] == *b[i]);
            break;
          case sql::BinaryOp::kLess:
            for (size_t i = 0; i < n; ++i) m[i] = *a[i] < *b[i];
            break;
          case sql::BinaryOp::kLessEq:
            for (size_t i = 0; i < n; ++i) m[i] = !(*b[i] < *a[i]);
            break;
          case sql::BinaryOp::kGreater:
            for (size_t i = 0; i < n; ++i) m[i] = *b[i] < *a[i];
            break;
          default:  // kGreaterEq
            for (size_t i = 0; i < n; ++i) m[i] = !(*a[i] < *b[i]);
            break;
        }
        return m;
      }
      NumVec a = EvalNum(*e.lhs(), d);
      NumVec b = EvalNum(*e.rhs(), d);
      const double* x = a.f64.data();
      const double* y = b.f64.data();
      // Exact double-promotion comparisons, with the scalar evaluator's
      // derived forms (a <= b is !(b < a), etc.) so NaN behaves
      // identically on both paths.
      switch (op) {
        case sql::BinaryOp::kEq:
          for (size_t i = 0; i < n; ++i) m[i] = x[i] == y[i];
          break;
        case sql::BinaryOp::kNotEq:
          for (size_t i = 0; i < n; ++i) m[i] = !(x[i] == y[i]);
          break;
        case sql::BinaryOp::kLess:
          for (size_t i = 0; i < n; ++i) m[i] = x[i] < y[i];
          break;
        case sql::BinaryOp::kLessEq:
          for (size_t i = 0; i < n; ++i) m[i] = !(y[i] < x[i]);
          break;
        case sql::BinaryOp::kGreater:
          for (size_t i = 0; i < n; ++i) m[i] = y[i] < x[i];
          break;
        default:  // kGreaterEq
          for (size_t i = 0; i < n; ++i) m[i] = !(x[i] < y[i]);
          break;
      }
      return m;
    }
  }
  // Any other expression as a condition: ValueIsTrue semantics — strings
  // are true when non-empty, numerics when the promoted double is
  // non-zero.
  if (e.result_type() == FieldType::kString) {
    std::vector<const std::string*> s = EvalStr(e, d);
    std::vector<uint8_t> m(n);
    for (size_t i = 0; i < n; ++i) m[i] = !s[i]->empty();
    return m;
  }
  NumVec v = EvalNum(e, d);
  std::vector<uint8_t> m(n);
  for (size_t i = 0; i < n; ++i) m[i] = v.f64[i] != 0.0;
  return m;
}

/// Copies the domain's rows of `src` into a dense column, preserving
/// exception rows exactly. String pointers are shared, not copied; the
/// caller retains the parent batch to keep them alive.
std::shared_ptr<const Column> GatherColumn(const Column& src,
                                           const Domain& d) {
  const size_t n = d.n;
  Column out;
  out.kind = src.kind;
  switch (src.kind) {
    case FieldType::kInt64:
      out.i64.resize(n);
      out.f64.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = d.Abs(i);
        out.i64[i] = src.i64[r];
        out.f64[i] = src.f64[r];
      }
      break;
    case FieldType::kDouble:
    case FieldType::kTimestamp:
      out.f64.resize(n);
      for (size_t i = 0; i < n; ++i) out.f64[i] = src.f64[d.Abs(i)];
      break;
    case FieldType::kString:
      out.str.resize(n);
      for (size_t i = 0; i < n; ++i) out.str[i] = src.str[d.Abs(i)];
      out.str_storage = src.str_storage;
      break;
  }
  if (!src.exception.empty()) {
    bool any = false;
    out.exception.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint32_t r = d.Abs(i);
      const uint8_t level = src.exception[r];
      if (level == 0) continue;
      any = true;
      out.exception[i] = level;
      out.has_cross_class |= level == Column::kCrossClass;
      out.exception_values.emplace_back(static_cast<uint32_t>(i),
                                        src.ExceptionAt(r));
    }
    if (!any) out.exception.clear();
  }
  return std::make_shared<const Column>(std::move(out));
}

/// A column holding `n` copies of `v` (compute over a literal).
std::shared_ptr<const Column> LiteralColumn(const Value& v, size_t n) {
  Column out;
  out.kind = v.type();
  switch (out.kind) {
    case FieldType::kInt64:
      out.i64.assign(n, v.int64());
      out.f64.assign(n, v.AsDouble());
      break;
    case FieldType::kDouble:
    case FieldType::kTimestamp:
      out.f64.assign(n, v.AsDouble());
      break;
    case FieldType::kString: {
      auto store = std::make_shared<std::vector<std::string>>(1, v.str());
      out.str.assign(n, &store->front());
      out.str_storage = std::move(store);
      break;
    }
  }
  return std::make_shared<const Column>(std::move(out));
}

std::shared_ptr<const std::vector<VirtualTime>> GatherTimestamps(
    const BatchView& view) {
  if (view.sel == nullptr) return view.batch->timestamps();
  auto ts = std::make_shared<std::vector<VirtualTime>>();
  const size_t n = view.size();
  ts->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ts->push_back(view.batch->timestamp(view.RowIndex(i)));
  }
  return ts;
}

/// Row equality on parallel index lists, mirroring ValuesEqualAt.
bool RowsEqualOnKeys(const ColumnBatch& a, size_t ar,
                     const std::vector<size_t>& akeys, const ColumnBatch& b,
                     size_t br, const std::vector<size_t>& bkeys) {
  for (size_t k = 0; k < akeys.size(); ++k) {
    if (!ColumnsEqualAt(a.col(akeys[k]), ar, b.col(bkeys[k]), br)) {
      return false;
    }
  }
  return true;
}

/// Full-row equality, mirroring Tuple::operator== (values only, no
/// timestamp). Arity must already be known equal.
bool RowsEqualAllCols(const ColumnBatch& a, size_t ar, const ColumnBatch& b,
                      size_t br) {
  const size_t cols = a.num_cols();
  for (size_t c = 0; c < cols; ++c) {
    if (!ColumnsEqualAt(a.col(c), ar, b.col(c), br)) return false;
  }
  return true;
}

std::vector<const Column*> KeyColumns(const BatchView& view,
                                      const std::vector<size_t>& keys) {
  std::vector<const Column*> cols;
  if (view.size() == 0) return cols;  // empty side may have a null batch
  cols.reserve(keys.size());
  for (size_t k : keys) cols.push_back(&view.batch->col(k));
  return cols;
}

std::vector<const Column*> AllColumns(const BatchView& view) {
  std::vector<const Column*> cols;
  if (view.size() == 0) return cols;
  const size_t n = view.batch->num_cols();
  cols.reserve(n);
  for (size_t c = 0; c < n; ++c) cols.push_back(&view.batch->col(c));
  return cols;
}

}  // namespace

Result<Relation> VectorEvaluator::Evaluate(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(BatchView view, EvaluateView(plan));
  return view.ToRelation();
}

Result<BatchView> VectorEvaluator::EvaluateView(const LogicalPlan& plan) {
  switch (plan.kind()) {
    case LogicalPlan::Kind::kEmpty:
      return BatchView{};
    case LogicalPlan::Kind::kStreamScan:
      return EvaluateScan(plan);
    case LogicalPlan::Kind::kFilter: {
      DT_ASSIGN_OR_RETURN(BatchView input, EvaluateView(*plan.child(0)));
      return vectorized::Filter(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kProject: {
      DT_ASSIGN_OR_RETURN(BatchView input, EvaluateView(*plan.child(0)));
      return vectorized::Project(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kCompute: {
      DT_ASSIGN_OR_RETURN(BatchView input, EvaluateView(*plan.child(0)));
      return vectorized::Compute(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kJoin: {
      DT_ASSIGN_OR_RETURN(BatchView left, EvaluateView(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(BatchView right, EvaluateView(*plan.child(1)));
      return vectorized::Join(plan, left, right, &stats_, pool_,
                              parallel_min_rows_);
    }
    case LogicalPlan::Kind::kUnionAll: {
      DT_ASSIGN_OR_RETURN(BatchView left, EvaluateView(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(BatchView right, EvaluateView(*plan.child(1)));
      return vectorized::UnionAll(left, right, &stats_);
    }
    case LogicalPlan::Kind::kSetDifference: {
      DT_ASSIGN_OR_RETURN(BatchView left, EvaluateView(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(BatchView right, EvaluateView(*plan.child(1)));
      return vectorized::SetDifference(left, right, &stats_);
    }
    case LogicalPlan::Kind::kAggregate: {
      DT_ASSIGN_OR_RETURN(BatchView input, EvaluateView(*plan.child(0)));
      return vectorized::Aggregate(plan, input, &stats_, pool_,
                                   parallel_min_rows_);
    }
    case LogicalPlan::Kind::kPattern:
      // Pattern plans are routed to the scalar executor by EvaluatePlan
      // (vectorized parity is deferred; see DESIGN.md §17).
      return Status::Unimplemented(
          "pattern evaluation has no vectorized kernel");
  }
  return Status::Internal("unhandled plan kind in vector evaluator");
}

Result<BatchView> VectorEvaluator::EvaluateScan(const LogicalPlan& plan) {
  const ChannelKey key{plan.stream(), plan.channel()};
  auto it = inputs_->find(key);
  if (it == inputs_->end()) return BatchView{};
  stats_.tuples_scanned += static_cast<int64_t>(it->second.size());
  auto cached = scan_cache_.find(key);
  if (cached == scan_cache_.end()) {
    cached =
        scan_cache_.emplace(key, ColumnBatch::FromRelation(it->second)).first;
  }
  return BatchView{cached->second, nullptr};
}

namespace vectorized {

BatchView Filter(const LogicalPlan& plan, const BatchView& input,
                 ExecStats* stats) {
  const size_t n = input.size();
  stats->comparisons += static_cast<int64_t>(n);
  auto sel = std::make_shared<std::vector<uint32_t>>();
  sel->reserve(n);
  if (n > 0) {
    const Domain d = DomainOf(input);
    const BoundExpr& pred = *plan.predicate();
    if (ExprVectorizable(pred, *input.batch)) {
      const std::vector<uint8_t> mask = EvalBool(pred, d);
      for (size_t i = 0; i < n; ++i) {
        if (mask[i]) sel->push_back(input.RowIndex(i));
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = input.RowIndex(i);
        if (pred.EvaluatesToTrue(input.batch->RowAt(r))) sel->push_back(r);
      }
    }
  }
  stats->tuples_output += static_cast<int64_t>(sel->size());
  return BatchView{input.batch, std::move(sel)};
}

BatchView Project(const LogicalPlan& plan, const BatchView& input,
                  ExecStats* stats) {
  stats->tuples_output += static_cast<int64_t>(input.size());
  if (input.size() == 0) return BatchView{};
  // Pure column-pointer shuffle: the selection vector carries over.
  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(plan.projection().size());
  for (size_t idx : plan.projection()) {
    cols.push_back(input.batch->col_ptr(idx));
  }
  auto batch = ColumnBatch::FromColumns(
      std::move(cols), input.batch->timestamps(), {input.batch});
  return BatchView{std::move(batch), input.sel};
}

BatchView Compute(const LogicalPlan& plan, const BatchView& input,
                  ExecStats* stats) {
  const size_t n = input.size();
  stats->tuples_output += static_cast<int64_t>(n);
  if (n == 0) return BatchView{};
  const auto& exprs = plan.compute_exprs();

  bool all_refs = true;
  for (const plan::BoundExprPtr& e : exprs) {
    if (e->kind() != BoundExpr::Kind::kColumn) {
      all_refs = false;
      break;
    }
  }
  if (all_refs) {
    // Column reordering/duplication only — share columns and selection.
    std::vector<std::shared_ptr<const Column>> cols;
    cols.reserve(exprs.size());
    for (const plan::BoundExprPtr& e : exprs) {
      cols.push_back(input.batch->col_ptr(e->column_index()));
    }
    auto batch = ColumnBatch::FromColumns(
        std::move(cols), input.batch->timestamps(), {input.batch});
    return BatchView{std::move(batch), input.sel};
  }

  const Domain d = DomainOf(input);
  bool vectorizable = true;
  for (const plan::BoundExprPtr& e : exprs) {
    if (e->kind() == BoundExpr::Kind::kColumn ||
        e->kind() == BoundExpr::Kind::kLiteral) {
      continue;  // gathered / broadcast exactly, exceptions and all
    }
    if (!ExprVectorizable(*e, *input.batch) ||
        e->result_type() == FieldType::kString) {
      vectorizable = false;
      break;
    }
  }

  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(exprs.size());
  if (vectorizable) {
    for (const plan::BoundExprPtr& e : exprs) {
      if (e->kind() == BoundExpr::Kind::kColumn) {
        cols.push_back(GatherColumn(input.batch->col(e->column_index()), d));
      } else if (e->kind() == BoundExpr::Kind::kLiteral) {
        cols.push_back(LiteralColumn(e->literal(), n));
      } else {
        NumVec v = EvalNum(*e, d);
        Column c;
        if (v.is_i64) {
          c.kind = FieldType::kInt64;
          c.i64 = std::move(v.i64);
          c.f64 = std::move(v.f64);
        } else {
          c.kind = FieldType::kDouble;
          c.f64 = std::move(v.f64);
        }
        cols.push_back(std::make_shared<const Column>(std::move(c)));
      }
    }
  } else {
    // Per-row fallback: identical to the scalar loop, still columnar out.
    std::vector<ColumnBuilder> builders(exprs.size());
    for (ColumnBuilder& b : builders) b.Reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const Tuple t = input.batch->RowAt(d.Abs(i));
      for (size_t e = 0; e < exprs.size(); ++e) {
        builders[e].Append(exprs[e]->Evaluate(t));
      }
    }
    for (ColumnBuilder& b : builders) cols.push_back(b.Finish());
  }
  auto batch = ColumnBatch::FromColumns(std::move(cols),
                                        GatherTimestamps(input),
                                        {input.batch});
  return BatchView{std::move(batch), nullptr};
}

BatchView Join(const LogicalPlan& plan, const BatchView& left,
               const BatchView& right, ExecStats* stats, TaskPool* pool,
               size_t parallel_min_rows) {
  const size_t nl = left.size();
  const size_t nr = right.size();
  // Absolute (left row, right row) index pairs, in scalar emission order.
  std::vector<uint32_t> l_rows, r_rows;

  if (plan.join_keys().empty()) {
    // Cross product.
    stats->join_probes += static_cast<int64_t>(nl) * static_cast<int64_t>(nr);
    l_rows.reserve(nl * nr);
    r_rows.reserve(nl * nr);
    for (size_t li = 0; li < nl; ++li) {
      const uint32_t lr = left.RowIndex(li);
      for (size_t ri = 0; ri < nr; ++ri) {
        l_rows.push_back(lr);
        r_rows.push_back(right.RowIndex(ri));
      }
    }
  } else {
    std::vector<size_t> left_keys, right_keys;
    for (const auto& [l, r] : plan.join_keys()) {
      left_keys.push_back(l);
      right_keys.push_back(r);
    }
    // Build on the smaller side, probe with the larger (scalar tie rule:
    // build left when sizes are equal).
    const bool build_left = nl <= nr;
    const BatchView& build = build_left ? left : right;
    const BatchView& probe = build_left ? right : left;
    const std::vector<size_t>& build_keys =
        build_left ? left_keys : right_keys;
    const std::vector<size_t>& probe_keys =
        build_left ? right_keys : left_keys;
    const size_t nb = build.size();
    const size_t np = probe.size();
    stats->join_build_inserts += static_cast<int64_t>(nb);

    std::vector<uint64_t> build_hashes, probe_hashes;
    HashDomain(pool, parallel_min_rows, KeyColumns(build, build_keys),
               build.sel != nullptr ? build.sel->data() : nullptr, nb,
               &build_hashes);
    HashDomain(pool, parallel_min_rows, KeyColumns(probe, probe_keys),
               probe.sel != nullptr ? probe.sel->data() : nullptr, np,
               &probe_hashes);

    // One bucket per distinct key; duplicate rows chain through `next`.
    // Indices are positions in the build domain (0..nb).
    struct Bucket {
      uint32_t repr = kNil;
      uint32_t head = kNil;
      uint32_t tail = kNil;
    };
    auto build_abs = [&](uint32_t i) -> uint32_t {
      return build.sel != nullptr ? (*build.sel)[i] : i;
    };
    FlatTable<Bucket> table;
    std::vector<uint32_t> next(nb, kNil);
    const size_t build_morsels = MorselCount(pool, parallel_min_rows, nb);
    if (build_morsels == 0) {
      table.BuildFrom(
          build_hashes.data(), nb,
          [&](const Bucket& b, size_t i) {
            return RowsEqualOnKeys(*build.batch, build_abs(b.repr),
                                   build_keys, *build.batch, build_abs(i),
                                   build_keys);
          },
          [&](size_t i) {
            const uint32_t pos = static_cast<uint32_t>(i);
            return Bucket{pos, pos, pos};
          },
          [&](Bucket* b, size_t i) {
            next[b->tail] = static_cast<uint32_t>(i);
            b->tail = static_cast<uint32_t>(i);
          });
    } else {
      // Two-phase parallel build (DESIGN.md §16.2). Phase one: each
      // morsel deduplicates its own rows into a local table, chaining
      // duplicates through the shared `next` array — every write lands
      // on a position inside the writer's own morsel, so the slots are
      // disjoint. Phase two (single-threaded): walk the morsels in
      // order and fold each local bucket into the central table,
      // splicing chains tail-to-head. A key's merged chain concatenates
      // its per-morsel chains in morsel order, each ascending, which is
      // exactly the ascending build-position order the serial BuildFrom
      // produces — so probe output, and therefore the joined bytes, are
      // identical. (The central table's slot layout may differ from the
      // serial build's, which is fine: the join only ever probes it.)
      struct LocalBuild {
        FlatTable<uint32_t> keys;     // key -> index into `buckets`
        std::vector<Bucket> buckets;  // in first-appearance order
      };
      std::vector<LocalBuild> locals(build_morsels);
      pool->ParallelFor(build_morsels, [&](size_t m) {
        LocalBuild& local = locals[m];
        const size_t start = m * kMorselRows;
        const size_t end = std::min(start + kMorselRows, nb);
        local.keys.Reserve(end - start);
        for (size_t i = start; i < end; ++i) {
          const uint32_t pos = static_cast<uint32_t>(i);
          auto [idx, inserted] = local.keys.FindOrEmplace(
              build_hashes[i],
              [&](uint32_t b) {
                return RowsEqualOnKeys(
                    *build.batch, build_abs(local.buckets[b].repr),
                    build_keys, *build.batch, build_abs(pos), build_keys);
              },
              [&] {
                local.buckets.push_back(Bucket{pos, pos, pos});
                return static_cast<uint32_t>(local.buckets.size() - 1);
              });
          if (!inserted) {
            Bucket& b = local.buckets[*idx];
            next[b.tail] = pos;
            b.tail = pos;
          }
        }
      });
      size_t distinct = 0;
      for (const LocalBuild& local : locals) {
        distinct += local.buckets.size();
      }
      table.Reserve(distinct);
      for (const LocalBuild& local : locals) {
        for (const Bucket& lb : local.buckets) {
          auto [b, inserted] = table.FindOrEmplace(
              build_hashes[lb.repr],
              [&](const Bucket& c) {
                return RowsEqualOnKeys(*build.batch, build_abs(c.repr),
                                       build_keys, *build.batch,
                                       build_abs(lb.repr), build_keys);
              },
              [&] { return lb; });
          if (!inserted) {
            next[b->tail] = lb.head;
            b->tail = lb.tail;
          }
        }
      }
    }

    const auto probe_one = [&](size_t pi, std::vector<uint32_t>* ls,
                               std::vector<uint32_t>* rs) {
      const uint32_t probe_row = probe.RowIndex(pi);
      Bucket* bucket = table.Find(probe_hashes[pi], [&](const Bucket& b) {
        return RowsEqualOnKeys(*build.batch, build_abs(b.repr), build_keys,
                               *probe.batch, probe_row, probe_keys);
      });
      if (bucket == nullptr) return;
      for (uint32_t bi = bucket->head; bi != kNil; bi = next[bi]) {
        if (build_left) {
          ls->push_back(build_abs(bi));
          rs->push_back(probe_row);
        } else {
          ls->push_back(probe_row);
          rs->push_back(build_abs(bi));
        }
      }
    };
    stats->join_probes += static_cast<int64_t>(np);
    const size_t probe_morsels = MorselCount(pool, parallel_min_rows, np);
    if (probe_morsels == 0) {
      for (size_t pi = 0; pi < np; ++pi) {
        probe_one(pi, &l_rows, &r_rows);
      }
    } else {
      // Morsels probe the (now read-only) table independently; partial
      // match lists concatenate in morsel order, which is probe order.
      struct Matches {
        std::vector<uint32_t> l, r;
      };
      std::vector<Matches> partials(probe_morsels);
      pool->ParallelFor(probe_morsels, [&](size_t m) {
        Matches& out = partials[m];
        const size_t start = m * kMorselRows;
        const size_t end = std::min(start + kMorselRows, np);
        for (size_t pi = start; pi < end; ++pi) {
          probe_one(pi, &out.l, &out.r);
        }
      });
      size_t total = 0;
      for (const Matches& p : partials) total += p.l.size();
      l_rows.reserve(total);
      r_rows.reserve(total);
      for (const Matches& p : partials) {
        l_rows.insert(l_rows.end(), p.l.begin(), p.l.end());
        r_rows.insert(r_rows.end(), p.r.begin(), p.r.end());
      }
    }
  }

  const size_t npairs = l_rows.size();
  if (npairs == 0) return BatchView{};

  // Gather the joined batch: left columns then right columns, output
  // timestamp = max of the two sides (Tuple::Concat). Each output
  // column (and the timestamp vector) is an independent gather, so for
  // large outputs they spread across the pool one column per task.
  const Domain ld{left.batch.get(), l_rows.data(), npairs};
  const Domain rd{right.batch.get(), r_rows.data(), npairs};
  const size_t ncl = left.batch->num_cols();
  const size_t ncr = right.batch->num_cols();
  std::vector<std::shared_ptr<const Column>> cols(ncl + ncr);
  auto ts = std::make_shared<std::vector<VirtualTime>>(npairs);
  const auto gather_one = [&](size_t c) {
    if (c < ncl) {
      cols[c] = GatherColumn(left.batch->col(c), ld);
    } else if (c < ncl + ncr) {
      cols[c] = GatherColumn(right.batch->col(c - ncl), rd);
    } else {
      for (size_t i = 0; i < npairs; ++i) {
        (*ts)[i] = std::max(left.batch->timestamp(l_rows[i]),
                            right.batch->timestamp(r_rows[i]));
      }
    }
  };
  if (MorselCount(pool, parallel_min_rows, npairs) != 0) {
    pool->ParallelFor(ncl + ncr + 1, gather_one);
  } else {
    for (size_t c = 0; c < ncl + ncr + 1; ++c) gather_one(c);
  }
  auto joined = ColumnBatch::FromColumns(std::move(cols), std::move(ts),
                                         {left.batch, right.batch});

  if (plan.predicate() == nullptr) {
    stats->tuples_output += static_cast<int64_t>(npairs);
    return BatchView{std::move(joined), nullptr};
  }
  // Residual predicate over the gathered pairs.
  stats->comparisons += static_cast<int64_t>(npairs);
  auto sel = std::make_shared<std::vector<uint32_t>>();
  sel->reserve(npairs);
  const Domain jd{joined.get(), nullptr, npairs};
  const BoundExpr& pred = *plan.predicate();
  if (ExprVectorizable(pred, *joined)) {
    const std::vector<uint8_t> mask = EvalBool(pred, jd);
    for (size_t i = 0; i < npairs; ++i) {
      if (mask[i]) sel->push_back(static_cast<uint32_t>(i));
    }
  } else {
    for (size_t i = 0; i < npairs; ++i) {
      if (pred.EvaluatesToTrue(joined->RowAt(i))) {
        sel->push_back(static_cast<uint32_t>(i));
      }
    }
  }
  stats->tuples_output += static_cast<int64_t>(sel->size());
  return BatchView{std::move(joined), std::move(sel)};
}

BatchView UnionAll(const BatchView& left, const BatchView& right,
                   ExecStats* stats) {
  const size_t nl = left.size();
  const size_t nr = right.size();
  stats->tuples_output += static_cast<int64_t>(nl + nr);
  if (nl == 0) return right;
  if (nr == 0) return left;
  DT_CHECK_EQ(left.batch->num_cols(), right.batch->num_cols())
      << "union of mismatched arities";

  const Domain dl = DomainOf(left);
  const Domain dr = DomainOf(right);
  const size_t cols_n = left.batch->num_cols();
  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(cols_n);
  for (size_t c = 0; c < cols_n; ++c) {
    const Column& a = left.batch->col(c);
    const Column& b = right.batch->col(c);
    if (a.kind == b.kind && a.clean() && b.clean()) {
      Column out;
      out.kind = a.kind;
      switch (a.kind) {
        case FieldType::kInt64:
          out.i64.reserve(nl + nr);
          out.f64.reserve(nl + nr);
          for (size_t i = 0; i < nl; ++i) {
            const uint32_t r = dl.Abs(i);
            out.i64.push_back(a.i64[r]);
            out.f64.push_back(a.f64[r]);
          }
          for (size_t i = 0; i < nr; ++i) {
            const uint32_t r = dr.Abs(i);
            out.i64.push_back(b.i64[r]);
            out.f64.push_back(b.f64[r]);
          }
          break;
        case FieldType::kDouble:
        case FieldType::kTimestamp:
          out.f64.reserve(nl + nr);
          for (size_t i = 0; i < nl; ++i) out.f64.push_back(a.f64[dl.Abs(i)]);
          for (size_t i = 0; i < nr; ++i) out.f64.push_back(b.f64[dr.Abs(i)]);
          break;
        case FieldType::kString:
          out.str.reserve(nl + nr);
          for (size_t i = 0; i < nl; ++i) out.str.push_back(a.str[dl.Abs(i)]);
          for (size_t i = 0; i < nr; ++i) out.str.push_back(b.str[dr.Abs(i)]);
          break;
      }
      cols.push_back(std::make_shared<const Column>(std::move(out)));
    } else {
      // Kind mismatch or exceptions: rebuild the column value-by-value.
      ColumnBuilder builder;
      builder.Reserve(nl + nr);
      for (size_t i = 0; i < nl; ++i) builder.Append(a.ValueAt(dl.Abs(i)));
      for (size_t i = 0; i < nr; ++i) builder.Append(b.ValueAt(dr.Abs(i)));
      cols.push_back(builder.Finish());
    }
  }
  auto ts = std::make_shared<std::vector<VirtualTime>>();
  ts->reserve(nl + nr);
  for (size_t i = 0; i < nl; ++i) {
    ts->push_back(left.batch->timestamp(dl.Abs(i)));
  }
  for (size_t i = 0; i < nr; ++i) {
    ts->push_back(right.batch->timestamp(dr.Abs(i)));
  }
  auto batch = ColumnBatch::FromColumns(std::move(cols), std::move(ts),
                                        {left.batch, right.batch});
  return BatchView{std::move(batch), nullptr};
}

BatchView SetDifference(const BatchView& left, const BatchView& right,
                        ExecStats* stats) {
  const size_t nl = left.size();
  const size_t nr = right.size();
  // The scalar loops charge one comparison per row of each side.
  stats->comparisons += static_cast<int64_t>(nl + nr);
  if (nl == 0) return BatchView{};
  if (nr == 0 || right.batch->num_cols() != left.batch->num_cols()) {
    // Mismatched arities can never compare equal: everything survives.
    stats->tuples_output += static_cast<int64_t>(nl);
    return left;
  }

  std::vector<uint64_t> left_hashes, right_hashes;
  HashRows(AllColumns(left),
           left.sel != nullptr ? left.sel->data() : nullptr, nl,
           &left_hashes);
  HashRows(AllColumns(right),
           right.sel != nullptr ? right.sel->data() : nullptr, nr,
           &right_hashes);

  // Multiset monus, as in the scalar kernel: each right row cancels at
  // most one left occurrence. `repr` is a position in the right domain.
  struct Monus {
    uint32_t repr = kNil;
    int64_t count = 0;
  };
  auto right_abs = [&](uint32_t i) -> uint32_t {
    return right.sel != nullptr ? (*right.sel)[i] : i;
  };
  FlatTable<Monus> to_remove(nr);
  to_remove.BuildFrom(
      right_hashes.data(), nr,
      [&](const Monus& m, size_t i) {
        return RowsEqualAllCols(*right.batch, right_abs(m.repr),
                                *right.batch, right_abs(i));
      },
      [&](size_t i) { return Monus{static_cast<uint32_t>(i), 1}; },
      [&](Monus* m, size_t) { ++m->count; });

  auto sel = std::make_shared<std::vector<uint32_t>>();
  sel->reserve(nl);
  for (size_t i = 0; i < nl; ++i) {
    const uint32_t row = left.RowIndex(i);
    Monus* entry = to_remove.Find(left_hashes[i], [&](const Monus& m) {
      return RowsEqualAllCols(*right.batch, right_abs(m.repr), *left.batch,
                              row);
    });
    if (entry != nullptr && entry->count > 0) {
      --entry->count;
      continue;
    }
    sel->push_back(row);
  }
  stats->tuples_output += static_cast<int64_t>(sel->size());
  return BatchView{left.batch, std::move(sel)};
}

Result<BatchView> Aggregate(const LogicalPlan& plan,
                            const BatchView& input, ExecStats* stats,
                            TaskPool* pool, size_t parallel_min_rows) {
  std::vector<size_t> group_indices;
  for (const plan::GroupBySpec& g : plan.group_by()) {
    group_indices.push_back(g.input_index);
  }
  const size_t num_aggs = plan.aggregates().size();
  for (const plan::AggregateSpec& spec : plan.aggregates()) {
    if (spec.func == sql::AggFunc::kNone) {
      return Status::Internal("AggFunc::kNone in aggregate spec");
    }
  }

  const size_t n = input.size();
  stats->comparisons += static_cast<int64_t>(n);

  std::vector<uint64_t> hashes;
  HashDomain(pool, parallel_min_rows, KeyColumns(input, group_indices),
             input.sel != nullptr ? input.sel->data() : nullptr, n,
             &hashes);

  // Group discovery must reproduce the scalar table's slot layout exactly
  // (output rows are emitted in slot order), so the table grows from
  // empty through the same per-insert FindOrEmplace protocol — no bulk
  // reservation here. `repr` is a position in the input domain.
  struct GroupEntry {
    uint32_t repr = kNil;
    uint32_t id = 0;
  };
  FlatTable<GroupEntry> groups;
  std::vector<uint32_t> group_of(n);
  std::vector<uint32_t> first_abs;  // first absolute row of each group
  const size_t group_morsels = MorselCount(pool, parallel_min_rows, n);
  if (group_morsels == 0) {
    for (size_t i = 0; i < n; ++i) {
      const uint32_t row = input.RowIndex(i);
      auto [entry, inserted] = groups.FindOrEmplace(
          hashes[i],
          [&](const GroupEntry& g) {
            return RowsEqualOnKeys(*input.batch, first_abs[g.id],
                                   group_indices, *input.batch, row,
                                   group_indices);
          },
          [&] {
            GroupEntry e{static_cast<uint32_t>(i),
                         static_cast<uint32_t>(first_abs.size())};
            first_abs.push_back(row);
            return e;
          });
      group_of[i] = entry->id;
    }
  } else {
    // Parallel group discovery, serial accumulation (DESIGN.md §16.2).
    // Phase one: each morsel assigns its rows *local* group ids from a
    // local table (group_of writes stay inside the morsel's range).
    // Phase two (single-threaded): fold each morsel's distinct keys —
    // in morsel order, within a morsel in first-appearance order — into
    // the central table. That visiting order is the global
    // first-occurrence order (a key first seen in morsel m cannot
    // appear in an earlier morsel), so the central table replays the
    // serial insertion sequence exactly and lands on the same slot
    // layout: duplicate keys only re-Find, and a Find can at most move
    // a rehash earlier in the call sequence, not change the contents it
    // repositions. Phase three: remap local ids to global ones. The
    // accumulation loops below then run single-threaded in row order,
    // inheriting every scalar FP/tie/exception behavior untouched.
    struct LocalGroups {
      FlatTable<uint32_t> keys;        // key -> local group id
      std::vector<uint32_t> first_pos;  // local id -> first position
    };
    std::vector<LocalGroups> locals(group_morsels);
    pool->ParallelFor(group_morsels, [&](size_t m) {
      LocalGroups& local = locals[m];
      const size_t start = m * kMorselRows;
      const size_t end = std::min(start + kMorselRows, n);
      local.keys.Reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        const uint32_t row = input.RowIndex(i);
        auto [id, inserted] = local.keys.FindOrEmplace(
            hashes[i],
            [&](uint32_t g) {
              return RowsEqualOnKeys(
                  *input.batch, input.RowIndex(local.first_pos[g]),
                  group_indices, *input.batch, row, group_indices);
            },
            [&] {
              local.first_pos.push_back(static_cast<uint32_t>(i));
              return static_cast<uint32_t>(local.first_pos.size() - 1);
            });
        group_of[i] = *id;
      }
    });
    std::vector<std::vector<uint32_t>> remap(group_morsels);
    for (size_t m = 0; m < group_morsels; ++m) {
      const LocalGroups& local = locals[m];
      remap[m].resize(local.first_pos.size());
      for (size_t g = 0; g < local.first_pos.size(); ++g) {
        const uint32_t pos = local.first_pos[g];
        const uint32_t row = input.RowIndex(pos);
        auto [entry, inserted] = groups.FindOrEmplace(
            hashes[pos],
            [&](const GroupEntry& ge) {
              return RowsEqualOnKeys(*input.batch, first_abs[ge.id],
                                     group_indices, *input.batch, row,
                                     group_indices);
            },
            [&] {
              GroupEntry e{pos,
                           static_cast<uint32_t>(first_abs.size())};
              first_abs.push_back(row);
              return e;
            });
        remap[m][g] = entry->id;
      }
    }
    pool->ParallelFor(group_morsels, [&](size_t m) {
      const size_t start = m * kMorselRows;
      const size_t end = std::min(start + kMorselRows, n);
      const std::vector<uint32_t>& map = remap[m];
      for (size_t i = start; i < end; ++i) {
        group_of[i] = map[group_of[i]];
      }
    });
  }
  const size_t num_groups = first_abs.size();

  // Accumulators at a fixed stride, updated in row-arrival order per
  // group so floating-point sums match the scalar path bit-for-bit.
  // min/max track the extreme's row index, with the scalar's strict-less
  // updates (first-seen extreme wins ties; NaN never displaces).
  struct VecAgg {
    int64_t count = 0;
    double sum = 0.0;
    bool sum_is_integral = true;
    uint32_t min_row = kNil;
    uint32_t max_row = kNil;
  };
  std::vector<VecAgg> arena(num_groups * num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    const plan::AggregateSpec& spec = plan.aggregates()[a];
    if (spec.count_star) {
      for (size_t i = 0; i < n; ++i) {
        ++arena[group_of[i] * num_aggs + a].count;
      }
      continue;
    }
    const Column& col = input.batch->col(spec.input_index);
    if (!col.is_string() && col.clean()) {
      const double* f = col.f64.data();
      const bool integral = col.kind == FieldType::kInt64;
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = input.RowIndex(i);
        VecAgg& st = arena[group_of[i] * num_aggs + a];
        ++st.count;
        st.sum += f[r];
        if (!integral) st.sum_is_integral = false;
        if (st.min_row == kNil) {
          st.min_row = r;
          st.max_row = r;
        } else {
          if (f[r] < f[st.min_row]) st.min_row = r;
          if (f[st.max_row] < f[r]) st.max_row = r;
        }
      }
    } else {
      // Exceptional or string column: full Value semantics per row.
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = input.RowIndex(i);
        VecAgg& st = arena[group_of[i] * num_aggs + a];
        ++st.count;
        const Value v = col.ValueAt(r);
        if (v.is_numeric()) {
          st.sum += v.AsDouble();
          if (!v.is_int64()) st.sum_is_integral = false;
        }
        if (st.min_row == kNil) {
          st.min_row = r;
          st.max_row = r;
        } else {
          if (v < col.ValueAt(st.min_row)) st.min_row = r;
          if (col.ValueAt(st.max_row) < v) st.max_row = r;
        }
      }
    }
  }

  // Emit one row per group in slot order, as the scalar ForEach does.
  // Output construction is column-at-a-time: group keys and min/max
  // results gather straight from the input columns (preserving exception
  // rows exactly), and count/sum/avg columns fill typed arrays from the
  // arena. Per-cell Value appends remain only for the rare cases (a sum
  // column mixing Int64 and Double groups, a min/max with no tracked
  // extreme); every cell still reconstructs to the same bytes the scalar
  // switch would have produced.
  std::vector<uint32_t> order;  // group ids in slot order
  order.reserve(num_groups);
  groups.ForEach([&](const GroupEntry& g) { order.push_back(g.id); });
  std::vector<uint32_t> repr_rows(num_groups);
  for (size_t o = 0; o < num_groups; ++o) {
    repr_rows[o] = first_abs[order[o]];
  }
  const Domain out_domain{input.batch.get(), repr_rows.data(), num_groups};

  std::vector<std::shared_ptr<const Column>> cols;
  cols.reserve(group_indices.size() + num_aggs);
  for (size_t k : group_indices) {
    cols.push_back(GatherColumn(input.batch->col(k), out_domain));
  }
  for (size_t a = 0; a < num_aggs; ++a) {
    const plan::AggregateSpec& spec = plan.aggregates()[a];
    const auto agg_at = [&](size_t o) -> const VecAgg& {
      return arena[order[o] * num_aggs + a];
    };
    switch (spec.func) {
      case sql::AggFunc::kCount: {
        Column col;
        col.kind = FieldType::kInt64;
        col.i64.resize(num_groups);
        col.f64.resize(num_groups);
        for (size_t o = 0; o < num_groups; ++o) {
          const int64_t count = agg_at(o).count;
          col.i64[o] = count;
          col.f64[o] = static_cast<double>(count);
        }
        cols.push_back(std::make_shared<const Column>(std::move(col)));
        break;
      }
      case sql::AggFunc::kAvg: {
        Column col;
        col.kind = FieldType::kDouble;
        col.f64.resize(num_groups);
        for (size_t o = 0; o < num_groups; ++o) {
          const VecAgg& st = agg_at(o);
          col.f64[o] =
              st.count == 0 ? 0.0 : st.sum / static_cast<double>(st.count);
        }
        cols.push_back(std::make_shared<const Column>(std::move(col)));
        break;
      }
      case sql::AggFunc::kSum: {
        bool any_integral = false;
        bool any_double = false;
        for (size_t o = 0; o < num_groups; ++o) {
          (agg_at(o).sum_is_integral ? any_integral : any_double) = true;
        }
        if (!any_double) {  // every group sums to Int64 (or no groups)
          Column col;
          col.kind = FieldType::kInt64;
          col.i64.resize(num_groups);
          col.f64.resize(num_groups);
          for (size_t o = 0; o < num_groups; ++o) {
            const int64_t sum = static_cast<int64_t>(agg_at(o).sum);
            col.i64[o] = sum;
            col.f64[o] = static_cast<double>(sum);
          }
          cols.push_back(std::make_shared<const Column>(std::move(col)));
        } else if (!any_integral) {  // every group sums to Double
          Column col;
          col.kind = FieldType::kDouble;
          col.f64.resize(num_groups);
          for (size_t o = 0; o < num_groups; ++o) {
            col.f64[o] = agg_at(o).sum;
          }
          cols.push_back(std::make_shared<const Column>(std::move(col)));
        } else {
          ColumnBuilder builder;
          builder.Reserve(num_groups);
          for (size_t o = 0; o < num_groups; ++o) {
            const VecAgg& st = agg_at(o);
            builder.Append(st.sum_is_integral
                               ? Value::Int64(static_cast<int64_t>(st.sum))
                               : Value::Double(st.sum));
          }
          cols.push_back(builder.Finish());
        }
        break;
      }
      case sql::AggFunc::kMin:
      case sql::AggFunc::kMax: {
        const bool is_min = spec.func == sql::AggFunc::kMin;
        std::vector<uint32_t> extreme_rows(num_groups);
        bool any_nil = false;
        for (size_t o = 0; o < num_groups; ++o) {
          const VecAgg& st = agg_at(o);
          extreme_rows[o] = is_min ? st.min_row : st.max_row;
          any_nil |= extreme_rows[o] == kNil;
        }
        if (!any_nil) {
          cols.push_back(GatherColumn(
              input.batch->col(spec.input_index),
              Domain{input.batch.get(), extreme_rows.data(), num_groups}));
        } else {
          // A group whose extreme was never tracked emits the default
          // Value, exactly as the scalar switch does.
          const Column& src = input.batch->col(spec.input_index);
          ColumnBuilder builder;
          builder.Reserve(num_groups);
          for (size_t o = 0; o < num_groups; ++o) {
            builder.Append(extreme_rows[o] == kNil
                               ? Value()
                               : src.ValueAt(extreme_rows[o]));
          }
          cols.push_back(builder.Finish());
        }
        break;
      }
      case sql::AggFunc::kNone:
        break;  // rejected above
    }
  }
  stats->tuples_output += static_cast<int64_t>(num_groups);
  // Aggregate output tuples carry the default timestamp (0.0), exactly
  // like the scalar path's freshly-constructed rows.
  auto ts = std::make_shared<std::vector<VirtualTime>>(num_groups, 0.0);
  auto batch = ColumnBatch::FromColumns(std::move(cols), std::move(ts),
                                        {input.batch});
  return BatchView{std::move(batch), nullptr};
}

}  // namespace vectorized

}  // namespace datatriage::exec
