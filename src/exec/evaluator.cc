#include "src/exec/evaluator.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/string_util.h"

namespace datatriage::exec {

namespace {

using plan::LogicalPlan;

/// Hash-map key over a subset of columns.
struct KeyView {
  std::vector<Value> values;

  bool operator==(const KeyView& other) const {
    return values == other.values;
  }
};

struct KeyViewHash {
  size_t operator()(const KeyView& k) const {
    size_t seed = k.values.size();
    for (const Value& v : k.values) {
      seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
    }
    return seed;
  }
};

KeyView ExtractKey(const Tuple& tuple, const std::vector<size_t>& indices) {
  KeyView key;
  key.values.reserve(indices.size());
  for (size_t i : indices) key.values.push_back(tuple.value(i));
  return key;
}

/// Running state for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_integral = true;
  Value min;
  Value max;
  bool has_extremes = false;
};

}  // namespace

ExecStats& ExecStats::operator+=(const ExecStats& other) {
  tuples_scanned += other.tuples_scanned;
  tuples_output += other.tuples_output;
  join_probes += other.join_probes;
  join_build_inserts += other.join_build_inserts;
  comparisons += other.comparisons;
  return *this;
}

Result<Relation> Evaluator::Evaluate(const LogicalPlan& plan) {
  switch (plan.kind()) {
    case LogicalPlan::Kind::kEmpty:
      return Relation{};
    case LogicalPlan::Kind::kStreamScan:
      return EvaluateScan(plan);
    case LogicalPlan::Kind::kFilter:
      return EvaluateFilter(plan);
    case LogicalPlan::Kind::kProject:
      return EvaluateProject(plan);
    case LogicalPlan::Kind::kCompute:
      return EvaluateCompute(plan);
    case LogicalPlan::Kind::kJoin:
      return EvaluateJoin(plan);
    case LogicalPlan::Kind::kUnionAll:
      return EvaluateUnionAll(plan);
    case LogicalPlan::Kind::kSetDifference:
      return EvaluateSetDifference(plan);
    case LogicalPlan::Kind::kAggregate:
      return EvaluateAggregate(plan);
  }
  return Status::Internal("unhandled plan kind in evaluator");
}

Result<Relation> Evaluator::EvaluateScan(const LogicalPlan& plan) {
  auto it = inputs_->find(ChannelKey{plan.stream(), plan.channel()});
  if (it == inputs_->end()) return Relation{};
  stats_.tuples_scanned += static_cast<int64_t>(it->second.size());
  return it->second;
}

Result<Relation> Evaluator::EvaluateFilter(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation input, Evaluate(*plan.child(0)));
  Relation output;
  output.reserve(input.size());
  for (Tuple& t : input) {
    ++stats_.comparisons;
    if (plan.predicate()->EvaluatesToTrue(t)) {
      output.push_back(std::move(t));
    }
  }
  stats_.tuples_output += static_cast<int64_t>(output.size());
  return output;
}

Result<Relation> Evaluator::EvaluateProject(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation input, Evaluate(*plan.child(0)));
  Relation output;
  output.reserve(input.size());
  for (const Tuple& t : input) {
    output.push_back(t.Project(plan.projection()));
  }
  stats_.tuples_output += static_cast<int64_t>(output.size());
  return output;
}

Result<Relation> Evaluator::EvaluateCompute(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation input, Evaluate(*plan.child(0)));
  Relation output;
  output.reserve(input.size());
  for (const Tuple& t : input) {
    std::vector<Value> row;
    row.reserve(plan.compute_exprs().size());
    for (const plan::BoundExprPtr& expr : plan.compute_exprs()) {
      row.push_back(expr->Evaluate(t));
    }
    output.emplace_back(std::move(row));
    output.back().set_timestamp(t.timestamp());
  }
  stats_.tuples_output += static_cast<int64_t>(output.size());
  return output;
}

Result<Relation> Evaluator::EvaluateJoin(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation left, Evaluate(*plan.child(0)));
  DT_ASSIGN_OR_RETURN(Relation right, Evaluate(*plan.child(1)));
  Relation output;

  if (plan.join_keys().empty()) {
    // Cross product (plus optional residual predicate).
    for (const Tuple& l : left) {
      for (const Tuple& r : right) {
        ++stats_.join_probes;
        Tuple joined = l.Concat(r);
        if (plan.predicate() != nullptr) {
          ++stats_.comparisons;
          if (!plan.predicate()->EvaluatesToTrue(joined)) continue;
        }
        output.push_back(std::move(joined));
      }
    }
    stats_.tuples_output += static_cast<int64_t>(output.size());
    return output;
  }

  std::vector<size_t> left_keys, right_keys;
  for (const auto& [l, r] : plan.join_keys()) {
    left_keys.push_back(l);
    right_keys.push_back(r);
  }

  // Build on the smaller side, probe with the larger.
  const bool build_left = left.size() <= right.size();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const std::vector<size_t>& build_keys = build_left ? left_keys : right_keys;
  const std::vector<size_t>& probe_keys = build_left ? right_keys : left_keys;

  std::unordered_map<KeyView, std::vector<const Tuple*>, KeyViewHash> table;
  table.reserve(build.size());
  for (const Tuple& t : build) {
    ++stats_.join_build_inserts;
    table[ExtractKey(t, build_keys)].push_back(&t);
  }
  for (const Tuple& t : probe) {
    ++stats_.join_probes;
    auto it = table.find(ExtractKey(t, probe_keys));
    if (it == table.end()) continue;
    for (const Tuple* match : it->second) {
      // Output column order is (left, right) regardless of build side.
      Tuple joined =
          build_left ? match->Concat(t) : t.Concat(*match);
      if (plan.predicate() != nullptr) {
        ++stats_.comparisons;
        if (!plan.predicate()->EvaluatesToTrue(joined)) continue;
      }
      output.push_back(std::move(joined));
    }
  }
  stats_.tuples_output += static_cast<int64_t>(output.size());
  return output;
}

Result<Relation> Evaluator::EvaluateUnionAll(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation left, Evaluate(*plan.child(0)));
  DT_ASSIGN_OR_RETURN(Relation right, Evaluate(*plan.child(1)));
  left.reserve(left.size() + right.size());
  for (Tuple& t : right) left.push_back(std::move(t));
  stats_.tuples_output += static_cast<int64_t>(left.size());
  return left;
}

Result<Relation> Evaluator::EvaluateSetDifference(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation left, Evaluate(*plan.child(0)));
  DT_ASSIGN_OR_RETURN(Relation right, Evaluate(*plan.child(1)));
  // Multiset monus: each right-side tuple cancels at most one left-side
  // occurrence.
  std::unordered_map<Tuple, int64_t, TupleHash, TupleEq> to_remove;
  for (const Tuple& t : right) {
    ++stats_.comparisons;
    ++to_remove[t];
  }
  Relation output;
  output.reserve(left.size());
  for (Tuple& t : left) {
    ++stats_.comparisons;
    auto it = to_remove.find(t);
    if (it != to_remove.end() && it->second > 0) {
      --it->second;
      continue;
    }
    output.push_back(std::move(t));
  }
  stats_.tuples_output += static_cast<int64_t>(output.size());
  return output;
}

Result<Relation> Evaluator::EvaluateAggregate(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(Relation input, Evaluate(*plan.child(0)));
  std::vector<size_t> group_indices;
  for (const plan::GroupBySpec& g : plan.group_by()) {
    group_indices.push_back(g.input_index);
  }

  struct GroupState {
    Tuple representative;
    std::vector<AggState> aggs;
  };
  std::unordered_map<KeyView, GroupState, KeyViewHash> groups;
  for (const Tuple& t : input) {
    ++stats_.comparisons;
    KeyView key = ExtractKey(t, group_indices);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    GroupState& state = it->second;
    if (inserted) {
      state.representative = t;
      state.aggs.resize(plan.aggregates().size());
    }
    for (size_t i = 0; i < plan.aggregates().size(); ++i) {
      const plan::AggregateSpec& spec = plan.aggregates()[i];
      AggState& agg = state.aggs[i];
      ++agg.count;
      if (spec.count_star) continue;
      const Value& v = t.value(spec.input_index);
      if (v.is_numeric()) {
        agg.sum += v.AsDouble();
        if (!v.is_int64()) agg.sum_is_integral = false;
      }
      if (!agg.has_extremes) {
        agg.min = v;
        agg.max = v;
        agg.has_extremes = true;
      } else {
        if (v < agg.min) agg.min = v;
        if (agg.max < v) agg.max = v;
      }
    }
  }

  Relation output;
  output.reserve(groups.size());
  for (const auto& [key, state] : groups) {
    std::vector<Value> row;
    row.reserve(group_indices.size() + plan.aggregates().size());
    for (size_t i : group_indices) {
      row.push_back(state.representative.value(i));
    }
    for (size_t i = 0; i < plan.aggregates().size(); ++i) {
      const plan::AggregateSpec& spec = plan.aggregates()[i];
      const AggState& agg = state.aggs[i];
      switch (spec.func) {
        case sql::AggFunc::kCount:
          row.push_back(Value::Int64(agg.count));
          break;
        case sql::AggFunc::kSum:
          row.push_back(agg.sum_is_integral
                            ? Value::Int64(static_cast<int64_t>(agg.sum))
                            : Value::Double(agg.sum));
          break;
        case sql::AggFunc::kAvg:
          row.push_back(Value::Double(
              agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(
                                                  agg.count)));
          break;
        case sql::AggFunc::kMin:
          row.push_back(agg.min);
          break;
        case sql::AggFunc::kMax:
          row.push_back(agg.max);
          break;
        case sql::AggFunc::kNone:
          return Status::Internal("AggFunc::kNone in aggregate spec");
      }
    }
    output.emplace_back(std::move(row));
  }
  stats_.tuples_output += static_cast<int64_t>(output.size());
  return output;
}

Result<Relation> EvaluatePlan(const LogicalPlan& plan,
                              const RelationProvider& inputs,
                              ExecStats* stats) {
  Evaluator evaluator(&inputs);
  DT_ASSIGN_OR_RETURN(Relation result, evaluator.Evaluate(plan));
  if (stats != nullptr) *stats += evaluator.stats();
  return result;
}

}  // namespace datatriage::exec
