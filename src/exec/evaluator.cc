#include "src/exec/evaluator.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/flat_table.h"
#include "src/common/string_util.h"
#include "src/exec/pattern_eval.h"
#include "src/exec/vector_eval.h"

namespace datatriage::exec {

namespace {

using plan::LogicalPlan;

constexpr uint32_t kNil = UINT32_MAX;

/// Running state for one aggregate within one group. min/max borrow the
/// extreme Value from the input (which outlives the group-by loop) so no
/// Value is copied until the output row is built.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  bool sum_is_integral = true;
  const Value* min = nullptr;
  const Value* max = nullptr;
};

}  // namespace

ExecStats& ExecStats::operator+=(const ExecStats& other) {
  tuples_scanned += other.tuples_scanned;
  tuples_output += other.tuples_output;
  join_probes += other.join_probes;
  join_build_inserts += other.join_build_inserts;
  comparisons += other.comparisons;
  return *this;
}

namespace scalar {

RelationView Filter(const LogicalPlan& plan, const RelationView& input,
                    ExecStats* stats) {
  std::vector<const Tuple*> refs;
  refs.reserve(input.size());
  input.ForEach([&](const Tuple& t) {
    ++stats->comparisons;
    if (plan.predicate()->EvaluatesToTrue(t)) refs.push_back(&t);
  });
  stats->tuples_output += static_cast<int64_t>(refs.size());
  return RelationView::Subset(input, std::move(refs));
}

RelationView Project(const LogicalPlan& plan, const RelationView& input,
                     ExecStats* stats) {
  Relation output;
  output.reserve(input.size());
  input.ForEach(
      [&](const Tuple& t) { output.push_back(t.Project(plan.projection())); });
  stats->tuples_output += static_cast<int64_t>(output.size());
  return RelationView::Own(std::move(output));
}

RelationView Compute(const LogicalPlan& plan, const RelationView& input,
                     ExecStats* stats) {
  Relation output;
  output.reserve(input.size());
  input.ForEach([&](const Tuple& t) {
    std::vector<Value> row;
    row.reserve(plan.compute_exprs().size());
    for (const plan::BoundExprPtr& expr : plan.compute_exprs()) {
      row.push_back(expr->Evaluate(t));
    }
    output.emplace_back(std::move(row));
    output.back().set_timestamp(t.timestamp());
  });
  stats->tuples_output += static_cast<int64_t>(output.size());
  return RelationView::Own(std::move(output));
}

RelationView Join(const LogicalPlan& plan, const RelationView& left,
                  const RelationView& right, ExecStats* stats) {
  Relation output;

  if (plan.join_keys().empty()) {
    // Cross product (plus optional residual predicate).
    for (size_t li = 0; li < left.size(); ++li) {
      const Tuple& l = left[li];
      for (size_t ri = 0; ri < right.size(); ++ri) {
        ++stats->join_probes;
        Tuple joined = l.Concat(right[ri]);
        if (plan.predicate() != nullptr) {
          ++stats->comparisons;
          if (!plan.predicate()->EvaluatesToTrue(joined)) continue;
        }
        output.push_back(std::move(joined));
      }
    }
    stats->tuples_output += static_cast<int64_t>(output.size());
    return RelationView::Own(std::move(output));
  }

  std::vector<size_t> left_keys, right_keys;
  for (const auto& [l, r] : plan.join_keys()) {
    left_keys.push_back(l);
    right_keys.push_back(r);
  }

  // Build on the smaller side, probe with the larger.
  const bool build_left = left.size() <= right.size();
  const RelationView& build = build_left ? left : right;
  const RelationView& probe = build_left ? right : left;
  const std::vector<size_t>& build_keys = build_left ? left_keys : right_keys;
  const std::vector<size_t>& probe_keys = build_left ? right_keys : left_keys;

  // One flat-table bucket per distinct key; rows of a bucket form a chain
  // through `next` (indices into the build side), so duplicate keys cost
  // no per-bucket vector.
  struct BuildBucket {
    const Tuple* repr = nullptr;  // borrowed key representative
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };
  FlatTable<BuildBucket> table(build.size());
  std::vector<uint32_t> next(build.size(), kNil);
  for (size_t i = 0; i < build.size(); ++i) {
    const Tuple& t = build[i];
    ++stats->join_build_inserts;
    const uint64_t hash = HashValuesAt(t, build_keys);
    auto [bucket, inserted] = table.FindOrEmplace(
        hash,
        [&](const BuildBucket& b) {
          return ValuesEqualAt(*b.repr, build_keys, t, build_keys);
        },
        [&] {
          const uint32_t index = static_cast<uint32_t>(i);
          return BuildBucket{&t, index, index};
        });
    if (!inserted) {
      next[bucket->tail] = static_cast<uint32_t>(i);
      bucket->tail = static_cast<uint32_t>(i);
    }
  }
  for (size_t pi = 0; pi < probe.size(); ++pi) {
    const Tuple& t = probe[pi];
    ++stats->join_probes;
    const uint64_t hash = HashValuesAt(t, probe_keys);
    BuildBucket* bucket = table.Find(hash, [&](const BuildBucket& b) {
      return ValuesEqualAt(*b.repr, build_keys, t, probe_keys);
    });
    if (bucket == nullptr) continue;
    for (uint32_t bi = bucket->head; bi != kNil; bi = next[bi]) {
      const Tuple& match = build[bi];
      // Output column order is (left, right) regardless of build side.
      Tuple joined = build_left ? match.Concat(t) : t.Concat(match);
      if (plan.predicate() != nullptr) {
        ++stats->comparisons;
        if (!plan.predicate()->EvaluatesToTrue(joined)) continue;
      }
      output.push_back(std::move(joined));
    }
  }
  stats->tuples_output += static_cast<int64_t>(output.size());
  return RelationView::Own(std::move(output));
}

RelationView UnionAll(RelationView left, RelationView right,
                      ExecStats* stats) {
  stats->tuples_output += static_cast<int64_t>(left.size() + right.size());
  return RelationView::Concat(std::move(left), std::move(right));
}

RelationView SetDifference(const RelationView& left,
                           const RelationView& right, ExecStats* stats) {
  // Multiset monus: each right-side tuple cancels at most one left-side
  // occurrence.
  struct Monus {
    const Tuple* repr = nullptr;
    int64_t count = 0;
  };
  FlatTable<Monus> to_remove(right.size());
  right.ForEach([&](const Tuple& t) {
    ++stats->comparisons;
    auto [entry, inserted] = to_remove.FindOrEmplace(
        t.Hash(), [&](const Monus& m) { return *m.repr == t; },
        [&] { return Monus{&t, 0}; });
    ++entry->count;
  });
  std::vector<const Tuple*> refs;
  refs.reserve(left.size());
  left.ForEach([&](const Tuple& t) {
    ++stats->comparisons;
    Monus* entry = to_remove.Find(
        t.Hash(), [&](const Monus& m) { return *m.repr == t; });
    if (entry != nullptr && entry->count > 0) {
      --entry->count;
      return;
    }
    refs.push_back(&t);
  });
  stats->tuples_output += static_cast<int64_t>(refs.size());
  return RelationView::Subset(left, std::move(refs));
}

Result<RelationView> Aggregate(const LogicalPlan& plan,
                               const RelationView& input, ExecStats* stats) {
  std::vector<size_t> group_indices;
  for (const plan::GroupBySpec& g : plan.group_by()) {
    group_indices.push_back(g.input_index);
  }
  const size_t num_aggs = plan.aggregates().size();
  for (const plan::AggregateSpec& spec : plan.aggregates()) {
    if (spec.func == sql::AggFunc::kNone) {
      return Status::Internal("AggFunc::kNone in aggregate spec");
    }
  }

  // Group states live in one arena at a fixed stride; the table entry
  // holds a borrowed representative tuple and the group's arena offset.
  struct GroupEntry {
    const Tuple* repr = nullptr;
    size_t agg_offset = 0;
  };
  FlatTable<GroupEntry> groups;
  std::vector<AggState> agg_arena;
  for (size_t i = 0; i < input.size(); ++i) {
    const Tuple& t = input[i];
    ++stats->comparisons;
    const uint64_t hash = HashValuesAt(t, group_indices);
    auto [entry, inserted] = groups.FindOrEmplace(
        hash,
        [&](const GroupEntry& g) {
          return ValuesEqualAt(*g.repr, group_indices, t, group_indices);
        },
        [&] {
          const size_t offset = agg_arena.size();
          agg_arena.resize(offset + num_aggs);
          return GroupEntry{&t, offset};
        });
    for (size_t a = 0; a < num_aggs; ++a) {
      const plan::AggregateSpec& spec = plan.aggregates()[a];
      AggState& agg = agg_arena[entry->agg_offset + a];
      ++agg.count;
      if (spec.count_star) continue;
      const Value& v = t.value(spec.input_index);
      if (v.is_numeric()) {
        agg.sum += v.AsDouble();
        if (!v.is_int64()) agg.sum_is_integral = false;
      }
      if (agg.min == nullptr) {
        agg.min = &v;
        agg.max = &v;
      } else {
        if (v < *agg.min) agg.min = &v;
        if (*agg.max < v) agg.max = &v;
      }
    }
  }

  Relation output;
  output.reserve(groups.size());
  groups.ForEach([&](const GroupEntry& group) {
    std::vector<Value> row;
    row.reserve(group_indices.size() + num_aggs);
    for (size_t i : group_indices) {
      row.push_back(group.repr->value(i));
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      const plan::AggregateSpec& spec = plan.aggregates()[a];
      const AggState& agg = agg_arena[group.agg_offset + a];
      switch (spec.func) {
        case sql::AggFunc::kCount:
          row.push_back(Value::Int64(agg.count));
          break;
        case sql::AggFunc::kSum:
          row.push_back(agg.sum_is_integral
                            ? Value::Int64(static_cast<int64_t>(agg.sum))
                            : Value::Double(agg.sum));
          break;
        case sql::AggFunc::kAvg:
          row.push_back(Value::Double(
              agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(
                                                  agg.count)));
          break;
        case sql::AggFunc::kMin:
          row.push_back(agg.min == nullptr ? Value() : *agg.min);
          break;
        case sql::AggFunc::kMax:
          row.push_back(agg.max == nullptr ? Value() : *agg.max);
          break;
        case sql::AggFunc::kNone:
          break;  // rejected above
      }
    }
    output.emplace_back(std::move(row));
  });
  stats->tuples_output += static_cast<int64_t>(output.size());
  return RelationView::Own(std::move(output));
}

}  // namespace scalar

Result<Relation> Evaluator::Evaluate(const LogicalPlan& plan) {
  DT_ASSIGN_OR_RETURN(RelationView view, EvaluateView(plan));
  return std::move(view).Materialize();
}

Result<RelationView> Evaluator::EvaluateView(const LogicalPlan& plan) {
  switch (plan.kind()) {
    case LogicalPlan::Kind::kEmpty:
      return RelationView();
    case LogicalPlan::Kind::kStreamScan:
      return EvaluateScan(plan);
    case LogicalPlan::Kind::kFilter: {
      DT_ASSIGN_OR_RETURN(RelationView input, EvaluateView(*plan.child(0)));
      return scalar::Filter(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kProject: {
      DT_ASSIGN_OR_RETURN(RelationView input, EvaluateView(*plan.child(0)));
      return scalar::Project(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kCompute: {
      DT_ASSIGN_OR_RETURN(RelationView input, EvaluateView(*plan.child(0)));
      return scalar::Compute(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kJoin: {
      DT_ASSIGN_OR_RETURN(RelationView left, EvaluateView(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(RelationView right, EvaluateView(*plan.child(1)));
      return scalar::Join(plan, left, right, &stats_);
    }
    case LogicalPlan::Kind::kUnionAll: {
      DT_ASSIGN_OR_RETURN(RelationView left, EvaluateView(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(RelationView right, EvaluateView(*plan.child(1)));
      return scalar::UnionAll(std::move(left), std::move(right), &stats_);
    }
    case LogicalPlan::Kind::kSetDifference: {
      DT_ASSIGN_OR_RETURN(RelationView left, EvaluateView(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(RelationView right, EvaluateView(*plan.child(1)));
      return scalar::SetDifference(left, right, &stats_);
    }
    case LogicalPlan::Kind::kAggregate: {
      DT_ASSIGN_OR_RETURN(RelationView input, EvaluateView(*plan.child(0)));
      return scalar::Aggregate(plan, input, &stats_);
    }
    case LogicalPlan::Kind::kPattern: {
      DT_ASSIGN_OR_RETURN(RelationView input, EvaluateView(*plan.child(0)));
      return EvaluatePattern(plan, input, &stats_);
    }
  }
  return Status::Internal("unhandled plan kind in evaluator");
}

Result<RelationView> Evaluator::EvaluateScan(const LogicalPlan& plan) {
  auto it = inputs_->find(ChannelKey{plan.stream(), plan.channel()});
  if (it == inputs_->end()) return RelationView();
  stats_.tuples_scanned += static_cast<int64_t>(it->second.size());
  return RelationView::Borrow(it->second);
}

Result<Relation> EvaluatePlan(const LogicalPlan& plan,
                              const RelationProvider& inputs,
                              ExecStats* stats, const EvalOptions& options) {
  // Pattern plans have no vectorized kernel yet; force the scalar path so
  // the exec-mode-flip oracle holds trivially for MATCH queries.
  if (options.vectorized && !plan.ContainsPattern()) {
    size_t total_rows = 0;
    for (const auto& [key, rel] : inputs) total_rows += rel.size();
    if (total_rows >= options.min_rows) {
      VectorEvaluator evaluator(&inputs, options.pool,
                                options.parallel_min_rows);
      DT_ASSIGN_OR_RETURN(Relation result, evaluator.Evaluate(plan));
      if (stats != nullptr) *stats += evaluator.stats();
      return result;
    }
  }
  Evaluator evaluator(&inputs);
  DT_ASSIGN_OR_RETURN(Relation result, evaluator.Evaluate(plan));
  if (stats != nullptr) *stats += evaluator.stats();
  return result;
}

}  // namespace datatriage::exec
