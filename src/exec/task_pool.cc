#include "src/exec/task_pool.h"

namespace datatriage::exec {

TaskPool::TaskPool(size_t helper_threads) {
  helpers_.reserve(helper_threads);
  for (size_t i = 0; i < helper_threads; ++i) {
    helpers_.emplace_back([this] { RunHelper(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

size_t TaskPool::WorkOn(Job* job) {
  size_t executed = 0;
  while (true) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) break;
    (*job->fn)(i);
    ++executed;
    // release: the submitter's acquire load of `done` (or its wait
    // below) must observe every write fn(i) made.
    if (job->done.fetch_add(1, std::memory_order_release) + 1 == job->n) {
      std::lock_guard<std::mutex> lock(job->done_mutex);
      job->done_cv.notify_all();
    }
  }
  return executed;
}

void TaskPool::ParallelFor(size_t n,
                           const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (helpers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();
  WorkOn(job.get());
  if (job->done.load(std::memory_order_acquire) < n) {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&job, n] {
      return job->done.load(std::memory_order_acquire) >= n;
    });
  }
  // The job is exhausted; drop it from the queue if a helper has not
  // already retired it.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (it->get() == job.get()) {
      jobs_.erase(it);
      break;
    }
  }
}

void TaskPool::RunHelper() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      // Oldest job first; exhausted jobs are retired here so a helper
      // never spins on a drained entry.
      while (!jobs_.empty() &&
             jobs_.front()->next.load(std::memory_order_relaxed) >=
                 jobs_.front()->n) {
        jobs_.pop_front();
      }
      if (jobs_.empty()) continue;
      job = jobs_.front();
    }
    WorkOn(job.get());
  }
}

}  // namespace datatriage::exec
