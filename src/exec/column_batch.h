#ifndef DATATRIAGE_EXEC_COLUMN_BATCH_H_
#define DATATRIAGE_EXEC_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/catalog/field_type.h"
#include "src/common/virtual_time.h"
#include "src/tuple/tuple.h"

namespace datatriage::exec {

using Relation = std::vector<Tuple>;

/// One column of a ColumnBatch: a typed value array plus an exception
/// ("null") mask. The engine has no SQL NULL, so the mask does not mark
/// missing values; it marks rows whose runtime Value type differs from the
/// column's declared kind (tuples are untyped vectors, so a column can in
/// principle hold e.g. a Double among Int64s). Masked rows keep their full
/// Value out of line so the original bytes are reconstructible, which is
/// what lets the vectorized path stay byte-identical to the scalar one.
///
/// Storage by kind:
///  - numeric kinds (kInt64 / kDouble / kTimestamp): `f64` always holds
///    the promoted double (Value::AsDouble()) for every row whose value
///    is numeric — including same-class exceptions — because hashing,
///    equality, comparison, and aggregation all operate on the promotion
///    (Value::operator== / Hash promote numerics to double). kInt64
///    additionally keeps the exact `i64` values for reconstruction and
///    int64 arithmetic.
///  - kString: `str` holds borrowed pointers; the batch retains whatever
///    owns the string bytes (the provider relation, or `str_storage` for
///    strings the operator itself produced).
///
/// Exception levels: 0 = clean; kSameClass = numeric value of another
/// numeric kind (or timestamp), f64 still valid; kCrossClass = a string in
/// a numeric column or vice versa, so the typed arrays hold placeholders
/// and every consumer must go through the out-of-line Value.
struct Column {
  static constexpr uint8_t kSameClass = 1;
  static constexpr uint8_t kCrossClass = 2;

  FieldType kind = FieldType::kInt64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<const std::string*> str;
  /// Per-row exception level; empty when the column is clean.
  std::vector<uint8_t> exception;
  /// Out-of-line Values for exception rows, sorted by row index.
  std::vector<std::pair<uint32_t, Value>> exception_values;
  /// True when any row is a kCrossClass exception.
  bool has_cross_class = false;
  /// Owned backing store for strings this column created (literals,
  /// fallback conversions); borrowed columns leave it null.
  std::shared_ptr<const std::vector<std::string>> str_storage;

  bool clean() const { return exception.empty(); }
  bool is_string() const { return kind == FieldType::kString; }
  uint8_t ExceptionLevel(size_t row) const {
    return exception.empty() ? 0 : exception[row];
  }
  /// Precondition: ExceptionLevel(row) != 0.
  const Value& ExceptionAt(size_t row) const;

  /// Reconstructs the exact original Value (type, timestamp flag, string
  /// bytes) for `row`.
  Value ValueAt(size_t row) const;

  /// Value::Hash() of ValueAt(row), without constructing the Value on the
  /// clean paths.
  size_t HashAt(size_t row) const;
};

/// Column-major representation of a Relation: per-column value arrays, a
/// shared timestamp array, and shared ownership of whatever the borrowed
/// pointers reach into. Columns are individually shared (shared_ptr), so a
/// projection is a column-pointer shuffle, never a copy.
///
/// Batches are immutable once built; operators compose them with selection
/// vectors (see BatchView) instead of materializing intermediate rows.
class ColumnBatch {
 public:
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return cols_.size(); }
  const Column& col(size_t c) const { return *cols_[c]; }
  const std::shared_ptr<const Column>& col_ptr(size_t c) const {
    return cols_[c];
  }
  VirtualTime timestamp(size_t row) const { return (*timestamps_)[row]; }
  const std::shared_ptr<const std::vector<VirtualTime>>& timestamps() const {
    return timestamps_;
  }

  /// Exact per-cell reconstruction.
  Value ValueAt(size_t col, size_t row) const {
    return cols_[col]->ValueAt(row);
  }
  /// The relation this batch was converted from, or null for batches
  /// assembled from columns. Valid for the batch's lifetime (borrowed
  /// sources must outlive the batch; owned sources are retained).
  const Relation* source_rows() const { return source_rows_; }
  /// Rebuilds row `row` as a Tuple (values + timestamp), byte-identical
  /// to the row the batch was built from.
  Tuple RowAt(size_t row) const;

  /// Converts `rel` into a batch. String cells are borrowed: `rel` must
  /// outlive the batch (scan of a provider input), or be passed via the
  /// owning overload. All rows must share the first row's arity.
  static std::shared_ptr<const ColumnBatch> FromRelation(const Relation& rel);
  /// Same, but the batch shares ownership of the relation, keeping the
  /// borrowed string bytes alive (operator-built rows).
  static std::shared_ptr<const ColumnBatch> FromRelation(
      std::shared_ptr<const Relation> rel);

  /// Assembles a batch from prebuilt columns. Every column must have
  /// exactly `timestamps->size()` rows. `retained` keeps parent batches
  /// (and through them, borrowed string storage) alive.
  static std::shared_ptr<const ColumnBatch> FromColumns(
      std::vector<std::shared_ptr<const Column>> cols,
      std::shared_ptr<const std::vector<VirtualTime>> timestamps,
      std::vector<std::shared_ptr<const void>> retained);

 private:
  ColumnBatch() = default;

  static std::shared_ptr<const ColumnBatch> Build(
      const Relation& rel, std::shared_ptr<const Relation> owner);

  size_t num_rows_ = 0;
  std::vector<std::shared_ptr<const Column>> cols_;
  std::shared_ptr<const std::vector<VirtualTime>> timestamps_;
  const Relation* source_rows_ = nullptr;
  // Keep-alive for borrowed storage reachable from cols_ (parent batches,
  // source relations).
  std::vector<std::shared_ptr<const void>> retained_;
};

/// A batch plus an optional selection vector: the working set of every
/// vectorized operator. `sel == nullptr` means all rows in order; otherwise
/// `sel` lists the selected row indices, ascending for filter outputs
/// (filters never reorder). Operators pass views downstream without
/// materializing, exactly as RelationView does for the scalar path.
struct BatchView {
  std::shared_ptr<const ColumnBatch> batch;
  std::shared_ptr<const std::vector<uint32_t>> sel;

  size_t size() const {
    if (sel != nullptr) return sel->size();
    return batch == nullptr ? 0 : batch->num_rows();
  }
  bool empty() const { return size() == 0; }
  /// Absolute row index of the i-th selected row.
  uint32_t RowIndex(size_t i) const {
    return sel != nullptr ? (*sel)[i] : static_cast<uint32_t>(i);
  }

  /// Materializes the selected rows, byte-identical to what the scalar
  /// path would have produced.
  Relation ToRelation() const;
};

/// Incremental column construction from arbitrary Values (aggregate
/// outputs, fallback conversions). The first appended value fixes the
/// kind; later values of other types become exceptions. Strings are
/// copied into an owned store.
class ColumnBuilder {
 public:
  void Reserve(size_t n);
  void Append(const Value& v);
  size_t size() const { return size_; }
  /// Finalizes; the builder must not be reused afterwards.
  std::shared_ptr<const Column> Finish();

 private:
  Column col_;
  std::shared_ptr<std::vector<std::string>> strings_;
  size_t size_ = 0;
  bool kind_fixed_ = false;
};

/// Row equality across (possibly distinct) batches under Value::operator==
/// promotion rules, without constructing Values on the clean paths.
bool ColumnsEqualAt(const Column& a, size_t ar, const Column& b, size_t br);

/// HashValuesAt / Tuple::Hash replicated over columns: seed = cols.size(),
/// folded with HashCombine over each column's HashAt. `rows`/`n` select
/// the domain (rows == nullptr means 0..n-1); results are appended to
/// `out` in domain order.
void HashRows(const std::vector<const Column*>& cols, const uint32_t* rows,
              size_t n, std::vector<uint64_t>* out);

/// Range form of HashRows for morsel-parallel kernels: fills
/// `out[start .. start+n)` with the hashes of those domain positions,
/// where `out` spans the whole domain. Each element is a pure function
/// of its own position, so any partition of the domain into ranges
/// produces bytes identical to one HashRows pass.
void HashRowsRange(const std::vector<const Column*>& cols,
                   const uint32_t* rows, size_t start, size_t n,
                   uint64_t* out);

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_COLUMN_BATCH_H_
