#ifndef DATATRIAGE_EXEC_RELATION_H_
#define DATATRIAGE_EXEC_RELATION_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/column_batch.h"
#include "src/plan/logical_plan.h"
#include "src/tuple/tuple.h"

namespace datatriage::exec {

/// A materialized multiset of tuples (one window's worth of one channel of
/// one stream, or an intermediate result).
using Relation = std::vector<Tuple>;

/// Key identifying one channel of one stream.
struct ChannelKey {
  std::string stream;
  plan::Channel channel = plan::Channel::kBase;

  bool operator<(const ChannelKey& other) const {
    if (stream != other.stream) return stream < other.stream;
    return static_cast<int>(channel) < static_cast<int>(other.channel);
  }
};

/// Input bindings for one evaluation: the tuples available on each
/// (stream, channel) during the window being evaluated. Scans of a missing
/// key see an empty relation (e.g. the kDropped channel when nothing was
/// shed).
using RelationProvider = std::map<ChannelKey, Relation>;

/// Borrowed-or-owned view of a relation, so pass-through operators never
/// copy tuples. A view is one of:
///
///  - a span over a relation it does not own (scan of a provider input);
///  - a span over rows it owns (project / compute / join / aggregate
///    output), held behind a shared_ptr so tuple addresses stay stable;
///  - a scattered list of borrowed tuple pointers (filter and union
///    output) plus shared ownership of whatever owned storage those
///    pointers reach into.
///
/// Ownership is shared rather than tied to the operator tree: a filter's
/// view stays valid after the child view that owned the rows is destroyed.
/// Borrowed provider spans are only valid while the provider outlives the
/// view, which the evaluator guarantees.
class RelationView {
 public:
  RelationView() = default;

  /// Borrows `rel` without taking ownership; `rel` must outlive the view.
  static RelationView Borrow(const Relation& rel) {
    RelationView view;
    view.span_ = &rel;
    return view;
  }

  /// Takes ownership of `rel`.
  static RelationView Own(Relation rel) {
    RelationView view;
    view.storage_.push_back(
        std::make_shared<Relation>(std::move(rel)));
    view.span_ = view.storage_.back().get();
    return view;
  }

  /// Scattered subset of `parent`'s rows; every pointer in `refs` must
  /// point into `parent`. Shares `parent`'s owned storage.
  static RelationView Subset(const RelationView& parent,
                             std::vector<const Tuple*> refs) {
    RelationView view;
    view.storage_ = parent.storage_;
    view.refs_ = std::move(refs);
    view.scattered_ = true;
    return view;
  }

  /// Concatenation of two views without copying rows (union-all).
  static RelationView Concat(RelationView left, RelationView right) {
    RelationView view;
    view.scattered_ = true;
    view.refs_.reserve(left.size() + right.size());
    left.ForEach([&](const Tuple& t) { view.refs_.push_back(&t); });
    right.ForEach([&](const Tuple& t) { view.refs_.push_back(&t); });
    for (auto& storage : left.storage_) {
      view.storage_.push_back(std::move(storage));
    }
    for (auto& storage : right.storage_) {
      view.storage_.push_back(std::move(storage));
    }
    return view;
  }

  size_t size() const {
    if (scattered_) return refs_.size();
    return span_ == nullptr ? 0 : span_->size();
  }
  bool empty() const { return size() == 0; }

  const Tuple& operator[](size_t i) const {
    return scattered_ ? *refs_[i] : (*span_)[i];
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (scattered_) {
      for (const Tuple* t : refs_) fn(*t);
    } else if (span_ != nullptr) {
      for (const Tuple& t : *span_) fn(t);
    }
  }

  /// Materializes an owned Relation: moves the rows when this view is the
  /// unique owner of a full span (the common case for operator outputs),
  /// copies otherwise.
  Relation Materialize() && {
    if (!scattered_ && storage_.size() == 1 &&
        span_ == storage_.front().get() &&
        storage_.front().use_count() == 1) {
      return std::move(*storage_.front());
    }
    Relation out;
    out.reserve(size());
    ForEach([&](const Tuple& t) { out.push_back(t); });
    return out;
  }

 private:
  std::vector<std::shared_ptr<Relation>> storage_;  // keep-alive (0–2 ptrs)
  const Relation* span_ = nullptr;     // contiguous mode
  std::vector<const Tuple*> refs_;     // scattered mode
  bool scattered_ = false;
};

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_RELATION_H_
