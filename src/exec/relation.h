#ifndef DATATRIAGE_EXEC_RELATION_H_
#define DATATRIAGE_EXEC_RELATION_H_

#include <map>
#include <string>
#include <vector>

#include "src/plan/logical_plan.h"
#include "src/tuple/tuple.h"

namespace datatriage::exec {

/// A materialized multiset of tuples (one window's worth of one channel of
/// one stream, or an intermediate result).
using Relation = std::vector<Tuple>;

/// Key identifying one channel of one stream.
struct ChannelKey {
  std::string stream;
  plan::Channel channel = plan::Channel::kBase;

  bool operator<(const ChannelKey& other) const {
    if (stream != other.stream) return stream < other.stream;
    return static_cast<int>(channel) < static_cast<int>(other.channel);
  }
};

/// Input bindings for one evaluation: the tuples available on each
/// (stream, channel) during the window being evaluated. Scans of a missing
/// key see an empty relation (e.g. the kDropped channel when nothing was
/// shed).
using RelationProvider = std::map<ChannelKey, Relation>;

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_RELATION_H_
