#ifndef DATATRIAGE_EXEC_EVALUATOR_H_
#define DATATRIAGE_EXEC_EVALUATOR_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/exec/relation.h"
#include "src/plan/logical_plan.h"

namespace datatriage::exec {

/// Work accounting for one plan evaluation, in abstract work units (one
/// unit ~ one tuple touched). The engine's virtual-time cost model converts
/// units to virtual seconds; benchmarks report them directly.
struct ExecStats {
  int64_t tuples_scanned = 0;
  int64_t tuples_output = 0;
  int64_t join_probes = 0;
  int64_t join_build_inserts = 0;
  int64_t comparisons = 0;

  int64_t TotalWork() const {
    return tuples_scanned + tuples_output + join_probes +
           join_build_inserts + comparisons;
  }

  ExecStats& operator+=(const ExecStats& other);
};

/// Evaluates a logical plan exactly over materialized inputs.
///
/// Joins use an open-addressing hash table (FlatTable) on the equijoin
/// keys, building on the smaller input; keyless joins fall back to
/// nested-loop cross products. Set difference uses multiset (monus)
/// semantics, matching the algebra in paper Sec. 3. Aggregation is a hash
/// group-by over the same table.
///
/// Internally operators exchange RelationViews: scans and filters pass
/// borrowed tuples, and only operators that create new rows (project,
/// compute, join, aggregate) own their output. Hash keys are (tuple
/// pointer, index list) views with precomputed hashes — no Value is
/// copied to build or probe a table.
class Evaluator {
 public:
  explicit Evaluator(const RelationProvider* inputs) : inputs_(inputs) {}

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Evaluates `plan`; the result's column order matches plan.schema().
  Result<Relation> Evaluate(const plan::LogicalPlan& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  /// Dispatch used for operator inputs: results may borrow from the
  /// provider or from a child view's owned storage.
  Result<RelationView> EvaluateView(const plan::LogicalPlan& plan);

  Result<RelationView> EvaluateScan(const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateFilter(const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateProject(const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateCompute(const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateJoin(const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateUnionAll(const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateSetDifference(
      const plan::LogicalPlan& plan);
  Result<RelationView> EvaluateAggregate(const plan::LogicalPlan& plan);

  const RelationProvider* inputs_;
  ExecStats stats_;
};

/// One-shot convenience wrapper.
Result<Relation> EvaluatePlan(const plan::LogicalPlan& plan,
                              const RelationProvider& inputs,
                              ExecStats* stats = nullptr);

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_EVALUATOR_H_
