#ifndef DATATRIAGE_EXEC_EVALUATOR_H_
#define DATATRIAGE_EXEC_EVALUATOR_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/exec/relation.h"
#include "src/plan/logical_plan.h"

namespace datatriage::exec {

/// Work accounting for one plan evaluation, in abstract work units (one
/// unit ~ one tuple touched). The engine's virtual-time cost model converts
/// units to virtual seconds; benchmarks report them directly.
struct ExecStats {
  int64_t tuples_scanned = 0;
  int64_t tuples_output = 0;
  int64_t join_probes = 0;
  int64_t join_build_inserts = 0;
  int64_t comparisons = 0;

  int64_t TotalWork() const {
    return tuples_scanned + tuples_output + join_probes +
           join_build_inserts + comparisons;
  }

  ExecStats& operator+=(const ExecStats& other);
};

class TaskPool;

/// Executor dispatch options. The vectorized path (vector_eval.h) and the
/// scalar path are byte-for-byte interchangeable — same rows, same row
/// order, same ExecStats — so these options affect speed only, never
/// results. `min_rows` keeps tiny evaluations on the scalar path, where
/// the row→column conversion would dominate: vectorization engages only
/// when the provider holds at least that many input tuples in total.
struct EvalOptions {
  bool vectorized = false;
  size_t min_rows = 0;

  /// Helper pool for morsel-parallel join/aggregate kernels
  /// (task_pool.h); nullptr keeps every kernel single-threaded. Like
  /// `vectorized`, this trades nothing but speed: morsel partials merge
  /// in a deterministic order (DESIGN.md §16.2), so results, row order,
  /// and ExecStats stay byte-identical. Only meaningful together with
  /// `vectorized` — the scalar reference path never splits.
  TaskPool* pool = nullptr;
  /// Minimum rows a kernel input needs before it splits into morsels;
  /// smaller inputs run the serial vectorized loop, where partition +
  /// merge overhead would dominate. Purely a performance threshold.
  size_t parallel_min_rows = 0;
};

/// Evaluates a logical plan exactly over materialized inputs.
///
/// Joins use an open-addressing hash table (FlatTable) on the equijoin
/// keys, building on the smaller input; keyless joins fall back to
/// nested-loop cross products. Set difference uses multiset (monus)
/// semantics, matching the algebra in paper Sec. 3. Aggregation is a hash
/// group-by over the same table.
///
/// Internally operators exchange RelationViews: scans and filters pass
/// borrowed tuples, and only operators that create new rows (project,
/// compute, join, aggregate) own their output. Hash keys are (tuple
/// pointer, index list) views with precomputed hashes — no Value is
/// copied to build or probe a table.
///
/// This class is the reference scalar implementation; the column-major
/// executor in vector_eval.h reuses its operator kernels (the scalar::
/// functions below) for semantics it does not vectorize.
class Evaluator {
 public:
  explicit Evaluator(const RelationProvider* inputs) : inputs_(inputs) {}

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Evaluates `plan`; the result's column order matches plan.schema().
  Result<Relation> Evaluate(const plan::LogicalPlan& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  /// Dispatch used for operator inputs: results may borrow from the
  /// provider or from a child view's owned storage.
  Result<RelationView> EvaluateView(const plan::LogicalPlan& plan);

  Result<RelationView> EvaluateScan(const plan::LogicalPlan& plan);

  const RelationProvider* inputs_;
  ExecStats stats_;
};

/// The scalar operator kernels, shared between Evaluator and the
/// vectorized executor's fallback paths. Each takes fully-evaluated child
/// views, charges `stats` exactly as the tuple-at-a-time loop always has,
/// and returns the operator's output view.
namespace scalar {

RelationView Filter(const plan::LogicalPlan& plan, const RelationView& input,
                    ExecStats* stats);
RelationView Project(const plan::LogicalPlan& plan,
                     const RelationView& input, ExecStats* stats);
RelationView Compute(const plan::LogicalPlan& plan,
                     const RelationView& input, ExecStats* stats);
RelationView Join(const plan::LogicalPlan& plan, const RelationView& left,
                  const RelationView& right, ExecStats* stats);
RelationView UnionAll(RelationView left, RelationView right,
                      ExecStats* stats);
RelationView SetDifference(const RelationView& left,
                           const RelationView& right, ExecStats* stats);
Result<RelationView> Aggregate(const plan::LogicalPlan& plan,
                               const RelationView& input, ExecStats* stats);

}  // namespace scalar

/// One-shot convenience wrapper. With `options.vectorized` the plan runs
/// on the column-major executor (vector_eval.h); the output is
/// byte-identical either way.
Result<Relation> EvaluatePlan(const plan::LogicalPlan& plan,
                              const RelationProvider& inputs,
                              ExecStats* stats = nullptr,
                              const EvalOptions& options = EvalOptions());

}  // namespace datatriage::exec

#endif  // DATATRIAGE_EXEC_EVALUATOR_H_
