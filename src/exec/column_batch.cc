#include "src/exec/column_batch.h"

#include <algorithm>
#include <functional>

#include "src/common/logging.h"

namespace datatriage::exec {

const Value& Column::ExceptionAt(size_t row) const {
  auto it = std::lower_bound(
      exception_values.begin(), exception_values.end(), row,
      [](const std::pair<uint32_t, Value>& e, size_t r) {
        return e.first < r;
      });
  DT_CHECK(it != exception_values.end() && it->first == row)
      << "no out-of-line value for exception row";
  return it->second;
}

Value Column::ValueAt(size_t row) const {
  if (ExceptionLevel(row) != 0) return ExceptionAt(row);
  switch (kind) {
    case FieldType::kInt64:
      return Value::Int64(i64[row]);
    case FieldType::kDouble:
      return Value::Double(f64[row]);
    case FieldType::kTimestamp:
      return Value::Timestamp(f64[row]);
    case FieldType::kString:
      return Value::String(*str[row]);
  }
  DT_CHECK(false) << "unhandled column kind";
  return Value();
}

size_t Column::HashAt(size_t row) const {
  const uint8_t level = ExceptionLevel(row);
  if (level == kCrossClass) return ExceptionAt(row).Hash();
  if (kind == FieldType::kString) return std::hash<std::string>{}(*str[row]);
  // Numeric (including same-class exceptions, whose promotion is cached
  // in f64): Value::Hash hashes the double representation.
  return std::hash<double>{}(f64[row]);
}

Tuple ColumnBatch::RowAt(size_t row) const {
  std::vector<Value> values;
  values.reserve(cols_.size());
  for (const auto& col : cols_) values.push_back(col->ValueAt(row));
  return Tuple(std::move(values), (*timestamps_)[row]);
}

namespace {

FieldType KindOf(const Value& v) { return v.type(); }

bool SameClass(FieldType a, FieldType b) {
  return (a == FieldType::kString) == (b == FieldType::kString);
}

}  // namespace

std::shared_ptr<const ColumnBatch> ColumnBatch::Build(
    const Relation& rel, std::shared_ptr<const Relation> owner) {
  const size_t rows = rel.size();
  const size_t cols = rows == 0 ? 0 : rel.front().size();

  std::vector<Column> built(cols);
  for (size_t c = 0; c < cols; ++c) {
    Column& col = built[c];
    col.kind = KindOf(rel.front().value(c));
    switch (col.kind) {
      case FieldType::kInt64:
        col.i64.reserve(rows);
        col.f64.reserve(rows);
        break;
      case FieldType::kDouble:
      case FieldType::kTimestamp:
        col.f64.reserve(rows);
        break;
      case FieldType::kString:
        col.str.reserve(rows);
        break;
    }
  }
  auto timestamps = std::make_shared<std::vector<VirtualTime>>();
  timestamps->reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    const Tuple& t = rel[r];
    DT_CHECK_EQ(t.size(), cols) << "ragged relation in batch conversion";
    timestamps->push_back(t.timestamp());
    for (size_t c = 0; c < cols; ++c) {
      Column& col = built[c];
      const Value& v = t.value(c);
      const FieldType vt = KindOf(v);
      if (vt != col.kind) {
        if (col.exception.empty()) col.exception.resize(rows, 0);
        const bool cross = !SameClass(vt, col.kind);
        col.exception[r] = cross ? Column::kCrossClass : Column::kSameClass;
        col.has_cross_class |= cross;
        col.exception_values.emplace_back(static_cast<uint32_t>(r), v);
      }
      switch (col.kind) {
        case FieldType::kInt64:
          col.i64.push_back(v.is_int64() ? v.int64() : 0);
          col.f64.push_back(v.is_numeric() ? v.AsDouble() : 0.0);
          break;
        case FieldType::kDouble:
        case FieldType::kTimestamp:
          col.f64.push_back(v.is_numeric() ? v.AsDouble() : 0.0);
          break;
        case FieldType::kString:
          col.str.push_back(v.is_string() ? &v.str() : nullptr);
          break;
      }
    }
  }

  std::shared_ptr<ColumnBatch> batch(new ColumnBatch());
  batch->num_rows_ = rows;
  batch->cols_.reserve(cols);
  for (Column& col : built) {
    batch->cols_.push_back(
        std::make_shared<const Column>(std::move(col)));
  }
  batch->timestamps_ = std::move(timestamps);
  batch->source_rows_ = &rel;
  if (owner != nullptr) batch->retained_.push_back(std::move(owner));
  return batch;
}

std::shared_ptr<const ColumnBatch> ColumnBatch::FromRelation(
    const Relation& rel) {
  return Build(rel, nullptr);
}

std::shared_ptr<const ColumnBatch> ColumnBatch::FromRelation(
    std::shared_ptr<const Relation> rel) {
  const Relation& ref = *rel;
  return Build(ref, std::move(rel));
}

std::shared_ptr<const ColumnBatch> ColumnBatch::FromColumns(
    std::vector<std::shared_ptr<const Column>> cols,
    std::shared_ptr<const std::vector<VirtualTime>> timestamps,
    std::vector<std::shared_ptr<const void>> retained) {
  std::shared_ptr<ColumnBatch> batch(new ColumnBatch());
  batch->num_rows_ = timestamps == nullptr ? 0 : timestamps->size();
  batch->cols_ = std::move(cols);
  batch->timestamps_ = std::move(timestamps);
  batch->retained_ = std::move(retained);
  return batch;
}

Relation BatchView::ToRelation() const {
  Relation out;
  const size_t n = size();
  out.reserve(n);
  // Batches converted from a relation keep a pointer to the source rows:
  // copying those tuples is the same bytes as reconstructing them via
  // RowAt, at the cost the scalar path pays for its own materialization.
  if (const Relation* src = batch == nullptr ? nullptr
                                             : batch->source_rows()) {
    for (size_t i = 0; i < n; ++i) out.push_back((*src)[RowIndex(i)]);
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    out.push_back(batch->RowAt(RowIndex(i)));
  }
  return out;
}

void ColumnBuilder::Reserve(size_t n) {
  switch (col_.kind) {
    case FieldType::kInt64:
      col_.i64.reserve(n);
      col_.f64.reserve(n);
      break;
    case FieldType::kDouble:
    case FieldType::kTimestamp:
      col_.f64.reserve(n);
      break;
    case FieldType::kString:
      col_.str.reserve(n);
      break;
  }
}

void ColumnBuilder::Append(const Value& v) {
  const FieldType vt = v.type();
  if (!kind_fixed_) {
    col_.kind = vt;
    kind_fixed_ = true;
  }
  const size_t row = size_++;
  if (vt != col_.kind) {
    if (col_.exception.empty()) col_.exception.resize(row, 0);
    const bool cross = (vt == FieldType::kString) !=
                       (col_.kind == FieldType::kString);
    col_.exception.push_back(cross ? Column::kCrossClass
                                   : Column::kSameClass);
    col_.has_cross_class |= cross;
    col_.exception_values.emplace_back(static_cast<uint32_t>(row), v);
  } else if (!col_.exception.empty()) {
    col_.exception.push_back(0);
  }
  switch (col_.kind) {
    case FieldType::kInt64:
      col_.i64.push_back(v.is_int64() ? v.int64() : 0);
      col_.f64.push_back(v.is_numeric() ? v.AsDouble() : 0.0);
      break;
    case FieldType::kDouble:
    case FieldType::kTimestamp:
      col_.f64.push_back(v.is_numeric() ? v.AsDouble() : 0.0);
      break;
    case FieldType::kString:
      if (v.is_string()) {
        if (strings_ == nullptr) {
          strings_ = std::make_shared<std::vector<std::string>>();
        }
        strings_->push_back(v.str());
        col_.str.push_back(nullptr);  // patched in Finish (reallocation)
      } else {
        col_.str.push_back(nullptr);
      }
      break;
  }
}

std::shared_ptr<const Column> ColumnBuilder::Finish() {
  if (col_.kind == FieldType::kString && strings_ != nullptr) {
    // Pointers are assigned only now: the owned vector no longer moves.
    size_t next = 0;
    for (size_t r = 0; r < col_.str.size(); ++r) {
      const bool is_string_row =
          col_.exception.empty() ||
          col_.exception[r] != Column::kCrossClass;
      if (is_string_row) col_.str[r] = &(*strings_)[next++];
    }
    col_.str_storage = strings_;
  }
  return std::make_shared<const Column>(std::move(col_));
}

bool ColumnsEqualAt(const Column& a, size_t ar, const Column& b, size_t br) {
  const uint8_t la = a.ExceptionLevel(ar);
  const uint8_t lb = b.ExceptionLevel(br);
  if (la == Column::kCrossClass || lb == Column::kCrossClass ||
      a.is_string() != b.is_string()) {
    // Rare path: full Value semantics (string-vs-numeric is never equal,
    // but let operator== say so).
    return a.ValueAt(ar) == b.ValueAt(br);
  }
  if (a.is_string()) return *a.str[ar] == *b.str[br];
  return a.f64[ar] == b.f64[br];
}

void HashRows(const std::vector<const Column*>& cols, const uint32_t* rows,
              size_t n, std::vector<uint64_t>* out) {
  out->resize(n);
  HashRowsRange(cols, rows, 0, n, out->data());
}

void HashRowsRange(const std::vector<const Column*>& cols,
                   const uint32_t* rows, size_t start, size_t n,
                   uint64_t* out) {
  const size_t end = start + n;
  for (size_t i = start; i < end; ++i) out[i] = cols.size();
  for (const Column* col : cols) {
    if (!col->is_string() && !col->has_cross_class) {
      const double* f = col->f64.data();
      std::hash<double> h;
      if (rows == nullptr) {
        for (size_t i = start; i < end; ++i) {
          out[i] = HashCombine(out[i], h(f[i]));
        }
      } else {
        for (size_t i = start; i < end; ++i) {
          out[i] = HashCombine(out[i], h(f[rows[i]]));
        }
      }
    } else {
      for (size_t i = start; i < end; ++i) {
        const size_t row = rows == nullptr ? i : rows[i];
        out[i] = HashCombine(out[i], col->HashAt(row));
      }
    }
  }
}

}  // namespace datatriage::exec
