#include "src/exec/pattern_eval.h"

#include <algorithm>
#include <map>
#include <vector>

namespace datatriage::exec {

using plan::LogicalPlan;

namespace {

/// A partial match: the timestamps of the matched prefix (index 0 is the
/// first step, so ts.front() anchors the WITHIN check).
struct Partial {
  std::vector<double> ts;
};

Tuple MakeMatchRow(const Value& key, const std::vector<double>& prefix_ts,
                   double last_ts) {
  std::vector<Value> row;
  row.reserve(prefix_ts.size() + 2);
  row.push_back(key);
  for (double t : prefix_ts) row.push_back(Value::Double(t));
  row.push_back(Value::Double(last_ts));
  return Tuple(std::move(row), last_ts);
}

}  // namespace

RelationView EvaluatePattern(const LogicalPlan& plan,
                             const RelationView& input, ExecStats* stats) {
  const std::vector<plan::BoundExprPtr>& steps = plan.pattern_steps();
  const size_t k = steps.size();
  const size_t key_index = plan.pattern_key_index();
  const double within = plan.pattern_within_seconds();

  // Per key: levels[j] holds partials with steps 0..j matched, in
  // creation order. Level k-1 completes immediately, so only k-1 levels
  // are stored.
  std::map<Value, std::vector<std::vector<Partial>>> state;
  Relation output;
  std::vector<bool> step_hits(k);

  input.ForEach([&](const Tuple& tuple) {
    bool any = false;
    for (size_t j = 0; j < k; ++j) {
      ++stats->comparisons;
      step_hits[j] = steps[j]->EvaluatesToTrue(tuple);
      any = any || step_hits[j];
    }
    if (!any) return;
    const Value& key = tuple.value(key_index);
    auto it = state.find(key);
    if (it == state.end()) {
      it = state.emplace(key, std::vector<std::vector<Partial>>(k - 1))
               .first;
    }
    std::vector<std::vector<Partial>>& levels = it->second;
    const double ts = tuple.timestamp();
    // Descending levels so a partial created by this tuple is never
    // extended by the same tuple (indices stay strictly increasing).
    for (size_t j = k; j-- > 0;) {
      if (!step_hits[j]) continue;
      if (j == 0) {
        levels[0].push_back(Partial{{ts}});
        continue;
      }
      for (const Partial& p : levels[j - 1]) {
        ++stats->comparisons;
        if (ts - p.ts.front() > within) continue;
        if (j == k - 1) {
          output.push_back(MakeMatchRow(key, p.ts, ts));
        } else {
          Partial extended = p;
          extended.ts.push_back(ts);
          levels[j].push_back(std::move(extended));
        }
      }
    }
  });
  stats->tuples_output += static_cast<int64_t>(output.size());
  return RelationView::Own(std::move(output));
}

Relation EvaluatePatternBruteForce(const LogicalPlan& plan,
                                   const Relation& input) {
  const std::vector<plan::BoundExprPtr>& steps = plan.pattern_steps();
  const size_t k = steps.size();
  const size_t key_index = plan.pattern_key_index();
  const double within = plan.pattern_within_seconds();
  const size_t n = input.size();

  std::vector<std::vector<size_t>> matches;
  std::vector<size_t> indices(k);
  // Enumerate i1 < ... < ik recursively; every combination is checked
  // directly against the definition.
  auto recurse = [&](auto&& self, size_t level, size_t start) -> void {
    if (level == k) {
      const Tuple& first = input[indices[0]];
      const Tuple& last = input[indices[k - 1]];
      if (last.timestamp() - first.timestamp() > within) return;
      for (size_t j = 1; j < k; ++j) {
        if (!(input[indices[j]].value(key_index) ==
              first.value(key_index))) {
          return;
        }
      }
      matches.push_back(indices);
      return;
    }
    for (size_t i = start; i < n; ++i) {
      if (!steps[level]->EvaluatesToTrue(input[i])) continue;
      indices[level] = i;
      self(self, level + 1, i + 1);
    }
  };
  recurse(recurse, 0, 0);

  // EvaluatePattern emits in creation order: ascending by the reversed
  // index sequence.
  std::sort(matches.begin(), matches.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              return std::lexicographical_compare(a.rbegin(), a.rend(),
                                                  b.rbegin(), b.rend());
            });

  Relation output;
  output.reserve(matches.size());
  for (const std::vector<size_t>& m : matches) {
    std::vector<double> prefix_ts;
    prefix_ts.reserve(k - 1);
    for (size_t j = 0; j + 1 < k; ++j) {
      prefix_ts.push_back(input[m[j]].timestamp());
    }
    // The NFA emits the completing tuple's key value; mirror that (the
    // representations are equal under operator== but could differ).
    output.push_back(MakeMatchRow(input[m[k - 1]].value(key_index),
                                  prefix_ts,
                                  input[m[k - 1]].timestamp()));
  }
  return output;
}

}  // namespace datatriage::exec
