#ifndef DATATRIAGE_WORKLOAD_GENERATOR_H_
#define DATATRIAGE_WORKLOAD_GENERATOR_H_

#include <vector>

#include "src/catalog/schema.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/tuple/tuple.h"

namespace datatriage::workload {

/// Distribution of one generated column: a Gaussian clamped to
/// [clamp_lo, clamp_hi] and optionally rounded to integers — the paper's
/// workload draws integer fields in [1, 100] from Gaussians (Sec. 6.2.1).
struct GaussianColumnSpec {
  double mean = 50.0;
  double stddev = 15.0;
  double clamp_lo = 1.0;
  double clamp_hi = 100.0;
  bool round_to_int = true;
};

/// Generates random tuples for one stream; burst tuples may come from a
/// different set of column distributions (Sec. 6.2.2: "the 'burst' tuples
/// were drawn from Gaussian distributions with means at different
/// locations").
class TupleGenerator {
 public:
  /// `normal` must have one spec per schema column; `burst` may be empty
  /// (burst tuples then use `normal`) or match the column count.
  static Result<TupleGenerator> Make(Schema schema,
                                     std::vector<GaussianColumnSpec> normal,
                                     std::vector<GaussianColumnSpec> burst,
                                     uint64_t seed);

  TupleGenerator(const TupleGenerator&) = delete;
  TupleGenerator& operator=(const TupleGenerator&) = delete;
  TupleGenerator(TupleGenerator&&) = default;
  TupleGenerator& operator=(TupleGenerator&&) = default;

  /// Draws one tuple with the given timestamp.
  Tuple Next(VirtualTime timestamp, bool in_burst);

  const Schema& schema() const { return schema_; }

 private:
  TupleGenerator(Schema schema, std::vector<GaussianColumnSpec> normal,
                 std::vector<GaussianColumnSpec> burst, uint64_t seed)
      : schema_(std::move(schema)),
        normal_(std::move(normal)),
        burst_(std::move(burst)),
        rng_(seed) {}

  Schema schema_;
  std::vector<GaussianColumnSpec> normal_;
  std::vector<GaussianColumnSpec> burst_;  // empty -> use normal_
  Rng rng_;
};

}  // namespace datatriage::workload

#endif  // DATATRIAGE_WORKLOAD_GENERATOR_H_
