#include "src/workload/generator.h"

#include <algorithm>
#include <cmath>

namespace datatriage::workload {

Result<TupleGenerator> TupleGenerator::Make(
    Schema schema, std::vector<GaussianColumnSpec> normal,
    std::vector<GaussianColumnSpec> burst, uint64_t seed) {
  if (normal.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "one normal column spec required per schema column");
  }
  if (!burst.empty() && burst.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "burst column specs must be empty or match the column count");
  }
  for (const Field& f : schema.fields()) {
    if (!IsNumericType(f.type)) {
      return Status::InvalidArgument(
          "generated streams must have numeric columns; '" + f.name +
          "' is not");
    }
  }
  return TupleGenerator(std::move(schema), std::move(normal),
                        std::move(burst), seed);
}

Tuple TupleGenerator::Next(VirtualTime timestamp, bool in_burst) {
  const std::vector<GaussianColumnSpec>& specs =
      (in_burst && !burst_.empty()) ? burst_ : normal_;
  std::vector<Value> values;
  values.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const GaussianColumnSpec& spec = specs[i];
    double v = rng_.Gaussian(spec.mean, spec.stddev);
    v = std::clamp(v, spec.clamp_lo, spec.clamp_hi);
    if (spec.round_to_int) v = std::round(v);
    switch (schema_.field(i).type) {
      case FieldType::kInt64:
        values.push_back(Value::Int64(static_cast<int64_t>(v)));
        break;
      case FieldType::kTimestamp:
        values.push_back(Value::Timestamp(v));
        break;
      default:
        values.push_back(Value::Double(v));
        break;
    }
  }
  return Tuple(std::move(values), timestamp);
}

}  // namespace datatriage::workload
