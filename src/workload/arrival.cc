#include "src/workload/arrival.h"

namespace datatriage::workload {

Result<std::unique_ptr<ArrivalProcess>> ConstantRateArrivals::Make(
    double rate, double phase) {
  if (rate <= 0) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (phase < 0) {
    return Status::InvalidArgument("phase must be non-negative");
  }
  return std::unique_ptr<ArrivalProcess>(
      new ConstantRateArrivals(1.0 / rate, phase));
}

ArrivalSlot ConstantRateArrivals::Next() {
  ArrivalSlot slot{next_time_, /*in_burst=*/false};
  next_time_ += gap_;
  return slot;
}

Result<std::unique_ptr<ArrivalProcess>> MarkovBurstArrivals::Make(
    const MarkovBurstConfig& config, uint64_t seed, double phase) {
  if (config.base_rate <= 0 || config.burst_speedup < 1.0) {
    return Status::InvalidArgument(
        "base_rate must be positive and burst_speedup >= 1");
  }
  if (config.burst_fraction <= 0 || config.burst_fraction >= 1) {
    return Status::InvalidArgument("burst_fraction must be in (0, 1)");
  }
  if (config.expected_burst_length < 1.0) {
    return Status::InvalidArgument("expected_burst_length must be >= 1");
  }
  return std::unique_ptr<ArrivalProcess>(
      new MarkovBurstArrivals(config, seed, phase));
}

ArrivalSlot MarkovBurstArrivals::Next() {
  // Per-tuple two-state chain. With exit probability 1/E[len] and entry
  // probability chosen so the stationary burst share is burst_fraction:
  //   f = p_enter / (p_enter + p_exit)  =>  p_enter = p_exit * f / (1-f).
  const double p_exit = 1.0 / config_.expected_burst_length;
  const double p_enter =
      p_exit * config_.burst_fraction / (1.0 - config_.burst_fraction);
  if (in_burst_) {
    if (rng_.Bernoulli(p_exit)) in_burst_ = false;
  } else {
    if (rng_.Bernoulli(p_enter)) in_burst_ = true;
  }
  const double gap =
      in_burst_ ? 1.0 / (config_.base_rate * config_.burst_speedup)
                : 1.0 / config_.base_rate;
  next_time_ += gap;
  return ArrivalSlot{next_time_, in_burst_};
}

std::vector<ArrivalSlot> TakeArrivals(ArrivalProcess* process,
                                      size_t count) {
  std::vector<ArrivalSlot> slots;
  slots.reserve(count);
  for (size_t i = 0; i < count; ++i) slots.push_back(process->Next());
  return slots;
}

}  // namespace datatriage::workload
