#include "src/workload/scenario.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace datatriage::workload {

namespace {

struct StreamSpec {
  const char* name;
  std::vector<const char*> columns;
};

const StreamSpec kStreams[] = {
    {"r", {"a"}},
    {"s", {"b", "c"}},
    {"t", {"d"}},
};

}  // namespace

Result<Scenario> BuildPaperScenario(const ScenarioConfig& config) {
  if (config.tuples_per_stream == 0) {
    return Status::InvalidArgument("tuples_per_stream must be positive");
  }
  if (config.tuples_per_window <= 0) {
    return Status::InvalidArgument("tuples_per_window must be positive");
  }

  Scenario scenario;

  // Mean per-stream rate: constant runs use the configured rate; bursty
  // runs average the two regimes by tuple share.
  double mean_rate;
  if (config.bursty) {
    const MarkovBurstConfig& b = config.burst;
    const double mean_gap =
        (1.0 - b.burst_fraction) / b.base_rate +
        b.burst_fraction / (b.base_rate * b.burst_speedup);
    mean_rate = 1.0 / mean_gap;
  } else {
    mean_rate = config.rate_per_stream;
  }
  scenario.window_seconds = config.tuples_per_window / mean_rate;
  scenario.aggregate_rate =
      mean_rate * static_cast<double>(std::size(kStreams));

  // Catalog + query (paper Fig. 7, with the scaled window length).
  for (const StreamSpec& spec : kStreams) {
    Schema schema;
    for (const char* column : spec.columns) {
      DT_RETURN_IF_ERROR(schema.AddField({column, FieldType::kInt64}));
    }
    DT_RETURN_IF_ERROR(
        scenario.catalog.RegisterStream({spec.name, std::move(schema)}));
  }
  scenario.query_sql = StringPrintf(
      "SELECT a, COUNT(*) as count FROM R,S,T "
      "WHERE R.a = S.b AND S.c = T.d GROUP BY a; "
      "WINDOW R['%.9f seconds'], S['%.9f seconds'], T['%.9f seconds'];",
      scenario.window_seconds, scenario.window_seconds,
      scenario.window_seconds);

  // Per-stream generators and arrival processes, forked from one seed.
  Rng seeder(config.seed);
  std::vector<engine::StreamEvent> events;
  events.reserve(config.tuples_per_stream * std::size(kStreams));
  size_t stream_index = 0;
  for (const StreamSpec& spec : kStreams) {
    DT_ASSIGN_OR_RETURN(StreamDef def,
                        scenario.catalog.GetStream(spec.name));
    std::vector<GaussianColumnSpec> normal(def.schema.num_fields(),
                                           config.normal_spec);
    std::vector<GaussianColumnSpec> burst;
    if (config.bursty) {
      burst.assign(def.schema.num_fields(), config.burst_spec);
    }
    DT_ASSIGN_OR_RETURN(
        TupleGenerator generator,
        TupleGenerator::Make(def.schema, std::move(normal),
                             std::move(burst), seeder.Fork()));

    // Offset stream phases so the three sources interleave rather than
    // delivering three tuples at identical instants.
    const double phase = static_cast<double>(stream_index) /
                         (mean_rate * std::size(kStreams));
    std::unique_ptr<ArrivalProcess> arrivals;
    if (config.bursty) {
      DT_ASSIGN_OR_RETURN(
          arrivals, MarkovBurstArrivals::Make(config.burst, seeder.Fork(),
                                              phase));
    } else {
      DT_ASSIGN_OR_RETURN(
          arrivals,
          ConstantRateArrivals::Make(config.rate_per_stream, phase));
    }
    for (size_t i = 0; i < config.tuples_per_stream; ++i) {
      ArrivalSlot slot = arrivals->Next();
      events.push_back(engine::StreamEvent{
          def.name, generator.Next(slot.time, slot.in_burst)});
    }
    ++stream_index;
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const engine::StreamEvent& a,
                      const engine::StreamEvent& b) {
                     return a.tuple.timestamp() < b.tuple.timestamp();
                   });
  scenario.events = std::move(events);
  return scenario;
}

}  // namespace datatriage::workload
