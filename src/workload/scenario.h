#ifndef DATATRIAGE_WORKLOAD_SCENARIO_H_
#define DATATRIAGE_WORKLOAD_SCENARIO_H_

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/engine/engine.h"
#include "src/workload/arrival.h"
#include "src/workload/generator.h"

namespace datatriage::workload {

/// Parameters of the paper's experimental setup (Sec. 6.2): the Fig. 7
/// query over streams R(a), S(b,c), T(d); Gaussian integer data in
/// [1, 100]; constant or two-state-Markov bursty arrivals; window length
/// scaled inversely with data rate so tuples-per-window stays constant.
struct ScenarioConfig {
  /// Number of tuples generated per stream.
  size_t tuples_per_stream = 3000;

  /// Expected tuples per stream per window; the window length is derived
  /// as tuples_per_window / mean_rate ("we scaled the size of our time
  /// windows with data arrival rate", Sec. 6.2.2).
  double tuples_per_window = 100.0;

  /// When false: constant arrivals at `rate_per_stream` tuples/sec per
  /// stream. When true: Markov bursts with `burst` (whose base_rate is
  /// the knob the bursty sweep varies).
  bool bursty = false;
  double rate_per_stream = 100.0;
  MarkovBurstConfig burst;

  /// Column distributions: all fields share these (paper Sec. 6.2.1).
  GaussianColumnSpec normal_spec{50.0, 15.0, 1.0, 100.0, true};
  /// Burst tuples come from a shifted Gaussian (Sec. 6.2.2).
  GaussianColumnSpec burst_spec{25.0, 10.0, 1.0, 100.0, true};

  /// Master seed; stream generators and arrival processes fork from it.
  uint64_t seed = 1;
};

/// A fully materialized experiment input.
struct Scenario {
  Catalog catalog;
  /// The paper's Fig. 7 query with windows sized per the config.
  std::string query_sql;
  /// Merged, time-ordered arrivals across the three streams.
  std::vector<engine::StreamEvent> events;
  VirtualDuration window_seconds = 1.0;
  /// Mean aggregate input rate across all streams (tuples/sec), the
  /// x-axis quantity of Figs. 8-9.
  double aggregate_rate = 0.0;
};

/// Builds the paper's three-stream scenario.
Result<Scenario> BuildPaperScenario(const ScenarioConfig& config);

}  // namespace datatriage::workload

#endif  // DATATRIAGE_WORKLOAD_SCENARIO_H_
