#ifndef DATATRIAGE_WORKLOAD_ARRIVAL_H_
#define DATATRIAGE_WORKLOAD_ARRIVAL_H_

#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/virtual_time.h"

namespace datatriage::workload {

/// One scheduled tuple slot produced by an arrival process.
struct ArrivalSlot {
  VirtualTime time = 0.0;
  bool in_burst = false;
};

/// Generates the arrival timeline of one stream.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  ArrivalProcess(const ArrivalProcess&) = delete;
  ArrivalProcess& operator=(const ArrivalProcess&) = delete;

  /// The next arrival (times are strictly increasing).
  virtual ArrivalSlot Next() = 0;

 protected:
  ArrivalProcess() = default;
};

/// Evenly spaced arrivals at a fixed rate (the paper's constant-rate
/// experiment, Sec. 7.1).
class ConstantRateArrivals final : public ArrivalProcess {
 public:
  /// `rate` in tuples per virtual second; `phase` offsets the first
  /// arrival (lets multiple streams interleave instead of colliding).
  static Result<std::unique_ptr<ArrivalProcess>> Make(double rate,
                                                      double phase = 0.0);

  ArrivalSlot Next() override;

 private:
  ConstantRateArrivals(double gap, double phase)
      : gap_(gap), next_time_(phase) {}

  double gap_;
  VirtualTime next_time_;
};

/// The paper's two-state Markov burst model (Sec. 6.2.2): a per-tuple
/// chain where 60% of tuples belong to bursts, the expected burst length
/// is 200 tuples, and burst tuples arrive `burst_speedup`× faster than
/// the base rate.
struct MarkovBurstConfig {
  /// Arrival rate outside bursts, tuples per virtual second.
  double base_rate = 100.0;
  /// Bursts arrive this many times faster (paper: 100).
  double burst_speedup = 100.0;
  /// Stationary fraction of tuples that are burst tuples (paper: 0.6).
  double burst_fraction = 0.6;
  /// Expected burst length in tuples (paper: 200).
  double expected_burst_length = 200.0;
};

class MarkovBurstArrivals final : public ArrivalProcess {
 public:
  static Result<std::unique_ptr<ArrivalProcess>> Make(
      const MarkovBurstConfig& config, uint64_t seed, double phase = 0.0);

  ArrivalSlot Next() override;

  /// Peak arrival rate during bursts.
  static double PeakRate(const MarkovBurstConfig& config) {
    return config.base_rate * config.burst_speedup;
  }

 private:
  MarkovBurstArrivals(const MarkovBurstConfig& config, uint64_t seed,
                      double phase)
      : config_(config), rng_(seed), next_time_(phase) {}

  MarkovBurstConfig config_;
  Rng rng_;
  VirtualTime next_time_;
  bool in_burst_ = false;
};

/// Materializes the first `count` arrivals of a process.
std::vector<ArrivalSlot> TakeArrivals(ArrivalProcess* process,
                                      size_t count);

}  // namespace datatriage::workload

#endif  // DATATRIAGE_WORKLOAD_ARRIVAL_H_
