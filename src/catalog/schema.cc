#include "src/catalog/schema.h"

#include <string>

namespace datatriage {

Result<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) +
                          "' in schema [" + ToString() + "]");
}

bool Schema::HasField(std::string_view name) const {
  for (const Field& f : fields_) {
    if (f.name == name) return true;
  }
  return false;
}

Status Schema::AddField(Field field) {
  if (HasField(field.name)) {
    return Status::AlreadyExists("duplicate column name '" + field.name +
                                 "'");
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

Result<Schema> Schema::Concat(const Schema& other) const {
  Schema combined = *this;
  for (const Field& f : other.fields_) {
    DT_RETURN_IF_ERROR(combined.AddField(f));
  }
  return combined;
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> projected;
  projected.reserve(names.size());
  for (const std::string& name : names) {
    DT_ASSIGN_OR_RETURN(size_t index, FieldIndex(name));
    projected.push_back(fields_[index]);
  }
  return Schema(std::move(projected));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ' ';
    out += FieldTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace datatriage
