#ifndef DATATRIAGE_CATALOG_SCHEMA_H_
#define DATATRIAGE_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "src/catalog/field_type.h"
#include "src/common/result.h"

namespace datatriage {

/// One column of a stream or intermediate relation.
struct Field {
  std::string name;
  FieldType type = FieldType::kInt64;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of named, typed columns. Schemas are value types: plan
/// nodes, synopses, and operators copy them freely.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  Schema(const Schema&) = default;
  Schema& operator=(const Schema&) = default;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name` (exact match), or kNotFound.
  Result<size_t> FieldIndex(std::string_view name) const;

  /// True if a column named `name` exists.
  bool HasField(std::string_view name) const;

  /// Appends a column. Returns kAlreadyExists if the name is taken.
  Status AddField(Field field);

  /// Schema of this ⨯ other (concatenated columns). Returns
  /// kAlreadyExists on a duplicate column name.
  Result<Schema> Concat(const Schema& other) const;

  /// Schema restricted to `names` in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// "name TYPE, name TYPE, ..." rendering for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace datatriage

#endif  // DATATRIAGE_CATALOG_SCHEMA_H_
