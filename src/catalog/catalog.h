#ifndef DATATRIAGE_CATALOG_CATALOG_H_
#define DATATRIAGE_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/stream_def.h"
#include "src/common/result.h"

namespace datatriage {

/// Registry of stream definitions known to one engine instance. The SQL
/// binder resolves FROM-clause names against a Catalog.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = default;
  Catalog& operator=(const Catalog&) = default;

  /// Registers a stream. Returns kAlreadyExists on a duplicate name.
  Status RegisterStream(StreamDef def);

  /// Looks up a stream by name (case-sensitive, as in PostgreSQL with
  /// quoted identifiers; the parser lower-cases unquoted identifiers).
  Result<StreamDef> GetStream(const std::string& name) const;

  bool HasStream(const std::string& name) const;

  /// Stream names in registration order.
  std::vector<std::string> StreamNames() const;

  size_t num_streams() const { return streams_.size(); }

 private:
  std::map<std::string, StreamDef> streams_;
  std::vector<std::string> registration_order_;
};

}  // namespace datatriage

#endif  // DATATRIAGE_CATALOG_CATALOG_H_
