#ifndef DATATRIAGE_CATALOG_STREAM_DEF_H_
#define DATATRIAGE_CATALOG_STREAM_DEF_H_

#include <string>

#include "src/catalog/schema.h"

namespace datatriage {

/// Definition of a registered data stream (the result of CREATE STREAM).
/// The Data Triage machinery derives per-stream auxiliary channels from a
/// StreamDef: the kept tuples, the dropped-tuple synopsis stream, and the
/// kept-tuple synopsis stream (paper Sec. 5.1).
struct StreamDef {
  std::string name;
  Schema schema;

  /// Name of the auxiliary stream carrying synopses of dropped tuples
  /// ("R_dropped_syn" in the paper's rewritten DDL).
  std::string DroppedSynopsisName() const { return name + "_dropped_syn"; }

  /// Name of the auxiliary stream carrying synopses of kept tuples
  /// ("R_kept_syn" in the paper).
  std::string KeptSynopsisName() const { return name + "_kept_syn"; }
};

}  // namespace datatriage

#endif  // DATATRIAGE_CATALOG_STREAM_DEF_H_
