#include "src/catalog/field_type.h"

#include <string>

#include "src/common/string_util.h"

namespace datatriage {

std::string_view FieldTypeToString(FieldType type) {
  switch (type) {
    case FieldType::kInt64:
      return "INTEGER";
    case FieldType::kDouble:
      return "DOUBLE";
    case FieldType::kString:
      return "VARCHAR";
    case FieldType::kTimestamp:
      return "TIMESTAMP";
  }
  return "UNKNOWN";
}

Result<FieldType> FieldTypeFromString(std::string_view name) {
  const std::string lower = ToLowerAscii(name);
  if (lower == "integer" || lower == "int" || lower == "bigint" ||
      lower == "int8" || lower == "int4") {
    return FieldType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "float8") {
    return FieldType::kDouble;
  }
  if (lower == "varchar" || lower == "text" || lower == "string" ||
      lower == "cstring") {
    return FieldType::kString;
  }
  if (lower == "timestamp") {
    return FieldType::kTimestamp;
  }
  return Status::ParseError("unknown SQL type name: " + std::string(name));
}

bool IsNumericType(FieldType type) {
  return type == FieldType::kInt64 || type == FieldType::kDouble ||
         type == FieldType::kTimestamp;
}

}  // namespace datatriage
