#include "src/catalog/catalog.h"

#include "src/common/string_util.h"

namespace datatriage {

// SQL identifiers are case-insensitive (the lexer lower-cases unquoted
// names), so the catalog canonicalizes every stream name to lower case.

Status Catalog::RegisterStream(StreamDef def) {
  def.name = ToLowerAscii(def.name);
  if (streams_.count(def.name) > 0) {
    return Status::AlreadyExists("stream '" + def.name +
                                 "' is already registered");
  }
  registration_order_.push_back(def.name);
  streams_.emplace(def.name, std::move(def));
  return Status::OK();
}

Result<StreamDef> Catalog::GetStream(const std::string& name) const {
  auto it = streams_.find(ToLowerAscii(name));
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + name + "'");
  }
  return it->second;
}

bool Catalog::HasStream(const std::string& name) const {
  return streams_.count(ToLowerAscii(name)) > 0;
}

std::vector<std::string> Catalog::StreamNames() const {
  return registration_order_;
}

}  // namespace datatriage
