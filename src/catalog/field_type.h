#ifndef DATATRIAGE_CATALOG_FIELD_TYPE_H_
#define DATATRIAGE_CATALOG_FIELD_TYPE_H_

#include <string_view>

#include "src/common/result.h"

namespace datatriage {

/// Column types supported by the mini engine. The paper's experiments use
/// integer-valued fields in [1, 100]; DOUBLE/STRING/TIMESTAMP round out the
/// engine so examples can model realistic streams (packet sizes, symbols,
/// arrival times).
enum class FieldType {
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

/// Canonical SQL spelling ("INTEGER", "DOUBLE", "VARCHAR", "TIMESTAMP").
std::string_view FieldTypeToString(FieldType type);

/// Parses a SQL type name, case-insensitively. Accepts common aliases
/// (INT, BIGINT, FLOAT, REAL, TEXT).
Result<FieldType> FieldTypeFromString(std::string_view name);

/// True for types on which the synopsis structures can build histograms
/// (numeric and timestamp types).
bool IsNumericType(FieldType type);

}  // namespace datatriage

#endif  // DATATRIAGE_CATALOG_FIELD_TYPE_H_
