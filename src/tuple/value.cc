#include "src/tuple/value.h"

#include <cmath>
#include <functional>

#include "src/common/string_util.h"

namespace datatriage {

FieldType Value::type() const {
  if (is_int64()) return FieldType::kInt64;
  if (is_string()) return FieldType::kString;
  return is_timestamp_ ? FieldType::kTimestamp : FieldType::kDouble;
}

double Value::AsDouble() const {
  DT_CHECK(is_numeric()) << "AsDouble() on string value";
  if (is_int64()) return static_cast<double>(int64());
  return dbl();
}

Result<Value> Value::CastTo(FieldType target) const {
  switch (target) {
    case FieldType::kInt64:
      if (is_int64()) return *this;
      if (is_numeric()) {
        return Value::Int64(static_cast<int64_t>(std::llround(dbl())));
      }
      break;
    case FieldType::kDouble:
      if (is_numeric()) return Value::Double(AsDouble());
      break;
    case FieldType::kTimestamp:
      if (is_numeric()) return Value::Timestamp(AsDouble());
      break;
    case FieldType::kString:
      if (is_string()) return *this;
      break;
  }
  return Status::InvalidArgument(
      "cannot cast " + std::string(FieldTypeToString(type())) + " value " +
      ToString() + " to " + std::string(FieldTypeToString(target)));
}

std::string Value::ToString() const {
  if (is_int64()) return std::to_string(int64());
  if (is_string()) return "'" + str() + "'";
  return StringPrintf("%g", dbl());
}

bool Value::operator==(const Value& other) const {
  if (is_string() || other.is_string()) {
    return is_string() && other.is_string() && str() == other.str();
  }
  return AsDouble() == other.AsDouble();
}

bool Value::operator<(const Value& other) const {
  const bool lhs_string = is_string();
  const bool rhs_string = other.is_string();
  if (lhs_string != rhs_string) return !lhs_string;  // numerics first
  if (lhs_string) return str() < other.str();
  return AsDouble() < other.AsDouble();
}

size_t Value::Hash() const {
  if (is_string()) return std::hash<std::string>{}(str());
  // Hash the double representation so Int64(3) and Double(3.0) collide,
  // matching operator==.
  return std::hash<double>{}(AsDouble());
}

}  // namespace datatriage
