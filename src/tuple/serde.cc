#include "src/tuple/serde.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/string_util.h"

namespace datatriage {
namespace {

// Wire tags; append-only (the snapshot format is versioned as a whole,
// but stable tags make old payloads diagnosable).
constexpr uint8_t kTagInt64 = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;
constexpr uint8_t kTagTimestamp = 3;

}  // namespace

void SaveValue(serde::Writer* writer, const Value& value) {
  if (value.is_int64()) {
    writer->WriteU8(kTagInt64);
    writer->WriteI64(value.int64());
  } else if (value.is_timestamp()) {
    writer->WriteU8(kTagTimestamp);
    writer->WriteDouble(value.dbl());
  } else if (value.is_double()) {
    writer->WriteU8(kTagDouble);
    writer->WriteDouble(value.dbl());
  } else {
    writer->WriteU8(kTagString);
    writer->WriteString(value.str());
  }
}

Result<Value> LoadValue(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const uint8_t tag, reader->ReadU8());
  switch (tag) {
    case kTagInt64: {
      DT_ASSIGN_OR_RETURN(const int64_t v, reader->ReadI64());
      return Value::Int64(v);
    }
    case kTagDouble: {
      DT_ASSIGN_OR_RETURN(const double v, reader->ReadDouble());
      return Value::Double(v);
    }
    case kTagString: {
      DT_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
      return Value::String(std::move(v));
    }
    case kTagTimestamp: {
      DT_ASSIGN_OR_RETURN(const double v, reader->ReadDouble());
      return Value::Timestamp(v);
    }
    default:
      return Status::InvalidArgument(StringPrintf(
          "snapshot: unknown value tag %d", static_cast<int>(tag)));
  }
}

void SaveTuple(serde::Writer* writer, const Tuple& tuple) {
  writer->WriteDouble(tuple.timestamp());
  writer->WriteU64(tuple.size());
  for (const Value& v : tuple.values()) SaveValue(writer, v);
}

Result<Tuple> LoadTuple(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const double timestamp, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(const uint64_t size, reader->ReadCount(8));
  std::vector<Value> values;
  values.reserve(size);
  for (uint64_t i = 0; i < size; ++i) {
    DT_ASSIGN_OR_RETURN(Value v, LoadValue(reader));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values), timestamp);
}

}  // namespace datatriage
