#ifndef DATATRIAGE_TUPLE_TUPLE_H_
#define DATATRIAGE_TUPLE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/virtual_time.h"
#include "src/tuple/value.h"

namespace datatriage {

/// One stream element: a row of values plus the virtual arrival timestamp
/// the engine windows on. Tuples are value types and cheap to move.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values, VirtualTime timestamp = 0.0)
      : values_(std::move(values)), timestamp_(timestamp) {}

  Tuple(const Tuple&) = default;
  Tuple& operator=(const Tuple&) = default;
  Tuple(Tuple&&) = default;
  Tuple& operator=(Tuple&&) = default;

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const { return values_.at(i); }
  Value& value(size_t i) { return values_.at(i); }
  const std::vector<Value>& values() const { return values_; }

  VirtualTime timestamp() const { return timestamp_; }
  void set_timestamp(VirtualTime t) { timestamp_ = t; }

  /// New tuple with only the columns at `indices`, preserving the
  /// timestamp.
  Tuple Project(const std::vector<size_t>& indices) const;

  /// New tuple with this row's columns followed by `other`'s; the
  /// timestamp is the later of the two (a join output is not "ready"
  /// before both inputs have arrived).
  Tuple Concat(const Tuple& other) const;

  /// "(v1, v2, ...)" rendering for diagnostics.
  std::string ToString() const;

  /// Row equality over values only (timestamps are transport metadata and
  /// excluded, matching multiset semantics in the differential algebra).
  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic value order; used by multiset containers in tests and
  /// by the exact reference synopsis.
  bool operator<(const Tuple& other) const;

  /// Hash over values, consistent with operator==.
  size_t Hash() const;

 private:
  std::vector<Value> values_;
  VirtualTime timestamp_ = 0.0;
};

/// 64-bit hash combiner (boost::hash_combine style, widened). Exposed so
/// batch kernels can reproduce Tuple::Hash / HashValuesAt bit-for-bit from
/// column arrays: both seed with the value count and fold per-value hashes
/// through this exact function.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Functors for unordered containers keyed by Tuple.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const { return a == b; }
};

/// Hash of a subset of columns; used by hash joins and group-by. Consistent
/// with ValuesEqualAt (numeric values hash by their double promotion).
size_t HashValuesAt(const Tuple& tuple, const std::vector<size_t>& indices);

/// True when a.value(ai[k]) == b.value(bi[k]) for every k, under
/// Value::operator== promotion rules. `ai` and `bi` must have equal
/// length. This is the zero-copy key comparison of the executor's hash
/// tables: keys are (tuple pointer, index list) views, never copied
/// Values.
bool ValuesEqualAt(const Tuple& a, const std::vector<size_t>& ai,
                   const Tuple& b, const std::vector<size_t>& bi);

}  // namespace datatriage

#endif  // DATATRIAGE_TUPLE_TUPLE_H_
