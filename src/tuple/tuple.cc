#include "src/tuple/tuple.h"

#include <algorithm>

namespace datatriage {

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> projected;
  projected.reserve(indices.size());
  for (size_t i : indices) projected.push_back(values_.at(i));
  return Tuple(std::move(projected), timestamp_);
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> combined;
  combined.reserve(values_.size() + other.values_.size());
  combined.insert(combined.end(), values_.begin(), values_.end());
  combined.insert(combined.end(), other.values_.begin(),
                  other.values_.end());
  return Tuple(std::move(combined), std::max(timestamp_, other.timestamp_));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

bool Tuple::operator<(const Tuple& other) const {
  const size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

size_t Tuple::Hash() const {
  size_t seed = values_.size();
  for (const Value& v : values_) seed = HashCombine(seed, v.Hash());
  return seed;
}

size_t HashValuesAt(const Tuple& tuple, const std::vector<size_t>& indices) {
  size_t seed = indices.size();
  for (size_t i : indices) seed = HashCombine(seed, tuple.value(i).Hash());
  return seed;
}

bool ValuesEqualAt(const Tuple& a, const std::vector<size_t>& ai,
                   const Tuple& b, const std::vector<size_t>& bi) {
  for (size_t k = 0; k < ai.size(); ++k) {
    if (!(a.value(ai[k]) == b.value(bi[k]))) return false;
  }
  return true;
}

}  // namespace datatriage
