#ifndef DATATRIAGE_TUPLE_SERDE_H_
#define DATATRIAGE_TUPLE_SERDE_H_

#include "src/common/result.h"
#include "src/common/serde.h"
#include "src/tuple/tuple.h"

namespace datatriage {

/// Tuple/Value binary round-trip for the session snapshot format
/// (DESIGN.md §14). Values carry a one-byte type tag so the reader never
/// guesses; tuples are the timestamp followed by the value list.
void SaveValue(serde::Writer* writer, const Value& value);
Result<Value> LoadValue(serde::Reader* reader);

void SaveTuple(serde::Writer* writer, const Tuple& tuple);
Result<Tuple> LoadTuple(serde::Reader* reader);

}  // namespace datatriage

#endif  // DATATRIAGE_TUPLE_SERDE_H_
