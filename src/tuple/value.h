#ifndef DATATRIAGE_TUPLE_VALUE_H_
#define DATATRIAGE_TUPLE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/catalog/field_type.h"
#include "src/common/result.h"

namespace datatriage {

/// A single column value. Cheap to copy for the numeric alternatives; the
/// string alternative owns its storage.
class Value {
 public:
  /// Default-constructs the integer 0 (the engine has no SQL NULL; the
  /// paper's workloads and queries do not exercise NULLs).
  Value() : data_(int64_t{0}) {}

  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Timestamp(double seconds) {
    Value v{Rep(seconds)};
    v.is_timestamp_ = true;
    return v;
  }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  FieldType type() const;

  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const {
    return std::holds_alternative<double>(data_) && !is_timestamp_;
  }
  bool is_string() const {
    return std::holds_alternative<std::string>(data_);
  }
  bool is_timestamp() const {
    return std::holds_alternative<double>(data_) && is_timestamp_;
  }
  bool is_numeric() const { return !is_string(); }

  /// Precondition: is_int64().
  int64_t int64() const { return std::get<int64_t>(data_); }
  /// Precondition: holds a double or timestamp.
  double dbl() const { return std::get<double>(data_); }
  /// Precondition: is_string().
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric view of the value: int64 and timestamp promote to double.
  /// Precondition: is_numeric(). Used by histograms and comparisons.
  double AsDouble() const;

  /// Coerces to the requested type where a lossless or conventional
  /// conversion exists (int64<->double, numeric->timestamp); errors on
  /// string<->numeric.
  Result<Value> CastTo(FieldType type) const;

  /// SQL-literal style rendering ('quoted' strings, plain numerics).
  std::string ToString() const;

  /// Value equality with numeric promotion: Int64(3) == Double(3.0).
  /// Strings compare only to strings.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering with the same promotion rules; strings order lexically and
  /// sort after all numerics (a total order for use in ordered containers).
  bool operator<(const Value& other) const;

  /// Hash consistent with operator== (numeric values hash by double
  /// representation).
  size_t Hash() const;

 private:
  using Rep = std::variant<int64_t, double, std::string>;
  explicit Value(Rep rep) : data_(std::move(rep)) {}

  Rep data_;
  bool is_timestamp_ = false;
};

}  // namespace datatriage

#endif  // DATATRIAGE_TUPLE_VALUE_H_
