#include "src/common/status.h"

namespace datatriage {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kBindError:
      return "bind error";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace datatriage
