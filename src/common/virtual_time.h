#ifndef DATATRIAGE_COMMON_VIRTUAL_TIME_H_
#define DATATRIAGE_COMMON_VIRTUAL_TIME_H_

#include <cstdint>

namespace datatriage {

/// Virtual timestamp in seconds since the start of a simulation run.
///
/// The reproduction replaces the paper's wall-clock overload experiments
/// (run on a 1.4 GHz Pentium 3) with a deterministic virtual-time cost
/// model: sources emit tuples at virtual timestamps and the engine charges
/// virtual processing time per tuple (see src/engine/cost_model.h). All
/// scheduling in the engine is in terms of VirtualTime.
using VirtualTime = double;

/// Duration in virtual seconds.
using VirtualDuration = double;

/// Identifier of a window. For tumbling windows of length w, window k is
/// [k*w, (k+1)*w); for sliding windows with range r and slide s, window k
/// is [k*s, k*s + r) and a timestamp may fall in several windows.
using WindowId = int64_t;

/// Returns the id of the window containing `t` for window length `w`
/// (tumbling windows).
inline WindowId WindowIdFor(VirtualTime t, VirtualDuration w) {
  return static_cast<WindowId>(t / w);
}

/// Contiguous run of window ids [first, last]; empty when last < first
/// (possible for hopping windows with gaps, i.e. slide > range).
struct WindowSpan {
  WindowId first = 0;
  WindowId last = -1;

  bool empty() const { return last < first; }
  bool Contains(WindowId w) const { return w >= first && w <= last; }
};

/// The windows covering timestamp `t` under (range, slide):
/// k*slide <= t < k*slide + range, clamped to k >= 0.
inline WindowSpan CoveringWindows(VirtualTime t, VirtualDuration range,
                                  VirtualDuration slide) {
  WindowSpan span;
  span.last = static_cast<WindowId>(t / slide);
  // Strictly greater than (t - range)/slide.
  const double lower = (t - range) / slide;
  WindowId first = static_cast<WindowId>(lower);
  if (static_cast<double>(first) <= lower) ++first;
  span.first = first < 0 ? 0 : first;
  return span;
}

/// End of window `w`'s span under (range, slide).
inline VirtualTime WindowSpanEnd(WindowId w, VirtualDuration range,
                                 VirtualDuration slide) {
  return static_cast<double>(w) * slide + range;
}

/// Start of window `w`'s span.
inline VirtualTime WindowSpanStart(WindowId w, VirtualDuration /*range*/,
                                   VirtualDuration slide) {
  return static_cast<double>(w) * slide;
}

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_VIRTUAL_TIME_H_
