#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/tuple/tuple.h"

namespace datatriage::mem {

/// The state-holding layers a session's bytes are attributed to.
/// Component indices are serialized in session snapshots (format v2),
/// so the order is part of the snapshot contract — append only.
enum class Component : uint8_t {
  kWindowBuffers = 0,  ///< Per-window kept-tuple relations awaiting emit.
  kTriageQueues = 1,   ///< Tuples buffered in the triage queue.
  kSynopses = 2,       ///< Window-slot synopses (kept + dropped).
  kMergeState = 3,     ///< Transient group-by tables/arenas during merge.
};

inline constexpr size_t kNumComponents = 4;

std::string_view ComponentName(Component component);

/// Deterministic byte model
/// -----------------------
/// Accounting uses a fixed cost model, not allocator truth: the same
/// tuple must cost the same number of bytes on every platform, at every
/// worker count, in both executor modes — otherwise byte-triggered
/// eviction (and with it session output) would stop being a pure
/// function of the event subsequence. The constants approximate a
/// 64-bit libstdc++ layout but are frozen here as *the* model.
inline constexpr size_t kTupleOverheadBytes = 32;   // Tuple + vector header
inline constexpr size_t kValueSlotBytes = 24;       // one Value slot
inline constexpr size_t kStringOverheadBytes = 16;  // out-of-line string
inline constexpr size_t kWeightedRowBytes = 8;      // weight alongside a row
inline constexpr size_t kMapNodeBytes = 48;         // ordered-map node
inline constexpr size_t kVectorHeaderBytes = 24;    // vector bookkeeping
inline constexpr size_t kSynopsisBaseBytes = 64;    // empty synopsis

inline size_t ValueBytes(const Value& value) {
  size_t bytes = kValueSlotBytes;
  if (value.is_string()) {
    bytes += kStringOverheadBytes + value.str().size();
  }
  return bytes;
}

inline size_t TupleBytes(const Tuple& tuple) {
  size_t bytes = kTupleOverheadBytes;
  for (const Value& value : tuple.values()) bytes += ValueBytes(value);
  return bytes;
}

/// Sum of TupleBytes over any container of Tuples.
template <typename Rows>
size_t RelationBytes(const Rows& rows) {
  size_t bytes = 0;
  for (const Tuple& tuple : rows) bytes += TupleBytes(tuple);
  return bytes;
}

/// Server-wide accountant: one per StreamServer, shared by every
/// session. Charges are relaxed atomics — the server total is a
/// monitoring figure, never an enforcement input (enforcement reads the
/// single-writer per-session account), so cross-session ordering does
/// not matter and the hot path stays a pair of fetch_adds.
class MemoryAccountant {
 public:
  explicit MemoryAccountant(size_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  void Charge(Component component, size_t bytes) {
    if (bytes == 0) return;
    component_bytes_[Index(component)].fetch_add(bytes,
                                                 std::memory_order_relaxed);
    const size_t total =
        total_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    size_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (total > peak && !peak_bytes_.compare_exchange_weak(
                               peak, total, std::memory_order_relaxed)) {
    }
  }

  void Release(Component component, size_t bytes) {
    if (bytes == 0) return;
    component_bytes_[Index(component)].fetch_sub(bytes,
                                                 std::memory_order_relaxed);
    total_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  size_t TotalBytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  size_t PeakBytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  size_t ComponentBytes(Component component) const {
    return component_bytes_[Index(component)].load(
        std::memory_order_relaxed);
  }
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  static size_t Index(Component component) {
    return static_cast<size_t>(component);
  }

  std::array<std::atomic<size_t>, kNumComponents> component_bytes_{};
  std::atomic<size_t> total_bytes_{0};
  std::atomic<size_t> peak_bytes_{0};
  const size_t budget_bytes_;
};

/// Per-session account: single-writer (the session's owning worker),
/// exact, and the input to memory-triggered triage. Optionally forwards
/// every charge to the server-wide accountant and mirrors component
/// bytes into `mem.<component>.bytes` gauges (whose high-watermark is
/// the exported peak).
class SessionAccount {
 public:
  SessionAccount() = default;

  SessionAccount(const SessionAccount&) = delete;
  SessionAccount& operator=(const SessionAccount&) = delete;

  /// Registers the mem.<component>.bytes gauges in `registry`. Call
  /// once, before any charge.
  void BindGauges(obs::MetricsRegistry* registry);

  void SetServerAccountant(MemoryAccountant* server) { server_ = server; }

  void Charge(Component component, size_t bytes) {
    if (bytes == 0) return;
    const size_t i = static_cast<size_t>(component);
    bytes_[i] += bytes;
    total_bytes_ += bytes;
    if (bytes_[i] > peak_bytes_[i]) peak_bytes_[i] = bytes_[i];
    if (gauges_[i] != nullptr) {
      gauges_[i]->Set(static_cast<double>(bytes_[i]));
    }
    if (server_ != nullptr) server_->Charge(component, bytes);
  }

  void Release(Component component, size_t bytes) {
    if (bytes == 0) return;
    const size_t i = static_cast<size_t>(component);
    DT_CHECK(bytes_[i] >= bytes && total_bytes_ >= bytes)
        << "mem accounting underflow: releasing " << bytes << " from "
        << ComponentName(component) << " holding " << bytes_[i];
    bytes_[i] -= bytes;
    total_bytes_ -= bytes;
    if (gauges_[i] != nullptr) {
      gauges_[i]->Set(static_cast<double>(bytes_[i]));
    }
    if (server_ != nullptr) server_->Release(component, bytes);
  }

  size_t bytes(Component component) const {
    return bytes_[static_cast<size_t>(component)];
  }
  size_t peak_bytes(Component component) const {
    return peak_bytes_[static_cast<size_t>(component)];
  }
  size_t TotalBytes() const { return total_bytes_; }

  /// Restores a peak from a snapshot (never lowers the live one).
  void RestorePeak(Component component, size_t peak);

 private:
  std::array<size_t, kNumComponents> bytes_{};
  std::array<size_t, kNumComponents> peak_bytes_{};
  std::array<obs::Gauge*, kNumComponents> gauges_{};
  size_t total_bytes_ = 0;
  MemoryAccountant* server_ = nullptr;
};

/// RAII charge for transient state (merge tables/arenas): releases the
/// accumulated charge on destruction, so the peak lands in the gauge
/// HWM while the steady-state reading returns to zero.
class ScopedCharge {
 public:
  ScopedCharge(SessionAccount* account, Component component)
      : account_(account), component_(component) {}

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  ~ScopedCharge() {
    if (account_ != nullptr && charged_ > 0) {
      account_->Release(component_, charged_);
    }
  }

  void Add(size_t bytes) {
    if (account_ == nullptr || bytes == 0) return;
    account_->Charge(component_, bytes);
    charged_ += bytes;
  }

  /// Adjusts the charge to `bytes` total (used when a table regrows).
  void SetTo(size_t bytes) {
    if (account_ == nullptr) return;
    if (bytes > charged_) {
      account_->Charge(component_, bytes - charged_);
    } else if (bytes < charged_) {
      account_->Release(component_, charged_ - bytes);
    }
    charged_ = bytes;
  }

  size_t charged() const { return charged_; }

 private:
  SessionAccount* account_;
  Component component_;
  size_t charged_ = 0;
};

}  // namespace datatriage::mem
