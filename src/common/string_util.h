#ifndef DATATRIAGE_COMMON_STRING_UTIL_H_
#define DATATRIAGE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace datatriage {

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view text);

/// Splits on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLowerAscii(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_STRING_UTIL_H_
