#ifndef DATATRIAGE_COMMON_LOGGING_H_
#define DATATRIAGE_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace datatriage {

enum class LogSeverity { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Global minimum severity; messages below it are discarded. Defaults to
/// kInfo. Benchmarks raise it to kWarning to keep output machine-parsable.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose severity is below the threshold while
/// still type-checking the streamed expressions.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Allows `cond ? (void)0 : Voidify() & stream` in the macros below.
struct Voidify {
  void operator&(LogMessage&) {}
  void operator&(NullStream&) {}
};

}  // namespace internal

#define DT_LOG(severity)                                                   \
  (::datatriage::LogSeverity::k##severity <                                \
   ::datatriage::GetMinLogSeverity())                                      \
      ? (void)0                                                            \
      : ::datatriage::internal::Voidify() &                                \
            ::datatriage::internal::LogMessage(                            \
                ::datatriage::LogSeverity::k##severity, __FILE__, __LINE__)

/// Fatal-on-failure invariant check, active in all build modes. Database
/// internals use it for conditions that indicate a programming error, never
/// for errors triggered by user input (those return Status).
#define DT_CHECK(cond)                                                 \
  (cond) ? (void)0                                                     \
         : ::datatriage::internal::Voidify() &                         \
               ::datatriage::internal::LogMessage(                     \
                   ::datatriage::LogSeverity::kFatal, __FILE__,        \
                   __LINE__)                                           \
                   << "Check failed: " #cond " "

#define DT_CHECK_EQ(a, b) DT_CHECK((a) == (b))
#define DT_CHECK_NE(a, b) DT_CHECK((a) != (b))
#define DT_CHECK_LT(a, b) DT_CHECK((a) < (b))
#define DT_CHECK_LE(a, b) DT_CHECK((a) <= (b))
#define DT_CHECK_GT(a, b) DT_CHECK((a) > (b))
#define DT_CHECK_GE(a, b) DT_CHECK((a) >= (b))

/// Debug-only check; compiles away in NDEBUG builds.
#ifdef NDEBUG
#define DT_DCHECK(cond) \
  while (false) DT_CHECK(cond)
#else
#define DT_DCHECK(cond) DT_CHECK(cond)
#endif

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_LOGGING_H_
