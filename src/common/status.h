#ifndef DATATRIAGE_COMMON_STATUS_H_
#define DATATRIAGE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace datatriage {

/// Machine-readable classification of an error. `kOk` means success; every
/// other code carries a human-readable message in the owning `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kResourceExhausted,
  /// The operation is valid in some state the object is not currently in
  /// (e.g. registering a query after streaming started). Distinct from
  /// kInvalidArgument: the arguments are fine, the timing is not.
  kFailedPrecondition,
};

/// Returns the canonical lower-case name of `code` (e.g. "invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Value-type error carrier used throughout the library instead of
/// exceptions. Functions that can fail return `Status` (or `Result<T>`,
/// which bundles a `Status` with a value).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Evaluates `expr` once.
#define DT_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::datatriage::Status _dt_status = (expr);         \
    if (!_dt_status.ok()) return _dt_status;          \
  } while (false)

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_STATUS_H_
