#include "src/common/digest.h"

#include <array>
#include <cstdint>
#include <cstring>

namespace datatriage {
namespace {

// Per-round left-rotation amounts (RFC 1321 Sec. 3.4).
constexpr std::array<uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr std::array<uint32_t, 64> kSine = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
    0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
    0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
    0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
    0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
    0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
    0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
    0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
    0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

uint32_t RotateLeft(uint32_t x, uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

struct Md5State {
  uint32_t a = 0x67452301;
  uint32_t b = 0xefcdab89;
  uint32_t c = 0x98badcfe;
  uint32_t d = 0x10325476;

  void Process(const unsigned char block[64]) {
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
      m[i] = static_cast<uint32_t>(block[i * 4]) |
             static_cast<uint32_t>(block[i * 4 + 1]) << 8 |
             static_cast<uint32_t>(block[i * 4 + 2]) << 16 |
             static_cast<uint32_t>(block[i * 4 + 3]) << 24;
    }
    uint32_t ra = a, rb = b, rc = c, rd = d;
    for (int i = 0; i < 64; ++i) {
      uint32_t f;
      int g;
      if (i < 16) {
        f = (rb & rc) | (~rb & rd);
        g = i;
      } else if (i < 32) {
        f = (rd & rb) | (~rd & rc);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = rb ^ rc ^ rd;
        g = (3 * i + 5) % 16;
      } else {
        f = rc ^ (rb | ~rd);
        g = (7 * i) % 16;
      }
      const uint32_t temp = rd;
      rd = rc;
      rc = rb;
      rb = rb + RotateLeft(ra + f + kSine[i] + m[g], kShift[i]);
      ra = temp;
    }
    a += ra;
    b += rb;
    c += rc;
    d += rd;
  }
};

}  // namespace

std::string Md5Hex(std::string_view data) {
  Md5State state;
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t remaining = data.size();
  while (remaining >= 64) {
    state.Process(bytes);
    bytes += 64;
    remaining -= 64;
  }

  // Final block(s): message, 0x80 pad, zeros, 64-bit bit length.
  unsigned char tail[128] = {0};
  std::memcpy(tail, bytes, remaining);
  tail[remaining] = 0x80;
  const size_t tail_len = remaining + 1 + 8 <= 64 ? 64 : 128;
  const uint64_t bit_length = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 8 + i] =
        static_cast<unsigned char>(bit_length >> (8 * i));
  }
  state.Process(tail);
  if (tail_len == 128) state.Process(tail + 64);

  const uint32_t words[4] = {state.a, state.b, state.c, state.d};
  std::string hex;
  hex.reserve(32);
  static constexpr char kHexDigits[] = "0123456789abcdef";
  for (uint32_t word : words) {
    for (int i = 0; i < 4; ++i) {
      const unsigned char byte =
          static_cast<unsigned char>(word >> (8 * i));
      hex.push_back(kHexDigits[byte >> 4]);
      hex.push_back(kHexDigits[byte & 0xf]);
    }
  }
  return hex;
}

}  // namespace datatriage
