#include "src/common/logging.h"

namespace datatriage {

namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogSeverity GetMinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  // Strip the directory prefix to keep log lines short.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << basename << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (severity_ == LogSeverity::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal

}  // namespace datatriage
