#ifndef DATATRIAGE_COMMON_FLAT_TABLE_H_
#define DATATRIAGE_COMMON_FLAT_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace datatriage {

/// Open-addressing hash table (linear probing, power-of-two capacity)
/// built for the executor hot path:
///
///  - The caller supplies the 64-bit hash; the table never hashes keys
///    itself. Each occupied slot caches that hash, so a probe compares
///    hashes first and only invokes the caller's (potentially expensive)
///    equality predicate on a hash hit, and rehashing repositions slots
///    without touching key material.
///  - Entries live in one contiguous allocation — no per-node allocation
///    as in std::unordered_map — and are visited in slot order.
///
/// Entry must be default-constructible and movable. Typical entries hold
/// borrowed `const Tuple*` keys plus a small payload, so the table stores
/// zero copies of key data. Entry pointers returned by Find/FindOrEmplace
/// are invalidated by the next insertion.
template <typename Entry>
class FlatTable {
 public:
  FlatTable() = default;
  explicit FlatTable(size_t expected) { Reserve(expected); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t slot_count() const { return slots_.size(); }

  /// Observes capacity changes: fires as (old slot count, new slot
  /// count) on every rehash — the table's single allocation point — so
  /// owners can convert slot counts to accounted bytes. Fires
  /// immediately with (0, current) if the table already has slots.
  void SetCapacityObserver(
      std::function<void(size_t, size_t)> observer) {
    capacity_observer_ = std::move(observer);
    if (capacity_observer_ && !slots_.empty()) {
      capacity_observer_(0, slots_.size());
    }
  }

  /// Pre-sizes the table to hold `expected` entries without rehashing.
  void Reserve(size_t expected) {
    const size_t needed = CapacityFor(expected);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Returns the entry whose cached hash equals `hash` and for which
  /// `eq(entry)` holds, or nullptr.
  template <typename Eq>
  Entry* Find(uint64_t hash, Eq&& eq) {
    if (slots_.empty()) return nullptr;
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.occupied) return nullptr;
      if (slot.hash == hash && eq(slot.entry)) return &slot.entry;
    }
  }

  /// Finds the entry matching (`hash`, `eq`) or inserts `make()`.
  /// Returns the entry and whether it was newly inserted.
  template <typename Eq, typename Make>
  std::pair<Entry*, bool> FindOrEmplace(uint64_t hash, Eq&& eq,
                                        Make&& make) {
    if (size_ + 1 > Threshold(slots_.size())) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const size_t mask = slots_.size() - 1;
    for (size_t i = hash & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (!slot.occupied) {
        slot.occupied = true;
        slot.hash = hash;
        slot.entry = make();
        ++size_;
        return {&slot.entry, true};
      }
      if (slot.hash == hash && eq(slot.entry)) return {&slot.entry, false};
    }
  }

  /// Bulk build from `n` precomputed hashes: reserves capacity for all of
  /// them once, then runs the FindOrEmplace protocol per index without the
  /// per-insert threshold check (the up-front reservation guarantees the
  /// load factor, so a mid-build rehash can never happen). With the same
  /// hash sequence this yields the exact slot layout of `Reserve(size() +
  /// n)` followed by n FindOrEmplace calls — batch and incremental builds
  /// stay interchangeable for layout-sensitive callers (hash join build).
  ///
  /// `eq(entry, i)` compares key `i` against an existing entry, `make(i)`
  /// constructs the entry for a new key, and `on_existing(&entry, i)`
  /// fires when key `i` matched an existing entry (duplicate-chain hooks).
  template <typename Eq, typename Make, typename OnExisting>
  void BuildFrom(const uint64_t* hashes, size_t n, Eq&& eq, Make&& make,
                 OnExisting&& on_existing) {
    Reserve(size_ + n);
    const size_t mask = slots_.size() - 1;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t hash = hashes[i];
      for (size_t s = hash & mask;; s = (s + 1) & mask) {
        Slot& slot = slots_[s];
        if (!slot.occupied) {
          slot.occupied = true;
          slot.hash = hash;
          slot.entry = make(i);
          ++size_;
          break;
        }
        if (slot.hash == hash && eq(slot.entry, i)) {
          on_existing(&slot.entry, i);
          break;
        }
      }
    }
  }

  /// Removes the entry matching (`hash`, `eq`), if present, and returns
  /// whether an entry was removed. Uses backward-shift deletion (no
  /// tombstones): slots after the hole are shifted back while they remain
  /// reachable from their home slot, so probe chains stay intact and
  /// lookup cost does not degrade under churn.
  template <typename Eq>
  bool Erase(uint64_t hash, Eq&& eq) {
    if (slots_.empty()) return false;
    const size_t mask = slots_.size() - 1;
    size_t hole = hash & mask;
    for (;; hole = (hole + 1) & mask) {
      Slot& slot = slots_[hole];
      if (!slot.occupied) return false;
      if (slot.hash == hash && eq(slot.entry)) break;
    }
    // Shift back every subsequent slot whose home position is at or
    // before the hole (mod capacity); stop at the first empty slot.
    size_t j = hole;
    for (;;) {
      j = (j + 1) & mask;
      Slot& candidate = slots_[j];
      if (!candidate.occupied) break;
      const size_t home = candidate.hash & mask;
      // The candidate may move into the hole only if the hole lies on its
      // probe path, i.e. the distance home->j (mod capacity) is at least
      // the distance hole->j.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole].hash = candidate.hash;
        slots_[hole].entry = std::move(candidate.entry);
        hole = j;
      }
    }
    slots_[hole].occupied = false;
    slots_[hole].entry = Entry{};
    --size_;
    return true;
  }

  /// Visits every entry in slot order (deterministic for a given set of
  /// hashes and insertion sequence).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) fn(slot.entry);
    }
  }

 private:
  struct Slot {
    uint64_t hash = 0;
    bool occupied = false;
    Entry entry{};
  };

  static constexpr size_t kMinCapacity = 16;

  // Maximum load factor 3/4.
  static size_t Threshold(size_t capacity) {
    return capacity - capacity / 4;
  }

  static size_t CapacityFor(size_t expected) {
    size_t capacity = kMinCapacity;
    while (Threshold(capacity) < expected) capacity *= 2;
    return capacity;
  }

  void Rehash(size_t new_capacity) {
    if (capacity_observer_) {
      capacity_observer_(slots_.size(), new_capacity);
    }
    std::vector<Slot> old = std::move(slots_);
    slots_ = std::vector<Slot>(new_capacity);
    const size_t mask = new_capacity - 1;
    for (Slot& slot : old) {
      if (!slot.occupied) continue;
      size_t i = slot.hash & mask;
      while (slots_[i].occupied) i = (i + 1) & mask;
      slots_[i].occupied = true;
      slots_[i].hash = slot.hash;
      slots_[i].entry = std::move(slot.entry);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  std::function<void(size_t, size_t)> capacity_observer_;
};

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_FLAT_TABLE_H_
