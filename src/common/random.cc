#include "src/common/random.h"

#include <algorithm>

#include "src/common/logging.h"

namespace datatriage {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  DT_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::UniformDouble(double lo, double hi) {
  DT_CHECK_LE(lo, hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  DT_CHECK_GT(rate, 0.0);
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

int64_t Rng::Geometric(double p) {
  DT_CHECK_GT(p, 0.0);
  DT_CHECK_LE(p, 1.0);
  // std::geometric_distribution counts failures before the first success;
  // callers want the trial count, hence the +1.
  std::geometric_distribution<int64_t> dist(p);
  return dist(engine_) + 1;
}

uint64_t Rng::Fork() {
  // SplitMix-style scramble of the next raw draw so sibling child seeds do
  // not correlate with each other or the parent stream.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace datatriage
