#include "src/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace datatriage {

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace datatriage
