#ifndef DATATRIAGE_COMMON_RESULT_H_
#define DATATRIAGE_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace datatriage {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced. Mirrors the Status/Result pattern used by
/// production database codebases (Arrow, RocksDB) instead of exceptions.
///
/// Usage:
///   Result<Schema> r = ParseSchema(text);
///   if (!r.ok()) return r.status();
///   UseSchema(r.value());
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit so functions can
  /// `return Status::InvalidArgument(...);`). Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DT_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    DT_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    DT_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DT_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
/// binds the moved value to `lhs`.
#define DT_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  DT_ASSIGN_OR_RETURN_IMPL_(                                 \
      DT_CONCAT_(_dt_result, __LINE__), lhs, rexpr)

#define DT_CONCAT_INNER_(a, b) a##b
#define DT_CONCAT_(a, b) DT_CONCAT_INNER_(a, b)

#define DT_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                              \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_RESULT_H_
