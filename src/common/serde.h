#ifndef DATATRIAGE_COMMON_SERDE_H_
#define DATATRIAGE_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/string_util.h"

namespace datatriage::serde {

/// Minimal deterministic binary encoding used by the session snapshot
/// format (DESIGN.md §14). Integers are little-endian fixed width,
/// doubles are the IEEE-754 bit pattern as u64, strings are u64
/// length-prefixed bytes. The encoding is platform-independent so a
/// snapshot taken on one host restores byte-identically on another.
class Writer {
 public:
  void WriteU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) { AppendLittleEndian(v, 4); }

  void WriteU64(uint64_t v) { AppendLittleEndian(v, 8); }

  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteDouble(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  void WriteString(std::string_view v) {
    WriteU64(v.size());
    out_.append(v.data(), v.size());
  }

  const std::string& bytes() const { return out_; }
  std::string TakeBytes() { return std::move(out_); }

 private:
  void AppendLittleEndian(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

/// Cursor over a snapshot byte string. Every read is bounds-checked and
/// returns a Status on truncation, so a corrupt snapshot fails cleanly
/// instead of reading garbage.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Result<uint8_t> ReadU8() {
    DT_RETURN_IF_ERROR(Require(1));
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    DT_ASSIGN_OR_RETURN(const uint64_t v, ReadLittleEndian(4));
    return static_cast<uint32_t>(v);
  }

  Result<uint64_t> ReadU64() { return ReadLittleEndian(8); }

  Result<int64_t> ReadI64() {
    DT_ASSIGN_OR_RETURN(const uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }

  Result<bool> ReadBool() {
    DT_ASSIGN_OR_RETURN(const uint8_t v, ReadU8());
    return v != 0;
  }

  Result<double> ReadDouble() {
    DT_ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> ReadString() {
    DT_ASSIGN_OR_RETURN(const uint64_t size, ReadU64());
    DT_RETURN_IF_ERROR(Require(size));
    std::string v(bytes_.substr(pos_, size));
    pos_ += size;
    return v;
  }

  /// Reads an element count whose payload occupies at least
  /// `min_bytes_per_element` of the remaining input. Rejects counts a
  /// truncated or hostile frame cannot actually back, so LoadState loops
  /// fail before reserving or looping on an absurd length instead of at
  /// the first element read (or after an OOM-sized reserve).
  Result<uint64_t> ReadCount(uint64_t min_bytes_per_element) {
    DT_ASSIGN_OR_RETURN(const uint64_t count, ReadU64());
    if (min_bytes_per_element > 0 &&
        count > remaining() / min_bytes_per_element) {
      return Status::InvalidArgument(StringPrintf(
          "snapshot corrupt: declared %llu element(s) of >= %llu "
          "byte(s) at offset %zu, but only %zu byte(s) remain",
          static_cast<unsigned long long>(count),
          static_cast<unsigned long long>(min_bytes_per_element), pos_,
          remaining()));
    }
    return count;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  Status Require(uint64_t n) {
    if (remaining() < n) {
      return Status::InvalidArgument(StringPrintf(
          "snapshot truncated: need %llu byte(s) at offset %zu, "
          "have %zu",
          static_cast<unsigned long long>(n), pos_, remaining()));
    }
    return Status::OK();
  }

  Result<uint64_t> ReadLittleEndian(int width) {
    DT_RETURN_IF_ERROR(Require(width));
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += width;
    return v;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// mt19937_64 state round-trip via the standard iostream inserter. The
/// textual form ([rand.req.eng]) is a decimal word list, so the bytes are
/// deterministic for a given engine state.
inline void SaveRngEngine(Writer* writer, const std::mt19937_64& engine) {
  std::ostringstream os;
  os << engine;
  writer->WriteString(os.str());
}

inline Status LoadRngEngine(Reader* reader, std::mt19937_64* engine) {
  DT_ASSIGN_OR_RETURN(const std::string text, reader->ReadString());
  std::istringstream is(text);
  is >> *engine;
  if (!is) {
    return Status::InvalidArgument(
        "snapshot: malformed mt19937_64 state text");
  }
  return Status::OK();
}

}  // namespace datatriage::serde

#endif  // DATATRIAGE_COMMON_SERDE_H_
