#include "src/common/mem_accounting.h"

#include <string>

namespace datatriage::mem {

std::string_view ComponentName(Component component) {
  switch (component) {
    case Component::kWindowBuffers:
      return "window_buffers";
    case Component::kTriageQueues:
      return "triage_queues";
    case Component::kSynopses:
      return "synopses";
    case Component::kMergeState:
      return "merge_state";
  }
  return "unknown";
}

void SessionAccount::BindGauges(obs::MetricsRegistry* registry) {
  for (size_t i = 0; i < kNumComponents; ++i) {
    const std::string name =
        "mem." +
        std::string(ComponentName(static_cast<Component>(i))) + ".bytes";
    gauges_[i] = registry->GetGauge(name);
  }
}

void SessionAccount::RestorePeak(Component component, size_t peak) {
  const size_t i = static_cast<size_t>(component);
  if (peak > peak_bytes_[i]) peak_bytes_[i] = peak;
  if (gauges_[i] != nullptr &&
      static_cast<double>(peak_bytes_[i]) > gauges_[i]->max()) {
    gauges_[i]->Restore(static_cast<double>(bytes_[i]),
                        static_cast<double>(peak_bytes_[i]));
  }
}

}  // namespace datatriage::mem
