#ifndef DATATRIAGE_COMMON_DIGEST_H_
#define DATATRIAGE_COMMON_DIGEST_H_

#include <string>
#include <string_view>

namespace datatriage {

/// MD5 (RFC 1321) of `data`, rendered as 32 lowercase hex characters.
/// Not a security primitive — it exists so tests can pin golden outputs
/// (results CSVs, metric dumps) as one short string per seed instead of
/// checking whole files into the tree.
std::string Md5Hex(std::string_view data);

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_DIGEST_H_
