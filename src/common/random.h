#ifndef DATATRIAGE_COMMON_RANDOM_H_
#define DATATRIAGE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace datatriage {

/// Deterministic pseudo-random source. Every stochastic component of the
/// library (workload generators, drop policies, burst models) draws from an
/// explicitly seeded Rng so experiments are reproducible run-to-run; the
/// paper likewise re-seeds each experimental run (Sec. 6.2.2).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double UniformDouble();

  /// Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed inter-arrival gap with the given rate
  /// (events per unit time). Requires rate > 0.
  double Exponential(double rate);

  /// Geometric number of trials until first success with success
  /// probability `p` in (0, 1]; returns a value >= 1.
  int64_t Geometric(double p);

  /// Derives an independent child seed; used to give each stream / component
  /// its own Rng while keeping the whole experiment a function of one seed.
  uint64_t Fork();

  std::mt19937_64& engine() { return engine_; }
  const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace datatriage

#endif  // DATATRIAGE_COMMON_RANDOM_H_
