#ifndef DATATRIAGE_ENGINE_ENGINE_H_
#define DATATRIAGE_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/cost_model.h"
#include "src/engine/merge.h"
#include "src/engine/window_result.h"
#include "src/rewrite/data_triage_rewrite.h"
#include "src/synopsis/factory.h"
#include "src/triage/drop_policy.h"
#include "src/triage/shedding_strategy.h"
#include "src/triage/synopsizer.h"
#include "src/triage/triage_queue.h"

namespace datatriage::engine {

struct EngineConfig {
  triage::SheddingStrategy strategy =
      triage::SheddingStrategy::kDataTriage;
  synopsis::SynopsisConfig synopsis;
  /// Per-stream triage queue capacity, in tuples.
  size_t queue_capacity = 100;
  triage::DropPolicyKind drop_policy = triage::DropPolicyKind::kRandom;
  /// Candidate-sample size for the synergistic policy (paper Sec. 8.1);
  /// only used when drop_policy == kSynergistic, which in turn requires a
  /// synopsizing strategy.
  size_t synergistic_candidates = 4;
  CostModel cost_model;
  /// Seed for the drop policies (one forked Rng per stream queue).
  uint64_t seed = 1;
};

/// One tuple arriving on a named stream; the tuple's timestamp is its
/// arrival time on the engine's virtual clock.
struct StreamEvent {
  std::string stream;
  Tuple tuple;
};

/// The mini continuous-query engine with the Data Triage architecture of
/// paper Fig. 1 wired in front of it.
///
/// Usage:
///   auto engine = ContinuousQueryEngine::Make(catalog, sql, config);
///   for (const StreamEvent& e : events) engine->Push(e);
///   engine->Finish();
///   for (WindowResult& r : engine->TakeResults()) ...
///
/// The engine is driven entirely by the virtual clock (see CostModel):
/// arrivals carry virtual timestamps, processing charges virtual time,
/// and windows emit at their virtual deadlines with unprocessed window
/// tuples force-shed. Runs are deterministic for a fixed (events, config,
/// seed) triple.
///
/// Restrictions (documented in DESIGN.md): all streams of a query must
/// share one window length (the paper's experiments do), and queries must
/// be SPJ + GROUP BY aggregates — SELECT DISTINCT and EXCEPT are rejected
/// because the paper's shadow machinery does not cover them.
class ContinuousQueryEngine {
 public:
  static Result<std::unique_ptr<ContinuousQueryEngine>> Make(
      const Catalog& catalog, const std::string& query_sql,
      EngineConfig config);

  static Result<std::unique_ptr<ContinuousQueryEngine>> Make(
      const Catalog& catalog, plan::BoundQuery query, EngineConfig config);

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  /// Delivers one arrival. Events must have non-decreasing timestamps.
  Status Push(const StreamEvent& event);

  /// Drains queues and emits every remaining window.
  Status Finish();

  /// Moves out the results emitted so far (in window order).
  std::vector<WindowResult> TakeResults();

  const EngineStats& stats() const { return stats_; }
  const rewrite::TriagedQuery& triaged_query() const { return triaged_; }
  /// Window range (span length).
  VirtualDuration window_seconds() const { return window_seconds_; }
  /// Hop between consecutive windows; equals window_seconds() for
  /// tumbling windows.
  VirtualDuration window_slide_seconds() const { return window_slide_; }

 private:
  /// Coverage oracle for the synergistic drop policy: a tuple is "free"
  /// to shed when its window's dropped synopsis already has mass at its
  /// location.
  class DroppedCoverageProbe final : public triage::SynopsisCoverageProbe {
   public:
    DroppedCoverageProbe(const triage::WindowSynopsizer* synopsizer,
                         VirtualDuration range, VirtualDuration slide)
        : synopsizer_(synopsizer), range_(range), slide_(slide) {}

    bool IsCovered(const Tuple& tuple) const override {
      const WindowSpan span =
          CoveringWindows(tuple.timestamp(), range_, slide_);
      for (WindowId w = span.first; w <= span.last; ++w) {
        const synopsis::Synopsis* dropped = synopsizer_->PeekDropped(w);
        if (dropped != nullptr && dropped->EstimatePointCount(tuple) > 0) {
          return true;
        }
      }
      return false;
    }

   private:
    const triage::WindowSynopsizer* synopsizer_;
    VirtualDuration range_;
    VirtualDuration slide_;
  };

  struct StreamState {
    Schema schema;
    std::unique_ptr<triage::TriageQueue> queue;
    std::unique_ptr<triage::WindowSynopsizer> synopsizer;
    std::unique_ptr<DroppedCoverageProbe> coverage_probe;
    /// Kept tuples per open window.
    std::map<WindowId, exec::Relation> kept_buffers;
    std::map<WindowId, int64_t> dropped_counts;
  };

  ContinuousQueryEngine(rewrite::TriagedQuery triaged,
                        EngineConfig config);

  Status Init(const Catalog& catalog);

  /// Advances the engine clock to `until`, interleaving queued-tuple
  /// processing with window emissions whose deadlines pass.
  Status ProcessUntil(VirtualTime until);

  /// True if any stream queue holds a tuple.
  bool HasQueuedTuple() const;

  /// Pops and processes the queued tuple with the earliest timestamp.
  Status ProcessOneQueuedTuple();

  /// Routes a fully shed tuple (it will never be processed) according to
  /// the strategy: it counts as dropped for every not-yet-emitted window
  /// covering it.
  Status ShedTuple(StreamState* state, const Tuple& tuple);

  /// Marks a still-queued tuple as dropped *for one window* whose
  /// deadline arrived before the engine reached the tuple; it may yet be
  /// kept for later windows (sliding-window case).
  Status ShedTupleForWindow(StreamState* state, const Tuple& tuple,
                            WindowId window);

  /// Windows covering `t` that have not been emitted yet.
  WindowSpan PendingWindowsFor(VirtualTime t) const;

  Status EmitWindow(WindowId window);

  void ChargeSynopsisTime(double seconds) {
    engine_time_ += seconds;
    stats_.synopsis_work_seconds += seconds;
  }
  void ChargeExactTime(double seconds) {
    engine_time_ += seconds;
    stats_.exact_work_seconds += seconds;
  }

  rewrite::TriagedQuery triaged_;
  EngineConfig config_;
  AggregationSpec agg_spec_;  // valid when the query aggregates

  std::map<std::string, StreamState> streams_;
  VirtualDuration window_seconds_ = 1.0;  // range
  VirtualDuration window_slide_ = 1.0;    // hop (== range when tumbling)

  VirtualTime engine_time_ = 0.0;
  VirtualTime last_arrival_time_ = 0.0;
  bool saw_arrival_ = false;
  WindowId next_window_to_emit_ = 0;
  WindowId last_window_seen_ = -1;

  std::vector<WindowResult> results_;
  EngineStats stats_;
  bool finished_ = false;
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_ENGINE_H_
