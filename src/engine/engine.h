#ifndef DATATRIAGE_ENGINE_ENGINE_H_
#define DATATRIAGE_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/config.h"
#include "src/engine/cost_model.h"
#include "src/engine/merge.h"
#include "src/engine/window_result.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rewrite/data_triage_rewrite.h"
#include "src/server/stream_server.h"
#include "src/synopsis/factory.h"
#include "src/triage/drop_policy.h"
#include "src/triage/shedding_strategy.h"
#include "src/triage/synopsizer.h"
#include "src/triage/triage_queue.h"

namespace datatriage::engine {

/// The mini continuous-query engine with the Data Triage architecture of
/// paper Fig. 1 wired in front of it — a single-session convenience
/// wrapper over server::StreamServer (see src/server/ and DESIGN.md
/// Sec. 10). Multi-query deployments should use StreamServer directly;
/// this class keeps the one-query API that the tests, benches, and
/// examples grew up on.
///
/// Usage:
///   auto engine = ContinuousQueryEngine::Make(catalog, sql, config);
///   for (const StreamEvent& e : events) engine->Push(e);
///   engine->Finish();
///   for (WindowResult& r : engine->TakeResults()) ...
///
/// The engine is driven entirely by the virtual clock (see CostModel):
/// arrivals carry virtual timestamps, processing charges virtual time,
/// and windows emit at their virtual deadlines with unprocessed window
/// tuples force-shed. Runs are deterministic for a fixed (events, config,
/// seed) triple.
///
/// Restrictions (documented in DESIGN.md): all streams of a query must
/// share one window length (the paper's experiments do), and queries must
/// be SPJ + GROUP BY aggregates — SELECT DISTINCT and EXCEPT are rejected
/// because the paper's shadow machinery does not cover them.
class ContinuousQueryEngine {
 public:
  static Result<std::unique_ptr<ContinuousQueryEngine>> Make(
      const Catalog& catalog, const std::string& query_sql,
      EngineConfig config);

  static Result<std::unique_ptr<ContinuousQueryEngine>> Make(
      const Catalog& catalog, plan::BoundQuery query, EngineConfig config);

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  /// Delivers one arrival. Events must have finite, non-decreasing
  /// timestamps; violations return InvalidArgument and leave the engine
  /// state untouched (the offending event is not ingested).
  Status Push(const StreamEvent& event);

  /// Batched ingest: stream membership is checked for the whole batch up
  /// front (NotFound, nothing ingested, when any event names a stream
  /// outside this query) and timestamps are validated once per batch by
  /// the underlying server. For valid input the result is byte-identical
  /// to pushing the events one by one; hot feed loops should prefer it.
  Status PushBatch(std::span<const StreamEvent> events);

  /// Drains queues and emits every remaining window (through the window
  /// sink when one is set).
  Status Finish();

  /// Moves out the results emitted so far (in window order). Empty when a
  /// window sink is installed — the sink already consumed them.
  std::vector<WindowResult> TakeResults();

  /// Streaming results API: `sink` is invoked once per window, at
  /// emission time on the engine's virtual clock, in window order —
  /// exactly the windows (content and order) that TakeResults() would
  /// have buffered. Results already buffered when the sink is installed
  /// are flushed through it immediately. Pass nullptr to return to
  /// buffered delivery.
  using WindowSink = server::QuerySession::WindowSink;
  void SetWindowSink(WindowSink sink);

  /// Copies the run accounting plus the obs registry totals (counters
  /// and gauge high-watermarks) into one value.
  EngineStatsSnapshot StatsSnapshot() const;

  /// Engine-local metrics registry (counters/gauges/histograms), updated
  /// while a run is in flight. See DESIGN.md Sec. 9.2 for the names.
  const obs::MetricsRegistry& metrics() const {
    return session().metrics();
  }

  /// Per-window emission trace, in emission order.
  const obs::WindowTraceRecorder& trace() const {
    return session().trace();
  }
  const rewrite::TriagedQuery& triaged_query() const {
    return session().triaged_query();
  }
  /// Window range (span length).
  VirtualDuration window_seconds() const {
    return session().window_seconds();
  }
  /// Hop between consecutive windows; equals window_seconds() for
  /// tumbling windows.
  VirtualDuration window_slide_seconds() const {
    return session().window_slide_seconds();
  }

 private:
  explicit ContinuousQueryEngine(Catalog catalog);

  server::QuerySession& session() { return server_.session(session_id_); }
  const server::QuerySession& session() const {
    return server_.session(session_id_);
  }

  server::StreamServer server_;
  server::SessionId session_id_ = 0;
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_ENGINE_H_
