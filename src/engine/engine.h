#ifndef DATATRIAGE_ENGINE_ENGINE_H_
#define DATATRIAGE_ENGINE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/cost_model.h"
#include "src/engine/merge.h"
#include "src/engine/window_result.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rewrite/data_triage_rewrite.h"
#include "src/synopsis/factory.h"
#include "src/triage/drop_policy.h"
#include "src/triage/shedding_strategy.h"
#include "src/triage/synopsizer.h"
#include "src/triage/triage_queue.h"

namespace datatriage::engine {

struct EngineConfig {
  triage::SheddingStrategy strategy =
      triage::SheddingStrategy::kDataTriage;
  synopsis::SynopsisConfig synopsis;
  /// Per-stream triage queue capacity, in tuples.
  size_t queue_capacity = 100;
  triage::DropPolicyKind drop_policy = triage::DropPolicyKind::kRandom;
  /// Candidate-sample size for the synergistic policy (paper Sec. 8.1);
  /// only used when drop_policy == kSynergistic, which in turn requires a
  /// synopsizing strategy.
  size_t synergistic_candidates = 4;
  CostModel cost_model;
  /// Seed for the drop policies (one forked Rng per stream queue).
  uint64_t seed = 1;

  /// Checks the config's internal invariants, returning a specific error
  /// for the first violation found: a zero queue_capacity, the
  /// synergistic drop policy without a synopsizing strategy, or a zero
  /// synergistic candidate-sample size. Both Make() overloads call this
  /// before constructing an engine; call it directly to validate
  /// user-supplied configs up front.
  Status Validate() const;
};

/// One tuple arriving on a named stream; the tuple's timestamp is its
/// arrival time on the engine's virtual clock.
struct StreamEvent {
  std::string stream;
  Tuple tuple;
};

/// The mini continuous-query engine with the Data Triage architecture of
/// paper Fig. 1 wired in front of it.
///
/// Usage:
///   auto engine = ContinuousQueryEngine::Make(catalog, sql, config);
///   for (const StreamEvent& e : events) engine->Push(e);
///   engine->Finish();
///   for (WindowResult& r : engine->TakeResults()) ...
///
/// The engine is driven entirely by the virtual clock (see CostModel):
/// arrivals carry virtual timestamps, processing charges virtual time,
/// and windows emit at their virtual deadlines with unprocessed window
/// tuples force-shed. Runs are deterministic for a fixed (events, config,
/// seed) triple.
///
/// Restrictions (documented in DESIGN.md): all streams of a query must
/// share one window length (the paper's experiments do), and queries must
/// be SPJ + GROUP BY aggregates — SELECT DISTINCT and EXCEPT are rejected
/// because the paper's shadow machinery does not cover them.
class ContinuousQueryEngine {
 public:
  static Result<std::unique_ptr<ContinuousQueryEngine>> Make(
      const Catalog& catalog, const std::string& query_sql,
      EngineConfig config);

  static Result<std::unique_ptr<ContinuousQueryEngine>> Make(
      const Catalog& catalog, plan::BoundQuery query, EngineConfig config);

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  /// Delivers one arrival. Events must have finite, non-decreasing
  /// timestamps; violations return InvalidArgument and leave the engine
  /// state untouched (the offending event is not ingested).
  Status Push(const StreamEvent& event);

  /// Drains queues and emits every remaining window (through the window
  /// sink when one is set).
  Status Finish();

  /// Moves out the results emitted so far (in window order). Empty when a
  /// window sink is installed — the sink already consumed them.
  std::vector<WindowResult> TakeResults();

  /// Streaming results API: `sink` is invoked once per window, at
  /// emission time on the engine's virtual clock, in window order —
  /// exactly the windows (content and order) that TakeResults() would
  /// have buffered. Results already buffered when the sink is installed
  /// are flushed through it immediately. Pass nullptr to return to
  /// buffered delivery.
  using WindowSink = std::function<void(WindowResult&&)>;
  void SetWindowSink(WindowSink sink);

  /// Copies the run accounting plus the obs registry totals (counters
  /// and gauge high-watermarks) into one value.
  EngineStatsSnapshot StatsSnapshot() const;

  /// Deprecated: live reference into the engine; prefer StatsSnapshot(),
  /// which is a value and also embeds the per-stream obs totals. Kept as
  /// a thin wrapper for one release.
  [[deprecated("use StatsSnapshot()")]] const EngineStats& stats() const {
    return stats_;
  }

  /// Engine-local metrics registry (counters/gauges/histograms), updated
  /// while a run is in flight. See DESIGN.md Sec. 9.2 for the names.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Per-window emission trace, in emission order.
  const obs::WindowTraceRecorder& trace() const { return trace_; }
  const rewrite::TriagedQuery& triaged_query() const { return triaged_; }
  /// Window range (span length).
  VirtualDuration window_seconds() const { return window_seconds_; }
  /// Hop between consecutive windows; equals window_seconds() for
  /// tumbling windows.
  VirtualDuration window_slide_seconds() const { return window_slide_; }

 private:
  /// Coverage oracle for the synergistic drop policy: a tuple is "free"
  /// to shed when its window's dropped synopsis already has mass at its
  /// location.
  class DroppedCoverageProbe final : public triage::SynopsisCoverageProbe {
   public:
    DroppedCoverageProbe(const triage::WindowSynopsizer* synopsizer,
                         VirtualDuration range, VirtualDuration slide)
        : synopsizer_(synopsizer), range_(range), slide_(slide) {}

    bool IsCovered(const Tuple& tuple) const override {
      const WindowSpan span =
          CoveringWindows(tuple.timestamp(), range_, slide_);
      for (WindowId w = span.first; w <= span.last; ++w) {
        const synopsis::Synopsis* dropped = synopsizer_->PeekDropped(w);
        if (dropped != nullptr && dropped->EstimatePointCount(tuple) > 0) {
          return true;
        }
      }
      return false;
    }

   private:
    const triage::WindowSynopsizer* synopsizer_;
    VirtualDuration range_;
    VirtualDuration slide_;
  };

  struct StreamState {
    Schema schema;
    std::unique_ptr<triage::TriageQueue> queue;
    std::unique_ptr<triage::WindowSynopsizer> synopsizer;
    std::unique_ptr<DroppedCoverageProbe> coverage_probe;
    /// Kept tuples per open window.
    std::map<WindowId, exec::Relation> kept_buffers;
    std::map<WindowId, int64_t> dropped_counts;
    /// Obs hooks, resolved once at Init (owned by metrics_).
    obs::Counter* summarized_dropped = nullptr;
    obs::Gauge* synopsis_build_seconds = nullptr;
  };

  ContinuousQueryEngine(rewrite::TriagedQuery triaged,
                        EngineConfig config);

  Status Init(const Catalog& catalog);

  /// Advances the engine clock to `until`, interleaving queued-tuple
  /// processing with window emissions whose deadlines pass.
  Status ProcessUntil(VirtualTime until);

  /// True if any stream queue holds a tuple.
  bool HasQueuedTuple() const;

  /// Pops and processes the queued tuple with the earliest timestamp.
  Status ProcessOneQueuedTuple();

  /// Routes a fully shed tuple (it will never be processed) according to
  /// the strategy: it counts as dropped for every not-yet-emitted window
  /// covering it.
  Status ShedTuple(StreamState* state, const Tuple& tuple);

  /// Marks a still-queued tuple as dropped *for one window* whose
  /// deadline arrived before the engine reached the tuple; it may yet be
  /// kept for later windows (sliding-window case).
  Status ShedTupleForWindow(StreamState* state, const Tuple& tuple,
                            WindowId window);

  /// Windows covering `t` that have not been emitted yet.
  WindowSpan PendingWindowsFor(VirtualTime t) const;

  Status EmitWindow(WindowId window);

  /// Hands a finished window to the sink (when set) or the result buffer.
  void DeliverResult(WindowResult&& result);

  /// Resolves the engine-level and per-stream instruments from metrics_
  /// and attaches the queue/synopsizer hooks. Called once from Init.
  void InitInstruments();

  void ChargeSynopsisTime(double seconds) {
    engine_time_ += seconds;
    stats_.synopsis_work_seconds += seconds;
  }
  /// Per-stream variant: also gauges the stream's synopsis build time.
  void ChargeSynopsisTime(StreamState* state, double seconds) {
    ChargeSynopsisTime(seconds);
    if (state->synopsis_build_seconds != nullptr) {
      state->synopsis_build_seconds->Add(seconds);
    }
  }
  void ChargeExactTime(double seconds) {
    engine_time_ += seconds;
    stats_.exact_work_seconds += seconds;
  }

  rewrite::TriagedQuery triaged_;
  EngineConfig config_;
  AggregationSpec agg_spec_;  // valid when the query aggregates

  std::map<std::string, StreamState> streams_;
  VirtualDuration window_seconds_ = 1.0;  // range
  VirtualDuration window_slide_ = 1.0;    // hop (== range when tumbling)

  VirtualTime engine_time_ = 0.0;
  VirtualTime last_arrival_time_ = 0.0;
  bool saw_arrival_ = false;
  WindowId next_window_to_emit_ = 0;
  WindowId last_window_seen_ = -1;

  std::vector<WindowResult> results_;
  WindowSink sink_;
  EngineStats stats_;
  bool finished_ = false;

  // --- Observability (src/obs/). The registry owns every metric; the
  // pointers below are hot-path handles resolved once in Init.
  obs::MetricsRegistry metrics_;
  obs::WindowTraceRecorder trace_;
  obs::Counter* ingested_counter_ = nullptr;
  obs::Counter* kept_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* windows_counter_ = nullptr;
  obs::Counter* exec_scanned_ = nullptr;
  obs::Counter* exec_output_ = nullptr;
  obs::Counter* exec_probes_ = nullptr;
  obs::Counter* exec_build_inserts_ = nullptr;
  obs::Counter* exec_comparisons_ = nullptr;
  obs::Counter* shadow_work_ = nullptr;
  obs::Histogram* emission_latency_ = nullptr;
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_ENGINE_H_
