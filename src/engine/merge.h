#ifndef DATATRIAGE_ENGINE_MERGE_H_
#define DATATRIAGE_ENGINE_MERGE_H_

#include <vector>

#include "src/common/mem_accounting.h"
#include "src/common/result.h"
#include "src/exec/relation.h"
#include "src/plan/binder.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::engine {

/// Column bookkeeping for merging exact results with shadow estimates
/// (paper Fig. 2's "Merge" stage / Sec. 8.1: "we merged these streams by
/// merging the aggregates computed from a SQL GROUP BY statement with
/// approximate aggregates computed from synopses").
struct AggregationSpec {
  /// Grouping columns, as indices into the SPJ core's output schema.
  std::vector<size_t> group_columns;
  /// One entry per aggregate: its input column in the SPJ schema, or
  /// synopsis::kCountOnlyColumn for COUNT(*).
  std::vector<size_t> agg_columns;
};

/// Derives the spec from a bound aggregate query.
Result<AggregationSpec> MakeAggregationSpec(const plan::BoundQuery& query);

/// Aggregates exact SPJ rows into per-group accumulators, mirroring what
/// Synopsis::EstimateGroups produces for the shadow side so the two merge
/// additively. With `vectorized` the rows are converted to a column batch
/// first and grouped/accumulated column-at-a-time; the result is
/// byte-identical (same hashes, same per-group accumulation order), so
/// the flag affects speed only.
///
/// When `account` is set, the transient group table and accumulator
/// arena are charged to Component::kMergeState for the duration of the
/// call. The charge sequence is a fixed model over (slot count, group
/// count) — both identical across executor modes — so accounting stays
/// byte-equivalent under the exec-mode-flip oracle; vectorized-only
/// transients (hash/column buffers) are deliberately not charged.
synopsis::GroupedEstimate AccumulateExact(
    const exec::Relation& spj_rows, const AggregationSpec& spec,
    bool vectorized = false, mem::SessionAccount* account = nullptr);

/// Adds `src`'s accumulators into `dst` group-wise.
void MergeGroupedEstimates(synopsis::GroupedEstimate* dst,
                           const synopsis::GroupedEstimate& src);

/// Renders accumulators as output rows shaped like the query's aggregate
/// output (group values first, then one value per aggregate, in the bound
/// order). With `exact_types` the aggregate values take the query's
/// declared types (COUNT -> INTEGER, ...); otherwise they are doubles,
/// since merged estimates are fractional. Groups whose total weight is
/// ~zero are omitted.
Result<exec::Relation> BuildAggregateRows(
    const synopsis::GroupedEstimate& groups, const plan::BoundQuery& query,
    const AggregationSpec& spec, bool exact_types);

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_MERGE_H_
