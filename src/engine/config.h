#ifndef DATATRIAGE_ENGINE_CONFIG_H_
#define DATATRIAGE_ENGINE_CONFIG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/engine/cost_model.h"
#include "src/synopsis/factory.h"
#include "src/triage/drop_policy.h"
#include "src/triage/shedding_strategy.h"
#include "src/tuple/tuple.h"

namespace datatriage::engine {

/// Per-query triage configuration. One StreamServer can host sessions with
/// different configs; each session's queues, synopses, and drop-policy RNGs
/// are derived from its own config (see src/server/).
struct EngineConfig {
  triage::SheddingStrategy strategy =
      triage::SheddingStrategy::kDataTriage;
  synopsis::SynopsisConfig synopsis;
  /// Per-stream triage queue capacity, in tuples.
  size_t queue_capacity = 100;
  triage::DropPolicyKind drop_policy = triage::DropPolicyKind::kRandom;
  /// Candidate-sample size for the synergistic policy (paper Sec. 8.1);
  /// only used when drop_policy == kSynergistic, which in turn requires a
  /// synopsizing strategy.
  size_t synergistic_candidates = 4;
  CostModel cost_model;
  /// Seed for the drop policies (one forked Rng per stream queue).
  uint64_t seed = 1;

  /// Run window evaluations on the column-major batch executor
  /// (src/exec/vector_eval.h) instead of the tuple-at-a-time reference
  /// path. The two produce byte-identical results, timestamps, and
  /// ExecStats — this flag trades nothing but speed. Also applied to the
  /// exact-synopsis shadow algebra.
  bool vectorized_exec = true;
  /// Minimum total input rows per evaluation before the vectorized path
  /// engages; smaller windows stay scalar, where the row-to-column
  /// conversion would dominate. Requires vectorized_exec.
  size_t vectorized_min_rows = 0;

  /// Per-session state budget, in model bytes (src/common/mem_accounting.h);
  /// 0 (the default) disables enforcement. When the session's tracked
  /// state exceeds the budget, memory-triggered triage folds the coldest
  /// buffered window (LRU by tuple arrival time — never wall-clock) into
  /// its dropped synopsis, counting the shed tuples under
  /// `dropped.memory_shed`. Determinism is preserved: eviction depends
  /// only on the event subsequence and this config.
  size_t memory_budget_bytes = 0;
  /// Floor below which the budget is rejected by Validate() — a budget
  /// smaller than one window of typical state would thrash (64 KiB).
  static constexpr size_t kMinMemoryBudgetBytes = 64 * 1024;

  /// Checks the config's internal invariants, returning a specific error
  /// for the first violation found: a zero queue_capacity, the
  /// synergistic drop policy without a synopsizing strategy, or a zero
  /// synergistic candidate-sample size. Both Make() overloads call this
  /// before constructing an engine; call it directly to validate
  /// user-supplied configs up front.
  Status Validate() const;
};

/// How the server's TaskScheduler assigns per-session task queues to
/// pool workers (DESIGN.md §16). Every mode produces byte-identical
/// per-session output: a session's tasks live in one FIFO ring and are
/// consumed in feed order by exactly one worker at a time (a claim
/// protocol serializes consumers), so placement can only change *when*
/// a session runs, never *what* it computes.
enum class DispatchMode : uint8_t {
  /// The PR-4 rule: session `id` is pinned to worker `id % K` forever.
  kStatic = 0,
  /// A session is re-homed whenever its queue goes from empty to
  /// non-empty, onto the worker with the fewest outstanding tasks
  /// (ties break to the lowest worker index).
  kLeastLoaded = 1,
  /// Sessions start on their static home, but an idle worker scans all
  /// session queues and claims any with pending tasks.
  kStealing = 2,
};

std::string_view DispatchModeToString(DispatchMode mode);

/// Scheduling configuration of a server::StreamServer: the worker pool,
/// the inter-session dispatch policy, and intra-session operator
/// parallelism. Replaces the flat StreamServerOptions::worker_threads
/// knob (DESIGN.md §16).
struct SchedulerOptions {
  /// Number of worker threads session execution is scheduled across.
  /// 0 (the default) runs every session inline on the pushing thread —
  /// the fully serial mode, no threads created. With
  /// intra_session_threads <= 1 the pool is clamped to the session
  /// count (extra threads would only idle); with intra-session
  /// parallelism the full complement is kept — morsel helpers are the
  /// TaskPool's own threads, and spare scheduler workers overlap
  /// sessions' serial stretches.
  size_t worker_threads = 0;

  /// How session task queues map to workers. Inert when
  /// worker_threads == 0 (there is no pool to place sessions on).
  DispatchMode dispatch = DispatchMode::kStatic;

  /// Threads cooperating on one session's join/aggregate kernels
  /// (morsel-style partitions with a deterministic central merge,
  /// DESIGN.md §16.2), *including* the worker running the session —
  /// so 0 and 1 both mean "no operator parallelism". Values > 1
  /// require worker_threads > 0: the helpers belong to the server's
  /// task pool, and the serial inline path has none.
  size_t intra_session_threads = 0;

  /// Minimum input rows before a kernel splits into morsels; smaller
  /// inputs run the serial vectorized loop, where partition + merge
  /// overhead would dominate. Purely a performance threshold — output
  /// is byte-identical either way — so it is legal (and inert) without
  /// intra_session_threads, which keeps the value stable across
  /// worker-count sweeps (the snapshot stamp records it).
  size_t parallel_min_rows = 0;

  /// Checks the scheduler invariants, returning a specific error for
  /// the first violation: worker_threads beyond the 256 ceiling,
  /// intra_session_threads without a pool, or an intra-session fan-out
  /// beyond the 64 ceiling.
  Status Validate() const;
};

/// Execution options of a server::StreamServer (kept here with the other
/// config types so callers configure a deployment from one header).
///
/// The pragma around the definition silences only the synthesized
/// special members' NSDMI evaluation of the deprecated shim (every TU
/// that copies or default-constructs the options would otherwise warn);
/// explicit reads and writes of the field still trigger the
/// deprecation at the call site.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct StreamServerOptions {
  /// Scheduling: worker pool size, dispatch policy, intra-session
  /// operator parallelism. See SchedulerOptions.
  SchedulerOptions scheduler;

  /// Deprecated migration shim for the pre-SchedulerOptions API
  /// (`StreamServerOptions{.worker_threads = K}` aggregate-init). When
  /// non-zero it behaves as scheduler.worker_threads with the default
  /// kStatic dispatch and no intra-session parallelism; setting both
  /// this and scheduler.worker_threads is a Validate() error. New code
  /// sets scheduler.worker_threads.
  [[deprecated(
      "worker_threads moved into SchedulerOptions: set "
      "scheduler.worker_threads (and pick a dispatch mode) "
      "instead")]]
  size_t worker_threads = 0;

  /// Capacity of each session's bounded SPSC task ring, in tasks
  /// (rounded up to a power of two). The pushing thread blocks when a
  /// session's ring is full — backpressure, never loss: load shedding
  /// is the triage queues' job, not the task queues'.
  size_t task_queue_capacity = 1024;

  /// Server-wide state budget, in model bytes, split evenly across live
  /// sessions (each session enforces min(its own memory_budget_bytes,
  /// its share)); 0 disables the server-wide budget. The split is
  /// recomputed on register/unregister — a deterministic function of the
  /// serial API-call sequence, not of scheduling.
  size_t memory_budget_bytes = 0;

  /// The scheduler configuration with the deprecated worker_threads
  /// shim folded in: when only the legacy field is set, the result is
  /// `scheduler` with worker_threads substituted. Callers (and the
  /// server) read scheduling exclusively through this accessor.
  SchedulerOptions EffectiveScheduler() const;

  /// Checks the options' invariants: a positive task_queue_capacity,
  /// not both worker-thread knobs set, the effective scheduler's own
  /// invariants (Validate() on SchedulerOptions), and a memory budget
  /// that is zero or at least the per-session floor.
  Status Validate() const;
};
#pragma GCC diagnostic pop

/// One tuple arriving on a named stream; the tuple's timestamp is its
/// arrival time on the virtual clock. The name is the wire format of an
/// arrival — the ingest plane resolves it to an interned StreamId once at
/// the boundary, and everything downstream routes by id.
struct StreamEvent {
  std::string stream;
  Tuple tuple;
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_CONFIG_H_
