#ifndef DATATRIAGE_ENGINE_CONFIG_H_
#define DATATRIAGE_ENGINE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/engine/cost_model.h"
#include "src/synopsis/factory.h"
#include "src/triage/drop_policy.h"
#include "src/triage/shedding_strategy.h"
#include "src/tuple/tuple.h"

namespace datatriage::engine {

/// Per-query triage configuration. One StreamServer can host sessions with
/// different configs; each session's queues, synopses, and drop-policy RNGs
/// are derived from its own config (see src/server/).
struct EngineConfig {
  triage::SheddingStrategy strategy =
      triage::SheddingStrategy::kDataTriage;
  synopsis::SynopsisConfig synopsis;
  /// Per-stream triage queue capacity, in tuples.
  size_t queue_capacity = 100;
  triage::DropPolicyKind drop_policy = triage::DropPolicyKind::kRandom;
  /// Candidate-sample size for the synergistic policy (paper Sec. 8.1);
  /// only used when drop_policy == kSynergistic, which in turn requires a
  /// synopsizing strategy.
  size_t synergistic_candidates = 4;
  CostModel cost_model;
  /// Seed for the drop policies (one forked Rng per stream queue).
  uint64_t seed = 1;

  /// Run window evaluations on the column-major batch executor
  /// (src/exec/vector_eval.h) instead of the tuple-at-a-time reference
  /// path. The two produce byte-identical results, timestamps, and
  /// ExecStats — this flag trades nothing but speed. Also applied to the
  /// exact-synopsis shadow algebra.
  bool vectorized_exec = true;
  /// Minimum total input rows per evaluation before the vectorized path
  /// engages; smaller windows stay scalar, where the row-to-column
  /// conversion would dominate. Requires vectorized_exec.
  size_t vectorized_min_rows = 0;

  /// Per-session state budget, in model bytes (src/common/mem_accounting.h);
  /// 0 (the default) disables enforcement. When the session's tracked
  /// state exceeds the budget, memory-triggered triage folds the coldest
  /// buffered window (LRU by tuple arrival time — never wall-clock) into
  /// its dropped synopsis, counting the shed tuples under
  /// `dropped.memory_shed`. Determinism is preserved: eviction depends
  /// only on the event subsequence and this config.
  size_t memory_budget_bytes = 0;
  /// Floor below which the budget is rejected by Validate() — a budget
  /// smaller than one window of typical state would thrash (64 KiB).
  static constexpr size_t kMinMemoryBudgetBytes = 64 * 1024;

  /// Checks the config's internal invariants, returning a specific error
  /// for the first violation found: a zero queue_capacity, the
  /// synergistic drop policy without a synopsizing strategy, or a zero
  /// synergistic candidate-sample size. Both Make() overloads call this
  /// before constructing an engine; call it directly to validate
  /// user-supplied configs up front.
  Status Validate() const;
};

/// Execution options of a server::StreamServer (kept here with the other
/// config types so callers configure a deployment from one header).
struct StreamServerOptions {
  /// Number of worker threads session execution is sharded across.
  /// 0 (the default) runs every session inline on the pushing thread —
  /// the fully serial legacy mode. N >= 1 starts a pool of N workers;
  /// each session is pinned to the worker `session_id % N`, so a
  /// session's arrivals are always consumed in feed order by exactly one
  /// thread and its output stays byte-identical to the serial run
  /// (DESIGN.md Sec. 11). The pool is clamped to the session count —
  /// extra threads would only idle.
  size_t worker_threads = 0;

  /// Capacity of each worker's bounded SPSC task queue, in tasks
  /// (rounded up to a power of two). The pushing thread blocks when the
  /// owning worker's queue is full — backpressure, never loss: load
  /// shedding is the triage queues' job, not the task queues'.
  size_t task_queue_capacity = 1024;

  /// Server-wide state budget, in model bytes, split evenly across live
  /// sessions (each session enforces min(its own memory_budget_bytes,
  /// its share)); 0 disables the server-wide budget. The split is
  /// recomputed on register/unregister — a deterministic function of the
  /// serial API-call sequence, not of scheduling.
  size_t memory_budget_bytes = 0;

  /// Checks the options' invariants: a positive task_queue_capacity, a
  /// worker_threads count within the sane ceiling (256), and a
  /// memory budget that is zero or at least the per-session floor.
  Status Validate() const;
};

/// One tuple arriving on a named stream; the tuple's timestamp is its
/// arrival time on the virtual clock. The name is the wire format of an
/// arrival — the ingest plane resolves it to an interned StreamId once at
/// the boundary, and everything downstream routes by id.
struct StreamEvent {
  std::string stream;
  Tuple tuple;
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_CONFIG_H_
