#ifndef DATATRIAGE_ENGINE_COST_MODEL_H_
#define DATATRIAGE_ENGINE_COST_MODEL_H_

#include <cstdint>

#include "src/common/virtual_time.h"

namespace datatriage::engine {

/// Deterministic virtual-time cost model replacing the paper's wall-clock
/// overload on a 1.4 GHz Pentium 3 (see DESIGN.md, substitution table).
///
/// The engine owns one virtual clock. Every unit of work advances it:
/// ingesting a tuple into the exact pipeline, folding a tuple into a
/// synopsis, and the per-window evaluation of the exact and shadow plans
/// (charged per measured work unit, so expensive synopses — e.g. an
/// untuned MHIST join — genuinely overload the engine as in paper
/// Sec. 5.2.2). Overload exists whenever the offered work per virtual
/// second exceeds 1.0.
///
/// Defaults are calibrated so the Fig. 8 sweep (aggregate input up to
/// ~1600 tuples/s across three streams) crosses from underload to heavy
/// shedding, mirroring the paper's operating range.
struct CostModel {
  /// Virtual seconds to push one kept tuple through the standard-case
  /// pipeline (parse, route, window insert, incremental join work).
  double exact_tuple_cost = 1.0 / 400.0;

  /// Virtual seconds to fold one tuple into a synopsis. Paper Fig. 6:
  /// "the cost of forming and manipulating synopses is dwarfed by the
  /// cost of standard-case query processing."
  double synopsis_insert_cost = 1.0 / 40000.0;

  /// Virtual seconds per exact-plan work unit (ExecStats::TotalWork)
  /// during window emission.
  double exact_work_unit_cost = 1.0 / 400000.0;

  /// Virtual seconds per synopsis-algebra work unit (OpStats::work)
  /// during shadow-plan evaluation.
  double synopsis_work_unit_cost = 1.0 / 200000.0;

  /// Fixed virtual seconds per window emission (result delivery, buffer
  /// management).
  double emission_overhead = 0.0002;

  /// Emission deadline of window w is its span end + delay_factor *
  /// window range: the latency budget before un-processed window tuples
  /// are force-shed.
  double delay_factor = 1.0;

  /// Deadline for window `window` with the given range and slide
  /// (slide == range for tumbling windows).
  VirtualTime EmissionDeadline(WindowId window, VirtualDuration range,
                               VirtualDuration slide) const {
    return WindowSpanEnd(window, range, slide) + delay_factor * range;
  }
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_COST_MODEL_H_
