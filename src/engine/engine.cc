#include "src/engine/engine.h"

#include <utility>

#include "src/plan/binder.h"
#include "src/sql/parser.h"

namespace datatriage::engine {

ContinuousQueryEngine::ContinuousQueryEngine(Catalog catalog)
    : server_(std::move(catalog)) {}

Result<std::unique_ptr<ContinuousQueryEngine>> ContinuousQueryEngine::Make(
    const Catalog& catalog, const std::string& query_sql,
    EngineConfig config) {
  DT_RETURN_IF_ERROR(config.Validate());
  DT_ASSIGN_OR_RETURN(sql::Statement statement,
                      sql::ParseStatement(query_sql));
  DT_ASSIGN_OR_RETURN(plan::BoundQuery bound,
                      plan::BindStatement(statement, catalog));
  return Make(catalog, std::move(bound), std::move(config));
}

Result<std::unique_ptr<ContinuousQueryEngine>> ContinuousQueryEngine::Make(
    const Catalog& catalog, plan::BoundQuery query, EngineConfig config) {
  auto engine = std::unique_ptr<ContinuousQueryEngine>(
      new ContinuousQueryEngine(catalog));
  DT_ASSIGN_OR_RETURN(engine->session_id_,
                      engine->server_.RegisterQuery(std::move(query),
                                                    std::move(config)));
  return engine;
}

Status ContinuousQueryEngine::Push(const StreamEvent& event) {
  // The server accepts any catalog stream (other sessions might read
  // it); the single-query engine keeps its historical contract of
  // rejecting streams outside its own query. A finished server wins
  // over the membership check — let it name its state.
  if (server_.state() != server::ServerState::kFinished &&
      !session().ReadsStream(event.stream)) {
    return Status::NotFound("stream '" + event.stream +
                            "' is not part of this query");
  }
  return server_.Push(event);
}

Status ContinuousQueryEngine::PushBatch(
    std::span<const StreamEvent> events) {
  if (server_.state() != server::ServerState::kFinished) {
    for (const StreamEvent& event : events) {
      if (!session().ReadsStream(event.stream)) {
        return Status::NotFound("stream '" + event.stream +
                                "' is not part of this query; no event "
                                "of the batch was ingested");
      }
    }
  }
  return server_.PushBatch(events);
}

Status ContinuousQueryEngine::Finish() { return server_.Finish(); }

std::vector<WindowResult> ContinuousQueryEngine::TakeResults() {
  return session().TakeResults();
}

void ContinuousQueryEngine::SetWindowSink(WindowSink sink) {
  session().SetWindowSink(std::move(sink));
}

EngineStatsSnapshot ContinuousQueryEngine::StatsSnapshot() const {
  return session().StatsSnapshot();
}

}  // namespace datatriage::engine
