#include "src/engine/merge.h"

#include <cmath>
#include <cstdint>

#include "src/common/flat_table.h"
#include "src/exec/column_batch.h"

namespace datatriage::engine {

namespace {

/// Model bytes per group-table slot and per arena accumulator (fixed
/// constants so scalar and vectorized staging — whose Entry types differ
/// — charge identically).
constexpr size_t kMergeSlotBytes = 24;
constexpr size_t kMergeAccumulatorBytes = 32;

/// Column-at-a-time AccumulateExact: one batch conversion, whole-column
/// group hashing, then per-aggregate accumulation sweeps. Hashes, group
/// equality, and the per-(group, aggregate) floating-point update order
/// all replicate the row-at-a-time loop exactly.
synopsis::GroupedEstimate AccumulateExactVectorized(
    const exec::Relation& spj_rows, const AggregationSpec& spec,
    mem::ScopedCharge* charge) {
  const size_t n = spj_rows.size();
  const size_t stride = spec.agg_columns.size();
  const auto batch = exec::ColumnBatch::FromRelation(spj_rows);

  std::vector<const exec::Column*> group_cols;
  group_cols.reserve(spec.group_columns.size());
  for (size_t g : spec.group_columns) group_cols.push_back(&batch->col(g));
  std::vector<uint64_t> hashes;
  exec::HashRows(group_cols, nullptr, n, &hashes);

  struct Staged {
    uint32_t repr_row = 0;
    uint32_t id = 0;
  };
  FlatTable<Staged> staged;
  staged.SetCapacityObserver([charge](size_t old_slots, size_t new_slots) {
    charge->Add((new_slots - old_slots) * kMergeSlotBytes);
  });
  std::vector<uint32_t> group_of(n);
  std::vector<uint32_t> repr_rows;
  for (size_t i = 0; i < n; ++i) {
    auto [entry, inserted] = staged.FindOrEmplace(
        hashes[i],
        [&](const Staged& s) {
          for (const exec::Column* col : group_cols) {
            if (!exec::ColumnsEqualAt(*col, s.repr_row, *col, i)) {
              return false;
            }
          }
          return true;
        },
        [&] {
          charge->Add(stride * kMergeAccumulatorBytes);
          Staged s{static_cast<uint32_t>(i),
                   static_cast<uint32_t>(repr_rows.size())};
          repr_rows.push_back(static_cast<uint32_t>(i));
          return s;
        });
    group_of[i] = entry->id;
  }

  std::vector<synopsis::AggAccumulator> arena(repr_rows.size() * stride);
  for (size_t a = 0; a < stride; ++a) {
    if (spec.agg_columns[a] == synopsis::kCountOnlyColumn) {
      for (size_t i = 0; i < n; ++i) {
        arena[group_of[i] * stride + a].count += 1.0;
      }
      continue;
    }
    const exec::Column& col = batch->col(spec.agg_columns[a]);
    if (!col.is_string() && col.clean()) {
      const double* f = col.f64.data();
      for (size_t i = 0; i < n; ++i) {
        arena[group_of[i] * stride + a].Add(f[i], 1.0);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        arena[group_of[i] * stride + a].Add(col.ValueAt(i).AsDouble(), 1.0);
      }
    }
  }

  synopsis::GroupedEstimate groups;
  for (size_t g = 0; g < repr_rows.size(); ++g) {
    std::vector<Value> key;
    key.reserve(spec.group_columns.size());
    for (size_t gc : spec.group_columns) {
      key.push_back(batch->col(gc).ValueAt(repr_rows[g]));
    }
    groups.emplace(std::move(key),
                   std::vector<synopsis::AggAccumulator>(
                       arena.begin() + static_cast<ptrdiff_t>(g * stride),
                       arena.begin() +
                           static_cast<ptrdiff_t>((g + 1) * stride)));
  }
  return groups;
}

}  // namespace

Result<AggregationSpec> MakeAggregationSpec(const plan::BoundQuery& query) {
  if (!query.has_aggregate) {
    return Status::InvalidArgument(
        "MakeAggregationSpec requires an aggregate query");
  }
  AggregationSpec spec;
  for (const plan::GroupBySpec& g : query.group_by) {
    spec.group_columns.push_back(g.input_index);
  }
  for (const plan::AggregateSpec& a : query.aggregates) {
    spec.agg_columns.push_back(a.count_star ? synopsis::kCountOnlyColumn
                                            : a.input_index);
  }
  return spec;
}

synopsis::GroupedEstimate AccumulateExact(const exec::Relation& spj_rows,
                                          const AggregationSpec& spec,
                                          bool vectorized,
                                          mem::SessionAccount* account) {
  // The scoped charge drains when the call returns: merge state is
  // transient, so only the gauge high-watermark records it.
  mem::ScopedCharge charge(account, mem::Component::kMergeState);
  if (vectorized && !spj_rows.empty()) {
    return AccumulateExactVectorized(spj_rows, spec, &charge);
  }
  // Stage groups in a flat table keyed by borrowed rows, then build the
  // ordered GroupedEstimate once per distinct group: the per-row cost is
  // a hash plus an in-place comparison, not a key-vector construction.
  struct Staged {
    const Tuple* repr = nullptr;
    size_t offset = 0;
  };
  const size_t stride = spec.agg_columns.size();
  FlatTable<Staged> staged;
  staged.SetCapacityObserver([&charge](size_t old_slots, size_t new_slots) {
    charge.Add((new_slots - old_slots) * kMergeSlotBytes);
  });
  std::vector<synopsis::AggAccumulator> arena;
  for (const Tuple& row : spj_rows) {
    const uint64_t hash = HashValuesAt(row, spec.group_columns);
    auto [entry, inserted] = staged.FindOrEmplace(
        hash,
        [&](const Staged& s) {
          return ValuesEqualAt(*s.repr, spec.group_columns, row,
                               spec.group_columns);
        },
        [&] {
          charge.Add(stride * kMergeAccumulatorBytes);
          const size_t offset = arena.size();
          arena.resize(offset + stride);
          return Staged{&row, offset};
        });
    for (size_t a = 0; a < stride; ++a) {
      if (spec.agg_columns[a] == synopsis::kCountOnlyColumn) {
        arena[entry->offset + a].count += 1.0;
      } else {
        arena[entry->offset + a].Add(
            row.value(spec.agg_columns[a]).AsDouble(), 1.0);
      }
    }
  }
  synopsis::GroupedEstimate groups;
  staged.ForEach([&](const Staged& s) {
    std::vector<Value> key;
    key.reserve(spec.group_columns.size());
    for (size_t g : spec.group_columns) key.push_back(s.repr->value(g));
    groups.emplace(std::move(key),
                   std::vector<synopsis::AggAccumulator>(
                       arena.begin() + static_cast<ptrdiff_t>(s.offset),
                       arena.begin() +
                           static_cast<ptrdiff_t>(s.offset + stride)));
  });
  return groups;
}

void MergeGroupedEstimates(synopsis::GroupedEstimate* dst,
                           const synopsis::GroupedEstimate& src) {
  for (const auto& [key, accumulators] : src) {
    auto [it, inserted] = dst->try_emplace(key);
    if (inserted) it->second.resize(accumulators.size());
    DT_CHECK_EQ(it->second.size(), accumulators.size());
    for (size_t a = 0; a < accumulators.size(); ++a) {
      it->second[a].MergeFrom(accumulators[a]);
    }
  }
}

Result<exec::Relation> BuildAggregateRows(
    const synopsis::GroupedEstimate& groups, const plan::BoundQuery& query,
    const AggregationSpec& spec, bool exact_types) {
  constexpr double kEpsilon = 1e-9;
  exec::Relation rows;
  for (const auto& [key, accumulators] : groups) {
    DT_CHECK_EQ(accumulators.size(), query.aggregates.size());
    double total_weight = 0;
    for (const synopsis::AggAccumulator& acc : accumulators) {
      total_weight += acc.count;
    }
    if (total_weight <= kEpsilon) continue;

    std::vector<Value> row = key;
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const plan::AggregateSpec& agg = query.aggregates[a];
      const synopsis::AggAccumulator& acc = accumulators[a];
      double value = 0;
      switch (agg.func) {
        case sql::AggFunc::kCount:
          value = acc.count;
          break;
        case sql::AggFunc::kSum:
          value = acc.sum;
          break;
        case sql::AggFunc::kAvg:
          value = acc.count > kEpsilon ? acc.sum / acc.count : 0.0;
          break;
        case sql::AggFunc::kMin:
          value = acc.count > kEpsilon ? acc.min : 0.0;
          break;
        case sql::AggFunc::kMax:
          value = acc.count > kEpsilon ? acc.max : 0.0;
          break;
        case sql::AggFunc::kNone:
          return Status::Internal("AggFunc::kNone in aggregate spec");
      }
      if (exact_types) {
        FieldType input_type = FieldType::kInt64;
        if (spec.agg_columns[a] != synopsis::kCountOnlyColumn) {
          input_type = query.spj_core->schema()
                           .field(spec.agg_columns[a])
                           .type;
        }
        if (agg.ResultType(input_type) == FieldType::kInt64) {
          row.push_back(Value::Int64(std::llround(value)));
          continue;
        }
      }
      row.push_back(Value::Double(value));
    }
    rows.emplace_back(std::move(row));
  }
  return rows;
}

}  // namespace datatriage::engine
