#ifndef DATATRIAGE_ENGINE_WINDOW_RESULT_H_
#define DATATRIAGE_ENGINE_WINDOW_RESULT_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/virtual_time.h"
#include "src/exec/relation.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::engine {

/// One window's composite output (paper Fig. 2's "Merge" stage).
struct WindowResult {
  WindowId window = 0;
  /// Virtual time at which the result left the engine.
  VirtualTime emit_time = 0.0;

  /// Exact query output computed from kept tuples only (what drop-only
  /// load shedding would report).
  exec::Relation exact_rows;

  /// Composite output: exact + the shadow plan's estimate of lost
  /// results. For aggregate queries the aggregate columns are doubles
  /// (estimates are fractional); for non-aggregate queries these match
  /// exact_rows and the loss estimate lives in `result_synopsis`.
  exec::Relation merged_rows;

  /// The shadow plan's raw per-group estimate of dropped results (empty
  /// when nothing was shed or under drop-only).
  synopsis::GroupedEstimate shadow_estimate;

  /// Result synopsis of the dropped-results shadow query (null under
  /// drop-only or when the query has aggregates — aggregates consume it
  /// into shadow_estimate). Applications can render it (paper Fig. 3's
  /// red rectangles).
  synopsis::SynopsisPtr result_synopsis;

  // Volume accounting for this window.
  int64_t kept_tuples = 0;
  int64_t dropped_tuples = 0;
};

/// Whole-run accounting.
struct EngineStats {
  int64_t tuples_ingested = 0;
  int64_t tuples_kept = 0;
  int64_t tuples_dropped = 0;
  int64_t windows_emitted = 0;
  /// Total virtual time charged for exact processing / synopsis work.
  double exact_work_seconds = 0.0;
  double synopsis_work_seconds = 0.0;
  /// Engine clock at the end of the run.
  VirtualTime final_engine_time = 0.0;
};

/// Point-in-time copy of the engine's accounting, safe to hold after the
/// engine is gone. `core` carries the legacy EngineStats fields; the maps
/// embed the obs registry totals (metric name -> value), e.g.
/// "stream.r.queue_depth" in `gauge_maxima` is stream r's queue-depth
/// high-watermark. Returned by ContinuousQueryEngine::StatsSnapshot().
struct EngineStatsSnapshot {
  EngineStats core;
  /// Every registry counter's total (DESIGN.md Sec. 9.2 names them).
  std::map<std::string, int64_t> counters;
  /// Every registry gauge's current value / high-watermark.
  std::map<std::string, double> gauges;
  std::map<std::string, double> gauge_maxima;
};

}  // namespace datatriage::engine

#endif  // DATATRIAGE_ENGINE_WINDOW_RESULT_H_
