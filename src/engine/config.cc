#include "src/engine/config.h"

namespace datatriage::engine {

Status EngineConfig::Validate() const {
  if (queue_capacity == 0) {
    return Status::InvalidArgument(
        "EngineConfig: queue_capacity must be positive (a zero-slot "
        "triage queue could never buffer an arrival)");
  }
  if (drop_policy == triage::DropPolicyKind::kSynergistic) {
    if (strategy == triage::SheddingStrategy::kDropOnly) {
      return Status::InvalidArgument(
          "EngineConfig: the synergistic drop policy consults the "
          "dropped-tuple synopses and requires a synopsizing strategy "
          "(data_triage or summarize_only), not drop_only");
    }
    if (synergistic_candidates == 0) {
      return Status::InvalidArgument(
          "EngineConfig: synergistic_candidates must be positive (the "
          "synergistic policy samples that many victim candidates per "
          "eviction, paper Sec. 8.1)");
    }
  }
  return Status::OK();
}

}  // namespace datatriage::engine
