#include "src/engine/config.h"

namespace datatriage::engine {

Status EngineConfig::Validate() const {
  if (queue_capacity == 0) {
    return Status::InvalidArgument(
        "EngineConfig: queue_capacity must be positive (a zero-slot "
        "triage queue could never buffer an arrival)");
  }
  if (drop_policy == triage::DropPolicyKind::kSynergistic) {
    if (strategy == triage::SheddingStrategy::kDropOnly) {
      return Status::InvalidArgument(
          "EngineConfig: the synergistic drop policy consults the "
          "dropped-tuple synopses and requires a synopsizing strategy "
          "(data_triage or summarize_only), not drop_only");
    }
    if (synergistic_candidates == 0) {
      return Status::InvalidArgument(
          "EngineConfig: synergistic_candidates must be positive (the "
          "synergistic policy samples that many victim candidates per "
          "eviction, paper Sec. 8.1)");
    }
  }
  if (vectorized_min_rows > 0 && !vectorized_exec) {
    return Status::InvalidArgument(
        "EngineConfig: vectorized_min_rows only thresholds the "
        "vectorized executor; set vectorized_exec or drop the "
        "threshold");
  }
  if (memory_budget_bytes != 0 &&
      memory_budget_bytes < kMinMemoryBudgetBytes) {
    return Status::InvalidArgument(
        "EngineConfig: memory_budget_bytes must be 0 (unbounded) or at "
        "least 64 KiB (a smaller budget would evict every window as it "
        "forms, degenerating to summarize-only)");
  }
  return Status::OK();
}

std::string_view DispatchModeToString(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kStatic:
      return "static";
    case DispatchMode::kLeastLoaded:
      return "least-loaded";
    case DispatchMode::kStealing:
      return "stealing";
  }
  return "?";
}

Status SchedulerOptions::Validate() const {
  if (worker_threads > 256) {
    return Status::InvalidArgument(
        "SchedulerOptions: worker_threads must be at most 256 (one "
        "thread per session plus morsel helpers is the useful maximum)");
  }
  if (intra_session_threads > 1 && worker_threads == 0) {
    return Status::InvalidArgument(
        "SchedulerOptions: intra_session_threads > 1 requires a worker "
        "pool; set worker_threads > 0 (the serial inline path has no "
        "task pool to split operator morsels across)");
  }
  if (intra_session_threads > 64) {
    return Status::InvalidArgument(
        "SchedulerOptions: intra_session_threads must be at most 64 "
        "(morsel fan-out beyond that only adds merge overhead)");
  }
  return Status::OK();
}

// The deprecated worker_threads shim is read (only) here and in
// EffectiveScheduler, by design: every other consumer goes through
// EffectiveScheduler, so the deprecation warning fires exactly at the
// call sites that still assign the legacy field.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

SchedulerOptions StreamServerOptions::EffectiveScheduler() const {
  SchedulerOptions effective = scheduler;
  if (worker_threads != 0 && effective.worker_threads == 0) {
    effective.worker_threads = worker_threads;
  }
  return effective;
}

Status StreamServerOptions::Validate() const {
  if (task_queue_capacity == 0) {
    return Status::InvalidArgument(
        "StreamServerOptions: task_queue_capacity must be positive (a "
        "zero-slot task queue could never hand a worker any work)");
  }
  if (worker_threads != 0 && scheduler.worker_threads != 0) {
    return Status::InvalidArgument(
        "StreamServerOptions: both the deprecated worker_threads shim "
        "and scheduler.worker_threads are set; set exactly one "
        "(migrate to scheduler.worker_threads)");
  }
  DT_RETURN_IF_ERROR(EffectiveScheduler().Validate());
  if (memory_budget_bytes != 0 &&
      memory_budget_bytes < EngineConfig::kMinMemoryBudgetBytes) {
    return Status::InvalidArgument(
        "StreamServerOptions: memory_budget_bytes must be 0 (unbounded) "
        "or at least 64 KiB (the split across sessions must leave each "
        "a workable share)");
  }
  return Status::OK();
}

#pragma GCC diagnostic pop

}  // namespace datatriage::engine
