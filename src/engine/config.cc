#include "src/engine/config.h"

namespace datatriage::engine {

Status EngineConfig::Validate() const {
  if (queue_capacity == 0) {
    return Status::InvalidArgument(
        "EngineConfig: queue_capacity must be positive (a zero-slot "
        "triage queue could never buffer an arrival)");
  }
  if (drop_policy == triage::DropPolicyKind::kSynergistic) {
    if (strategy == triage::SheddingStrategy::kDropOnly) {
      return Status::InvalidArgument(
          "EngineConfig: the synergistic drop policy consults the "
          "dropped-tuple synopses and requires a synopsizing strategy "
          "(data_triage or summarize_only), not drop_only");
    }
    if (synergistic_candidates == 0) {
      return Status::InvalidArgument(
          "EngineConfig: synergistic_candidates must be positive (the "
          "synergistic policy samples that many victim candidates per "
          "eviction, paper Sec. 8.1)");
    }
  }
  if (vectorized_min_rows > 0 && !vectorized_exec) {
    return Status::InvalidArgument(
        "EngineConfig: vectorized_min_rows only thresholds the "
        "vectorized executor; set vectorized_exec or drop the "
        "threshold");
  }
  if (memory_budget_bytes != 0 &&
      memory_budget_bytes < kMinMemoryBudgetBytes) {
    return Status::InvalidArgument(
        "EngineConfig: memory_budget_bytes must be 0 (unbounded) or at "
        "least 64 KiB (a smaller budget would evict every window as it "
        "forms, degenerating to summarize-only)");
  }
  return Status::OK();
}

Status StreamServerOptions::Validate() const {
  if (task_queue_capacity == 0) {
    return Status::InvalidArgument(
        "StreamServerOptions: task_queue_capacity must be positive (a "
        "zero-slot task queue could never hand a worker any work)");
  }
  if (worker_threads > 256) {
    return Status::InvalidArgument(
        "StreamServerOptions: worker_threads must be at most 256 (one "
        "thread per session is the useful maximum; the pool is clamped "
        "to the session count anyway)");
  }
  if (memory_budget_bytes != 0 &&
      memory_budget_bytes < EngineConfig::kMinMemoryBudgetBytes) {
    return Status::InvalidArgument(
        "StreamServerOptions: memory_budget_bytes must be 0 (unbounded) "
        "or at least 64 KiB (the split across sessions must leave each "
        "a workable share)");
  }
  return Status::OK();
}

}  // namespace datatriage::engine
