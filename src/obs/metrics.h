#ifndef DATATRIAGE_OBS_METRICS_H_
#define DATATRIAGE_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace datatriage::obs {

/// Monotonically increasing event count (tuples dropped, windows emitted,
/// work units charged, ...).
class Counter {
 public:
  void Add(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

  /// Overwrites the count with an absolute value. Snapshot restore only
  /// (DESIGN.md §14): a restored session's instruments must resume from
  /// the donor's totals, not re-accumulate from zero.
  void Restore(int64_t value) { value_ = value; }

 private:
  int64_t value_ = 0;
};

/// Point-in-time level (queue depth, accumulated virtual seconds). The
/// gauge remembers its high-watermark: `max()` is the largest value ever
/// set, which is how the engine reports queue-depth high-watermarks.
class Gauge {
 public:
  void Set(double value) {
    value_ = value;
    if (value > max_) max_ = value;
  }
  void Add(double delta) { Set(value_ + delta); }
  double value() const { return value_; }
  double max() const { return max_; }

  /// Overwrites value and high-watermark. Snapshot restore only.
  void Restore(double value, double max) {
    value_ = value;
    max_ = max;
  }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bucket histogram: bucket upper bounds are chosen at registration
/// and never change, so exports are schema-stable across runs. An implicit
/// overflow bucket catches observations above the last bound.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; bucket i counts
  /// observations v with v <= upper_bounds[i] (first matching bucket).
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Smallest / largest observation; 0 when count() == 0.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// bucket_counts().size() == upper_bounds().size() + 1; the final entry
  /// is the overflow bucket.
  const std::vector<int64_t>& bucket_counts() const {
    return bucket_counts_;
  }

  /// Overwrites the whole distribution. Snapshot restore only. When
  /// `count` is 0 the raw min_/max_ stay at their ±inf defaults so the
  /// accessors keep returning 0, matching a never-observed histogram.
  void Restore(int64_t count, double sum, double min, double max,
               std::vector<int64_t> bucket_counts);

 private:
  std::vector<double> upper_bounds_;
  std::vector<int64_t> bucket_counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Named metrics registry. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime, so hot paths
/// resolve names once and then touch plain counters. Iteration is in
/// lexicographic name order, which keeps exports deterministic.
///
/// The registry is engine-local and driven entirely by the engine's
/// virtual clock — it never reads wall-clock time, so identical runs
/// produce identical metrics (the one exception: the server.worker.*
/// instruments the StreamServer flushes after a parallel run carry
/// wall-clock busy-seconds; see DESIGN.md Sec. 11).
///
/// Threading discipline: registries and their instruments are NOT
/// thread-safe and are deliberately left lock-free-single-writer. Each
/// registry has exactly one writing thread at a time — a session's
/// registry is written by the worker that owns the session (or the
/// pushing thread in serial mode), the plane's registry by the ingest
/// thread, and the worker pool keeps its own worker-local counters that
/// the server folds in only after the Finish barrier, when everything is
/// single-threaded again. Readers (snapshots, JSON export) run after
/// that barrier too.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// The bounds of an existing histogram win; callers re-registering a
  /// name must pass identical bounds (checked).
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds);

  void ForEachCounter(
      const std::function<void(const std::string&, const Counter&)>& fn)
      const;
  void ForEachGauge(
      const std::function<void(const std::string&, const Gauge&)>& fn)
      const;
  void ForEachHistogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// Snapshot of every counter, keyed by name.
  std::map<std::string, int64_t> CounterTotals() const;
  /// Snapshot of every gauge's high-watermark, keyed by name.
  std::map<std::string, double> GaugeMaxima() const;

 private:
  // std::map: stable nodes (pointer validity) + ordered iteration
  // (deterministic export).
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

}  // namespace datatriage::obs

#endif  // DATATRIAGE_OBS_METRICS_H_
