#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/logging.h"

namespace datatriage::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      bucket_counts_(upper_bounds_.size() + 1, 0) {
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    DT_CHECK(upper_bounds_[i - 1] < upper_bounds_[i])
        << "histogram bounds must be strictly increasing";
  }
}

void Histogram::Observe(double value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  const auto it = std::lower_bound(upper_bounds_.begin(),
                                   upper_bounds_.end(), value);
  ++bucket_counts_[static_cast<size_t>(it - upper_bounds_.begin())];
}

void Histogram::Restore(int64_t count, double sum, double min, double max,
                        std::vector<int64_t> bucket_counts) {
  DT_CHECK(bucket_counts.size() == upper_bounds_.size() + 1)
      << "histogram restored with mismatched bucket count";
  count_ = count;
  sum_ = sum;
  if (count_ > 0) {
    min_ = min;
    max_ = max;
  } else {
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  }
  bucket_counts_ = std::move(bucket_counts);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter()).first;
  }
  return &it->second;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge()).first;
  }
  return &it->second;
}

Histogram* MetricsRegistry::GetHistogram(
    std::string_view name, std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  } else {
    DT_CHECK(it->second->upper_bounds() == upper_bounds)
        << "histogram '" << std::string(name)
        << "' re-registered with different bounds";
  }
  return it->second.get();
}

void MetricsRegistry::ForEachCounter(
    const std::function<void(const std::string&, const Counter&)>& fn)
    const {
  for (const auto& [name, counter] : counters_) fn(name, counter);
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const std::string&, const Gauge&)>& fn)
    const {
  for (const auto& [name, gauge] : gauges_) fn(name, gauge);
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  for (const auto& [name, histogram] : histograms_) fn(name, *histogram);
}

std::map<std::string, int64_t> MetricsRegistry::CounterTotals() const {
  std::map<std::string, int64_t> totals;
  for (const auto& [name, counter] : counters_) {
    totals.emplace(name, counter.value());
  }
  return totals;
}

std::map<std::string, double> MetricsRegistry::GaugeMaxima() const {
  std::map<std::string, double> maxima;
  for (const auto& [name, gauge] : gauges_) {
    maxima.emplace(name, gauge.max());
  }
  return maxima;
}

}  // namespace datatriage::obs
