#include "src/obs/trace.h"

namespace datatriage::obs {

void WindowTraceRecorder::Record(WindowTraceRecord record) {
  ++total_recorded_;
  if (capacity_ > 0 && records_.size() >= capacity_) {
    records_.erase(records_.begin());
  }
  records_.push_back(std::move(record));
}

}  // namespace datatriage::obs
