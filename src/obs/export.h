#ifndef DATATRIAGE_OBS_EXPORT_H_
#define DATATRIAGE_OBS_EXPORT_H_

#include <string>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace datatriage::obs {

/// Renders a registry (and optionally a per-window trace) as JSON with a
/// stable schema (DESIGN.md Sec. 9.3):
///
///   {
///     "schema_version": 1,
///     "counters":   { "<name>": <int>, ... },
///     "gauges":     { "<name>": {"value": <num>, "max": <num>}, ... },
///     "histograms": { "<name>": {"count": <int>, "sum": <num>,
///                                "min": <num>, "max": <num>,
///                                "buckets": [{"le": <num>|"+inf",
///                                             "count": <int>}, ...]},
///                     ... },
///     "windows":    [ {"window": <int>, "deadline": <num>,
///                      "emit_time": <num>, "latency": <num>,
///                      "kept": <int>, "dropped": <int>,
///                      "force_shed": {"<stream>": <int>, ...},
///                      "exact_rows": <int>, "merged_rows": <int>,
///                      "exact_work_units": <int>,
///                      "shadow_work_units": <int>}, ... ]
///   }
///
/// Metric names are sorted and doubles use shortest round-trip
/// formatting, so two runs with identical metrics produce byte-identical
/// JSON. Pass trace == nullptr to omit the "windows" array.
std::string MetricsJson(const MetricsRegistry& registry,
                        const WindowTraceRecorder* trace);

/// Writes MetricsJson(...) to `path`, overwriting any existing file.
Status WriteMetricsJson(const MetricsRegistry& registry,
                        const WindowTraceRecorder* trace,
                        const std::string& path);

}  // namespace datatriage::obs

#endif  // DATATRIAGE_OBS_EXPORT_H_
