#include "src/obs/export.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "src/common/string_util.h"

namespace datatriage::obs {
namespace {

/// Shortest round-trip double formatting: deterministic and compact
/// ("2.0002", not "2.0002000000000000446"). Metrics values are finite by
/// construction; non-finite values would not be valid JSON.
void AppendDouble(std::string* out, double value) {
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out->append(buffer, result.ptr);
}

void AppendInt(std::string* out, int64_t value) {
  out->append(StringPrintf("%" PRId64, value));
}

/// Metric and stream names are engine-generated identifiers
/// ([a-z0-9._]); escape the JSON specials anyway so arbitrary stream
/// names cannot corrupt the document.
void AppendQuoted(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out->append(StringPrintf("\\u%04x", c));
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendHistogram(std::string* out, const Histogram& histogram) {
  out->append("{\"count\": ");
  AppendInt(out, histogram.count());
  out->append(", \"sum\": ");
  AppendDouble(out, histogram.sum());
  out->append(", \"min\": ");
  AppendDouble(out, histogram.min());
  out->append(", \"max\": ");
  AppendDouble(out, histogram.max());
  out->append(", \"buckets\": [");
  const std::vector<double>& bounds = histogram.upper_bounds();
  const std::vector<int64_t>& counts = histogram.bucket_counts();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("{\"le\": ");
    if (i < bounds.size()) {
      AppendDouble(out, bounds[i]);
    } else {
      out->append("\"+inf\"");
    }
    out->append(", \"count\": ");
    AppendInt(out, counts[i]);
    out->push_back('}');
  }
  out->append("]}");
}

void AppendWindowRecord(std::string* out,
                        const WindowTraceRecord& record) {
  out->append("    {\"window\": ");
  AppendInt(out, record.window);
  out->append(", \"deadline\": ");
  AppendDouble(out, record.deadline);
  out->append(", \"emit_time\": ");
  AppendDouble(out, record.emit_time);
  out->append(", \"latency\": ");
  AppendDouble(out, record.latency);
  out->append(", \"kept\": ");
  AppendInt(out, record.kept_tuples);
  out->append(", \"dropped\": ");
  AppendInt(out, record.dropped_tuples);
  out->append(", \"force_shed\": {");
  bool first = true;
  for (const auto& [stream, count] : record.force_shed_by_stream) {
    if (!first) out->append(", ");
    first = false;
    AppendQuoted(out, stream);
    out->append(": ");
    AppendInt(out, count);
  }
  out->append("}, \"exact_rows\": ");
  AppendInt(out, record.exact_rows);
  out->append(", \"merged_rows\": ");
  AppendInt(out, record.merged_rows);
  out->append(", \"exact_work_units\": ");
  AppendInt(out, record.exact_work_units);
  out->append(", \"shadow_work_units\": ");
  AppendInt(out, record.shadow_work_units);
  out->push_back('}');
}

}  // namespace

std::string MetricsJson(const MetricsRegistry& registry,
                        const WindowTraceRecorder* trace) {
  std::string out;
  out.append("{\n  \"schema_version\": 1,\n  \"counters\": {");
  bool first = true;
  registry.ForEachCounter([&](const std::string& name,
                              const Counter& counter) {
    if (!first) out.append(",");
    first = false;
    out.append("\n    ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendInt(&out, counter.value());
  });
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"gauges\": {");
  first = true;
  registry.ForEachGauge([&](const std::string& name, const Gauge& gauge) {
    if (!first) out.append(",");
    first = false;
    out.append("\n    ");
    AppendQuoted(&out, name);
    out.append(": {\"value\": ");
    AppendDouble(&out, gauge.value());
    out.append(", \"max\": ");
    AppendDouble(&out, gauge.max());
    out.push_back('}');
  });
  out.append(first ? "},\n" : "\n  },\n");

  out.append("  \"histograms\": {");
  first = true;
  registry.ForEachHistogram([&](const std::string& name,
                                const Histogram& histogram) {
    if (!first) out.append(",");
    first = false;
    out.append("\n    ");
    AppendQuoted(&out, name);
    out.append(": ");
    AppendHistogram(&out, histogram);
  });
  out.append(first ? "}" : "\n  }");

  if (trace != nullptr) {
    out.append(",\n  \"windows\": [");
    const std::vector<WindowTraceRecord>& records = trace->records();
    for (size_t i = 0; i < records.size(); ++i) {
      out.append(i > 0 ? ",\n" : "\n");
      AppendWindowRecord(&out, records[i]);
    }
    out.append(records.empty() ? "]" : "\n  ]");
  }
  out.append("\n}\n");
  return out;
}

Status WriteMetricsJson(const MetricsRegistry& registry,
                        const WindowTraceRecorder* trace,
                        const std::string& path) {
  const std::string json = MetricsJson(registry, trace);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace datatriage::obs
