#ifndef DATATRIAGE_OBS_TRACE_H_
#define DATATRIAGE_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/virtual_time.h"

namespace datatriage::obs {

/// One window emission, as seen from the engine's virtual clock. Together
/// the records of a run form the queue/drop/latency timeseries that an
/// adaptive controller (or a BENCH_*.json diff) consumes.
struct WindowTraceRecord {
  WindowId window = 0;
  /// The window's emission deadline (span end + latency budget).
  VirtualTime deadline = 0.0;
  /// Virtual time at which the result left the engine.
  VirtualTime emit_time = 0.0;
  /// emit_time - deadline: how far past its budget the window emitted.
  double latency = 0.0;

  int64_t kept_tuples = 0;
  int64_t dropped_tuples = 0;
  /// Queued window tuples the deadline force-shed, per stream (a subset
  /// of dropped_tuples; the rest were policy evictions or summarize-only
  /// bypass).
  std::map<std::string, int64_t> force_shed_by_stream;

  int64_t exact_rows = 0;
  int64_t merged_rows = 0;
  /// ExecStats::TotalWork of the exact plan for this window.
  int64_t exact_work_units = 0;
  /// OpStats::work of the shadow plan for this window (0 under drop-only).
  int64_t shadow_work_units = 0;
};

/// Append-only log of per-window trace records, in emission order.
/// Recording is O(1) amortized and allocation-light; a production
/// deployment would cap or down-sample it, which `set_capacity` models:
/// once `capacity` records exist, the oldest are discarded (the counters
/// in MetricsRegistry keep whole-run totals regardless).
class WindowTraceRecorder {
 public:
  void Record(WindowTraceRecord record);

  const std::vector<WindowTraceRecord>& records() const {
    return records_;
  }
  /// Total records ever recorded (>= records().size() once capped).
  int64_t total_recorded() const { return total_recorded_; }

  /// 0 (the default) means unbounded.
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  /// Overwrites the log wholesale. Snapshot restore only (DESIGN.md §14).
  void Restore(std::vector<WindowTraceRecord> records,
               int64_t total_recorded) {
    records_ = std::move(records);
    total_recorded_ = total_recorded;
  }

 private:
  std::vector<WindowTraceRecord> records_;
  size_t capacity_ = 0;
  int64_t total_recorded_ = 0;
};

}  // namespace datatriage::obs

#endif  // DATATRIAGE_OBS_TRACE_H_
