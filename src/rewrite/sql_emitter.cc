#include "src/rewrite/sql_emitter.h"

#include <set>

#include "src/common/string_util.h"

namespace datatriage::rewrite {

namespace {

using plan::BoundExpr;
using plan::LogicalPlan;
using plan::PlanPtr;

/// Renders a bound expression as SQL against `schema`'s column names.
/// Names produced by the binder have the form "alias.col", which parses
/// back as a qualified reference.
std::string ExprToSql(const BoundExpr& expr, const Schema& schema) {
  switch (expr.kind()) {
    case BoundExpr::Kind::kColumn:
      return schema.field(expr.column_index()).name;
    case BoundExpr::Kind::kLiteral:
      return expr.literal().ToString();
    case BoundExpr::Kind::kUnary:
      if (expr.unary_op() == sql::UnaryOp::kNot) {
        return "NOT (" + ExprToSql(*expr.lhs(), schema) + ")";
      }
      return "-(" + ExprToSql(*expr.lhs(), schema) + ")";
    case BoundExpr::Kind::kBinary:
      return "(" + ExprToSql(*expr.lhs(), schema) + " " +
             std::string(sql::BinaryOpToString(expr.binary_op())) + " " +
             ExprToSql(*expr.rhs(), schema) + ")";
  }
  return "?";
}

/// Substream name for one channel of a stream (paper Sec. 4.3 naming).
std::string SubstreamName(const std::string& stream,
                          plan::Channel channel) {
  return stream + (channel == plan::Channel::kKept ? "_kept" : "_dropped");
}

/// Short alias for a synopsis stream, as used in paper Fig. 5
/// (R_kept -> r_k, R_dropped -> r_d).
std::string SynopsisAlias(const std::string& stream,
                          plan::Channel channel) {
  return stream + (channel == plan::Channel::kKept ? "_k" : "_d");
}

/// Collects the WHERE-clause conjuncts of a binder-shaped (left-deep) SPJ
/// plan, rendered against the combined FROM schema, plus the scans in
/// FROM order.
struct FlattenedSpj {
  std::vector<const LogicalPlan*> scans;  // FROM order
  std::vector<std::string> conjuncts;     // rendered predicates
};

Status Flatten(const LogicalPlan& node, const Schema& combined,
               size_t right_offset, FlattenedSpj* out) {
  switch (node.kind()) {
    case LogicalPlan::Kind::kStreamScan:
      out->scans.push_back(&node);
      return Status::OK();
    case LogicalPlan::Kind::kFilter: {
      const LogicalPlan& child = *node.child(0);
      // A filter above a scan references the scan's local columns; remap
      // them onto the combined schema via the scan's offset (= the
      // position where this subtree starts).
      if (child.kind() == LogicalPlan::Kind::kStreamScan ||
          child.kind() == LogicalPlan::Kind::kFilter) {
        DT_RETURN_IF_ERROR(Flatten(child, combined, right_offset, out));
        std::vector<size_t> remap(node.schema().num_fields());
        // The filter subtree starts at the offset where its leftmost
        // scan begins; for binder plans a scan-filter chain sits at a
        // single offset.
        size_t base = right_offset;
        for (size_t i = 0; i < remap.size(); ++i) remap[i] = base + i;
        out->conjuncts.push_back(
            ExprToSql(*node.predicate()->RemapColumns(remap), combined));
        return Status::OK();
      }
      // Filter above the join tree: columns already align with the
      // combined schema.
      DT_RETURN_IF_ERROR(Flatten(child, combined, right_offset, out));
      out->conjuncts.push_back(ExprToSql(*node.predicate(), combined));
      return Status::OK();
    }
    case LogicalPlan::Kind::kJoin: {
      const LogicalPlan& left = *node.child(0);
      const LogicalPlan& right = *node.child(1);
      DT_RETURN_IF_ERROR(Flatten(left, combined, right_offset, out));
      const size_t offset = left.schema().num_fields();
      DT_RETURN_IF_ERROR(Flatten(right, combined, offset, out));
      for (const auto& [l, r] : node.join_keys()) {
        out->conjuncts.push_back(combined.field(l).name + " = " +
                                 combined.field(offset + r).name);
      }
      if (node.predicate() != nullptr) {
        out->conjuncts.push_back(ExprToSql(*node.predicate(), combined));
      }
      return Status::OK();
    }
    default:
      return Status::Unimplemented(
          "SQL emission supports binder-shaped select-project-join cores "
          "only");
  }
}

/// Renders the WINDOW clause for the given aliases, including the slide
/// when it differs from the range.
std::string WindowClause(const plan::BoundQuery& query,
                         const std::vector<std::string>& aliases,
                         const std::vector<std::string>& streams) {
  std::string out = "WINDOW ";
  for (size_t i = 0; i < aliases.size(); ++i) {
    if (i > 0) out += ", ";
    const double range = query.window_seconds.at(streams[i]);
    auto slide_it = query.window_slide_seconds.find(streams[i]);
    const double slide =
        slide_it == query.window_slide_seconds.end() ? range
                                                     : slide_it->second;
    if (slide != range) {
      out += aliases[i] + StringPrintf(" ['%g seconds', '%g seconds']",
                                       range, slide);
    } else {
      out += aliases[i] + StringPrintf(" ['%g seconds']", range);
    }
  }
  return out;
}

/// Renders the dropped plan as nested synopsis-UDF calls (paper Fig. 5).
Result<std::string> PlanToSynopsisExpr(const LogicalPlan& node) {
  switch (node.kind()) {
    case LogicalPlan::Kind::kEmpty:
      return std::string("empty_synopsis()");
    case LogicalPlan::Kind::kStreamScan:
      return SynopsisAlias(node.stream(), node.channel()) + ".syn";
    case LogicalPlan::Kind::kUnionAll: {
      DT_ASSIGN_OR_RETURN(std::string left,
                          PlanToSynopsisExpr(*node.child(0)));
      DT_ASSIGN_OR_RETURN(std::string right,
                          PlanToSynopsisExpr(*node.child(1)));
      return "union_all(" + left + ", " + right + ")";
    }
    case LogicalPlan::Kind::kJoin: {
      DT_ASSIGN_OR_RETURN(std::string left,
                          PlanToSynopsisExpr(*node.child(0)));
      DT_ASSIGN_OR_RETURN(std::string right,
                          PlanToSynopsisExpr(*node.child(1)));
      std::string left_cols, right_cols;
      for (size_t i = 0; i < node.join_keys().size(); ++i) {
        if (i > 0) {
          left_cols += ", ";
          right_cols += ", ";
        }
        left_cols +=
            node.child(0)->schema().field(node.join_keys()[i].first).name;
        right_cols += node.child(1)
                          ->schema()
                          .field(node.join_keys()[i].second)
                          .name;
      }
      if (node.join_keys().empty()) {
        return "cross_product(" + left + ", " + right + ")";
      }
      std::string joined = "equijoin(" + left + ", '" + left_cols + "', " +
                           right + ", '" + right_cols + "')";
      if (node.predicate() != nullptr) {
        joined = "filter(" + joined + ", '" +
                 ExprToSql(*node.predicate(), node.schema()) + "')";
      }
      return joined;
    }
    case LogicalPlan::Kind::kProject: {
      DT_ASSIGN_OR_RETURN(std::string input,
                          PlanToSynopsisExpr(*node.child(0)));
      std::string cols;
      for (size_t i = 0; i < node.projection().size(); ++i) {
        if (i > 0) cols += ", ";
        cols += node.child(0)->schema().field(node.projection()[i]).name;
      }
      return "project(" + input + ", '" + cols + "')";
    }
    case LogicalPlan::Kind::kFilter: {
      DT_ASSIGN_OR_RETURN(std::string input,
                          PlanToSynopsisExpr(*node.child(0)));
      return "filter(" + input + ", '" +
             ExprToSql(*node.predicate(), node.schema()) + "')";
    }
    default:
      return Status::Unimplemented(
          "no synopsis UDF rendering for this operator");
  }
}

/// Distinct (stream, channel) scans below a plan, in first-visit order.
void CollectScans(const LogicalPlan& node,
                  std::vector<const LogicalPlan*>* scans,
                  std::set<std::pair<std::string, int>>* seen) {
  if (node.kind() == LogicalPlan::Kind::kStreamScan) {
    auto key = std::make_pair(node.stream(),
                              static_cast<int>(node.channel()));
    if (seen->insert(key).second) scans->push_back(&node);
  }
  for (const PlanPtr& child : node.children()) {
    CollectScans(*child, scans, seen);
  }
}

}  // namespace

Result<std::string> EmitSubstreamDdl(const Catalog& catalog,
                                     const TriagedQuery& query) {
  std::string out;
  std::set<std::string> emitted;
  for (const std::string& stream : query.query.from_streams) {
    if (!emitted.insert(stream).second) continue;
    DT_ASSIGN_OR_RETURN(StreamDef def, catalog.GetStream(stream));
    std::string columns;
    for (size_t i = 0; i < def.schema.num_fields(); ++i) {
      if (i > 0) columns += ", ";
      columns += def.schema.field(i).name;
      columns += ' ';
      columns += FieldTypeToString(def.schema.field(i).type);
    }
    out += "CREATE STREAM " + stream + "_kept (" + columns + ");\n";
    out += "CREATE STREAM " + stream + "_dropped (" + columns + ");\n";
    // Synopsis streams carry an opaque Synopsis payload plus the
    // timestamp range summarized (paper Sec. 5.1). The Synopsis type is
    // object-relational and outside this dialect's scalar types, so
    // these two lines are documentation of the architecture rather than
    // statements our parser accepts.
    out += "CREATE STREAM " + def.KeptSynopsisName() +
           " (syn SYNOPSIS, earliest TIMESTAMP, latest TIMESTAMP);\n";
    out += "CREATE STREAM " + def.DroppedSynopsisName() +
           " (syn SYNOPSIS, earliest TIMESTAMP, latest TIMESTAMP);\n";
  }
  return out;
}

Result<std::string> EmitKeptViewSql(const TriagedQuery& query) {
  const plan::BoundQuery& bound = query.query;
  const Schema& combined = bound.spj_core->schema();

  FlattenedSpj flattened;
  DT_RETURN_IF_ERROR(
      Flatten(*query.kept_plan, combined, 0, &flattened));
  if (flattened.scans.size() != bound.from_streams.size()) {
    return Status::Internal("kept plan scan count does not match FROM");
  }

  // SELECT list.
  std::string select_list;
  if (bound.has_aggregate) {
    std::set<size_t> listed;
    for (const plan::GroupBySpec& g : bound.group_by) {
      if (!select_list.empty()) select_list += ", ";
      select_list += combined.field(g.input_index).name + " AS " +
                     g.output_name;
      listed.insert(g.input_index);
    }
    for (const plan::AggregateSpec& a : bound.aggregates) {
      if (!select_list.empty()) select_list += ", ";
      select_list += std::string(sql::AggFuncToString(a.func)) + "(" +
                     (a.count_star ? "*"
                                   : combined.field(a.input_index).name) +
                     ") AS " + a.output_name;
    }
  } else if (bound.computed_projection) {
    for (size_t i = 0; i < bound.projection_exprs.size(); ++i) {
      if (i > 0) select_list += ", ";
      select_list += ExprToSql(*bound.projection_exprs[i], combined) +
                     " AS " + bound.projection_names[i];
    }
  } else {
    for (size_t i = 0; i < bound.projection.size(); ++i) {
      if (i > 0) select_list += ", ";
      select_list += combined.field(bound.projection[i]).name + " AS " +
                     bound.projection_names[i];
    }
  }

  // FROM list: substreams with the original aliases, so the qualified
  // column names in the predicates resolve unchanged.
  std::string from_list;
  for (size_t i = 0; i < flattened.scans.size(); ++i) {
    if (i > 0) from_list += ", ";
    from_list += SubstreamName(flattened.scans[i]->stream(),
                               plan::Channel::kKept) +
                 " " + bound.from_aliases[i];
  }

  std::string sql = "CREATE VIEW q_kept AS\nSELECT " + select_list +
                    "\nFROM " + from_list;
  if (!flattened.conjuncts.empty()) {
    sql += "\nWHERE " + JoinStrings(flattened.conjuncts, " AND ");
  }
  if (bound.has_aggregate) {
    sql += "\nGROUP BY ";
    for (size_t i = 0; i < bound.group_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += combined.field(bound.group_by[i].input_index).name;
    }
    if (bound.having != nullptr) {
      sql +=
          "\nHAVING " + ExprToSql(*bound.having, bound.plan->schema());
    }
  }
  if (!bound.sort_keys.empty()) {
    sql += "\nORDER BY ";
    for (size_t i = 0; i < bound.sort_keys.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += bound.plan->schema().field(bound.sort_keys[i].first).name;
      if (bound.sort_keys[i].second) sql += " DESC";
    }
  }
  if (bound.limit >= 0) {
    sql += StringPrintf("\nLIMIT %lld", (long long)bound.limit);
  }
  sql += "\n" +
         WindowClause(bound, bound.from_aliases, bound.from_streams) +
         ";\n";
  return sql;
}

Result<std::string> EmitShadowViewSql(const TriagedQuery& query) {
  DT_ASSIGN_OR_RETURN(std::string expr,
                      PlanToSynopsisExpr(*query.dropped_plan));

  // FROM list: the synopsis streams the expression references, with the
  // paper's r_k / r_d aliases; one synopsis tuple per window.
  std::vector<const LogicalPlan*> scans;
  std::set<std::pair<std::string, int>> seen;
  CollectScans(*query.dropped_plan, &scans, &seen);
  std::string from_list;
  std::vector<std::string> aliases, streams;
  for (size_t i = 0; i < scans.size(); ++i) {
    if (i > 0) from_list += ", ";
    const std::string suffix =
        scans[i]->channel() == plan::Channel::kKept ? "_kept_syn"
                                                    : "_dropped_syn";
    from_list += scans[i]->stream() + suffix + " " +
                 SynopsisAlias(scans[i]->stream(), scans[i]->channel());
    aliases.push_back(
        SynopsisAlias(scans[i]->stream(), scans[i]->channel()));
    streams.push_back(scans[i]->stream());
  }

  const std::string window = WindowClause(query.query, aliases, streams);

  return "CREATE VIEW q_dropped AS\nSELECT " + expr +
         " AS result\nFROM " + from_list + "\n" + window + ";\n";
}

Result<std::string> EmitRewrittenScript(const Catalog& catalog,
                                        const TriagedQuery& query) {
  DT_ASSIGN_OR_RETURN(std::string ddl, EmitSubstreamDdl(catalog, query));
  DT_ASSIGN_OR_RETURN(std::string kept, EmitKeptViewSql(query));
  DT_ASSIGN_OR_RETURN(std::string shadow, EmitShadowViewSql(query));
  return "-- Substreams and synopsis streams (paper Sec. 4.3 / 5.1)\n" +
         ddl + "\n-- Exact results over kept tuples (paper Fig. 4)\n" +
         kept +
         "\n-- Estimate of dropped results over synopses (paper "
         "Fig. 5)\n" +
         shadow;
}

}  // namespace datatriage::rewrite
