#include "src/rewrite/differential.h"

namespace datatriage::rewrite {

namespace {

using plan::LogicalPlan;
using plan::PlanPtr;

bool IsEmpty(const PlanPtr& p) {
  return p->kind() == LogicalPlan::Kind::kEmpty;
}

/// UNION ALL with the empty relation as algebraic unit.
Result<PlanPtr> MakeUnion(PlanPtr a, PlanPtr b) {
  if (IsEmpty(a)) return b;
  if (IsEmpty(b)) return a;
  return LogicalPlan::UnionAll(std::move(a), std::move(b));
}

/// Multiset monus with empty propagation (∅ − X = ∅, X − ∅ = X).
Result<PlanPtr> MakeDiff(PlanPtr a, PlanPtr b) {
  if (IsEmpty(a)) return a;
  if (IsEmpty(b)) return a;
  return LogicalPlan::SetDifference(std::move(a), std::move(b));
}

/// Join with empty propagation (∅ ⋈ X = ∅ over the joined schema).
Result<PlanPtr> MakeJoin(PlanPtr a, PlanPtr b,
                         const std::vector<std::pair<size_t, size_t>>& keys,
                         const plan::BoundExprPtr& residual) {
  if (IsEmpty(a) || IsEmpty(b)) {
    DT_ASSIGN_OR_RETURN(Schema joined,
                        a->schema().Concat(b->schema()));
    return LogicalPlan::Empty(std::move(joined));
  }
  return LogicalPlan::Join(std::move(a), std::move(b), keys, residual);
}

Result<PlanPtr> MakeFilter(PlanPtr input,
                           const plan::BoundExprPtr& predicate) {
  if (IsEmpty(input)) return input;
  return LogicalPlan::Filter(std::move(input), predicate);
}

Result<PlanPtr> MakeProject(PlanPtr input,
                            const std::vector<size_t>& indices,
                            const Schema& output_schema) {
  std::vector<std::string> names;
  names.reserve(output_schema.num_fields());
  for (const Field& f : output_schema.fields()) names.push_back(f.name);
  if (IsEmpty(input)) return LogicalPlan::Empty(output_schema);
  return LogicalPlan::Project(std::move(input), indices, std::move(names));
}

Result<DifferentialPlan> Rewrite(const PlanPtr& q) {
  switch (q->kind()) {
    case LogicalPlan::Kind::kEmpty: {
      DifferentialPlan d;
      d.noisy = q;
      d.plus = q;
      d.minus = q;
      return d;
    }
    case LogicalPlan::Kind::kStreamScan: {
      if (q->channel() != plan::Channel::kBase) {
        return Status::InvalidArgument(
            "DifferentialRewrite expects base-channel scans; scan of '" +
            q->stream() + "' is already channel-tagged");
      }
      DifferentialPlan d;
      d.noisy = LogicalPlan::StreamScan(q->stream(), plan::Channel::kKept,
                                        q->schema());
      // Streams only lose tuples to the triage queue, so the added
      // relation of a base stream is empty (paper Sec. 4.2, footnote 1).
      d.plus = LogicalPlan::Empty(q->schema());
      d.minus = LogicalPlan::StreamScan(
          q->stream(), plan::Channel::kDropped, q->schema());
      return d;
    }
    case LogicalPlan::Kind::kFilter: {
      // Eq. 4: selection applies to all three channels.
      DT_ASSIGN_OR_RETURN(DifferentialPlan s, Rewrite(q->child(0)));
      DifferentialPlan d;
      DT_ASSIGN_OR_RETURN(d.noisy, MakeFilter(s.noisy, q->predicate()));
      DT_ASSIGN_OR_RETURN(d.plus, MakeFilter(s.plus, q->predicate()));
      DT_ASSIGN_OR_RETURN(d.minus, MakeFilter(s.minus, q->predicate()));
      return d;
    }
    case LogicalPlan::Kind::kProject: {
      // Eq. 5: multiset projection applies channel-wise.
      DT_ASSIGN_OR_RETURN(DifferentialPlan s, Rewrite(q->child(0)));
      DifferentialPlan d;
      DT_ASSIGN_OR_RETURN(
          d.noisy, MakeProject(s.noisy, q->projection(), q->schema()));
      DT_ASSIGN_OR_RETURN(
          d.plus, MakeProject(s.plus, q->projection(), q->schema()));
      DT_ASSIGN_OR_RETURN(
          d.minus, MakeProject(s.minus, q->projection(), q->schema()));
      return d;
    }
    case LogicalPlan::Kind::kCompute: {
      // A per-tuple map distributes channel-wise just like π.
      DT_ASSIGN_OR_RETURN(DifferentialPlan s, Rewrite(q->child(0)));
      std::vector<std::string> names;
      for (const Field& f : q->schema().fields()) names.push_back(f.name);
      auto apply = [&](PlanPtr input) -> Result<PlanPtr> {
        if (IsEmpty(input)) return LogicalPlan::Empty(q->schema());
        return LogicalPlan::Compute(std::move(input), q->compute_exprs(),
                                    names);
      };
      DifferentialPlan d;
      DT_ASSIGN_OR_RETURN(d.noisy, apply(s.noisy));
      DT_ASSIGN_OR_RETURN(d.plus, apply(s.plus));
      DT_ASSIGN_OR_RETURN(d.minus, apply(s.minus));
      return d;
    }
    case LogicalPlan::Kind::kJoin: {
      // Eq. 8 (join and cross product share the derivation, Sec. 3.2.4),
      // with the first two minus/plus terms factored through UNION ALL so
      // subtrees are shared:
      //   N = S_N ⋈ T_N
      //   P = S_P ⋈ T_N  +  (S_N − S_P) ⋈ T_P
      //   M = S_M ⋈ ((T_N − T_P) + T_M)  +  (S_N − S_P) ⋈ T_M
      DT_ASSIGN_OR_RETURN(DifferentialPlan s, Rewrite(q->child(0)));
      DT_ASSIGN_OR_RETURN(DifferentialPlan t, Rewrite(q->child(1)));
      const auto& keys = q->join_keys();
      const plan::BoundExprPtr& residual = q->predicate();

      DifferentialPlan d;
      DT_ASSIGN_OR_RETURN(d.noisy,
                          MakeJoin(s.noisy, t.noisy, keys, residual));

      DT_ASSIGN_OR_RETURN(PlanPtr sn_minus_sp, MakeDiff(s.noisy, s.plus));
      DT_ASSIGN_OR_RETURN(PlanPtr p1,
                          MakeJoin(s.plus, t.noisy, keys, residual));
      DT_ASSIGN_OR_RETURN(PlanPtr p2,
                          MakeJoin(sn_minus_sp, t.plus, keys, residual));
      DT_ASSIGN_OR_RETURN(d.plus, MakeUnion(std::move(p1), std::move(p2)));

      DT_ASSIGN_OR_RETURN(PlanPtr tn_minus_tp, MakeDiff(t.noisy, t.plus));
      DT_ASSIGN_OR_RETURN(PlanPtr t_all,
                          MakeUnion(tn_minus_tp, t.minus));
      DT_ASSIGN_OR_RETURN(PlanPtr m1,
                          MakeJoin(s.minus, t_all, keys, residual));
      DT_ASSIGN_OR_RETURN(PlanPtr m2,
                          MakeJoin(sn_minus_sp, t.minus, keys, residual));
      DT_ASSIGN_OR_RETURN(d.minus, MakeUnion(std::move(m1), std::move(m2)));
      return d;
    }
    case LogicalPlan::Kind::kUnionAll: {
      DT_ASSIGN_OR_RETURN(DifferentialPlan s, Rewrite(q->child(0)));
      DT_ASSIGN_OR_RETURN(DifferentialPlan t, Rewrite(q->child(1)));
      DifferentialPlan d;
      DT_ASSIGN_OR_RETURN(d.noisy, MakeUnion(s.noisy, t.noisy));
      DT_ASSIGN_OR_RETURN(d.plus, MakeUnion(s.plus, t.plus));
      DT_ASSIGN_OR_RETURN(d.minus, MakeUnion(s.minus, t.minus));
      return d;
    }
    case LogicalPlan::Kind::kSetDifference: {
      // The paper's Eq. 9 is exact under set semantics but NOT for
      // multisets with duplicate multiplicities (counterexample: per
      // value, S_N=2, S_M=3, T_M=2 reconstructs 1 instead of 3). We use a
      // multiset-exact derivation instead: reconstruct both originals
      //   S_all = (S_N + S_M) − S_P      (valid because S_P ⊆ S_N,
      //                                   an invariant of this rewrite)
      // take the true difference R_true = S_all − T_all, and emit the
      // disjoint deltas against the noisy result
      //   R− = R_true − R_N,   R+ = R_N − R_true,
      // which satisfy R_true = R_N − R+ + R− exactly and keep R+ ⊆ R_N,
      // preserving the invariant the join rewrite relies on. See
      // DESIGN.md ("Deviations from the paper").
      DT_ASSIGN_OR_RETURN(DifferentialPlan s, Rewrite(q->child(0)));
      DT_ASSIGN_OR_RETURN(DifferentialPlan t, Rewrite(q->child(1)));
      DifferentialPlan d;
      DT_ASSIGN_OR_RETURN(d.noisy, MakeDiff(s.noisy, t.noisy));

      DT_ASSIGN_OR_RETURN(PlanPtr s_reconstructed,
                          MakeUnion(s.noisy, s.minus));
      DT_ASSIGN_OR_RETURN(PlanPtr s_all,
                          MakeDiff(std::move(s_reconstructed), s.plus));
      DT_ASSIGN_OR_RETURN(PlanPtr t_reconstructed,
                          MakeUnion(t.noisy, t.minus));
      DT_ASSIGN_OR_RETURN(PlanPtr t_all,
                          MakeDiff(std::move(t_reconstructed), t.plus));
      DT_ASSIGN_OR_RETURN(PlanPtr r_true,
                          MakeDiff(std::move(s_all), std::move(t_all)));

      DT_ASSIGN_OR_RETURN(d.minus, MakeDiff(r_true, d.noisy));
      DT_ASSIGN_OR_RETURN(d.plus, MakeDiff(d.noisy, r_true));
      return d;
    }
    case LogicalPlan::Kind::kAggregate:
      return Status::Unimplemented(
          "the differential rewrite covers the SPJ core only; aggregates "
          "are merged outside the rewrite (paper Sec. 8.1)");
    case LogicalPlan::Kind::kPattern:
      return Status::Unimplemented(
          "pattern plans bypass the differential rewrite: a dropped tuple "
          "invalidates whole match subsequences, which synopses cannot "
          "represent (DESIGN.md §17)");
  }
  return Status::Internal("unhandled plan kind in differential rewrite");
}

}  // namespace

Result<DifferentialPlan> DifferentialRewrite(const plan::PlanPtr& query) {
  if (query == nullptr) {
    return Status::InvalidArgument("null query plan");
  }
  return Rewrite(query);
}

Result<plan::PlanPtr> RetargetScans(const plan::PlanPtr& query,
                                    plan::Channel channel) {
  if (query == nullptr) {
    return Status::InvalidArgument("null query plan");
  }
  switch (query->kind()) {
    case LogicalPlan::Kind::kEmpty:
      return query;
    case LogicalPlan::Kind::kStreamScan:
      return LogicalPlan::StreamScan(query->stream(), channel,
                                     query->schema());
    case LogicalPlan::Kind::kFilter: {
      DT_ASSIGN_OR_RETURN(PlanPtr child,
                          RetargetScans(query->child(0), channel));
      return LogicalPlan::Filter(std::move(child), query->predicate());
    }
    case LogicalPlan::Kind::kProject: {
      DT_ASSIGN_OR_RETURN(PlanPtr child,
                          RetargetScans(query->child(0), channel));
      std::vector<std::string> names;
      for (const Field& f : query->schema().fields()) {
        names.push_back(f.name);
      }
      return LogicalPlan::Project(std::move(child), query->projection(),
                                  std::move(names));
    }
    case LogicalPlan::Kind::kCompute: {
      DT_ASSIGN_OR_RETURN(PlanPtr child,
                          RetargetScans(query->child(0), channel));
      std::vector<std::string> names;
      for (const Field& f : query->schema().fields()) {
        names.push_back(f.name);
      }
      return LogicalPlan::Compute(std::move(child), query->compute_exprs(),
                                  std::move(names));
    }
    case LogicalPlan::Kind::kJoin: {
      DT_ASSIGN_OR_RETURN(PlanPtr left,
                          RetargetScans(query->child(0), channel));
      DT_ASSIGN_OR_RETURN(PlanPtr right,
                          RetargetScans(query->child(1), channel));
      return LogicalPlan::Join(std::move(left), std::move(right),
                               query->join_keys(), query->predicate());
    }
    case LogicalPlan::Kind::kUnionAll: {
      DT_ASSIGN_OR_RETURN(PlanPtr left,
                          RetargetScans(query->child(0), channel));
      DT_ASSIGN_OR_RETURN(PlanPtr right,
                          RetargetScans(query->child(1), channel));
      return LogicalPlan::UnionAll(std::move(left), std::move(right));
    }
    case LogicalPlan::Kind::kSetDifference: {
      DT_ASSIGN_OR_RETURN(PlanPtr left,
                          RetargetScans(query->child(0), channel));
      DT_ASSIGN_OR_RETURN(PlanPtr right,
                          RetargetScans(query->child(1), channel));
      return LogicalPlan::SetDifference(std::move(left), std::move(right));
    }
    case LogicalPlan::Kind::kAggregate: {
      DT_ASSIGN_OR_RETURN(PlanPtr child,
                          RetargetScans(query->child(0), channel));
      return LogicalPlan::Aggregate(std::move(child), query->group_by(),
                                    query->aggregates());
    }
    case LogicalPlan::Kind::kPattern: {
      DT_ASSIGN_OR_RETURN(PlanPtr child,
                          RetargetScans(query->child(0), channel));
      return LogicalPlan::Pattern(std::move(child), query->pattern_steps(),
                                  query->pattern_key_index(),
                                  query->pattern_within_seconds());
    }
  }
  return Status::Internal("unhandled plan kind in RetargetScans");
}

}  // namespace datatriage::rewrite
