#include "src/rewrite/data_triage_rewrite.h"

namespace datatriage::rewrite {

Result<TriagedQuery> RewriteForDataTriage(plan::BoundQuery query) {
  if (query.distinct) {
    return Status::Unimplemented(
        "SELECT DISTINCT is not supported by the Data Triage rewrite: the "
        "differential projection operator is multiset-only (paper "
        "Sec. 3.2.2 / 8.1)");
  }
  if (query.spj_core == nullptr) {
    return Status::InvalidArgument("bound query has no SPJ core");
  }
  if (query.is_pattern()) {
    // MATCH queries bypass the differential rewrite (DESIGN.md §17): a
    // dropped tuple invalidates whole match subsequences, which the
    // synopsis algebra cannot represent. The exact plan runs the pattern
    // over kept tuples; the shadow side is empty and its loss is
    // accounted for by the utility drop policy instead.
    TriagedQuery triaged;
    DT_ASSIGN_OR_RETURN(
        triaged.kept_plan,
        RetargetScans(query.pattern_node, plan::Channel::kKept));
    DT_ASSIGN_OR_RETURN(triaged.kept_output_plan,
                        RetargetScans(query.plan, plan::Channel::kKept));
    triaged.dropped_plan =
        plan::LogicalPlan::Empty(query.pattern_node->schema());
    triaged.plus_plan = plan::LogicalPlan::Empty(query.pattern_node->schema());
    triaged.plus_is_empty = true;
    triaged.query = std::move(query);
    return triaged;
  }
  TriagedQuery triaged;
  DT_ASSIGN_OR_RETURN(triaged.kept_plan,
                      RetargetScans(query.spj_core, plan::Channel::kKept));
  if (!query.has_aggregate) {
    DT_ASSIGN_OR_RETURN(
        triaged.kept_output_plan,
        RetargetScans(query.plan, plan::Channel::kKept));
  }
  DT_ASSIGN_OR_RETURN(DifferentialPlan differential,
                      DifferentialRewrite(query.spj_core));
  triaged.dropped_plan = differential.minus;
  triaged.plus_plan = differential.plus;
  triaged.plus_is_empty =
      differential.plus->kind() == plan::LogicalPlan::Kind::kEmpty;
  triaged.query = std::move(query);
  return triaged;
}

}  // namespace datatriage::rewrite
