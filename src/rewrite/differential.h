#ifndef DATATRIAGE_REWRITE_DIFFERENTIAL_H_
#define DATATRIAGE_REWRITE_DIFFERENTIAL_H_

#include "src/common/result.h"
#include "src/plan/logical_plan.h"

namespace datatriage::rewrite {

/// The differential triple of a relational query Q (paper Sec. 3): plans
/// computing Q_noisy (the result over surviving tuples), Q+ (tuples that
/// appear because inputs shrank — only non-empty below set difference),
/// and Q− (tuples that disappear). They satisfy the invariant of paper
/// Eq. 1:   Q = Q_noisy − Q+ + Q−   (multiset semantics).
struct DifferentialPlan {
  plan::PlanPtr noisy;
  plan::PlanPtr plus;
  plan::PlanPtr minus;
};

/// Rewrites `query` — whose leaves scan Channel::kBase — into its
/// differential form, recursively applying the operator definitions of
/// paper Sec. 3.2:
///
///   scan R       ->  (R_kept, ∅, R_dropped)            [streams only drop]
///   σ, π         ->  applied to all three channels      (Eqs. 4–5)
///   join / ⨯     ->  N = S_N ⋈ T_N
///                    P = S_P ⋈ T_N + (S_N − S_P) ⋈ T_P
///                    M = S_M ⋈ ((T_N − T_P) + T_M) + (S_N − S_P) ⋈ T_M
///                    (Eq. 8's three-term forms, with adjacent terms
///                    factored through UNION ALL so n-way joins reuse
///                    intermediates — the 3n−1 join count of Sec. 4.2)
///   −            ->  multiset-exact deltas (NOT the paper's Eq. 9, which
///                    only holds under set semantics; see the comment in
///                    differential.cc and DESIGN.md)
///   UNION ALL    ->  channel-wise union
///
/// Empty channels are propagated algebraically (join with ∅ is ∅, ∅ is the
/// unit of UNION ALL, X − ∅ = X, ∅ − X = ∅), so for select-project-join
/// queries the plus plan collapses to ∅ and the minus plan to exactly the
/// expanded form of paper Eqs. 13/17.
///
/// Aggregation and DISTINCT are rejected: the paper merges aggregates
/// outside the rewrite (Sec. 8.1) and defers DISTINCT to future work.
Result<DifferentialPlan> DifferentialRewrite(const plan::PlanPtr& query);

/// Returns `query` with every kBase scan retargeted to `channel` (used to
/// build the kept-plan the main engine executes, Fig. 4's Q_kept).
Result<plan::PlanPtr> RetargetScans(const plan::PlanPtr& query,
                                    plan::Channel channel);

}  // namespace datatriage::rewrite

#endif  // DATATRIAGE_REWRITE_DIFFERENTIAL_H_
