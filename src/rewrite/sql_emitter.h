#ifndef DATATRIAGE_REWRITE_SQL_EMITTER_H_
#define DATATRIAGE_REWRITE_SQL_EMITTER_H_

#include <string>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/rewrite/data_triage_rewrite.h"

namespace datatriage::rewrite {

/// Renders the Data Triage rewrite back to SQL text, the way the paper's
/// TelegraphCQ implementation expresses it (Sec. 4.3 / 5.1): DDL for the
/// kept/dropped substreams and synopsis streams, a Q_kept view over
/// relational substreams (paper Fig. 4), and a Q_dropped view whose body
/// is a composition of the object-relational synopsis UDFs
/// project/union_all/equijoin/filter (paper Fig. 5).
///
/// The engine itself never round-trips through this text — it interprets
/// the plans directly — but the emitter makes the rewrite inspectable and
/// is validated by round-trip tests (the emitted Q_kept re-parses, binds
/// against the substream catalog, and evaluates identically).

/// CREATE STREAM statements for every stream the rewritten query needs:
/// per input stream R, the substreams R_kept and R_dropped (paper
/// Sec. 4.3) and the synopsis streams R_kept_syn / R_dropped_syn
/// (Sec. 5.1), each carrying a Synopsis payload with the timestamp range
/// it summarizes.
Result<std::string> EmitSubstreamDdl(const Catalog& catalog,
                                     const TriagedQuery& query);

/// `CREATE VIEW q_kept AS SELECT ...` over the *_kept substreams,
/// equivalent to the paper's Fig. 4 Q_kept. The emitted text re-parses
/// with this library's parser (qualified intermediate columns are emitted
/// as "double-quoted" identifiers).
Result<std::string> EmitKeptViewSql(const TriagedQuery& query);

/// `CREATE VIEW q_dropped AS SELECT <synopsis expression> AS result FROM
/// ... WINDOW ...` equivalent to the paper's Fig. 5, with the dropped
/// plan rendered as nested synopsis-UDF calls.
Result<std::string> EmitShadowViewSql(const TriagedQuery& query);

/// The complete rewritten script: DDL + both views.
Result<std::string> EmitRewrittenScript(const Catalog& catalog,
                                        const TriagedQuery& query);

}  // namespace datatriage::rewrite

#endif  // DATATRIAGE_REWRITE_SQL_EMITTER_H_
