#include "src/rewrite/shadow_plan.h"

namespace datatriage::rewrite {

using plan::LogicalPlan;
using synopsis::SynopsisPtr;

Result<SynopsisPtr> ShadowEvaluator::MakeEmpty(const Schema& schema) const {
  return synopsis::MakeSynopsis(*config_, schema);
}

Result<SynopsisPtr> ShadowEvaluator::Evaluate(const LogicalPlan& plan) {
  switch (plan.kind()) {
    case LogicalPlan::Kind::kEmpty:
      return MakeEmpty(plan.schema());
    case LogicalPlan::Kind::kStreamScan: {
      auto it = synopses_->find(
          exec::ChannelKey{plan.stream(), plan.channel()});
      if (it == synopses_->end() || it->second == nullptr) {
        return MakeEmpty(plan.schema());
      }
      stats_.work += static_cast<int64_t>(it->second->SizeInCells());
      return it->second->Clone();
    }
    case LogicalPlan::Kind::kFilter: {
      DT_ASSIGN_OR_RETURN(SynopsisPtr input, Evaluate(*plan.child(0)));
      return input->Filter(*plan.predicate(), &stats_);
    }
    case LogicalPlan::Kind::kProject: {
      DT_ASSIGN_OR_RETURN(SynopsisPtr input, Evaluate(*plan.child(0)));
      std::vector<std::string> names;
      names.reserve(plan.schema().num_fields());
      for (const Field& f : plan.schema().fields()) {
        names.push_back(f.name);
      }
      return input->ProjectColumns(plan.projection(), names, &stats_);
    }
    case LogicalPlan::Kind::kJoin: {
      DT_ASSIGN_OR_RETURN(SynopsisPtr left, Evaluate(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(SynopsisPtr right, Evaluate(*plan.child(1)));
      DT_ASSIGN_OR_RETURN(
          SynopsisPtr joined,
          left->EquiJoinWith(*right, plan.join_keys(), &stats_));
      if (plan.predicate() != nullptr) {
        return joined->Filter(*plan.predicate(), &stats_);
      }
      return joined;
    }
    case LogicalPlan::Kind::kUnionAll: {
      DT_ASSIGN_OR_RETURN(SynopsisPtr left, Evaluate(*plan.child(0)));
      DT_ASSIGN_OR_RETURN(SynopsisPtr right, Evaluate(*plan.child(1)));
      return left->UnionAllWith(*right, &stats_);
    }
    case LogicalPlan::Kind::kCompute:
      return Status::Unimplemented(
          "computed projections have no synopsis-algebra counterpart; "
          "the shadow estimate is only available for plain column "
          "projections");
    case LogicalPlan::Kind::kSetDifference:
      return Status::Unimplemented(
          "multiset difference over synopses is not supported; shadow "
          "plans of EXCEPT queries cannot be approximated by this "
          "evaluator");
    case LogicalPlan::Kind::kAggregate:
      return Status::Unimplemented(
          "aggregates are estimated from the result synopsis "
          "(Synopsis::EstimateGroups), not evaluated inside the shadow "
          "plan");
    case LogicalPlan::Kind::kPattern:
      return Status::Unimplemented(
          "pattern matching has no synopsis-algebra counterpart; MATCH "
          "queries run exact-over-kept only (DESIGN.md §17)");
  }
  return Status::Internal("unhandled plan kind in shadow evaluator");
}

Result<SynopsisPtr> EvaluateShadowPlan(const LogicalPlan& plan,
                                       const SynopsisProvider& synopses,
                                       const synopsis::SynopsisConfig& config,
                                       synopsis::OpStats* stats) {
  ShadowEvaluator evaluator(&synopses, &config);
  DT_ASSIGN_OR_RETURN(SynopsisPtr result, evaluator.Evaluate(plan));
  if (stats != nullptr) *stats += evaluator.stats();
  return result;
}

}  // namespace datatriage::rewrite
