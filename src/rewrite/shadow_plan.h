#ifndef DATATRIAGE_REWRITE_SHADOW_PLAN_H_
#define DATATRIAGE_REWRITE_SHADOW_PLAN_H_

#include <map>

#include "src/common/result.h"
#include "src/exec/relation.h"
#include "src/plan/logical_plan.h"
#include "src/synopsis/factory.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::rewrite {

/// Synopses available to one shadow evaluation: one per (stream, channel),
/// typically the kKept and kDropped synopses each triage queue emitted for
/// the window (paper Sec. 5.1's R_kept_syn / R_dropped_syn streams).
/// Missing entries evaluate as empty synopses.
using SynopsisProvider =
    std::map<exec::ChannelKey, const synopsis::Synopsis*>;

/// Evaluates a (channel-tagged) relational plan over synopses instead of
/// tuples, mapping each operator onto the synopsis algebra — the
/// object-relational evaluation strategy of paper Sec. 5.1:
///   scan  -> provider lookup      filter -> Synopsis::Filter
///   π     -> ProjectColumns        ⋈     -> EquiJoinWith (+ Filter for
///   ∪     -> UnionAllWith                  residual predicates)
///
/// Multiset difference has no synopsis counterpart here (it only arises in
/// shadow plans of EXCEPT queries) and returns kUnimplemented.
///
/// `stats` accumulates the synopsis work performed; the engine charges it
/// to virtual time, which is how a slow synopsis (untuned MHIST) shows up
/// as overload exactly as in paper Sec. 5.2.2.
class ShadowEvaluator {
 public:
  ShadowEvaluator(const SynopsisProvider* synopses,
                  const synopsis::SynopsisConfig* config)
      : synopses_(synopses), config_(config) {}

  ShadowEvaluator(const ShadowEvaluator&) = delete;
  ShadowEvaluator& operator=(const ShadowEvaluator&) = delete;

  Result<synopsis::SynopsisPtr> Evaluate(const plan::LogicalPlan& plan);

  const synopsis::OpStats& stats() const { return stats_; }

 private:
  Result<synopsis::SynopsisPtr> MakeEmpty(const Schema& schema) const;

  const SynopsisProvider* synopses_;
  const synopsis::SynopsisConfig* config_;
  synopsis::OpStats stats_;
};

/// One-shot convenience wrapper.
Result<synopsis::SynopsisPtr> EvaluateShadowPlan(
    const plan::LogicalPlan& plan, const SynopsisProvider& synopses,
    const synopsis::SynopsisConfig& config,
    synopsis::OpStats* stats = nullptr);

}  // namespace datatriage::rewrite

#endif  // DATATRIAGE_REWRITE_SHADOW_PLAN_H_
