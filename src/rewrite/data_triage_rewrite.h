#ifndef DATATRIAGE_REWRITE_DATA_TRIAGE_REWRITE_H_
#define DATATRIAGE_REWRITE_DATA_TRIAGE_REWRITE_H_

#include "src/common/result.h"
#include "src/plan/binder.h"
#include "src/rewrite/differential.h"

namespace datatriage::rewrite {

/// A continuous query prepared for Data Triage execution: the exact plan
/// the engine runs over kept tuples, and the shadow plans it runs over
/// synopses to estimate what load shedding removed (paper Fig. 2).
struct TriagedQuery {
  /// The original bound query (windows, aggregation specs, projection).
  plan::BoundQuery query;

  /// SPJ core over Channel::kKept — Fig. 4's Q_kept, pre-aggregation.
  plan::PlanPtr kept_plan;

  /// For non-aggregate queries: the complete output plan (projection or
  /// computed projection included) over Channel::kKept; null for
  /// aggregate queries, whose output is produced by the merge stage.
  plan::PlanPtr kept_output_plan;

  /// Differential minus plan (Q_dropped): evaluated over synopses each
  /// window to estimate the results lost to shedding.
  plan::PlanPtr dropped_plan;

  /// Differential plus plan (Q_added): empty for SPJ queries (footnote 1
  /// of the paper); non-empty under EXCEPT.
  plan::PlanPtr plus_plan;

  /// True when plus_plan is the empty relation, i.e. the cheap merge path
  /// (exact + estimate) is valid.
  bool plus_is_empty = false;
};

/// Applies the Data Triage rewrite of paper Sec. 4 to a bound query.
/// Fails with kUnimplemented for SELECT DISTINCT (deferred by the paper,
/// Sec. 8.1).
Result<TriagedQuery> RewriteForDataTriage(plan::BoundQuery query);

}  // namespace datatriage::rewrite

#endif  // DATATRIAGE_REWRITE_DATA_TRIAGE_REWRITE_H_
