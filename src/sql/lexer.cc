#include "src/sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

#include "src/common/string_util.h"

namespace datatriage::sql {

namespace {

const std::map<std::string, TokenType>& KeywordTable() {
  static const auto* table = new std::map<std::string, TokenType>{
      {"select", TokenType::kSelect},   {"distinct", TokenType::kDistinct},
      {"from", TokenType::kFrom},       {"where", TokenType::kWhere},
      {"group", TokenType::kGroup},     {"by", TokenType::kBy},
      {"having", TokenType::kHaving},   {"order", TokenType::kOrder},
      {"asc", TokenType::kAsc},         {"desc", TokenType::kDesc},
      {"limit", TokenType::kLimit},
      {"window", TokenType::kWindow},   {"as", TokenType::kAs},
      {"and", TokenType::kAnd},         {"or", TokenType::kOr},
      {"not", TokenType::kNot},         {"create", TokenType::kCreate},
      {"stream", TokenType::kStream},   {"union", TokenType::kUnion},
      {"all", TokenType::kAll},         {"except", TokenType::kExcept},
      {"count", TokenType::kCount},     {"sum", TokenType::kSum},
      {"avg", TokenType::kAvg},         {"min", TokenType::kMin},
      {"max", TokenType::kMax},         {"match", TokenType::kMatch},
      {"then", TokenType::kThen},
      {"partition", TokenType::kPartition},
      {"within", TokenType::kWithin},
  };
  return *table;
}

/// Tracks position in the input and produces located tokens/errors.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      DT_ASSIGN_OR_RETURN(Token token, NextToken());
      tokens.push_back(std::move(token));
    }
    tokens.push_back(Make(TokenType::kEndOfInput));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAhead() const {
    return pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
  }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && PeekAhead() == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token Make(TokenType type, std::string text = std::string()) const {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = token_line_;
    t.column = token_column_;
    return t;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(StringPrintf("%s at line %d column %d",
                                           message.c_str(), token_line_,
                                           token_column_));
  }

  Result<Token> NextToken() {
    token_line_ = line_;
    token_column_ = column_;
    char c = Advance();
    switch (c) {
      case ',':
        return Make(TokenType::kComma);
      case ';':
        return Make(TokenType::kSemicolon);
      case '.':
        return Make(TokenType::kDot);
      case '(':
        return Make(TokenType::kLParen);
      case ')':
        return Make(TokenType::kRParen);
      case '[':
        return Make(TokenType::kLBracket);
      case ']':
        return Make(TokenType::kRBracket);
      case '*':
        return Make(TokenType::kStar);
      case '+':
        return Make(TokenType::kPlus);
      case '-':
        return Make(TokenType::kMinus);
      case '/':
        return Make(TokenType::kSlash);
      case '=':
        return Make(TokenType::kEq);
      case '<':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          return Make(TokenType::kLessEq);
        }
        if (!AtEnd() && Peek() == '>') {
          Advance();
          return Make(TokenType::kNotEq);
        }
        return Make(TokenType::kLess);
      case '>':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          return Make(TokenType::kGreaterEq);
        }
        return Make(TokenType::kGreater);
      case '!':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          return Make(TokenType::kNotEq);
        }
        return Error("unexpected character '!'");
      case '\'':
        return StringLiteral();
      case '"':
        return QuotedIdentifier();
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return NumberLiteral(c);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return IdentifierOrKeyword(c);
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Token> StringLiteral() {
    std::string value;
    while (true) {
      if (AtEnd()) return Error("unterminated string literal");
      char c = Advance();
      if (c == '\'') {
        // '' inside a literal is an escaped quote.
        if (!AtEnd() && Peek() == '\'') {
          Advance();
          value += '\'';
          continue;
        }
        break;
      }
      value += c;
    }
    return Make(TokenType::kStringLiteral, std::move(value));
  }

  Result<Token> QuotedIdentifier() {
    std::string value;
    while (true) {
      if (AtEnd()) return Error("unterminated quoted identifier");
      char c = Advance();
      if (c == '"') break;
      value += c;
    }
    if (value.empty()) return Error("empty quoted identifier");
    return Make(TokenType::kIdentifier, std::move(value));
  }

  Result<Token> NumberLiteral(char first) {
    std::string digits(1, first);
    bool is_double = false;
    while (!AtEnd() &&
           std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
    // A '.' is part of the number only if followed by a digit ("1.5"); a
    // bare "R.a"-style dot never follows a digit in this grammar, but be
    // conservative anyway.
    if (!AtEnd() && Peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(PeekAhead()))) {
      is_double = true;
      digits += Advance();  // '.'
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      digits += Advance();
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) digits += Advance();
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("malformed exponent in numeric literal");
      }
      while (!AtEnd() &&
             std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
    }
    Token t = Make(
        is_double ? TokenType::kDoubleLiteral : TokenType::kIntLiteral,
        digits);
    if (is_double) {
      t.double_value = std::strtod(digits.c_str(), nullptr);
    } else {
      t.int_value = std::strtoll(digits.c_str(), nullptr, 10);
    }
    return t;
  }

  Result<Token> IdentifierOrKeyword(char first) {
    std::string word(1, first);
    while (!AtEnd() &&
           (std::isalnum(static_cast<unsigned char>(Peek())) ||
            Peek() == '_')) {
      word += Advance();
    }
    const std::string lower = ToLowerAscii(word);
    auto it = KeywordTable().find(lower);
    if (it != KeywordTable().end()) {
      return Make(it->second, lower);
    }
    return Make(TokenType::kIdentifier, lower);
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  return Lexer(text).Run();
}

}  // namespace datatriage::sql
