#include "src/sql/token.h"

namespace datatriage::sql {

std::string_view TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer literal";
    case TokenType::kDoubleLiteral:
      return "double literal";
    case TokenType::kStringLiteral:
      return "string literal";
    case TokenType::kComma:
      return "','";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNotEq:
      return "'<>'";
    case TokenType::kLess:
      return "'<'";
    case TokenType::kLessEq:
      return "'<='";
    case TokenType::kGreater:
      return "'>'";
    case TokenType::kGreaterEq:
      return "'>='";
    case TokenType::kSelect:
      return "SELECT";
    case TokenType::kDistinct:
      return "DISTINCT";
    case TokenType::kFrom:
      return "FROM";
    case TokenType::kWhere:
      return "WHERE";
    case TokenType::kGroup:
      return "GROUP";
    case TokenType::kBy:
      return "BY";
    case TokenType::kHaving:
      return "HAVING";
    case TokenType::kOrder:
      return "ORDER";
    case TokenType::kAsc:
      return "ASC";
    case TokenType::kDesc:
      return "DESC";
    case TokenType::kLimit:
      return "LIMIT";
    case TokenType::kWindow:
      return "WINDOW";
    case TokenType::kAs:
      return "AS";
    case TokenType::kAnd:
      return "AND";
    case TokenType::kOr:
      return "OR";
    case TokenType::kNot:
      return "NOT";
    case TokenType::kCreate:
      return "CREATE";
    case TokenType::kStream:
      return "STREAM";
    case TokenType::kUnion:
      return "UNION";
    case TokenType::kAll:
      return "ALL";
    case TokenType::kExcept:
      return "EXCEPT";
    case TokenType::kCount:
      return "COUNT";
    case TokenType::kSum:
      return "SUM";
    case TokenType::kAvg:
      return "AVG";
    case TokenType::kMin:
      return "MIN";
    case TokenType::kMax:
      return "MAX";
    case TokenType::kMatch:
      return "MATCH";
    case TokenType::kThen:
      return "THEN";
    case TokenType::kPartition:
      return "PARTITION";
    case TokenType::kWithin:
      return "WITHIN";
    case TokenType::kEndOfInput:
      return "end of input";
  }
  return "unknown token";
}

std::string Token::ToString() const {
  std::string out(TokenTypeToString(type));
  if (type == TokenType::kIdentifier || type == TokenType::kIntLiteral ||
      type == TokenType::kDoubleLiteral ||
      type == TokenType::kStringLiteral) {
    out += " '" + text + "'";
  }
  return out;
}

}  // namespace datatriage::sql
