#ifndef DATATRIAGE_SQL_LEXER_H_
#define DATATRIAGE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sql/token.h"

namespace datatriage::sql {

/// Tokenizes one or more SQL statements. Keywords are recognized
/// case-insensitively; unquoted identifiers are lower-cased (PostgreSQL
/// convention, which TelegraphCQ inherits); "double-quoted" identifiers
/// preserve case. `--` starts a comment running to end of line.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace datatriage::sql

#endif  // DATATRIAGE_SQL_LEXER_H_
