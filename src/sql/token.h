#ifndef DATATRIAGE_SQL_TOKEN_H_
#define DATATRIAGE_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace datatriage::sql {

enum class TokenType {
  // Literals and names.
  kIdentifier,    // column / stream names (lower-cased unless quoted)
  kIntLiteral,    // 42
  kDoubleLiteral, // 3.5
  kStringLiteral, // '1 second'
  // Punctuation / operators.
  kComma,
  kSemicolon,
  kDot,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,        // =
  kNotEq,     // <> or !=
  kLess,      // <
  kLessEq,    // <=
  kGreater,   // >
  kGreaterEq, // >=
  // Keywords (case-insensitive in the source text).
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kGroup,
  kBy,
  kHaving,
  kOrder,
  kAsc,
  kDesc,
  kLimit,
  kWindow,
  kAs,
  kAnd,
  kOr,
  kNot,
  kCreate,
  kStream,
  kUnion,
  kAll,
  kExcept,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kMatch,
  kThen,
  kPartition,
  kWithin,
  kEndOfInput,
};

/// Canonical display name of a token type for diagnostics.
std::string_view TokenTypeToString(TokenType type);

struct Token {
  TokenType type = TokenType::kEndOfInput;
  /// Raw text (identifiers are already lower-cased; string literals have
  /// quotes stripped).
  std::string text;
  /// Numeric payloads for literal tokens.
  int64_t int_value = 0;
  double double_value = 0.0;
  /// 1-based position in the statement for error messages.
  int line = 1;
  int column = 1;

  std::string ToString() const;
};

}  // namespace datatriage::sql

#endif  // DATATRIAGE_SQL_TOKEN_H_
