#include "src/sql/ast.h"

#include <cstdlib>

#include "src/common/string_util.h"

namespace datatriage::sql {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEq:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEq:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string_view UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kNegate:
      return "-";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLess:
    case BinaryOp::kLessEq:
    case BinaryOp::kGreater:
    case BinaryOp::kGreaterEq:
      return true;
    default:
      return false;
  }
}

ExprPtr Expr::ColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(value);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->table = table;
  e->column = column;
  e->literal = literal;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kUnary:
      return std::string(UnaryOpToString(unary_op)) + " (" +
             lhs->ToString() + ")";
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " +
             std::string(BinaryOpToString(binary_op)) + " " +
             rhs->ToString() + ")";
  }
  return "?";
}

std::string_view AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  std::string out;
  if (is_star) {
    out = "*";
  } else if (agg != AggFunc::kNone) {
    out = std::string(AggFuncToString(agg)) + "(" +
          (count_star ? "*" : expr->ToString()) + ")";
  } else {
    out = expr->ToString();
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

std::string MatchClause::ToString() const {
  std::string out = "MATCH (";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) out += " THEN ";
    out += steps[i]->ToString();
  }
  out += ") PARTITION BY ";
  if (!partition_table.empty()) out += partition_table + ".";
  out += partition_column;
  out += StringPrintf(" WITHIN '%g seconds'", within_seconds);
  return out;
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].name;
    if (!from[i].alias.empty()) out += " AS " + from[i].alias;
  }
  if (match) out += " " + match->ToString();
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += StringPrintf(" LIMIT %lld", (long long)limit);
  if (!windows.empty()) {
    out += " WINDOW ";
    for (size_t i = 0; i < windows.size(); ++i) {
      if (i > 0) out += ", ";
      out += windows[i].stream;
      if (windows[i].slide_seconds > 0) {
        out += StringPrintf(" ['%g seconds', '%g seconds']",
                            windows[i].seconds,
                            windows[i].slide_seconds);
      } else {
        out += StringPrintf(" ['%g seconds']", windows[i].seconds);
      }
    }
  }
  return out;
}

std::string CreateStreamStatement::ToString() const {
  std::string out = "CREATE STREAM " + name + " (";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns[i].name;
    out += ' ';
    out += FieldTypeToString(columns[i].type);
  }
  out += ")";
  return out;
}

std::string SetOpStatement::ToString() const {
  return "(" + lhs->ToString() + ") " +
         (op == SetOpKind::kUnionAll ? "UNION ALL" : "EXCEPT") + " (" +
         rhs->ToString() + ")";
}

std::string Statement::ToString() const {
  switch (kind) {
    case Kind::kSelect:
      return select->ToString();
    case Kind::kCreateStream:
      return create_stream->ToString();
    case Kind::kSetOp:
      return set_op->ToString();
  }
  return "?";
}

Result<double> ParseIntervalSeconds(std::string_view text) {
  const std::string_view stripped = StripWhitespace(text);
  // Expect "<number> <unit>".
  size_t split = stripped.find_first_of(" \t");
  if (split == std::string_view::npos) {
    return Status::ParseError("malformed interval '" + std::string(text) +
                              "': expected '<number> <unit>'");
  }
  const std::string number(StripWhitespace(stripped.substr(0, split)));
  const std::string unit =
      ToLowerAscii(StripWhitespace(stripped.substr(split + 1)));
  char* end = nullptr;
  double quantity = std::strtod(number.c_str(), &end);
  if (end == number.c_str() || *end != '\0') {
    return Status::ParseError("malformed interval quantity '" + number +
                              "'");
  }
  if (quantity <= 0) {
    return Status::ParseError("interval must be positive, got '" +
                              std::string(text) + "'");
  }
  double scale = 0;
  if (unit == "second" || unit == "seconds" || unit == "sec" ||
      unit == "secs" || unit == "s") {
    scale = 1.0;
  } else if (unit == "millisecond" || unit == "milliseconds" ||
             unit == "ms") {
    scale = 1e-3;
  } else if (unit == "minute" || unit == "minutes" || unit == "min") {
    scale = 60.0;
  } else if (unit == "hour" || unit == "hours") {
    scale = 3600.0;
  } else {
    return Status::ParseError("unknown interval unit '" + unit + "'");
  }
  return quantity * scale;
}

}  // namespace datatriage::sql
