#ifndef DATATRIAGE_SQL_PARSER_H_
#define DATATRIAGE_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/sql/ast.h"

namespace datatriage::sql {

/// Parses a single statement (trailing ';' optional).
///
/// Grammar (the TelegraphCQ dialect exercised by the paper):
///
///   statement      := create_stream | query
///   create_stream  := CREATE STREAM name '(' coldef (',' coldef)* ')'
///   query          := select (( UNION ALL | EXCEPT ) select)?
///   select         := SELECT [DISTINCT] select_list FROM table_list
///                     [WHERE expr] [GROUP BY column_list]
///                     [WINDOW window_list]
///   select_list    := '*' | select_item (',' select_item)*
///   select_item    := (agg '(' ('*'|expr) ')' | expr) [[AS] alias]
///   window_list    := name '[' string ']' (',' name '[' string ']')*
///   expr           := standard precedence: OR < AND < NOT < cmp < +- < */
///                     < unary- < primary
Result<Statement> ParseStatement(std::string_view text);

/// Parses a ';'-separated script of statements.
Result<std::vector<Statement>> ParseScript(std::string_view text);

}  // namespace datatriage::sql

#endif  // DATATRIAGE_SQL_PARSER_H_
