#include "src/sql/parser.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/sql/lexer.h"

namespace datatriage::sql {

namespace {

/// Recursive-descent parser over a pre-lexed token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> statements;
    while (!Check(TokenType::kEndOfInput)) {
      DT_ASSIGN_OR_RETURN(Statement stmt, ParseOne());
      statements.push_back(std::move(stmt));
      // Consume any statement separators.
      while (Match(TokenType::kSemicolon)) {
      }
    }
    return statements;
  }

  Result<Statement> ParseOne() {
    if (Check(TokenType::kCreate)) return ParseCreateStream();
    return ParseQuery();
  }

  bool AtTrueEnd() { return Check(TokenType::kEndOfInput); }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Previous() const { return tokens_[pos_ - 1]; }

  bool Check(TokenType type) const { return Peek().type == type; }

  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(
        StringPrintf("%s at line %d column %d (got %s)", message.c_str(),
                     Peek().line, Peek().column, Peek().ToString().c_str()));
  }

  Result<Token> Expect(TokenType type, const char* what) {
    if (!Check(type)) {
      return Error(std::string("expected ") + what);
    }
    Token t = Peek();
    ++pos_;
    return t;
  }

  /// True for tokens usable as a column/alias name even though they lex as
  /// keywords ("COUNT(*) AS count" in the paper's Fig. 7 query).
  bool CheckSoftName() const {
    switch (Peek().type) {
      case TokenType::kIdentifier:
      case TokenType::kCount:
      case TokenType::kSum:
      case TokenType::kAvg:
      case TokenType::kMin:
      case TokenType::kMax:
      case TokenType::kStream:
      case TokenType::kWindow:
      case TokenType::kAll:
        return true;
      default:
        return false;
    }
  }

  Result<Token> ExpectSoftName(const char* what) {
    if (!CheckSoftName()) {
      return Error(std::string("expected ") + what);
    }
    Token t = Peek();
    ++pos_;
    return t;
  }

  // -------------------------------------------------------------------
  // CREATE STREAM
  // -------------------------------------------------------------------

  Result<Statement> ParseCreateStream() {
    DT_ASSIGN_OR_RETURN(Token create, Expect(TokenType::kCreate, "CREATE"));
    (void)create;
    DT_RETURN_IF_ERROR(Expect(TokenType::kStream, "STREAM").status());
    DT_ASSIGN_OR_RETURN(Token name,
                        Expect(TokenType::kIdentifier, "stream name"));
    DT_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('").status());

    auto stmt = std::make_unique<CreateStreamStatement>();
    stmt->name = name.text;
    do {
      DT_ASSIGN_OR_RETURN(Token col,
                          Expect(TokenType::kIdentifier, "column name"));
      DT_ASSIGN_OR_RETURN(Token type_tok,
                          Expect(TokenType::kIdentifier, "column type"));
      DT_ASSIGN_OR_RETURN(FieldType type,
                          FieldTypeFromString(type_tok.text));
      stmt->columns.push_back(ColumnDef{col.text, type});
    } while (Match(TokenType::kComma));
    DT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());

    Statement out;
    out.kind = Statement::Kind::kCreateStream;
    out.create_stream = std::move(stmt);
    return out;
  }

  // -------------------------------------------------------------------
  // Queries
  // -------------------------------------------------------------------

  Result<Statement> ParseQuery() {
    // Either a bare SELECT or a parenthesized SELECT followed by a set op.
    DT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> first,
                        ParsePossiblyParenthesizedSelect());
    if (Check(TokenType::kUnion) || Check(TokenType::kExcept)) {
      auto set_op = std::make_unique<SetOpStatement>();
      if (Match(TokenType::kUnion)) {
        DT_RETURN_IF_ERROR(Expect(TokenType::kAll, "ALL").status());
        set_op->op = SetOpKind::kUnionAll;
      } else {
        DT_RETURN_IF_ERROR(Expect(TokenType::kExcept, "EXCEPT").status());
        set_op->op = SetOpKind::kExcept;
      }
      set_op->lhs = std::move(first);
      DT_ASSIGN_OR_RETURN(set_op->rhs, ParsePossiblyParenthesizedSelect());
      Statement out;
      out.kind = Statement::Kind::kSetOp;
      out.set_op = std::move(set_op);
      return out;
    }
    Statement out;
    out.kind = Statement::Kind::kSelect;
    out.select = std::move(first);
    return out;
  }

  Result<std::unique_ptr<SelectStatement>>
  ParsePossiblyParenthesizedSelect() {
    if (Match(TokenType::kLParen)) {
      DT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStatement> inner,
                          ParseSelect());
      DT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
      return inner;
    }
    return ParseSelect();
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    DT_RETURN_IF_ERROR(Expect(TokenType::kSelect, "SELECT").status());
    auto stmt = std::make_unique<SelectStatement>();
    stmt->distinct = Match(TokenType::kDistinct);

    do {
      DT_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    DT_RETURN_IF_ERROR(Expect(TokenType::kFrom, "FROM").status());
    do {
      DT_ASSIGN_OR_RETURN(Token name,
                          Expect(TokenType::kIdentifier, "stream name"));
      TableRef ref;
      ref.name = name.text;
      if (Match(TokenType::kAs)) {
        DT_ASSIGN_OR_RETURN(Token alias, ExpectSoftName("alias"));
        ref.alias = alias.text;
      } else if (Check(TokenType::kIdentifier)) {
        ref.alias = Peek().text;
        ++pos_;
      }
      stmt->from.push_back(std::move(ref));
    } while (Match(TokenType::kComma));

    if (Check(TokenType::kMatch)) {
      DT_ASSIGN_OR_RETURN(stmt->match, ParseMatchClause());
    }

    if (Match(TokenType::kWhere)) {
      DT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }

    if (Match(TokenType::kGroup)) {
      DT_RETURN_IF_ERROR(Expect(TokenType::kBy, "BY").status());
      do {
        DT_ASSIGN_OR_RETURN(ExprPtr col, ParseExpr());
        stmt->group_by.push_back(std::move(col));
      } while (Match(TokenType::kComma));
    }
    if (Match(TokenType::kHaving)) {
      if (stmt->group_by.empty()) {
        return Error("HAVING requires a GROUP BY clause");
      }
      DT_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (Match(TokenType::kOrder)) {
      DT_RETURN_IF_ERROR(Expect(TokenType::kBy, "BY").status());
      do {
        OrderBySpec spec;
        DT_ASSIGN_OR_RETURN(spec.expr, ParseExpr());
        if (Match(TokenType::kDesc)) {
          spec.descending = true;
        } else {
          Match(TokenType::kAsc);
        }
        stmt->order_by.push_back(std::move(spec));
      } while (Match(TokenType::kComma));
    }
    if (Match(TokenType::kLimit)) {
      DT_ASSIGN_OR_RETURN(Token n,
                          Expect(TokenType::kIntLiteral, "row count"));
      if (n.int_value < 0) return Error("LIMIT must be non-negative");
      stmt->limit = n.int_value;
    }

    // TelegraphCQ also accepts a ';' between the main clause and WINDOW
    // (see the Fig. 7 query text); tolerate it.
    size_t saved = pos_;
    if (Match(TokenType::kSemicolon) && !Check(TokenType::kWindow)) {
      pos_ = saved;  // real end of statement
    }
    if (Match(TokenType::kWindow)) {
      do {
        DT_ASSIGN_OR_RETURN(Token name,
                            Expect(TokenType::kIdentifier, "stream name"));
        DT_RETURN_IF_ERROR(Expect(TokenType::kLBracket, "'['").status());
        DT_ASSIGN_OR_RETURN(
            Token interval,
            Expect(TokenType::kStringLiteral, "interval literal"));
        DT_ASSIGN_OR_RETURN(double seconds,
                            ParseIntervalSeconds(interval.text));
        double slide_seconds = 0.0;
        if (Match(TokenType::kComma)) {
          DT_ASSIGN_OR_RETURN(
              Token slide,
              Expect(TokenType::kStringLiteral, "slide interval literal"));
          DT_ASSIGN_OR_RETURN(slide_seconds,
                              ParseIntervalSeconds(slide.text));
        }
        DT_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'").status());
        stmt->windows.push_back(
            WindowSpec{name.text, seconds, slide_seconds});
      } while (Match(TokenType::kComma));
    }
    return stmt;
  }

  /// `MATCH ( <expr> THEN <expr> [THEN <expr> ...] ) PARTITION BY <col>
  /// WITHIN '<interval>'`.
  Result<std::unique_ptr<MatchClause>> ParseMatchClause() {
    DT_RETURN_IF_ERROR(Expect(TokenType::kMatch, "MATCH").status());
    DT_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('").status());
    auto clause = std::make_unique<MatchClause>();
    do {
      DT_ASSIGN_OR_RETURN(ExprPtr step, ParseExpr());
      clause->steps.push_back(std::move(step));
    } while (Match(TokenType::kThen));
    if (clause->steps.size() < 2) {
      return Error("MATCH requires at least two THEN-separated steps");
    }
    DT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
    DT_RETURN_IF_ERROR(Expect(TokenType::kPartition, "PARTITION").status());
    DT_RETURN_IF_ERROR(Expect(TokenType::kBy, "BY").status());
    DT_ASSIGN_OR_RETURN(Token first,
                        Expect(TokenType::kIdentifier, "partition column"));
    if (Match(TokenType::kDot)) {
      DT_ASSIGN_OR_RETURN(Token col,
                          Expect(TokenType::kIdentifier, "column name"));
      clause->partition_table = first.text;
      clause->partition_column = col.text;
    } else {
      clause->partition_column = first.text;
    }
    DT_RETURN_IF_ERROR(Expect(TokenType::kWithin, "WITHIN").status());
    DT_ASSIGN_OR_RETURN(
        Token interval,
        Expect(TokenType::kStringLiteral, "interval literal"));
    DT_ASSIGN_OR_RETURN(clause->within_seconds,
                        ParseIntervalSeconds(interval.text));
    return clause;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Match(TokenType::kStar)) {
      item.is_star = true;
      return item;
    }
    AggFunc agg = AggFunc::kNone;
    if (Match(TokenType::kCount)) {
      agg = AggFunc::kCount;
    } else if (Match(TokenType::kSum)) {
      agg = AggFunc::kSum;
    } else if (Match(TokenType::kAvg)) {
      agg = AggFunc::kAvg;
    } else if (Match(TokenType::kMin)) {
      agg = AggFunc::kMin;
    } else if (Match(TokenType::kMax)) {
      agg = AggFunc::kMax;
    }
    if (agg != AggFunc::kNone) {
      item.agg = agg;
      DT_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('").status());
      if (Match(TokenType::kStar)) {
        if (agg != AggFunc::kCount) {
          return Error("'*' argument is only valid for COUNT");
        }
        item.count_star = true;
      } else {
        DT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      DT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
    } else {
      DT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (Match(TokenType::kAs)) {
      DT_ASSIGN_OR_RETURN(Token alias, ExpectSoftName("alias"));
      item.alias = alias.text;
    } else if (Check(TokenType::kIdentifier)) {
      item.alias = Peek().text;
      ++pos_;
    }
    return item;
  }

  // -------------------------------------------------------------------
  // Expressions (precedence climbing).
  // -------------------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Match(TokenType::kOr)) {
      DT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Match(TokenType::kAnd)) {
      DT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenType::kNot)) {
      DT_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    BinaryOp op;
    if (Match(TokenType::kEq)) {
      op = BinaryOp::kEq;
    } else if (Match(TokenType::kNotEq)) {
      op = BinaryOp::kNotEq;
    } else if (Match(TokenType::kLess)) {
      op = BinaryOp::kLess;
    } else if (Match(TokenType::kLessEq)) {
      op = BinaryOp::kLessEq;
    } else if (Match(TokenType::kGreater)) {
      op = BinaryOp::kGreater;
    } else if (Match(TokenType::kGreaterEq)) {
      op = BinaryOp::kGreaterEq;
    } else {
      return lhs;
    }
    DT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    DT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      BinaryOp op =
          Match(TokenType::kPlus) ? BinaryOp::kAdd
                                  : (Match(TokenType::kMinus), BinaryOp::kSub);
      DT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    DT_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
      BinaryOp op =
          Match(TokenType::kStar) ? BinaryOp::kMul
                                  : (Match(TokenType::kSlash), BinaryOp::kDiv);
      DT_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      DT_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNegate, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Match(TokenType::kIntLiteral)) {
      return Expr::Literal(Value::Int64(Previous().int_value));
    }
    if (Match(TokenType::kDoubleLiteral)) {
      return Expr::Literal(Value::Double(Previous().double_value));
    }
    if (Match(TokenType::kStringLiteral)) {
      return Expr::Literal(Value::String(Previous().text));
    }
    if (Match(TokenType::kLParen)) {
      DT_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      DT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
      return inner;
    }
    if (Match(TokenType::kIdentifier)) {
      std::string first = Previous().text;
      if (Match(TokenType::kDot)) {
        DT_ASSIGN_OR_RETURN(Token col,
                            Expect(TokenType::kIdentifier, "column name"));
        return Expr::ColumnRef(std::move(first), col.text);
      }
      return Expr::ColumnRef("", std::move(first));
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  DT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  DT_ASSIGN_OR_RETURN(std::vector<Statement> statements, parser.ParseAll());
  if (statements.size() != 1) {
    return Status::ParseError(
        StringPrintf("expected exactly one statement, found %zu",
                     statements.size()));
  }
  return std::move(statements[0]);
}

Result<std::vector<Statement>> ParseScript(std::string_view text) {
  DT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseAll();
}

}  // namespace datatriage::sql
