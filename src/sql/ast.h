#ifndef DATATRIAGE_SQL_AST_H_
#define DATATRIAGE_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/field_type.h"
#include "src/common/result.h"
#include "src/tuple/value.h"

namespace datatriage::sql {

enum class BinaryOp {
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kNegate };

std::string_view BinaryOpToString(BinaryOp op);
std::string_view UnaryOpToString(UnaryOp op);

/// True for =, <>, <, <=, >, >=.
bool IsComparisonOp(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Unbound scalar expression as written in the query text. A single tagged
/// struct rather than a class hierarchy: the expression language is small
/// and the binder visits every node anyway.
struct Expr {
  enum class Kind { kColumnRef, kLiteral, kUnary, kBinary };

  Kind kind = Kind::kLiteral;

  // kColumnRef: optional stream qualifier + column name ("R.a" or "a").
  std::string table;
  std::string column;

  // kLiteral.
  Value literal;

  // kUnary (operand in `lhs`) / kBinary.
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;
  ExprPtr lhs;
  ExprPtr rhs;

  static ExprPtr ColumnRef(std::string table, std::string column);
  static ExprPtr Literal(Value value);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

  ExprPtr Clone() const;
  std::string ToString() const;
};

enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

std::string_view AggFuncToString(AggFunc func);

/// One item in the SELECT list: a plain expression, `*`, or an aggregate
/// over an expression (COUNT(*) has `count_star` set and a null expr).
struct SelectItem {
  bool is_star = false;
  AggFunc agg = AggFunc::kNone;
  bool count_star = false;
  ExprPtr expr;
  std::string alias;

  std::string ToString() const;
};

/// FROM-clause entry. The alias defaults to the stream name.
struct TableRef {
  std::string name;
  std::string alias;

  const std::string& effective_name() const {
    return alias.empty() ? name : alias;
  }
};

/// WINDOW R ['1 second'] or R ['2 seconds', '1 second'] entry: `seconds`
/// is the window range; `slide_seconds` the hop between consecutive
/// windows (0 means unspecified, i.e. tumbling: slide == range).
struct WindowSpec {
  std::string stream;
  double seconds = 1.0;
  double slide_seconds = 0.0;
};

/// ORDER BY entry: an output column (by name) plus direction.
struct OrderBySpec {
  ExprPtr expr;
  bool descending = false;
};

/// `MATCH (A THEN B [THEN C]) PARTITION BY <col> WITHIN '<interval>'`:
/// a sequence pattern over one stream. Each step is a boolean predicate
/// over the stream's columns; a match is a strictly ordered subsequence
/// of tuples — one per step, all sharing the partition-key value — whose
/// first-to-last timestamp span is at most `within_seconds`.
struct MatchClause {
  std::vector<ExprPtr> steps;
  /// Partition key column ("R.a" or bare "a").
  std::string partition_table;
  std::string partition_column;
  double within_seconds = 0.0;

  std::string ToString() const;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<MatchClause> match;  // null when absent
  ExprPtr where;                    // null when absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;                   // null when absent
  std::vector<OrderBySpec> order_by;
  /// Per-window result cap; < 0 means no LIMIT.
  int64_t limit = -1;
  std::vector<WindowSpec> windows;

  std::string ToString() const;
};

struct ColumnDef {
  std::string name;
  FieldType type = FieldType::kInt64;
};

struct CreateStreamStatement {
  std::string name;
  std::vector<ColumnDef> columns;

  std::string ToString() const;
};

enum class SetOpKind { kUnionAll, kExcept };

/// `(SELECT ...) UNION ALL / EXCEPT (SELECT ...)`. Present so the
/// differential set-difference operator (paper Sec. 3.2.3) is reachable
/// from SQL, not only from hand-built plans.
struct SetOpStatement {
  SetOpKind op = SetOpKind::kUnionAll;
  std::unique_ptr<SelectStatement> lhs;
  std::unique_ptr<SelectStatement> rhs;

  std::string ToString() const;
};

struct Statement {
  enum class Kind { kSelect, kCreateStream, kSetOp };

  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<CreateStreamStatement> create_stream;
  std::unique_ptr<SetOpStatement> set_op;

  std::string ToString() const;
};

/// Parses interval strings like "1 second", "2 seconds", "250
/// milliseconds", "0.5 minutes" into seconds.
Result<double> ParseIntervalSeconds(std::string_view text);

}  // namespace datatriage::sql

#endif  // DATATRIAGE_SQL_AST_H_
