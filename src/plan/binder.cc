#include "src/plan/binder.h"

#include <algorithm>
#include <set>

#include "src/common/string_util.h"

namespace datatriage::plan {

namespace {

/// Splits an AST predicate into its top-level AND conjuncts.
void CollectConjuncts(const sql::Expr& expr,
                      std::vector<const sql::Expr*>* out) {
  if (expr.kind == sql::Expr::Kind::kBinary &&
      expr.binary_op == sql::BinaryOp::kAnd) {
    CollectConjuncts(*expr.lhs, out);
    CollectConjuncts(*expr.rhs, out);
    return;
  }
  out->push_back(&expr);
}

/// Collects the column indices referenced by a bound expression.
void CollectColumnIndices(const BoundExpr& expr, std::set<size_t>* out) {
  switch (expr.kind()) {
    case BoundExpr::Kind::kColumn:
      out->insert(expr.column_index());
      return;
    case BoundExpr::Kind::kLiteral:
      return;
    case BoundExpr::Kind::kUnary:
      CollectColumnIndices(*expr.lhs(), out);
      return;
    case BoundExpr::Kind::kBinary:
      CollectColumnIndices(*expr.lhs(), out);
      CollectColumnIndices(*expr.rhs(), out);
      return;
  }
}

/// Strips the "<alias>." qualifier.
std::string BaseName(const std::string& qualified) {
  size_t dot = qualified.rfind('.');
  return dot == std::string::npos ? qualified : qualified.substr(dot + 1);
}

struct FromEntry {
  std::string stream;  // catalog name
  std::string alias;   // effective (defaults to stream name)
  Schema scan_schema;  // fields "<alias>.<col>"
  size_t offset = 0;   // first column position in the combined schema
};

/// Binder working state for one SELECT.
class SelectBinder {
 public:
  SelectBinder(const sql::SelectStatement& select, const Catalog& catalog,
               const BindOptions& options)
      : select_(select), catalog_(catalog), options_(options) {}

  Result<BoundQuery> Bind() {
    DT_RETURN_IF_ERROR(BindFrom());
    DT_RETURN_IF_ERROR(ClassifyPredicates());
    DT_RETURN_IF_ERROR(BuildJoinTree());
    DT_RETURN_IF_ERROR(BindWindows());
    if (select_.match != nullptr) {
      DT_RETURN_IF_ERROR(BindMatch());
      DT_RETURN_IF_ERROR(BindPatternOutput());
    } else {
      DT_RETURN_IF_ERROR(BindOutput());
    }
    DT_RETURN_IF_ERROR(BindOrderByAndLimit());
    return std::move(query_);
  }

 private:
  Status BindFrom() {
    if (select_.from.empty()) {
      return Status::BindError("query has no FROM clause");
    }
    for (const sql::TableRef& ref : select_.from) {
      DT_ASSIGN_OR_RETURN(StreamDef def, catalog_.GetStream(ref.name));
      FromEntry entry;
      entry.stream = def.name;
      entry.alias = ref.effective_name();
      for (const auto& existing : from_) {
        if (existing.alias == entry.alias) {
          return Status::BindError("duplicate FROM alias '" + entry.alias +
                                   "'");
        }
      }
      for (const Field& f : def.schema.fields()) {
        DT_RETURN_IF_ERROR(entry.scan_schema.AddField(
            Field{entry.alias + "." + f.name, f.type}));
      }
      entry.offset = combined_.num_fields();
      DT_ASSIGN_OR_RETURN(combined_, combined_.Concat(entry.scan_schema));
      from_.push_back(std::move(entry));
    }
    query_.from_streams.clear();
    for (const FromEntry& e : from_) {
      query_.from_streams.push_back(e.stream);
      query_.from_aliases.push_back(e.alias);
    }
    return Status::OK();
  }

  /// Index of the FROM entry owning combined-schema column `global`.
  size_t OwnerOf(size_t global) const {
    for (size_t i = from_.size(); i-- > 0;) {
      if (global >= from_[i].offset) return i;
    }
    DT_CHECK(false) << "column offset inconsistency";
    return 0;
  }

  Status ClassifyPredicates() {
    if (select_.where == nullptr) return Status::OK();
    std::vector<const sql::Expr*> conjuncts;
    CollectConjuncts(*select_.where, &conjuncts);
    for (const sql::Expr* conjunct : conjuncts) {
      DT_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          BindExpr(*conjunct, combined_));
      std::set<size_t> columns;
      CollectColumnIndices(*bound, &columns);
      std::set<size_t> owners;
      for (size_t c : columns) owners.insert(OwnerOf(c));

      if (owners.size() <= 1) {
        // Single-stream predicate: push below the join by remapping the
        // combined-schema indices onto the scan schema.
        size_t owner = owners.empty() ? 0 : *owners.begin();
        std::vector<size_t> index_map(combined_.num_fields(), 0);
        for (size_t c : columns) index_map[c] = c - from_[owner].offset;
        pushed_filters_[owner].push_back(bound->RemapColumns(index_map));
        continue;
      }
      // Equijoin pattern: column = column across exactly two streams.
      if (owners.size() == 2 &&
          bound->kind() == BoundExpr::Kind::kBinary &&
          bound->binary_op() == sql::BinaryOp::kEq &&
          bound->lhs()->kind() == BoundExpr::Kind::kColumn &&
          bound->rhs()->kind() == BoundExpr::Kind::kColumn) {
        equi_preds_.push_back({bound->lhs()->column_index(),
                               bound->rhs()->column_index(), false});
        continue;
      }
      residuals_.push_back(std::move(bound));
    }
    return Status::OK();
  }

  Status BuildJoinTree() {
    // Scans with pushed-down filters, in FROM order (the paper keeps the
    // user's order for the kept plan and its rewrite; Sec. 5.2).
    std::vector<PlanPtr> inputs;
    for (size_t i = 0; i < from_.size(); ++i) {
      PlanPtr node = LogicalPlan::StreamScan(from_[i].stream, Channel::kBase,
                                             from_[i].scan_schema);
      auto it = pushed_filters_.find(i);
      if (it != pushed_filters_.end()) {
        for (const BoundExprPtr& predicate : it->second) {
          DT_ASSIGN_OR_RETURN(node,
                              LogicalPlan::Filter(node, predicate));
        }
      }
      inputs.push_back(std::move(node));
    }

    PlanPtr acc = inputs[0];
    for (size_t i = 1; i < inputs.size(); ++i) {
      // Keys link a column already in `acc` (aliases 0..i-1, whose
      // combined indices coincide with acc's) to a column of input i.
      std::vector<std::pair<size_t, size_t>> keys;
      for (EquiPred& pred : equi_preds_) {
        if (pred.placed) continue;
        size_t owner_l = OwnerOf(pred.left);
        size_t owner_r = OwnerOf(pred.right);
        if (owner_r < owner_l) {
          std::swap(pred.left, pred.right);
          std::swap(owner_l, owner_r);
        }
        if (owner_r == i) {
          DT_CHECK_LT(owner_l, i);
          keys.push_back({pred.left, pred.right - from_[i].offset});
          pred.placed = true;
        }
      }
      DT_ASSIGN_OR_RETURN(acc, LogicalPlan::Join(acc, inputs[i],
                                                 std::move(keys)));
    }
    for (const BoundExprPtr& residual : residuals_) {
      DT_ASSIGN_OR_RETURN(acc, LogicalPlan::Filter(acc, residual));
    }
    query_.spj_core = std::move(acc);
    return Status::OK();
  }

  Status BindOrderByAndLimit() {
    query_.limit = select_.limit;
    const Schema& output = query_.plan->schema();
    for (const sql::OrderBySpec& spec : select_.order_by) {
      if (spec.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::BindError(
            "ORDER BY supports only output column references, got " +
            spec.expr->ToString());
      }
      DT_ASSIGN_OR_RETURN(
          size_t index,
          ResolveColumn(spec.expr->table, spec.expr->column, output));
      query_.sort_keys.push_back({index, spec.descending});
    }
    return Status::OK();
  }

  Status BindWindows() {
    for (const sql::WindowSpec& spec : select_.windows) {
      // The WINDOW clause may name either the alias or the stream.
      std::string stream;
      for (const FromEntry& e : from_) {
        if (e.alias == spec.stream || e.stream == spec.stream) {
          stream = e.stream;
          break;
        }
      }
      if (stream.empty()) {
        return Status::BindError("WINDOW clause names unknown stream '" +
                                 spec.stream + "'");
      }
      const double slide =
          spec.slide_seconds > 0 ? spec.slide_seconds : spec.seconds;
      auto [it, inserted] =
          query_.window_seconds.insert({stream, spec.seconds});
      if (!inserted && it->second != spec.seconds) {
        return Status::BindError(
            "conflicting window lengths for stream '" + stream + "'");
      }
      auto [slide_it, slide_inserted] =
          query_.window_slide_seconds.insert({stream, slide});
      if (!slide_inserted && slide_it->second != slide) {
        return Status::BindError(
            "conflicting window slides for stream '" + stream + "'");
      }
    }
    for (const FromEntry& e : from_) {
      query_.window_seconds.insert(
          {e.stream, options_.default_window_seconds});
      query_.window_slide_seconds.insert(
          {e.stream, query_.window_seconds.at(e.stream)});
    }
    return Status::OK();
  }

  Status BindMatch() {
    const sql::MatchClause& match = *select_.match;
    if (from_.size() != 1) {
      return Status::BindError(
          "MATCH requires exactly one FROM stream");
    }
    if (!select_.group_by.empty() || select_.having != nullptr) {
      return Status::BindError(
          "MATCH cannot be combined with GROUP BY / HAVING");
    }
    if (select_.distinct) {
      return Status::BindError("MATCH cannot be combined with DISTINCT");
    }
    for (const sql::SelectItem& item : select_.items) {
      if (item.agg != sql::AggFunc::kNone) {
        return Status::BindError(
            "MATCH cannot be combined with aggregates");
      }
    }
    std::vector<BoundExprPtr> steps;
    for (const sql::ExprPtr& step : match.steps) {
      DT_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*step, combined_));
      steps.push_back(std::move(bound));
    }
    DT_ASSIGN_OR_RETURN(
        size_t key_index,
        ResolveColumn(match.partition_table, match.partition_column,
                      combined_));
    DT_ASSIGN_OR_RETURN(
        query_.pattern_node,
        LogicalPlan::Pattern(query_.spj_core, std::move(steps), key_index,
                             match.within_seconds));
    return Status::OK();
  }

  /// Output binding for MATCH queries: SELECT items are `*` or plain
  /// references to the pattern's output columns (the partition key and
  /// the per-step timestamps t1..tk).
  Status BindPatternOutput() {
    query_.has_aggregate = false;
    const Schema& pattern_schema = query_.pattern_node->schema();
    std::set<std::string> used_names;
    auto add_output = [&](size_t index, std::string preferred) {
      std::string name = std::move(preferred);
      if (!used_names.insert(name).second) {
        int suffix = 2;
        std::string base = name;
        do {
          name = base + StringPrintf("_%d", suffix++);
        } while (used_names.count(name) > 0);
        used_names.insert(name);
      }
      query_.projection.push_back(index);
      query_.projection_names.push_back(std::move(name));
    };
    for (const sql::SelectItem& item : select_.items) {
      if (item.is_star) {
        for (size_t i = 0; i < pattern_schema.num_fields(); ++i) {
          add_output(i, BaseName(pattern_schema.field(i).name));
        }
        continue;
      }
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::BindError(
            "MATCH SELECT items must be '*' or pattern output columns, "
            "got " +
            item.expr->ToString());
      }
      DT_ASSIGN_OR_RETURN(
          size_t index,
          ResolveColumn(item.expr->table, item.expr->column,
                        pattern_schema));
      add_output(index, item.alias.empty()
                            ? BaseName(pattern_schema.field(index).name)
                            : item.alias);
    }
    DT_ASSIGN_OR_RETURN(
        query_.plan,
        LogicalPlan::Project(query_.pattern_node, query_.projection,
                             query_.projection_names));
    return Status::OK();
  }

  Status BindOutput() {
    query_.distinct = select_.distinct;
    bool any_agg = false;
    for (const sql::SelectItem& item : select_.items) {
      if (item.agg != sql::AggFunc::kNone) any_agg = true;
    }
    query_.has_aggregate = any_agg || !select_.group_by.empty();
    if (query_.has_aggregate) return BindAggregateOutput();
    return BindProjectionOutput();
  }

  Status BindAggregateOutput() {
    // Resolve GROUP BY columns.
    std::set<size_t> group_indices;
    for (const sql::ExprPtr& g : select_.group_by) {
      if (g->kind != sql::Expr::Kind::kColumnRef) {
        return Status::BindError(
            "GROUP BY supports only column references, got " +
            g->ToString());
      }
      DT_ASSIGN_OR_RETURN(size_t index,
                          ResolveColumn(g->table, g->column, combined_));
      GroupBySpec spec;
      spec.input_index = index;
      spec.output_name = BaseName(combined_.field(index).name);
      if (group_indices.count(index) == 0) {
        group_indices.insert(index);
        query_.group_by.push_back(std::move(spec));
      }
    }
    // SELECT items: plain columns must be grouped; aggregates become specs.
    std::set<std::string> used_names;
    for (GroupBySpec& g : query_.group_by) {
      if (!used_names.insert(g.output_name).second) {
        g.output_name = combined_.field(g.input_index).name;
        used_names.insert(g.output_name);
      }
    }
    for (const sql::SelectItem& item : select_.items) {
      if (item.is_star) {
        return Status::BindError(
            "SELECT * cannot be combined with aggregates");
      }
      if (item.agg == sql::AggFunc::kNone) {
        if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
          return Status::BindError(
              "non-aggregate SELECT items must be column references in an "
              "aggregate query");
        }
        DT_ASSIGN_OR_RETURN(
            size_t index,
            ResolveColumn(item.expr->table, item.expr->column, combined_));
        bool grouped = group_indices.count(index) > 0;
        if (!grouped) {
          return Status::BindError("column " + item.expr->ToString() +
                                   " must appear in GROUP BY");
        }
        if (!item.alias.empty()) {
          for (GroupBySpec& g : query_.group_by) {
            if (g.input_index == index) g.output_name = item.alias;
          }
        }
        continue;
      }
      AggregateSpec spec;
      spec.func = item.agg;
      if (item.count_star) {
        spec.count_star = true;
      } else {
        if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
          return Status::BindError(
              "aggregate arguments must be column references, got " +
              item.expr->ToString());
        }
        DT_ASSIGN_OR_RETURN(
            spec.input_index,
            ResolveColumn(item.expr->table, item.expr->column, combined_));
      }
      spec.output_name =
          item.alias.empty()
              ? ToLowerAscii(sql::AggFuncToString(item.agg))
              : item.alias;
      int suffix = 2;
      std::string base = spec.output_name;
      while (!used_names.insert(spec.output_name).second) {
        spec.output_name = base + StringPrintf("_%d", suffix++);
      }
      query_.aggregates.push_back(std::move(spec));
    }
    DT_ASSIGN_OR_RETURN(
        query_.plan,
        LogicalPlan::Aggregate(query_.spj_core, query_.group_by,
                               query_.aggregates));
    if (select_.having != nullptr) {
      // HAVING references the aggregate's output columns (group names
      // and aggregate aliases).
      DT_ASSIGN_OR_RETURN(
          query_.having,
          BindExpr(*select_.having, query_.plan->schema()));
      DT_ASSIGN_OR_RETURN(
          query_.plan, LogicalPlan::Filter(query_.plan, query_.having));
    }
    return Status::OK();
  }

  Status BindProjectionOutput() {
    // First pass: does the SELECT list reduce to plain column
    // references? If so we keep the π form, which the shadow evaluator
    // can mirror on synopses; otherwise we build a Compute node.
    bool all_columns = true;
    for (const sql::SelectItem& item : select_.items) {
      if (item.is_star) continue;
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        all_columns = false;
      }
    }

    std::set<std::string> used_names;
    auto unique_name = [&](std::string preferred, size_t index,
                           bool has_index) {
      std::string name = std::move(preferred);
      if (!used_names.insert(name).second) {
        if (has_index) {
          name = combined_.field(index).name;  // fall back to qualified
        } else {
          int suffix = 2;
          std::string base = name;
          do {
            name = base + StringPrintf("_%d", suffix++);
          } while (used_names.count(name) > 0);
        }
        used_names.insert(name);
      }
      return name;
    };

    if (all_columns) {
      auto add_output = [&](size_t index, std::string preferred) {
        query_.projection.push_back(index);
        query_.projection_names.push_back(
            unique_name(std::move(preferred), index, true));
      };
      for (const sql::SelectItem& item : select_.items) {
        if (item.is_star) {
          for (size_t i = 0; i < combined_.num_fields(); ++i) {
            add_output(i, BaseName(combined_.field(i).name));
          }
          continue;
        }
        DT_ASSIGN_OR_RETURN(
            size_t index,
            ResolveColumn(item.expr->table, item.expr->column, combined_));
        add_output(index, item.alias.empty()
                              ? BaseName(combined_.field(index).name)
                              : item.alias);
      }
      DT_ASSIGN_OR_RETURN(
          query_.plan,
          LogicalPlan::Project(query_.spj_core, query_.projection,
                               query_.projection_names));
      return Status::OK();
    }

    // Computed projection (e.g. SELECT a + b AS x): bind every item as an
    // expression over the combined schema.
    query_.computed_projection = true;
    size_t expr_counter = 1;
    for (const sql::SelectItem& item : select_.items) {
      if (item.is_star) {
        for (size_t i = 0; i < combined_.num_fields(); ++i) {
          query_.projection_exprs.push_back(BoundExpr::Column(
              i, combined_.field(i).type));
          query_.projection_names.push_back(unique_name(
              BaseName(combined_.field(i).name), i, true));
        }
        continue;
      }
      DT_ASSIGN_OR_RETURN(BoundExprPtr bound,
                          BindExpr(*item.expr, combined_));
      std::string preferred = item.alias;
      if (preferred.empty()) {
        preferred =
            item.expr->kind == sql::Expr::Kind::kColumnRef
                ? BaseName(item.expr->column)
                : StringPrintf("expr%zu", expr_counter);
      }
      ++expr_counter;
      query_.projection_names.push_back(
          unique_name(std::move(preferred), 0, false));
      query_.projection_exprs.push_back(std::move(bound));
    }
    DT_ASSIGN_OR_RETURN(
        query_.plan,
        LogicalPlan::Compute(query_.spj_core, query_.projection_exprs,
                             query_.projection_names));
    return Status::OK();
  }

  struct EquiPred {
    size_t left;   // combined-schema index
    size_t right;  // combined-schema index
    bool placed;
  };

  const sql::SelectStatement& select_;
  const Catalog& catalog_;
  const BindOptions& options_;

  std::vector<FromEntry> from_;
  Schema combined_;
  std::map<size_t, std::vector<BoundExprPtr>> pushed_filters_;
  std::vector<EquiPred> equi_preds_;
  std::vector<BoundExprPtr> residuals_;
  BoundQuery query_;
};

}  // namespace

Result<BoundQuery> BindSelect(const sql::SelectStatement& select,
                              const Catalog& catalog,
                              const BindOptions& options) {
  return SelectBinder(select, catalog, options).Bind();
}

Result<BoundQuery> BindSetOp(const sql::SetOpStatement& set_op,
                             const Catalog& catalog,
                             const BindOptions& options) {
  DT_ASSIGN_OR_RETURN(BoundQuery lhs,
                      BindSelect(*set_op.lhs, catalog, options));
  DT_ASSIGN_OR_RETURN(BoundQuery rhs,
                      BindSelect(*set_op.rhs, catalog, options));
  if (lhs.has_aggregate || rhs.has_aggregate) {
    return Status::BindError(
        "UNION ALL / EXCEPT over aggregate queries is not supported");
  }
  if (lhs.is_pattern() || rhs.is_pattern()) {
    return Status::BindError(
        "UNION ALL / EXCEPT over MATCH queries is not supported");
  }
  if (lhs.distinct || rhs.distinct) {
    return Status::BindError(
        "UNION ALL / EXCEPT over DISTINCT queries is not supported");
  }
  if (!lhs.sort_keys.empty() || !rhs.sort_keys.empty() ||
      lhs.limit >= 0 || rhs.limit >= 0) {
    return Status::BindError(
        "ORDER BY / LIMIT inside set-operation branches is not "
        "supported");
  }
  BoundQuery out;
  if (set_op.op == sql::SetOpKind::kUnionAll) {
    DT_ASSIGN_OR_RETURN(out.plan,
                        LogicalPlan::UnionAll(lhs.plan, rhs.plan));
  } else {
    DT_ASSIGN_OR_RETURN(out.plan,
                        LogicalPlan::SetDifference(lhs.plan, rhs.plan));
  }
  out.spj_core = out.plan;
  out.projection_names.clear();
  for (const Field& f : out.plan->schema().fields()) {
    out.projection_names.push_back(f.name);
  }
  out.window_seconds = lhs.window_seconds;
  out.window_slide_seconds = lhs.window_slide_seconds;
  for (const auto& [stream, seconds] : rhs.window_seconds) {
    auto [it, inserted] = out.window_seconds.insert({stream, seconds});
    if (!inserted && it->second != seconds) {
      return Status::BindError("conflicting window lengths for stream '" +
                               stream + "' across set-operation branches");
    }
  }
  for (const auto& [stream, slide] : rhs.window_slide_seconds) {
    auto [it, inserted] =
        out.window_slide_seconds.insert({stream, slide});
    if (!inserted && it->second != slide) {
      return Status::BindError("conflicting window slides for stream '" +
                               stream + "' across set-operation branches");
    }
  }
  out.from_streams = lhs.from_streams;
  out.from_aliases = lhs.from_aliases;
  for (size_t i = 0; i < rhs.from_streams.size(); ++i) {
    out.from_streams.push_back(rhs.from_streams[i]);
    out.from_aliases.push_back(rhs.from_aliases[i]);
  }
  return out;
}

Result<BoundQuery> BindStatement(const sql::Statement& statement,
                                 const Catalog& catalog,
                                 const BindOptions& options) {
  switch (statement.kind) {
    case sql::Statement::Kind::kSelect:
      return BindSelect(*statement.select, catalog, options);
    case sql::Statement::Kind::kSetOp:
      return BindSetOp(*statement.set_op, catalog, options);
    case sql::Statement::Kind::kCreateStream:
      return Status::BindError(
          "CREATE STREAM is a DDL statement; register it with the catalog");
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace datatriage::plan
