#ifndef DATATRIAGE_PLAN_EXPRESSION_H_
#define DATATRIAGE_PLAN_EXPRESSION_H_

#include <memory>
#include <string>

#include "src/catalog/schema.h"
#include "src/common/result.h"
#include "src/sql/ast.h"
#include "src/tuple/tuple.h"

namespace datatriage::plan {

class BoundExpr;
using BoundExprPtr = std::shared_ptr<const BoundExpr>;

/// Scalar expression with column references resolved to positional indices
/// against a specific input schema. Immutable and shareable across plan
/// nodes (the differential rewrite duplicates subtrees heavily).
///
/// Type checking happens at bind time; `Evaluate` is the hot path and
/// assumes well-typed inputs (violations are programming errors and
/// DT_CHECK-fail).
class BoundExpr {
 public:
  enum class Kind { kColumn, kLiteral, kUnary, kBinary };

  static BoundExprPtr Column(size_t index, FieldType type);
  static BoundExprPtr Literal(Value value);
  static BoundExprPtr Unary(sql::UnaryOp op, BoundExprPtr operand);
  static BoundExprPtr Binary(sql::BinaryOp op, BoundExprPtr lhs,
                             BoundExprPtr rhs);

  Kind kind() const { return kind_; }
  size_t column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  sql::UnaryOp unary_op() const { return unary_op_; }
  sql::BinaryOp binary_op() const { return binary_op_; }
  const BoundExprPtr& lhs() const { return lhs_; }
  const BoundExprPtr& rhs() const { return rhs_; }

  /// Static result type. Comparisons and logical connectives yield kInt64
  /// (0/1); arithmetic follows numeric promotion.
  FieldType result_type() const { return result_type_; }

  /// Evaluates against one input row.
  Value Evaluate(const Tuple& input) const;

  /// Convenience: evaluates and interprets the result as a SQL condition
  /// (non-zero numeric = true).
  bool EvaluatesToTrue(const Tuple& input) const;

  /// Remaps column indices through `index_map` (new_index =
  /// index_map[old_index]); used when a predicate moves across a
  /// projection or join boundary. All referenced indices must be mapped.
  BoundExprPtr RemapColumns(const std::vector<size_t>& index_map) const;

  std::string ToString() const;

 private:
  BoundExpr() = default;

  Kind kind_ = Kind::kLiteral;
  size_t column_index_ = 0;
  Value literal_;
  sql::UnaryOp unary_op_ = sql::UnaryOp::kNot;
  sql::BinaryOp binary_op_ = sql::BinaryOp::kEq;
  BoundExprPtr lhs_;
  BoundExprPtr rhs_;
  FieldType result_type_ = FieldType::kInt64;
};

/// Resolves `expr` (an AST expression) against `schema`, whose field names
/// are qualified as "<stream>.<column>". Unqualified references resolve
/// when the suffix matches exactly one field. Performs type checking.
Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const Schema& schema);

/// Resolves a (possibly qualified) column name against a qualified schema,
/// returning its index. Shared by the binder and the aggregate planner.
Result<size_t> ResolveColumn(const std::string& table,
                             const std::string& column,
                             const Schema& schema);

}  // namespace datatriage::plan

#endif  // DATATRIAGE_PLAN_EXPRESSION_H_
