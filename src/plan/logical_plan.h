#ifndef DATATRIAGE_PLAN_LOGICAL_PLAN_H_
#define DATATRIAGE_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/result.h"
#include "src/plan/expression.h"
#include "src/sql/ast.h"

namespace datatriage::plan {

/// Which substream a scan leaf reads. The Data Triage rewrite splits every
/// base stream R into R_kept (tuples the engine processed) and R_dropped
/// (tuples shed by the triage queue); see paper Sec. 4.3.
enum class Channel { kBase, kKept, kDropped };

std::string_view ChannelToString(Channel channel);

/// One aggregate computation in an Aggregate node.
struct AggregateSpec {
  sql::AggFunc func = sql::AggFunc::kCount;
  /// COUNT(*): no input column.
  bool count_star = false;
  /// Input column index (when !count_star).
  size_t input_index = 0;
  std::string output_name;

  /// Result type given the input column type.
  FieldType ResultType(FieldType input_type) const;
};

/// Named group-by column.
struct GroupBySpec {
  size_t input_index = 0;
  std::string output_name;
};

class LogicalPlan;
using PlanPtr = std::shared_ptr<const LogicalPlan>;

/// Immutable relational-algebra plan node. Subtrees are shared via
/// shared_ptr: the differential rewrite's recurrence expansion (paper
/// Sec. 4.2) deliberately reuses intermediate join results, and sharing
/// makes that reuse explicit in the plan DAG.
///
/// Plans are built through factory functions that compute output schemas
/// and validate arity/type preconditions, returning Status on misuse.
class LogicalPlan {
 public:
  enum class Kind {
    kEmpty,          // leaf: the empty relation with a known schema
    kStreamScan,     // leaf: one channel of a registered stream
    kFilter,         // σ
    kProject,        // π (multiset projection)
    kCompute,        // generalized projection: scalar expressions per row
    kJoin,           // equijoin; with no keys and no residual, ⨯
    kUnionAll,       // multiset +
    kSetDifference,  // multiset −
    kAggregate,      // γ (hash group-by)
    kPattern,        // MATCH sequence over a single stream's window
  };

  // ------------------------------------------------------------------
  // Factories.
  // ------------------------------------------------------------------

  /// Empty relation with the given schema (arises during differential
  /// rewriting, e.g. R+ for pure streams).
  static PlanPtr Empty(Schema schema);

  static PlanPtr StreamScan(std::string stream, Channel channel,
                            Schema schema);

  /// σ_predicate(input). The predicate is bound against input->schema().
  static Result<PlanPtr> Filter(PlanPtr input, BoundExprPtr predicate);

  /// π(input): keeps `indices` in order, renaming to `names` (same size).
  static Result<PlanPtr> Project(PlanPtr input, std::vector<size_t> indices,
                                 std::vector<std::string> names);

  /// Generalized projection: one output column per expression (bound
  /// against input->schema()), named by `names`. Like π it is a per-tuple
  /// map, so it distributes channel-wise under the differential rewrite —
  /// but it has no synopsis-algebra counterpart, so shadow evaluation
  /// rejects it.
  static Result<PlanPtr> Compute(PlanPtr input,
                                 std::vector<BoundExprPtr> exprs,
                                 std::vector<std::string> names);

  /// Equijoin on pairwise-equal key columns (left index, right index);
  /// `residual` (nullable) is a predicate over the concatenated schema
  /// applied to surviving pairs. No keys + no residual = cross product.
  static Result<PlanPtr> Join(
      PlanPtr left, PlanPtr right,
      std::vector<std::pair<size_t, size_t>> keys,
      BoundExprPtr residual = nullptr);

  /// Multiset union; schemas must have equal field types (names may
  /// differ; the left side's names win).
  static Result<PlanPtr> UnionAll(PlanPtr left, PlanPtr right);

  /// Multiset difference (monus); same schema rules as UnionAll.
  static Result<PlanPtr> SetDifference(PlanPtr left, PlanPtr right);

  static Result<PlanPtr> Aggregate(PlanPtr input,
                                   std::vector<GroupBySpec> group_by,
                                   std::vector<AggregateSpec> aggregates);

  /// MATCH sequence operator (DESIGN.md §17): emits one output row per
  /// ordered subsequence of the input window whose tuples (i) all carry
  /// the same value in key column `key_index`, (ii) satisfy `steps[j]`
  /// at position j, and (iii) span at most `within_seconds` from first
  /// to last timestamp. Output schema: the key column (name and type
  /// preserved) followed by one kDouble timestamp column per step
  /// ("t1".."tk"). Step predicates are bound against input->schema().
  static Result<PlanPtr> Pattern(PlanPtr input,
                                 std::vector<BoundExprPtr> steps,
                                 size_t key_index, double within_seconds);

  // ------------------------------------------------------------------
  // Accessors.
  // ------------------------------------------------------------------

  Kind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i) const { return children_.at(i); }

  // kStreamScan.
  const std::string& stream() const { return stream_; }
  Channel channel() const { return channel_; }

  // kFilter / kJoin residual.
  const BoundExprPtr& predicate() const { return predicate_; }

  // kProject.
  const std::vector<size_t>& projection() const { return projection_; }

  // kCompute.
  const std::vector<BoundExprPtr>& compute_exprs() const {
    return compute_exprs_;
  }

  // kJoin.
  const std::vector<std::pair<size_t, size_t>>& join_keys() const {
    return join_keys_;
  }

  // kAggregate.
  const std::vector<GroupBySpec>& group_by() const { return group_by_; }
  const std::vector<AggregateSpec>& aggregates() const {
    return aggregates_;
  }

  // kPattern.
  const std::vector<BoundExprPtr>& pattern_steps() const {
    return pattern_steps_;
  }
  size_t pattern_key_index() const { return pattern_key_index_; }
  double pattern_within_seconds() const { return pattern_within_seconds_; }

  /// True if this node or any descendant is a kPattern node; pattern
  /// plans force the scalar executor and bypass the shadow algebra.
  bool ContainsPattern() const;

  /// True if no kStreamScan leaf below this node reads `channel`.
  bool IsFreeOfChannel(Channel channel) const;

  /// Names of the distinct streams scanned below this node, in first-visit
  /// order.
  std::vector<std::string> ScannedStreams() const;

  /// Multi-line indented tree rendering for tests and EXPLAIN-style
  /// diagnostics.
  std::string ToString() const;

 private:
  LogicalPlan() = default;

  void AppendTo(std::string* out, int indent) const;

  Kind kind_ = Kind::kEmpty;
  Schema schema_;
  std::vector<PlanPtr> children_;
  std::string stream_;
  Channel channel_ = Channel::kBase;
  BoundExprPtr predicate_;
  std::vector<size_t> projection_;
  std::vector<BoundExprPtr> compute_exprs_;
  std::vector<std::pair<size_t, size_t>> join_keys_;
  std::vector<GroupBySpec> group_by_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<BoundExprPtr> pattern_steps_;
  size_t pattern_key_index_ = 0;
  double pattern_within_seconds_ = 0.0;
};

}  // namespace datatriage::plan

#endif  // DATATRIAGE_PLAN_LOGICAL_PLAN_H_
