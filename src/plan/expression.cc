#include "src/plan/expression.h"

#include <cmath>

#include "src/common/string_util.h"

namespace datatriage::plan {

namespace {

using sql::BinaryOp;
using sql::UnaryOp;

bool ValueIsTrue(const Value& v) {
  if (v.is_string()) return !v.str().empty();
  return v.AsDouble() != 0.0;
}

Value BoolValue(bool b) { return Value::Int64(b ? 1 : 0); }

}  // namespace

BoundExprPtr BoundExpr::Column(size_t index, FieldType type) {
  auto e = std::shared_ptr<BoundExpr>(new BoundExpr());
  e->kind_ = Kind::kColumn;
  e->column_index_ = index;
  e->result_type_ = type;
  return e;
}

BoundExprPtr BoundExpr::Literal(Value value) {
  auto e = std::shared_ptr<BoundExpr>(new BoundExpr());
  e->kind_ = Kind::kLiteral;
  e->result_type_ = value.type();
  e->literal_ = std::move(value);
  return e;
}

BoundExprPtr BoundExpr::Unary(UnaryOp op, BoundExprPtr operand) {
  auto e = std::shared_ptr<BoundExpr>(new BoundExpr());
  e->kind_ = Kind::kUnary;
  e->unary_op_ = op;
  e->result_type_ = op == UnaryOp::kNot ? FieldType::kInt64
                                        : operand->result_type();
  e->lhs_ = std::move(operand);
  return e;
}

BoundExprPtr BoundExpr::Binary(BinaryOp op, BoundExprPtr lhs,
                               BoundExprPtr rhs) {
  auto e = std::shared_ptr<BoundExpr>(new BoundExpr());
  e->kind_ = Kind::kBinary;
  e->binary_op_ = op;
  if (IsComparisonOp(op) || op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    e->result_type_ = FieldType::kInt64;
  } else if (lhs->result_type() == FieldType::kInt64 &&
             rhs->result_type() == FieldType::kInt64) {
    e->result_type_ = FieldType::kInt64;
  } else {
    e->result_type_ = FieldType::kDouble;
  }
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

Value BoundExpr::Evaluate(const Tuple& input) const {
  switch (kind_) {
    case Kind::kColumn:
      return input.value(column_index_);
    case Kind::kLiteral:
      return literal_;
    case Kind::kUnary: {
      Value operand = lhs_->Evaluate(input);
      if (unary_op_ == UnaryOp::kNot) {
        return BoolValue(!ValueIsTrue(operand));
      }
      // Negation.
      if (operand.is_int64()) return Value::Int64(-operand.int64());
      DT_CHECK(operand.is_numeric()) << "negating non-numeric value";
      return Value::Double(-operand.AsDouble());
    }
    case Kind::kBinary: {
      // Short-circuiting connectives first.
      if (binary_op_ == BinaryOp::kAnd) {
        if (!ValueIsTrue(lhs_->Evaluate(input))) return BoolValue(false);
        return BoolValue(ValueIsTrue(rhs_->Evaluate(input)));
      }
      if (binary_op_ == BinaryOp::kOr) {
        if (ValueIsTrue(lhs_->Evaluate(input))) return BoolValue(true);
        return BoolValue(ValueIsTrue(rhs_->Evaluate(input)));
      }
      Value a = lhs_->Evaluate(input);
      Value b = rhs_->Evaluate(input);
      switch (binary_op_) {
        case BinaryOp::kEq:
          return BoolValue(a == b);
        case BinaryOp::kNotEq:
          return BoolValue(a != b);
        case BinaryOp::kLess:
          return BoolValue(a < b);
        case BinaryOp::kLessEq:
          return BoolValue(!(b < a));
        case BinaryOp::kGreater:
          return BoolValue(b < a);
        case BinaryOp::kGreaterEq:
          return BoolValue(!(a < b));
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv: {
          DT_CHECK(a.is_numeric() && b.is_numeric())
              << "arithmetic on non-numeric values";
          if (a.is_int64() && b.is_int64() &&
              binary_op_ != BinaryOp::kDiv) {
            int64_t x = a.int64(), y = b.int64();
            switch (binary_op_) {
              case BinaryOp::kAdd:
                return Value::Int64(x + y);
              case BinaryOp::kSub:
                return Value::Int64(x - y);
              default:
                return Value::Int64(x * y);
            }
          }
          double x = a.AsDouble(), y = b.AsDouble();
          switch (binary_op_) {
            case BinaryOp::kAdd:
              return Value::Double(x + y);
            case BinaryOp::kSub:
              return Value::Double(x - y);
            case BinaryOp::kMul:
              return Value::Double(x * y);
            default:
              return Value::Double(y == 0.0 ? 0.0 : x / y);
          }
        }
        default:
          break;
      }
      DT_CHECK(false) << "unhandled binary op";
      return Value();
    }
  }
  DT_CHECK(false) << "unhandled expression kind";
  return Value();
}

bool BoundExpr::EvaluatesToTrue(const Tuple& input) const {
  return ValueIsTrue(Evaluate(input));
}

BoundExprPtr BoundExpr::RemapColumns(
    const std::vector<size_t>& index_map) const {
  switch (kind_) {
    case Kind::kColumn:
      DT_CHECK_LT(column_index_, index_map.size())
          << "column index out of range in remap";
      return Column(index_map[column_index_], result_type_);
    case Kind::kLiteral:
      return Literal(literal_);
    case Kind::kUnary:
      return Unary(unary_op_, lhs_->RemapColumns(index_map));
    case Kind::kBinary:
      return Binary(binary_op_, lhs_->RemapColumns(index_map),
                    rhs_->RemapColumns(index_map));
  }
  DT_CHECK(false) << "unhandled expression kind";
  return nullptr;
}

std::string BoundExpr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return StringPrintf("$%zu", column_index_);
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kUnary:
      return std::string(sql::UnaryOpToString(unary_op_)) + "(" +
             lhs_->ToString() + ")";
    case Kind::kBinary:
      return "(" + lhs_->ToString() + " " +
             std::string(sql::BinaryOpToString(binary_op_)) + " " +
             rhs_->ToString() + ")";
  }
  return "?";
}

Result<size_t> ResolveColumn(const std::string& table,
                             const std::string& column,
                             const Schema& schema) {
  if (!table.empty()) {
    const std::string qualified = table + "." + column;
    DT_ASSIGN_OR_RETURN(size_t index, schema.FieldIndex(qualified));
    return index;
  }
  // Unqualified: an exact full-name match wins (supports schemas whose
  // field names themselves contain dots, e.g. "r.a" referenced as a
  // quoted identifier); otherwise match on the suffix after '.', which
  // must be unambiguous.
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (schema.field(i).name == column) return i;
  }
  size_t found = schema.num_fields();
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    const std::string& name = schema.field(i).name;
    size_t dot = name.rfind('.');
    const std::string_view base =
        dot == std::string::npos
            ? std::string_view(name)
            : std::string_view(name).substr(dot + 1);
    if (base == column) {
      if (found != schema.num_fields()) {
        return Status::BindError("ambiguous column reference '" + column +
                                 "' in schema [" + schema.ToString() + "]");
      }
      found = i;
    }
  }
  if (found == schema.num_fields()) {
    return Status::BindError("unknown column '" + column + "' in schema [" +
                             schema.ToString() + "]");
  }
  return found;
}

namespace {

Result<BoundExprPtr> BindExprInternal(const sql::Expr& expr,
                                      const Schema& schema) {
  switch (expr.kind) {
    case sql::Expr::Kind::kColumnRef: {
      DT_ASSIGN_OR_RETURN(size_t index,
                          ResolveColumn(expr.table, expr.column, schema));
      return BoundExpr::Column(index, schema.field(index).type);
    }
    case sql::Expr::Kind::kLiteral:
      return BoundExpr::Literal(expr.literal);
    case sql::Expr::Kind::kUnary: {
      DT_ASSIGN_OR_RETURN(BoundExprPtr operand,
                          BindExprInternal(*expr.lhs, schema));
      if (expr.unary_op == sql::UnaryOp::kNegate &&
          operand->result_type() == FieldType::kString) {
        return Status::BindError("cannot negate a string expression");
      }
      return BoundExpr::Unary(expr.unary_op, std::move(operand));
    }
    case sql::Expr::Kind::kBinary: {
      DT_ASSIGN_OR_RETURN(BoundExprPtr lhs,
                          BindExprInternal(*expr.lhs, schema));
      DT_ASSIGN_OR_RETURN(BoundExprPtr rhs,
                          BindExprInternal(*expr.rhs, schema));
      const bool lhs_string = lhs->result_type() == FieldType::kString;
      const bool rhs_string = rhs->result_type() == FieldType::kString;
      if (sql::IsComparisonOp(expr.binary_op)) {
        if (lhs_string != rhs_string) {
          return Status::BindError(
              "cannot compare string with numeric in " + expr.ToString());
        }
      } else if (expr.binary_op != sql::BinaryOp::kAnd &&
                 expr.binary_op != sql::BinaryOp::kOr) {
        if (lhs_string || rhs_string) {
          return Status::BindError("arithmetic on string operand in " +
                                   expr.ToString());
        }
      }
      return BoundExpr::Binary(expr.binary_op, std::move(lhs),
                               std::move(rhs));
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

}  // namespace

Result<BoundExprPtr> BindExpr(const sql::Expr& expr, const Schema& schema) {
  return BindExprInternal(expr, schema);
}

}  // namespace datatriage::plan
