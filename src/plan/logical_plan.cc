#include "src/plan/logical_plan.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace datatriage::plan {

std::string_view ChannelToString(Channel channel) {
  switch (channel) {
    case Channel::kBase:
      return "base";
    case Channel::kKept:
      return "kept";
    case Channel::kDropped:
      return "dropped";
  }
  return "?";
}

FieldType AggregateSpec::ResultType(FieldType input_type) const {
  switch (func) {
    case sql::AggFunc::kCount:
      return FieldType::kInt64;
    case sql::AggFunc::kAvg:
      return FieldType::kDouble;
    case sql::AggFunc::kSum:
    case sql::AggFunc::kMin:
    case sql::AggFunc::kMax:
      return input_type;
    case sql::AggFunc::kNone:
      break;
  }
  return input_type;
}

namespace {

/// Schemas are union/difference-compatible when field types match
/// positionally.
Status CheckUnionCompatible(const Schema& left, const Schema& right,
                            const char* op_name) {
  if (left.num_fields() != right.num_fields()) {
    return Status::InvalidArgument(
        StringPrintf("%s inputs have different arity (%zu vs %zu)", op_name,
                     left.num_fields(), right.num_fields()));
  }
  for (size_t i = 0; i < left.num_fields(); ++i) {
    if (left.field(i).type != right.field(i).type) {
      return Status::InvalidArgument(
          StringPrintf("%s inputs disagree on column %zu type (%s vs %s)",
                       op_name, i,
                       std::string(FieldTypeToString(left.field(i).type))
                           .c_str(),
                       std::string(FieldTypeToString(right.field(i).type))
                           .c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

PlanPtr LogicalPlan::Empty(Schema schema) {
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kEmpty;
  p->schema_ = std::move(schema);
  return p;
}

PlanPtr LogicalPlan::StreamScan(std::string stream, Channel channel,
                                Schema schema) {
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kStreamScan;
  p->stream_ = std::move(stream);
  p->channel_ = channel;
  p->schema_ = std::move(schema);
  return p;
}

Result<PlanPtr> LogicalPlan::Filter(PlanPtr input, BoundExprPtr predicate) {
  if (input == nullptr || predicate == nullptr) {
    return Status::InvalidArgument("Filter requires an input and predicate");
  }
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kFilter;
  p->schema_ = input->schema();
  p->children_.push_back(std::move(input));
  p->predicate_ = std::move(predicate);
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::Project(PlanPtr input,
                                     std::vector<size_t> indices,
                                     std::vector<std::string> names) {
  if (input == nullptr) {
    return Status::InvalidArgument("Project requires an input");
  }
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "Project indices and names must have equal length");
  }
  Schema schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= input->schema().num_fields()) {
      return Status::OutOfRange(
          StringPrintf("Project index %zu out of range for schema [%s]",
                       indices[i], input->schema().ToString().c_str()));
    }
    DT_RETURN_IF_ERROR(schema.AddField(
        Field{names[i], input->schema().field(indices[i]).type}));
  }
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kProject;
  p->schema_ = std::move(schema);
  p->children_.push_back(std::move(input));
  p->projection_ = std::move(indices);
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::Compute(PlanPtr input,
                                     std::vector<BoundExprPtr> exprs,
                                     std::vector<std::string> names) {
  if (input == nullptr) {
    return Status::InvalidArgument("Compute requires an input");
  }
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument(
        "Compute expressions and names must have equal length");
  }
  Schema schema;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (exprs[i] == nullptr) {
      return Status::InvalidArgument("Compute expression is null");
    }
    DT_RETURN_IF_ERROR(
        schema.AddField(Field{names[i], exprs[i]->result_type()}));
  }
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kCompute;
  p->schema_ = std::move(schema);
  p->children_.push_back(std::move(input));
  p->compute_exprs_ = std::move(exprs);
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::Join(
    PlanPtr left, PlanPtr right,
    std::vector<std::pair<size_t, size_t>> keys, BoundExprPtr residual) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("Join requires two inputs");
  }
  for (const auto& [l, r] : keys) {
    if (l >= left->schema().num_fields()) {
      return Status::OutOfRange(
          StringPrintf("join key %zu out of range on left", l));
    }
    if (r >= right->schema().num_fields()) {
      return Status::OutOfRange(
          StringPrintf("join key %zu out of range on right", r));
    }
  }
  DT_ASSIGN_OR_RETURN(Schema schema,
                      left->schema().Concat(right->schema()));
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kJoin;
  p->schema_ = std::move(schema);
  p->children_.push_back(std::move(left));
  p->children_.push_back(std::move(right));
  p->join_keys_ = std::move(keys);
  p->predicate_ = std::move(residual);
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::UnionAll(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("UnionAll requires two inputs");
  }
  DT_RETURN_IF_ERROR(
      CheckUnionCompatible(left->schema(), right->schema(), "UNION ALL"));
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kUnionAll;
  p->schema_ = left->schema();
  p->children_.push_back(std::move(left));
  p->children_.push_back(std::move(right));
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::SetDifference(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("SetDifference requires two inputs");
  }
  DT_RETURN_IF_ERROR(
      CheckUnionCompatible(left->schema(), right->schema(), "EXCEPT"));
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kSetDifference;
  p->schema_ = left->schema();
  p->children_.push_back(std::move(left));
  p->children_.push_back(std::move(right));
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::Aggregate(PlanPtr input,
                                       std::vector<GroupBySpec> group_by,
                                       std::vector<AggregateSpec> aggregates) {
  if (input == nullptr) {
    return Status::InvalidArgument("Aggregate requires an input");
  }
  Schema schema;
  for (const GroupBySpec& g : group_by) {
    if (g.input_index >= input->schema().num_fields()) {
      return Status::OutOfRange(
          StringPrintf("group-by index %zu out of range", g.input_index));
    }
    DT_RETURN_IF_ERROR(schema.AddField(
        Field{g.output_name, input->schema().field(g.input_index).type}));
  }
  for (const AggregateSpec& a : aggregates) {
    FieldType input_type = FieldType::kInt64;
    if (!a.count_star) {
      if (a.input_index >= input->schema().num_fields()) {
        return Status::OutOfRange(
            StringPrintf("aggregate index %zu out of range", a.input_index));
      }
      input_type = input->schema().field(a.input_index).type;
      if (a.func != sql::AggFunc::kMin && a.func != sql::AggFunc::kMax &&
          a.func != sql::AggFunc::kCount &&
          input_type == FieldType::kString) {
        return Status::InvalidArgument(
            "SUM/AVG require a numeric input column");
      }
    }
    DT_RETURN_IF_ERROR(
        schema.AddField(Field{a.output_name, a.ResultType(input_type)}));
  }
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kAggregate;
  p->schema_ = std::move(schema);
  p->children_.push_back(std::move(input));
  p->group_by_ = std::move(group_by);
  p->aggregates_ = std::move(aggregates);
  return PlanPtr(p);
}

Result<PlanPtr> LogicalPlan::Pattern(PlanPtr input,
                                     std::vector<BoundExprPtr> steps,
                                     size_t key_index,
                                     double within_seconds) {
  if (input == nullptr) {
    return Status::InvalidArgument("Pattern requires an input");
  }
  if (steps.size() < 2) {
    return Status::InvalidArgument(
        "Pattern requires at least two step predicates");
  }
  for (const BoundExprPtr& s : steps) {
    if (s == nullptr) {
      return Status::InvalidArgument("Pattern step predicate is null");
    }
  }
  if (key_index >= input->schema().num_fields()) {
    return Status::OutOfRange(
        StringPrintf("Pattern key index %zu out of range for schema [%s]",
                     key_index, input->schema().ToString().c_str()));
  }
  if (!(within_seconds > 0)) {
    return Status::InvalidArgument("Pattern WITHIN must be positive");
  }
  Schema schema;
  DT_RETURN_IF_ERROR(
      schema.AddField(input->schema().field(key_index)));
  for (size_t i = 0; i < steps.size(); ++i) {
    DT_RETURN_IF_ERROR(schema.AddField(
        Field{StringPrintf("t%zu", i + 1), FieldType::kDouble}));
  }
  auto p = std::shared_ptr<LogicalPlan>(new LogicalPlan());
  p->kind_ = Kind::kPattern;
  p->schema_ = std::move(schema);
  p->children_.push_back(std::move(input));
  p->pattern_steps_ = std::move(steps);
  p->pattern_key_index_ = key_index;
  p->pattern_within_seconds_ = within_seconds;
  return PlanPtr(p);
}

bool LogicalPlan::ContainsPattern() const {
  if (kind_ == Kind::kPattern) return true;
  for (const PlanPtr& c : children_) {
    if (c->ContainsPattern()) return true;
  }
  return false;
}

bool LogicalPlan::IsFreeOfChannel(Channel channel) const {
  if (kind_ == Kind::kStreamScan && channel_ == channel) return false;
  for (const PlanPtr& c : children_) {
    if (!c->IsFreeOfChannel(channel)) return false;
  }
  return true;
}

std::vector<std::string> LogicalPlan::ScannedStreams() const {
  std::vector<std::string> streams;
  if (kind_ == Kind::kStreamScan) streams.push_back(stream_);
  for (const PlanPtr& c : children_) {
    for (std::string& s : c->ScannedStreams()) {
      if (std::find(streams.begin(), streams.end(), s) == streams.end()) {
        streams.push_back(std::move(s));
      }
    }
  }
  return streams;
}

void LogicalPlan::AppendTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (kind_) {
    case Kind::kEmpty:
      *out += "Empty";
      break;
    case Kind::kStreamScan:
      *out += "Scan " + stream_ + "[" +
              std::string(ChannelToString(channel_)) + "]";
      break;
    case Kind::kFilter:
      *out += "Filter " + predicate_->ToString();
      break;
    case Kind::kProject: {
      *out += "Project {";
      for (size_t i = 0; i < projection_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += StringPrintf("$%zu AS %s", projection_[i],
                             schema_.field(i).name.c_str());
      }
      *out += "}";
      break;
    }
    case Kind::kCompute: {
      *out += "Compute {";
      for (size_t i = 0; i < compute_exprs_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += compute_exprs_[i]->ToString() + " AS " +
                schema_.field(i).name;
      }
      *out += "}";
      break;
    }
    case Kind::kJoin: {
      *out += "Join";
      if (join_keys_.empty() && predicate_ == nullptr) {
        *out += " (cross)";
      }
      for (size_t i = 0; i < join_keys_.size(); ++i) {
        *out += StringPrintf("%s L$%zu=R$%zu", i == 0 ? " on" : " and",
                             join_keys_[i].first, join_keys_[i].second);
      }
      if (predicate_ != nullptr) {
        *out += " residual " + predicate_->ToString();
      }
      break;
    }
    case Kind::kUnionAll:
      *out += "UnionAll";
      break;
    case Kind::kSetDifference:
      *out += "SetDifference";
      break;
    case Kind::kAggregate: {
      *out += "Aggregate group-by {";
      for (size_t i = 0; i < group_by_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += StringPrintf("$%zu AS %s", group_by_[i].input_index,
                             group_by_[i].output_name.c_str());
      }
      *out += "} aggs {";
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) *out += ", ";
        const AggregateSpec& a = aggregates_[i];
        *out += std::string(sql::AggFuncToString(a.func)) + "(";
        *out += a.count_star ? "*" : StringPrintf("$%zu", a.input_index);
        *out += ") AS " + a.output_name;
      }
      *out += "}";
      break;
    }
    case Kind::kPattern: {
      *out += "Pattern steps {";
      for (size_t i = 0; i < pattern_steps_.size(); ++i) {
        if (i > 0) *out += " THEN ";
        *out += pattern_steps_[i]->ToString();
      }
      *out += StringPrintf("} key $%zu within %g s", pattern_key_index_,
                           pattern_within_seconds_);
      break;
    }
  }
  *out += "\n";
  for (const PlanPtr& c : children_) c->AppendTo(out, indent + 1);
}

std::string LogicalPlan::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

}  // namespace datatriage::plan
