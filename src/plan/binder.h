#ifndef DATATRIAGE_PLAN_BINDER_H_
#define DATATRIAGE_PLAN_BINDER_H_

#include <map>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/plan/logical_plan.h"
#include "src/sql/ast.h"

namespace datatriage::plan {

/// A continuous query after name resolution and planning.
struct BoundQuery {
  /// Complete plan: SPJ core plus projection or aggregation on top.
  PlanPtr plan;

  /// The select-project-join core (scans, per-stream filters, join tree,
  /// residual filters) *below* any aggregation/projection. The Data Triage
  /// rewrite of Sec. 4 operates on this subtree; aggregation is re-applied
  /// to the shadow result separately (Sec. 8.1 "merging").
  PlanPtr spj_core;

  bool has_aggregate = false;
  /// Populated when has_aggregate: specs are bound against
  /// spj_core->schema().
  std::vector<GroupBySpec> group_by;
  std::vector<AggregateSpec> aggregates;
  /// HAVING predicate bound against the aggregate output schema (group
  /// columns then aggregates); null when absent. Also folded into `plan`
  /// as a Filter, so offline evaluation applies it automatically; the
  /// engine applies it to both the exact and the merged composite rows.
  BoundExprPtr having;

  /// Populated when !has_aggregate: the final projection over spj_core.
  /// When every SELECT item is a plain column reference, `projection`
  /// holds the column indices (and the shadow result synopsis can be
  /// projected to the output columns). Otherwise `computed_projection` is
  /// set and `projection_exprs` holds one bound expression per output
  /// column (no synopsis view of the loss estimate is available then).
  std::vector<size_t> projection;
  std::vector<std::string> projection_names;
  bool computed_projection = false;
  std::vector<BoundExprPtr> projection_exprs;

  bool distinct = false;

  /// ORDER BY keys as (output column index, descending) pairs, applied
  /// per window at result delivery, plus the per-window LIMIT (< 0 means
  /// none). Presentation-level: they do not change which results exist,
  /// only how each window's rows are ordered and truncated.
  std::vector<std::pair<size_t, bool>> sort_keys;
  int64_t limit = -1;

  /// Window range per catalog stream name (every stream in FROM has an
  /// entry; unspecified streams get the binder's default).
  std::map<std::string, double> window_seconds;

  /// Window slide per catalog stream name; equals the range for tumbling
  /// windows (the default when the WINDOW clause gives one interval).
  std::map<std::string, double> window_slide_seconds;

  /// Catalog stream names in FROM-clause order (duplicates possible for
  /// self-joins; paired with the alias actually used).
  std::vector<std::string> from_streams;
  std::vector<std::string> from_aliases;

  /// Populated for MATCH pattern queries (DESIGN.md §17): the kPattern
  /// plan node whose child is spj_core. Pattern queries are single-stream,
  /// aggregate-free, and bypass the differential rewrite — the kept plan
  /// is the pattern over kept tuples and the shadow side is empty.
  PlanPtr pattern_node;
  bool is_pattern() const { return pattern_node != nullptr; }
};

struct BindOptions {
  /// Window length for streams without a WINDOW clause entry.
  double default_window_seconds = 1.0;
};

/// Binds a SELECT statement against the catalog.
Result<BoundQuery> BindSelect(const sql::SelectStatement& select,
                              const Catalog& catalog,
                              const BindOptions& options = BindOptions());

/// Binds a UNION ALL / EXCEPT of two SELECTs (both must be
/// aggregation-free and union-compatible).
Result<BoundQuery> BindSetOp(const sql::SetOpStatement& set_op,
                             const Catalog& catalog,
                             const BindOptions& options = BindOptions());

/// Dispatches on statement kind (CREATE STREAM is not a query and is
/// rejected here; register it with the catalog instead).
Result<BoundQuery> BindStatement(const sql::Statement& statement,
                                 const Catalog& catalog,
                                 const BindOptions& options = BindOptions());

}  // namespace datatriage::plan

#endif  // DATATRIAGE_PLAN_BINDER_H_
