#ifndef DATATRIAGE_METRICS_RMS_H_
#define DATATRIAGE_METRICS_RMS_H_

#include <map>
#include <vector>

#include "src/common/result.h"
#include "src/engine/window_result.h"
#include "src/exec/relation.h"

namespace datatriage::metrics {

/// Which relation of each WindowResult to score.
enum class ResultChannel {
  kExact,   // exact_rows: what drop-only shedding reports
  kMerged,  // merged_rows: the Data Triage composite result
};

/// Root-mean-square error between per-window grouped-aggregate results
/// and the ideal (paper Sec. 6.3): rows are keyed by window number plus
/// the first `num_group_columns` values; the remaining columns are
/// aggregate values. Squared differences are accumulated over the union
/// of groups (a group absent on one side counts as zero there) and the
/// mean is taken over the ideal result's (window, group, aggregate)
/// cells, so spurious estimated groups add error without inflating the
/// denominator.
Result<double> RmsError(const std::map<WindowId, exec::Relation>& ideal,
                        const std::vector<engine::WindowResult>& actual,
                        size_t num_group_columns,
                        ResultChannel channel = ResultChannel::kMerged);

/// Same, for pre-extracted relations per window.
Result<double> RmsErrorOverRelations(
    const std::map<WindowId, exec::Relation>& ideal,
    const std::map<WindowId, exec::Relation>& actual,
    size_t num_group_columns);

}  // namespace datatriage::metrics

#endif  // DATATRIAGE_METRICS_RMS_H_
