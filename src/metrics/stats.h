#ifndef DATATRIAGE_METRICS_STATS_H_
#define DATATRIAGE_METRICS_STATS_H_

#include <cstddef>
#include <vector>

namespace datatriage::metrics {

/// Mean and sample standard deviation across experiment repetitions (the
/// paper reports "mean of nine runs; error bars indicate the standard
/// deviation", Figs. 8-9).
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
  size_t n = 0;
};

MeanStd ComputeMeanStd(const std::vector<double>& samples);

}  // namespace datatriage::metrics

#endif  // DATATRIAGE_METRICS_STATS_H_
