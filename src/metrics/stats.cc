#include "src/metrics/stats.h"

#include <cmath>

namespace datatriage::metrics {

MeanStd ComputeMeanStd(const std::vector<double>& samples) {
  MeanStd out;
  out.n = samples.size();
  if (samples.empty()) return out;
  double sum = 0.0;
  for (double v : samples) sum += v;
  out.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return out;
  double sq = 0.0;
  for (double v : samples) {
    const double d = v - out.mean;
    sq += d * d;
  }
  out.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  return out;
}

}  // namespace datatriage::metrics
