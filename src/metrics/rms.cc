#include "src/metrics/rms.h"

#include <cmath>

#include "src/common/string_util.h"

namespace datatriage::metrics {

namespace {

/// (window, group values) -> aggregate values.
using CellMap = std::map<std::pair<WindowId, std::vector<Value>>,
                         std::vector<double>>;

Status AddRelation(const exec::Relation& rows, WindowId window,
                   size_t num_group_columns, CellMap* cells) {
  for (const Tuple& row : rows) {
    if (row.size() < num_group_columns) {
      return Status::InvalidArgument(StringPrintf(
          "result row has %zu columns but %zu group columns expected",
          row.size(), num_group_columns));
    }
    std::vector<Value> group(row.values().begin(),
                             row.values().begin() +
                                 static_cast<ptrdiff_t>(num_group_columns));
    std::vector<double> aggregates;
    for (size_t i = num_group_columns; i < row.size(); ++i) {
      if (!row.value(i).is_numeric()) {
        return Status::InvalidArgument(
            "aggregate columns must be numeric for RMS scoring");
      }
      aggregates.push_back(row.value(i).AsDouble());
    }
    auto [it, inserted] =
        cells->try_emplace({window, std::move(group)},
                           std::move(aggregates));
    if (!inserted) {
      return Status::InvalidArgument(
          "duplicate group in one window's results");
    }
  }
  return Status::OK();
}

Result<double> RmsOverCells(const CellMap& ideal, const CellMap& actual) {
  // Squared error accumulates over the union of cells (a group missing on
  // either side counts as zero there), but the mean is taken over the
  // IDEAL result's cells: spurious groups in the approximate answer add
  // error mass without inflating the denominator. Normalizing by the
  // union instead would reward methods that spray small estimates across
  // many extra groups (histogram smearing) with a larger denominator.
  double sum_squared = 0.0;
  int64_t ideal_cells = 0;
  int64_t spurious_cells = 0;
  auto square_into = [&](const std::vector<double>& a,
                         const std::vector<double>& b) -> Status {
    if (a.size() != b.size()) {
      return Status::InvalidArgument(
          "ideal and actual rows have different aggregate arity");
    }
    for (size_t i = 0; i < a.size(); ++i) {
      const double diff = a[i] - b[i];
      sum_squared += diff * diff;
      ++ideal_cells;
    }
    return Status::OK();
  };

  for (const auto& [key, ideal_values] : ideal) {
    auto it = actual.find(key);
    if (it != actual.end()) {
      DT_RETURN_IF_ERROR(square_into(ideal_values, it->second));
    } else {
      for (double v : ideal_values) {
        sum_squared += v * v;
        ++ideal_cells;
      }
    }
  }
  for (const auto& [key, actual_values] : actual) {
    if (ideal.count(key) > 0) continue;
    for (double v : actual_values) {
      sum_squared += v * v;
      ++spurious_cells;
    }
  }
  const int64_t denominator =
      ideal_cells > 0 ? ideal_cells : spurious_cells;
  if (denominator == 0) return 0.0;
  return std::sqrt(sum_squared / static_cast<double>(denominator));
}

}  // namespace

Result<double> RmsError(const std::map<WindowId, exec::Relation>& ideal,
                        const std::vector<engine::WindowResult>& actual,
                        size_t num_group_columns, ResultChannel channel) {
  CellMap ideal_cells, actual_cells;
  for (const auto& [window, rows] : ideal) {
    DT_RETURN_IF_ERROR(
        AddRelation(rows, window, num_group_columns, &ideal_cells));
  }
  for (const engine::WindowResult& result : actual) {
    const exec::Relation& rows = channel == ResultChannel::kExact
                                     ? result.exact_rows
                                     : result.merged_rows;
    DT_RETURN_IF_ERROR(
        AddRelation(rows, result.window, num_group_columns,
                    &actual_cells));
  }
  return RmsOverCells(ideal_cells, actual_cells);
}

Result<double> RmsErrorOverRelations(
    const std::map<WindowId, exec::Relation>& ideal,
    const std::map<WindowId, exec::Relation>& actual,
    size_t num_group_columns) {
  CellMap ideal_cells, actual_cells;
  for (const auto& [window, rows] : ideal) {
    DT_RETURN_IF_ERROR(
        AddRelation(rows, window, num_group_columns, &ideal_cells));
  }
  for (const auto& [window, rows] : actual) {
    DT_RETURN_IF_ERROR(
        AddRelation(rows, window, num_group_columns, &actual_cells));
  }
  return RmsOverCells(ideal_cells, actual_cells);
}

}  // namespace datatriage::metrics
