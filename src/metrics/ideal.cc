#include "src/metrics/ideal.h"

#include "src/exec/evaluator.h"

namespace datatriage::metrics {

Result<std::map<WindowId, exec::Relation>> ComputeIdealResults(
    const plan::BoundQuery& query,
    const std::vector<engine::StreamEvent>& events,
    VirtualDuration window_seconds, VirtualDuration slide_seconds) {
  if (window_seconds <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  const VirtualDuration slide =
      slide_seconds > 0 ? slide_seconds : window_seconds;
  // Bucket every event into (window, stream) relations; with sliding
  // windows one event feeds several.
  std::map<WindowId, exec::RelationProvider> inputs_by_window;
  for (const engine::StreamEvent& event : events) {
    const WindowSpan span =
        CoveringWindows(event.tuple.timestamp(), window_seconds, slide);
    for (WindowId window = std::max<WindowId>(span.first, 0);
         window <= span.last; ++window) {
      inputs_by_window[window][exec::ChannelKey{event.stream,
                                                plan::Channel::kBase}]
          .push_back(event.tuple);
    }
  }
  std::map<WindowId, exec::Relation> results;
  for (const auto& [window, inputs] : inputs_by_window) {
    DT_ASSIGN_OR_RETURN(exec::Relation result,
                        exec::EvaluatePlan(*query.plan, inputs));
    results[window] = std::move(result);
  }
  return results;
}

}  // namespace datatriage::metrics
