#include "src/metrics/latency.h"

namespace datatriage::metrics {

MeanStd EmissionLatency(const std::vector<engine::WindowResult>& results,
                        VirtualDuration window_seconds) {
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const engine::WindowResult& result : results) {
    const VirtualTime window_end =
        (static_cast<double>(result.window) + 1.0) * window_seconds;
    latencies.push_back(result.emit_time - window_end);
  }
  return ComputeMeanStd(latencies);
}

}  // namespace datatriage::metrics
