#ifndef DATATRIAGE_METRICS_IDEAL_H_
#define DATATRIAGE_METRICS_IDEAL_H_

#include <map>
#include <vector>

#include "src/common/result.h"
#include "src/engine/engine.h"
#include "src/exec/relation.h"
#include "src/plan/binder.h"

namespace datatriage::metrics {

/// Computes the "ideal" per-window query results the paper compares
/// against (Sec. 6.3): the exact result over *all* input tuples, as if no
/// load shedding had occurred. Evaluated offline, window by window, with
/// the plain (base-channel) plan. `slide_seconds` <= 0 means tumbling
/// (slide == window_seconds); with a smaller slide, tuples contribute to
/// every covering window.
Result<std::map<WindowId, exec::Relation>> ComputeIdealResults(
    const plan::BoundQuery& query,
    const std::vector<engine::StreamEvent>& events,
    VirtualDuration window_seconds, VirtualDuration slide_seconds = 0.0);

}  // namespace datatriage::metrics

#endif  // DATATRIAGE_METRICS_IDEAL_H_
