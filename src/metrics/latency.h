#ifndef DATATRIAGE_METRICS_LATENCY_H_
#define DATATRIAGE_METRICS_LATENCY_H_

#include <vector>

#include "src/engine/window_result.h"
#include "src/metrics/stats.h"

namespace datatriage::metrics {

/// Result latency statistics: how long after a window closed its
/// composite result left the engine. Low latency is the paper's core
/// requirement ("timely query results are of great importance", Sec. 1);
/// the engine's emission deadline bounds it at delay_factor x window
/// length plus the emission work itself.
MeanStd EmissionLatency(const std::vector<engine::WindowResult>& results,
                        VirtualDuration window_seconds);

}  // namespace datatriage::metrics

#endif  // DATATRIAGE_METRICS_LATENCY_H_
