#include "src/io/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace datatriage::io {

namespace {

Result<Value> ParseValueAs(std::string_view text, FieldType type,
                           int line_number) {
  const std::string stripped(StripWhitespace(text));
  auto bad = [&](const char* what) {
    return Status::ParseError(StringPrintf(
        "line %d: cannot parse '%s' as %s", line_number, stripped.c_str(),
        what));
  };
  switch (type) {
    case FieldType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(stripped.c_str(), &end, 10);
      if (end == stripped.c_str() || *end != '\0') return bad("INTEGER");
      return Value::Int64(v);
    }
    case FieldType::kDouble:
    case FieldType::kTimestamp: {
      char* end = nullptr;
      const double v = std::strtod(stripped.c_str(), &end);
      if (end == stripped.c_str() || *end != '\0') return bad("DOUBLE");
      return type == FieldType::kTimestamp ? Value::Timestamp(v)
                                           : Value::Double(v);
    }
    case FieldType::kString:
      return Value::String(stripped);
  }
  return Status::Internal("unhandled field type");
}

std::string ValueToCsv(const Value& v) {
  if (v.is_string()) return v.str();
  if (v.is_int64()) return std::to_string(v.int64());
  return StringPrintf("%.12g", v.AsDouble());
}

}  // namespace

Result<std::vector<engine::StreamEvent>> ParseEventsCsv(
    std::string_view text, const Catalog& catalog) {
  std::vector<engine::StreamEvent> events;
  int line_number = 0;
  for (const std::string& line : SplitString(text, '\n')) {
    ++line_number;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (line_number == 1 && stripped.rfind("stream,", 0) == 0) continue;

    const std::vector<std::string> fields = SplitString(stripped, ',');
    if (fields.size() < 2) {
      return Status::ParseError(StringPrintf(
          "line %d: expected 'stream,timestamp,...'", line_number));
    }
    const std::string stream(StripWhitespace(fields[0]));
    DT_ASSIGN_OR_RETURN(StreamDef def, catalog.GetStream(stream));
    if (fields.size() != def.schema.num_fields() + 2) {
      return Status::ParseError(StringPrintf(
          "line %d: stream '%s' needs %zu value columns, got %zu",
          line_number, stream.c_str(), def.schema.num_fields(),
          fields.size() - 2));
    }
    char* end = nullptr;
    const std::string ts_text(StripWhitespace(fields[1]));
    const double timestamp = std::strtod(ts_text.c_str(), &end);
    if (end == ts_text.c_str() || *end != '\0') {
      return Status::ParseError(
          StringPrintf("line %d: bad timestamp '%s'", line_number,
                       ts_text.c_str()));
    }
    std::vector<Value> values;
    values.reserve(def.schema.num_fields());
    for (size_t i = 0; i < def.schema.num_fields(); ++i) {
      DT_ASSIGN_OR_RETURN(
          Value v, ParseValueAs(fields[i + 2], def.schema.field(i).type,
                                line_number));
      values.push_back(std::move(v));
    }
    events.push_back(engine::StreamEvent{
        def.name, Tuple(std::move(values), timestamp)});
  }
  return events;
}

std::string FormatEventsCsv(
    const std::vector<engine::StreamEvent>& events) {
  std::string out = "stream,timestamp,values...\n";
  for (const engine::StreamEvent& event : events) {
    out += event.stream;
    out += StringPrintf(",%.9g", event.tuple.timestamp());
    for (const Value& v : event.tuple.values()) {
      out += ',';
      out += ValueToCsv(v);
    }
    out += '\n';
  }
  return out;
}

void SortEventsByTime(std::vector<engine::StreamEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const engine::StreamEvent& a,
                      const engine::StreamEvent& b) {
                     return a.tuple.timestamp() < b.tuple.timestamp();
                   });
}

std::string FormatResultsCsv(
    const std::vector<engine::WindowResult>& results,
    const std::vector<std::string>& column_names) {
  std::string out = "kind,window,emit_time";
  for (const std::string& name : column_names) {
    out += ',';
    out += name;
  }
  out += '\n';
  auto emit_rows = [&](const char* kind,
                       const engine::WindowResult& result,
                       const exec::Relation& rows) {
    for (const Tuple& row : rows) {
      out += kind;
      out += StringPrintf(",%lld,%.6g",
                          static_cast<long long>(result.window),
                          result.emit_time);
      for (const Value& v : row.values()) {
        out += ',';
        out += ValueToCsv(v);
      }
      out += '\n';
    }
  };
  for (const engine::WindowResult& result : results) {
    emit_rows("exact", result, result.exact_rows);
    emit_rows("merged", result, result.merged_rows);
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::NotFound("cannot open file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace datatriage::io
