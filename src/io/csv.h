#ifndef DATATRIAGE_IO_CSV_H_
#define DATATRIAGE_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/result.h"
#include "src/engine/window_result.h"
#include "src/engine/engine.h"

namespace datatriage::io {

/// Parses a stream-event CSV into engine events.
///
/// Format: one event per line, `stream,timestamp,v1,v2,...`; a header
/// line starting with "stream," is skipped; blank lines and lines
/// starting with '#' are ignored. Values are typed by the stream's
/// catalog schema. Fields must not contain commas (no quoting dialect).
/// Events are returned in file order; the engine requires non-decreasing
/// timestamps, so files are expected to be time-sorted (use
/// `SortEventsByTime` otherwise).
Result<std::vector<engine::StreamEvent>> ParseEventsCsv(
    std::string_view text, const Catalog& catalog);

/// Renders events back to the same CSV format (with header).
std::string FormatEventsCsv(
    const std::vector<engine::StreamEvent>& events);

/// Stable-sorts events by timestamp.
void SortEventsByTime(std::vector<engine::StreamEvent>* events);

/// Renders per-window results as CSV:
///   kind,window,emit_time,c1,c2,...
/// with one `exact` row per exact result tuple and one `merged` row per
/// composite result tuple. `column_names` labels the result columns in
/// the header.
std::string FormatResultsCsv(
    const std::vector<engine::WindowResult>& results,
    const std::vector<std::string>& column_names);

/// Reads a whole file into a string (convenience for the CLI tools).
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace datatriage::io

#endif  // DATATRIAGE_IO_CSV_H_
