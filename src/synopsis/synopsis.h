#ifndef DATATRIAGE_SYNOPSIS_SYNOPSIS_H_
#define DATATRIAGE_SYNOPSIS_SYNOPSIS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/common/result.h"
#include "src/plan/expression.h"
#include "src/tuple/tuple.h"

namespace datatriage::serde {
class Writer;
class Reader;
}  // namespace datatriage::serde

namespace datatriage::synopsis {

enum class SynopsisType {
  kGridHistogram,    // sparse multidimensional histogram, cubic buckets
                     // (the paper's fast synopsis)
  kMHist,            // MHIST with MAXDIFF splits (the paper's slow/accurate
                     // synopsis)
  kAlignedMHist,     // MHIST constrained to grid-aligned boundaries
                     // (paper Sec. 8.1 future-work variant)
  kReservoirSample,  // scaled uniform sample (extension)
  kAviHistogram,     // per-column marginals under attribute value
                     // independence (classic baseline; ablation A1)
  kExact,            // lossless multiset; testing/reference only
};

std::string_view SynopsisTypeToString(SynopsisType type);

/// Work accounting for synopsis-algebra operations (one unit ~ one bucket
/// or sample row touched). The engine's cost model converts these to
/// virtual seconds, which is how the MHIST bucket-blowup of paper
/// Sec. 5.2.2 manifests as real overload.
struct OpStats {
  int64_t work = 0;

  OpStats& operator+=(const OpStats& other) {
    work += other.work;
    return *this;
  }
};

/// Running estimate of {COUNT, SUM, MIN, MAX} of one column within one
/// group. Counts are fractional: histogram buckets spread mass over the
/// group values they cover.
struct AggAccumulator {
  double count = 0.0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double value, double weight);
  void MergeFrom(const AggAccumulator& other);
};

/// Sentinel column index for COUNT(*)-style accumulators that track only
/// cardinality.
inline constexpr size_t kCountOnlyColumn =
    std::numeric_limits<size_t>::max();

/// Estimated per-group accumulators: group key values -> one accumulator
/// per requested aggregate column. Ordered map for deterministic
/// iteration.
using GroupedEstimate =
    std::map<std::vector<Value>, std::vector<AggAccumulator>>;

/// One (tuple, weight) row of a sample-based synopsis. A weight of w means
/// the row stands in for w tuples of the summarized multiset.
struct WeightedRow {
  Tuple tuple;
  double weight = 1.0;
};

class Synopsis;
using SynopsisPtr = std::unique_ptr<Synopsis>;

/// Lossy summary of a multiset of tuples, closed under the relational
/// algebra the shadow plan needs (paper Sec. 5.1): projection, multiset
/// union, equijoin, and selection. All columns must be numeric.
///
/// Concrete types only combine with the same type and compatible
/// parameters; mismatches return InvalidArgument rather than silently
/// degrading.
class Synopsis {
 public:
  virtual ~Synopsis() = default;

  Synopsis(const Synopsis&) = delete;
  Synopsis& operator=(const Synopsis&) = delete;

  virtual SynopsisType type() const = 0;
  const Schema& schema() const { return schema_; }

  /// Folds one tuple into the summary.
  virtual void Insert(const Tuple& tuple) = 0;

  /// Estimated number of summarized tuples.
  virtual double TotalCount() const = 0;

  /// Memory footprint proxy: buckets / samples currently held.
  virtual size_t SizeInCells() const = 0;

  /// Deterministic model bytes this synopsis holds (the byte model of
  /// src/common/mem_accounting.h, not allocator truth). Contract: the
  /// value is a pure function of the summarized state — it changes only
  /// under Insert / LoadState / construction by an algebra operation,
  /// never under const reads (lazy build caches are excluded), so
  /// owners can account charge deltas by bracketing those mutations.
  virtual size_t MemoryBytes() const = 0;

  virtual SynopsisPtr Clone() const = 0;

  // ------------------------------------------------------------------
  // Relational algebra over synopses (paper Sec. 5.1's user-defined
  // functions project/union_all/equijoin, plus selection).
  // Operations never mutate their inputs.
  // ------------------------------------------------------------------

  /// Approximate UNION ALL. `other` must match in type, parameters, and
  /// schema column types.
  virtual Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                           OpStats* stats) const = 0;

  /// Approximate equijoin; `keys` pairs (this column, other column). The
  /// result schema is this->schema() ++ other.schema() (names uniquified
  /// by the caller's plan layer).
  virtual Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const = 0;

  /// Projection onto `indices`, renamed to `names` (multiset semantics:
  /// counts are preserved, not deduplicated).
  virtual Result<SynopsisPtr> ProjectColumns(
      const std::vector<size_t>& indices,
      const std::vector<std::string>& names, OpStats* stats) const = 0;

  /// Approximate selection. Histogram implementations evaluate the
  /// predicate at bucket representatives and keep or discard whole
  /// buckets; sample-based implementations filter exactly.
  virtual Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                                     OpStats* stats) const = 0;

  /// Estimates per-group aggregate accumulators. `group_columns` are the
  /// grouping columns; `agg_columns` selects the column feeding each
  /// accumulator (kCountOnlyColumn for COUNT(*)). Integer-typed group
  /// columns are enumerated point-by-point within buckets; real-valued
  /// ones collapse to bucket representatives.
  virtual Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const = 0;

  /// Estimated count of tuples equal to `point` on all columns
  /// (selectivity-style point estimate; used by tests and the
  /// visualization example).
  virtual double EstimatePointCount(const Tuple& point) const = 0;

  std::string DebugString() const;

  /// Session-snapshot hooks (DESIGN.md §14): serialize every member the
  /// estimates depend on — per-type parameters, bucket/sample contents,
  /// RNG positions, lazy-build flags — so a restored synopsis continues
  /// byte-identically. The dispatcher in src/synopsis/serde.h writes the
  /// type tag and schema; implementations write only their own state and
  /// LoadState overwrites the default-constructed parameters.
  virtual void SaveState(serde::Writer* writer) const = 0;
  virtual Status LoadState(serde::Reader* reader) = 0;

  /// Validates that all columns are numeric (the synopsis structures
  /// histogram/sample over numeric domains only).
  static Status CheckNumericSchema(const Schema& schema);

 protected:
  explicit Synopsis(Schema schema) : schema_(std::move(schema)) {}

  Schema schema_;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_SYNOPSIS_H_
