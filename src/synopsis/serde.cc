#include "src/synopsis/serde.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/synopsis/factory.h"

namespace datatriage::synopsis {
namespace {

// Wire tags mirror SynopsisType but are pinned independently of the enum
// order so reordering the enum cannot silently change the format.
constexpr uint8_t kTagGrid = 0;
constexpr uint8_t kTagMHist = 1;
constexpr uint8_t kTagAlignedMHist = 2;
constexpr uint8_t kTagReservoir = 3;
constexpr uint8_t kTagAvi = 4;
constexpr uint8_t kTagExact = 5;

uint8_t TagFor(SynopsisType type) {
  switch (type) {
    case SynopsisType::kGridHistogram:
      return kTagGrid;
    case SynopsisType::kMHist:
      return kTagMHist;
    case SynopsisType::kAlignedMHist:
      return kTagAlignedMHist;
    case SynopsisType::kReservoirSample:
      return kTagReservoir;
    case SynopsisType::kAviHistogram:
      return kTagAvi;
    case SynopsisType::kExact:
      return kTagExact;
  }
  return 0xff;
}

Result<SynopsisType> TypeFor(uint8_t tag) {
  switch (tag) {
    case kTagGrid:
      return SynopsisType::kGridHistogram;
    case kTagMHist:
      return SynopsisType::kMHist;
    case kTagAlignedMHist:
      return SynopsisType::kAlignedMHist;
    case kTagReservoir:
      return SynopsisType::kReservoirSample;
    case kTagAvi:
      return SynopsisType::kAviHistogram;
    case kTagExact:
      return SynopsisType::kExact;
    default:
      return Status::InvalidArgument(StringPrintf(
          "snapshot: unknown synopsis tag %d", static_cast<int>(tag)));
  }
}

}  // namespace

void SaveSchema(serde::Writer* writer, const Schema& schema) {
  writer->WriteU64(schema.num_fields());
  for (const Field& field : schema.fields()) {
    writer->WriteString(field.name);
    writer->WriteU8(static_cast<uint8_t>(field.type));
  }
}

Result<Schema> LoadSchema(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const uint64_t num_fields, reader->ReadCount(8));
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint64_t i = 0; i < num_fields; ++i) {
    Field field;
    DT_ASSIGN_OR_RETURN(field.name, reader->ReadString());
    DT_ASSIGN_OR_RETURN(const uint8_t type, reader->ReadU8());
    if (type > static_cast<uint8_t>(FieldType::kTimestamp)) {
      return Status::InvalidArgument(StringPrintf(
          "snapshot: unknown field type tag %d", static_cast<int>(type)));
    }
    field.type = static_cast<FieldType>(type);
    fields.push_back(std::move(field));
  }
  return Schema(std::move(fields));
}

void SaveSynopsis(serde::Writer* writer, const Synopsis* synopsis) {
  writer->WriteBool(synopsis != nullptr);
  if (synopsis == nullptr) return;
  writer->WriteU8(TagFor(synopsis->type()));
  SaveSchema(writer, synopsis->schema());
  synopsis->SaveState(writer);
}

Result<SynopsisPtr> LoadSynopsis(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const bool present, reader->ReadBool());
  if (!present) return SynopsisPtr(nullptr);
  DT_ASSIGN_OR_RETURN(const uint8_t tag, reader->ReadU8());
  DT_ASSIGN_OR_RETURN(const SynopsisType type, TypeFor(tag));
  DT_ASSIGN_OR_RETURN(Schema schema, LoadSchema(reader));
  // Instantiate with default parameters; LoadState then overwrites the
  // parameters and contents from the byte stream.
  SynopsisConfig config;
  config.type = type;
  DT_ASSIGN_OR_RETURN(SynopsisPtr synopsis,
                      MakeSynopsis(config, std::move(schema)));
  DT_RETURN_IF_ERROR(synopsis->LoadState(reader));
  return synopsis;
}

}  // namespace datatriage::synopsis
