#include "src/synopsis/reservoir_sample.h"

#include "src/common/serde.h"
#include "src/common/string_util.h"
#include "src/tuple/serde.h"

namespace datatriage::synopsis {

Result<SynopsisPtr> ReservoirSample::Make(
    Schema schema, const ReservoirSampleConfig& config) {
  DT_RETURN_IF_ERROR(CheckNumericSchema(schema));
  if (config.capacity == 0) {
    return Status::InvalidArgument("reservoir capacity must be > 0");
  }
  return SynopsisPtr(new ReservoirSample(std::move(schema), config));
}

double ReservoirSample::ScaleFactor() const {
  if (materialized_) return 1.0;  // weights already scaled
  if (seen_ <= static_cast<int64_t>(config_.capacity)) return 1.0;
  return static_cast<double>(seen_) / static_cast<double>(rows_.size());
}

void ReservoirSample::Insert(const Tuple& tuple) {
  DT_CHECK(!materialized_) << "Insert into a materialized op result";
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  ++seen_;
  if (rows_.size() < config_.capacity) {
    row_bytes_ += mem::TupleBytes(tuple) + mem::kWeightedRowBytes;
    rows_.push_back(WeightedRow{tuple, 1.0});
    return;
  }
  // Vitter's algorithm R: replace a random victim with probability k/n.
  const int64_t slot = rng_.UniformInt(0, seen_ - 1);
  if (slot < static_cast<int64_t>(config_.capacity)) {
    WeightedRow& victim = rows_[static_cast<size_t>(slot)];
    row_bytes_ -= mem::TupleBytes(victim.tuple);
    row_bytes_ += mem::TupleBytes(tuple);
    victim = WeightedRow{tuple, 1.0};
  }
}

void ReservoirSample::RecomputeMemoryBytes() {
  row_bytes_ = mem::kSynopsisBaseBytes;
  for (const WeightedRow& r : rows_) {
    row_bytes_ += mem::TupleBytes(r.tuple) + mem::kWeightedRowBytes;
  }
}

double ReservoirSample::TotalCount() const {
  if (!materialized_) return static_cast<double>(seen_);
  double total = 0;
  for (const WeightedRow& r : rows_) total += r.weight;
  return total;
}

std::vector<WeightedRow> ReservoirSample::ScaledRows() const {
  std::vector<WeightedRow> scaled = rows_;
  const double factor = ScaleFactor();
  if (factor != 1.0) {
    for (WeightedRow& r : scaled) r.weight *= factor;
  }
  return scaled;
}

SynopsisPtr ReservoirSample::Clone() const {
  ReservoirSampleConfig config = config_;
  // The PRNG cannot be copied mid-stream; derive a distinct but
  // deterministic continuation seed.
  config.seed = config_.seed ^ (0x5bd1e995ULL * (seen_ + 1));
  auto clone = std::unique_ptr<ReservoirSample>(
      new ReservoirSample(schema_, config));
  clone->materialized_ = materialized_;
  clone->seen_ = seen_;
  clone->rows_ = rows_;
  clone->row_bytes_ = row_bytes_;
  return clone;
}

Result<SynopsisPtr> ReservoirSample::UnionAllWith(const Synopsis& other,
                                                  OpStats* stats) const {
  if (other.type() != SynopsisType::kReservoirSample) {
    return Status::InvalidArgument(
        "cannot union reservoir sample with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const ReservoirSample&>(other);
  if (rhs.schema_.num_fields() != schema_.num_fields()) {
    return Status::InvalidArgument("union of different-arity synopses");
  }
  auto result = std::unique_ptr<ReservoirSample>(
      new ReservoirSample(schema_, config_));
  result->materialized_ = true;
  result->rows_ = ScaledRows();
  std::vector<WeightedRow> other_rows = rhs.ScaledRows();
  result->rows_.insert(result->rows_.end(), other_rows.begin(),
                       other_rows.end());
  result->RecomputeMemoryBytes();
  if (stats != nullptr) {
    stats->work += static_cast<int64_t>(result->rows_.size());
  }
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ReservoirSample::EquiJoinWith(
    const Synopsis& other, const std::vector<std::pair<size_t, size_t>>& keys,
    OpStats* stats) const {
  if (other.type() != SynopsisType::kReservoirSample) {
    return Status::InvalidArgument(
        "cannot join reservoir sample with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const ReservoirSample&>(other);
  Schema joined_schema;
  for (const Field& f : schema_.fields()) {
    DT_RETURN_IF_ERROR(joined_schema.AddField(Field{"l." + f.name, f.type}));
  }
  for (const Field& f : rhs.schema_.fields()) {
    DT_RETURN_IF_ERROR(joined_schema.AddField(Field{"r." + f.name, f.type}));
  }
  auto result = std::unique_ptr<ReservoirSample>(
      new ReservoirSample(std::move(joined_schema), config_));
  result->materialized_ = true;
  const std::vector<WeightedRow> left = ScaledRows();
  const std::vector<WeightedRow> right = rhs.ScaledRows();
  int64_t work = 0;
  for (const WeightedRow& l : left) {
    for (const WeightedRow& r : right) {
      ++work;
      bool match = true;
      for (const auto& [lk, rk] : keys) {
        if (!(l.tuple.value(lk) == r.tuple.value(rk))) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      // Each surviving pair was sampled with probability (k1/n1)(k2/n2);
      // the product of the scale-inflated weights is the unbiased
      // Horvitz-Thompson estimate.
      result->rows_.push_back(
          WeightedRow{l.tuple.Concat(r.tuple), l.weight * r.weight});
    }
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ReservoirSample::ProjectColumns(
    const std::vector<size_t>& indices, const std::vector<std::string>& names,
    OpStats* stats) const {
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "projection indices and names must have equal length");
  }
  Schema projected_schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= schema_.num_fields()) {
      return Status::OutOfRange(
          StringPrintf("projection index %zu out of range", indices[i]));
    }
    DT_RETURN_IF_ERROR(projected_schema.AddField(
        Field{names[i], schema_.field(indices[i]).type}));
  }
  auto result = std::unique_ptr<ReservoirSample>(
      new ReservoirSample(std::move(projected_schema), config_));
  result->materialized_ = true;
  for (const WeightedRow& r : ScaledRows()) {
    result->rows_.push_back(
        WeightedRow{r.tuple.Project(indices), r.weight});
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += static_cast<int64_t>(rows_.size());
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ReservoirSample::Filter(const plan::BoundExpr& predicate,
                                            OpStats* stats) const {
  auto result = std::unique_ptr<ReservoirSample>(
      new ReservoirSample(schema_, config_));
  result->materialized_ = true;
  for (const WeightedRow& r : ScaledRows()) {
    if (predicate.EvaluatesToTrue(r.tuple)) result->rows_.push_back(r);
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += static_cast<int64_t>(rows_.size());
  return SynopsisPtr(std::move(result));
}

Result<GroupedEstimate> ReservoirSample::EstimateGroups(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  for (size_t g : group_columns) {
    if (g >= schema_.num_fields()) {
      return Status::OutOfRange("group column out of range");
    }
  }
  GroupedEstimate groups;
  for (const WeightedRow& r : ScaledRows()) {
    std::vector<Value> key;
    key.reserve(group_columns.size());
    for (size_t g : group_columns) key.push_back(r.tuple.value(g));
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second.resize(agg_columns.size());
    for (size_t a = 0; a < agg_columns.size(); ++a) {
      if (agg_columns[a] == kCountOnlyColumn) {
        it->second[a].count += r.weight;
      } else {
        if (agg_columns[a] >= schema_.num_fields()) {
          return Status::OutOfRange("aggregate column out of range");
        }
        it->second[a].Add(r.tuple.value(agg_columns[a]).AsDouble(),
                          r.weight);
      }
    }
  }
  return groups;
}

double ReservoirSample::EstimatePointCount(const Tuple& point) const {
  double total = 0;
  for (const WeightedRow& r : ScaledRows()) {
    if (r.tuple == point) total += r.weight;
  }
  return total;
}

void ReservoirSample::SaveState(serde::Writer* writer) const {
  writer->WriteU64(config_.capacity);
  writer->WriteU64(config_.seed);
  serde::SaveRngEngine(writer, rng_.engine());
  writer->WriteBool(materialized_);
  writer->WriteI64(seen_);
  writer->WriteU64(rows_.size());
  for (const WeightedRow& r : rows_) {
    SaveTuple(writer, r.tuple);
    writer->WriteDouble(r.weight);
  }
}

Status ReservoirSample::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const uint64_t capacity, reader->ReadU64());
  config_.capacity = capacity;
  DT_ASSIGN_OR_RETURN(config_.seed, reader->ReadU64());
  DT_RETURN_IF_ERROR(serde::LoadRngEngine(reader, &rng_.engine()));
  DT_ASSIGN_OR_RETURN(materialized_, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(seen_, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(const uint64_t num_rows, reader->ReadCount(16));
  rows_.clear();
  rows_.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    WeightedRow r;
    DT_ASSIGN_OR_RETURN(r.tuple, LoadTuple(reader));
    DT_ASSIGN_OR_RETURN(r.weight, reader->ReadDouble());
    rows_.push_back(std::move(r));
  }
  RecomputeMemoryBytes();
  return Status::OK();
}

}  // namespace datatriage::synopsis
