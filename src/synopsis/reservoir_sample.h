#ifndef DATATRIAGE_SYNOPSIS_RESERVOIR_SAMPLE_H_
#define DATATRIAGE_SYNOPSIS_RESERVOIR_SAMPLE_H_

#include <vector>

#include "src/common/mem_accounting.h"
#include "src/common/random.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

struct ReservoirSampleConfig {
  /// Sample capacity (Vitter's algorithm R).
  size_t capacity = 64;
  /// Seed for the replacement decisions.
  uint64_t seed = 1;
};

/// Uniform-sample synopsis: keeps up to `capacity` tuples via reservoir
/// sampling and scales each by n/k at estimation time. Joining scaled
/// samples is unbiased but high-variance (the sampling-over-joins problem
/// of Chaudhuri et al., cited in paper Sec. 2) — it exists as the
/// sampling baseline for the synopsis-type ablation (DESIGN.md A1).
///
/// Algebra results (unions, joins, projections of samples) are no longer
/// reservoirs; they become materialized weighted-row sets carried by the
/// same class with sampling disabled.
class ReservoirSample final : public Synopsis {
 public:
  static Result<SynopsisPtr> Make(Schema schema,
                                  const ReservoirSampleConfig& config);

  SynopsisType type() const override {
    return SynopsisType::kReservoirSample;
  }

  void Insert(const Tuple& tuple) override;
  double TotalCount() const override;
  size_t SizeInCells() const override { return rows_.size(); }
  size_t MemoryBytes() const override { return row_bytes_; }
  SynopsisPtr Clone() const override;

  Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                   OpStats* stats) const override;
  Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const override;
  Result<SynopsisPtr> ProjectColumns(const std::vector<size_t>& indices,
                                     const std::vector<std::string>& names,
                                     OpStats* stats) const override;
  Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                             OpStats* stats) const override;
  Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const override;
  double EstimatePointCount(const Tuple& point) const override;

  void SaveState(serde::Writer* writer) const override;
  Status LoadState(serde::Reader* reader) override;

  /// Stored rows with their current scaled weights.
  std::vector<WeightedRow> ScaledRows() const;

  int64_t tuples_seen() const { return seen_; }

 private:
  ReservoirSample(Schema schema, const ReservoirSampleConfig& config)
      : Synopsis(std::move(schema)), config_(config), rng_(config.seed) {}

  /// Scale factor mapping stored base weights to population estimates.
  double ScaleFactor() const;

  /// Rebuilds row_bytes_ from rows_; algebra builders call this once on
  /// their result, Insert maintains it incrementally.
  void RecomputeMemoryBytes();

  ReservoirSampleConfig config_;
  Rng rng_;
  /// True once this instance holds op results instead of a live sample.
  bool materialized_ = false;
  int64_t seen_ = 0;
  std::vector<WeightedRow> rows_;
  size_t row_bytes_ = mem::kSynopsisBaseBytes;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_RESERVOIR_SAMPLE_H_
