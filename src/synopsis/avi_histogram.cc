#include "src/synopsis/avi_histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/mem_accounting.h"
#include "src/common/serde.h"
#include "src/common/string_util.h"

namespace datatriage::synopsis {

namespace {

/// Collects the column indices a predicate references.
void CollectColumns(const plan::BoundExpr& expr, std::vector<size_t>* out) {
  switch (expr.kind()) {
    case plan::BoundExpr::Kind::kColumn:
      out->push_back(expr.column_index());
      return;
    case plan::BoundExpr::Kind::kLiteral:
      return;
    case plan::BoundExpr::Kind::kUnary:
      CollectColumns(*expr.lhs(), out);
      return;
    case plan::BoundExpr::Kind::kBinary:
      CollectColumns(*expr.lhs(), out);
      CollectColumns(*expr.rhs(), out);
      return;
  }
}

}  // namespace

Result<SynopsisPtr> AviHistogram::Make(Schema schema,
                                       const AviHistogramConfig& config) {
  DT_RETURN_IF_ERROR(CheckNumericSchema(schema));
  if (config.cell_width <= 0) {
    return Status::InvalidArgument("AVI histogram cell_width must be > 0");
  }
  return SynopsisPtr(new AviHistogram(std::move(schema), config));
}

int64_t AviHistogram::CellCoord(double value) const {
  return static_cast<int64_t>(std::floor(value / config_.cell_width));
}

double AviHistogram::ValuesPerCell() const {
  return std::max(1.0, std::round(config_.cell_width));
}

double AviHistogram::CellMidpoint(int64_t coord) const {
  return (static_cast<double>(coord) + 0.5) * config_.cell_width;
}

double AviHistogram::MarginalMean(size_t dim) const {
  if (total_count_ <= 0) return 0.0;
  double weighted = 0;
  for (const auto& [coord, mass] : marginals_[dim]) {
    weighted += CellMidpoint(coord) * mass;
  }
  return weighted / total_count_;
}

void AviHistogram::Insert(const Tuple& tuple) {
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  for (size_t d = 0; d < tuple.size(); ++d) {
    marginals_[d][CellCoord(tuple.value(d).AsDouble())] += 1.0;
  }
  total_count_ += 1.0;
}

size_t AviHistogram::SizeInCells() const {
  size_t cells = 0;
  for (const auto& marginal : marginals_) cells += marginal.size();
  return cells;
}

size_t AviHistogram::MemoryBytes() const {
  // One map per dimension plus one node per occupied marginal cell
  // (int64 coordinate + double count).
  return mem::kSynopsisBaseBytes +
         marginals_.size() * mem::kVectorHeaderBytes +
         SizeInCells() * (mem::kMapNodeBytes + 16);
}

SynopsisPtr AviHistogram::Clone() const {
  auto clone =
      std::unique_ptr<AviHistogram>(new AviHistogram(schema_, config_));
  clone->marginals_ = marginals_;
  clone->total_count_ = total_count_;
  return clone;
}

Result<SynopsisPtr> AviHistogram::UnionAllWith(const Synopsis& other,
                                               OpStats* stats) const {
  if (other.type() != SynopsisType::kAviHistogram) {
    return Status::InvalidArgument(
        "cannot union AVI histogram with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const AviHistogram&>(other);
  if (rhs.config_.cell_width != config_.cell_width ||
      rhs.schema_.num_fields() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "union of incompatible AVI histograms");
  }
  auto result =
      std::unique_ptr<AviHistogram>(new AviHistogram(schema_, config_));
  result->marginals_ = marginals_;
  result->total_count_ = total_count_ + rhs.total_count_;
  int64_t work = 0;
  for (size_t d = 0; d < marginals_.size(); ++d) {
    for (const auto& [coord, mass] : rhs.marginals_[d]) {
      result->marginals_[d][coord] += mass;
      ++work;
    }
  }
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> AviHistogram::EquiJoinWith(
    const Synopsis& other, const std::vector<std::pair<size_t, size_t>>& keys,
    OpStats* stats) const {
  if (other.type() != SynopsisType::kAviHistogram) {
    return Status::InvalidArgument(
        "cannot join AVI histogram with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const AviHistogram&>(other);
  if (rhs.config_.cell_width != config_.cell_width) {
    return Status::InvalidArgument("AVI cell widths differ");
  }
  Schema joined_schema;
  for (const Field& f : schema_.fields()) {
    DT_RETURN_IF_ERROR(joined_schema.AddField(Field{"l." + f.name, f.type}));
  }
  for (const Field& f : rhs.schema_.fields()) {
    DT_RETURN_IF_ERROR(joined_schema.AddField(Field{"r." + f.name, f.type}));
  }
  const size_t ldims = schema_.num_fields();
  auto result = std::unique_ptr<AviHistogram>(
      new AviHistogram(std::move(joined_schema), config_));
  result->marginals_.assign(ldims + rhs.schema_.num_fields(), {});

  if (total_count_ <= 0 || rhs.total_count_ <= 0) {
    return SynopsisPtr(std::move(result));
  }

  // Expected matches under AVI: each key pair contributes an independent
  // matching probability; the matched key mass distribution is the
  // normalized per-cell product of the two marginals.
  int64_t work = 0;
  double match_probability = 1.0;
  std::vector<std::map<int64_t, double>> key_distributions;
  for (const auto& [lk, rk] : keys) {
    if (lk >= ldims || rk >= rhs.schema_.num_fields()) {
      return Status::OutOfRange("join key column out of range");
    }
    std::map<int64_t, double> matched;
    double mass = 0;
    for (const auto& [coord, lmass] : marginals_[lk]) {
      ++work;
      auto it = rhs.marginals_[rk].find(coord);
      if (it == rhs.marginals_[rk].end()) continue;
      const double m = (lmass / total_count_) *
                       (it->second / rhs.total_count_) / ValuesPerCell();
      matched[coord] = m;
      mass += m;
    }
    match_probability *= mass;
    key_distributions.push_back(std::move(matched));
  }
  const double result_total =
      total_count_ * rhs.total_count_ * match_probability;
  if (result_total <= 0) {
    if (stats != nullptr) stats->work += work;
    return SynopsisPtr(std::move(result));
  }
  result->total_count_ = result_total;

  // Non-key marginals keep their shape, rescaled to the result total
  // (independence again). Key marginals take the matched distribution.
  auto scale_into = [&](const std::map<int64_t, double>& source,
                        double source_total, size_t dim) {
    for (const auto& [coord, mass] : source) {
      result->marginals_[dim][coord] +=
          mass / source_total * result_total;
      ++work;
    }
  };
  std::vector<bool> left_is_key(ldims, false);
  std::vector<bool> right_is_key(rhs.schema_.num_fields(), false);
  for (size_t k = 0; k < keys.size(); ++k) {
    left_is_key[keys[k].first] = true;
    right_is_key[keys[k].second] = true;
    double mass = 0;
    for (const auto& [coord, m] : key_distributions[k]) mass += m;
    if (mass <= 0) continue;
    // Both output key columns share the matched distribution.
    for (const auto& [coord, m] : key_distributions[k]) {
      result->marginals_[keys[k].first][coord] += m / mass * result_total;
      result->marginals_[ldims + keys[k].second][coord] +=
          m / mass * result_total;
      ++work;
    }
  }
  for (size_t d = 0; d < ldims; ++d) {
    if (!left_is_key[d]) scale_into(marginals_[d], total_count_, d);
  }
  for (size_t d = 0; d < rhs.schema_.num_fields(); ++d) {
    if (!right_is_key[d]) {
      scale_into(rhs.marginals_[d], rhs.total_count_, ldims + d);
    }
  }
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> AviHistogram::ProjectColumns(
    const std::vector<size_t>& indices, const std::vector<std::string>& names,
    OpStats* stats) const {
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "projection indices and names must have equal length");
  }
  Schema projected_schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= schema_.num_fields()) {
      return Status::OutOfRange(
          StringPrintf("projection index %zu out of range", indices[i]));
    }
    DT_RETURN_IF_ERROR(projected_schema.AddField(
        Field{names[i], schema_.field(indices[i]).type}));
  }
  auto result = std::unique_ptr<AviHistogram>(
      new AviHistogram(std::move(projected_schema), config_));
  result->marginals_.clear();
  for (size_t i : indices) result->marginals_.push_back(marginals_[i]);
  result->total_count_ = total_count_;
  if (stats != nullptr) {
    stats->work += static_cast<int64_t>(indices.size());
  }
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> AviHistogram::Filter(const plan::BoundExpr& predicate,
                                         OpStats* stats) const {
  std::vector<size_t> columns;
  CollectColumns(predicate, &columns);
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()),
                columns.end());
  if (columns.size() > 1) {
    return Status::Unimplemented(
        "AVI histograms factor per column and cannot apply multi-column "
        "predicates");
  }
  auto result =
      std::unique_ptr<AviHistogram>(new AviHistogram(schema_, config_));
  if (columns.empty()) {
    // Constant predicate: keep everything or nothing.
    std::vector<Value> stub(schema_.num_fields(), Value::Double(0.0));
    if (predicate.EvaluatesToTrue(Tuple(stub))) {
      result->marginals_ = marginals_;
      result->total_count_ = total_count_;
    }
    return SynopsisPtr(std::move(result));
  }
  const size_t dim = columns[0];
  if (dim >= schema_.num_fields()) {
    return Status::OutOfRange("predicate column out of range");
  }
  // Evaluate the predicate at each cell midpoint of the referenced
  // column, with unreferenced columns stubbed at their marginal means.
  std::vector<Value> stub;
  for (size_t d = 0; d < schema_.num_fields(); ++d) {
    stub.push_back(Value::Double(MarginalMean(d)));
  }
  double kept_mass = 0;
  std::map<int64_t, double> kept_marginal;
  int64_t work = 0;
  for (const auto& [coord, mass] : marginals_[dim]) {
    ++work;
    stub[dim] = Value::Double(CellMidpoint(coord));
    if (predicate.EvaluatesToTrue(Tuple(stub))) {
      kept_marginal[coord] = mass;
      kept_mass += mass;
    }
  }
  if (kept_mass > 0 && total_count_ > 0) {
    const double scale = kept_mass / total_count_;
    result->total_count_ = kept_mass;
    for (size_t d = 0; d < schema_.num_fields(); ++d) {
      if (d == dim) {
        result->marginals_[d] = kept_marginal;
        continue;
      }
      for (const auto& [coord, mass] : marginals_[d]) {
        result->marginals_[d][coord] = mass * scale;
        ++work;
      }
    }
  }
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<GroupedEstimate> AviHistogram::EstimateGroups(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  for (size_t g : group_columns) {
    if (g >= schema_.num_fields()) {
      return Status::OutOfRange("group column out of range");
    }
  }
  for (size_t a : agg_columns) {
    if (a != kCountOnlyColumn && a >= schema_.num_fields()) {
      return Status::OutOfRange("aggregate column out of range");
    }
  }
  GroupedEstimate groups;
  if (total_count_ <= 0) return groups;
  if (group_columns.empty()) {
    auto [it, inserted] = groups.try_emplace(std::vector<Value>{});
    it->second.resize(agg_columns.size());
    for (size_t a = 0; a < agg_columns.size(); ++a) {
      if (agg_columns[a] == kCountOnlyColumn) {
        it->second[a].count += total_count_;
      } else {
        it->second[a].Add(MarginalMean(agg_columns[a]), total_count_);
      }
    }
    return groups;
  }

  // Enumerate integer points per group dimension, weighting by the
  // product of marginal shares (AVI).
  std::vector<std::vector<std::pair<Value, double>>> per_dim;
  for (size_t g : group_columns) {
    std::vector<std::pair<Value, double>> points;
    const bool integral = schema_.field(g).type == FieldType::kInt64;
    for (const auto& [coord, mass] : marginals_[g]) {
      if (integral) {
        const int64_t lo = static_cast<int64_t>(
            std::ceil(coord * config_.cell_width));
        const int64_t hi = static_cast<int64_t>(std::ceil(
                               (coord + 1) * config_.cell_width)) -
                           1;
        const double n = std::max<double>(1.0, hi - lo + 1.0);
        for (int64_t v = lo; v <= hi; ++v) {
          points.emplace_back(Value::Int64(v), mass / n / total_count_);
        }
      } else {
        points.emplace_back(Value::Double(CellMidpoint(coord)),
                            mass / total_count_);
      }
    }
    per_dim.push_back(std::move(points));
  }
  std::vector<size_t> cursor(per_dim.size(), 0);
  while (true) {
    std::vector<Value> key;
    double share = 1.0;
    for (size_t d = 0; d < per_dim.size(); ++d) {
      if (per_dim[d].empty()) {
        share = 0;
        break;
      }
      key.push_back(per_dim[d][cursor[d]].first);
      share *= per_dim[d][cursor[d]].second;
    }
    const double weight = share * total_count_;
    if (weight > 0) {
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(agg_columns.size());
      for (size_t a = 0; a < agg_columns.size(); ++a) {
        if (agg_columns[a] == kCountOnlyColumn) {
          it->second[a].count += weight;
          continue;
        }
        double value = MarginalMean(agg_columns[a]);
        for (size_t d = 0; d < group_columns.size(); ++d) {
          if (group_columns[d] == agg_columns[a]) {
            value = per_dim[d][cursor[d]].first.AsDouble();
            break;
          }
        }
        it->second[a].Add(value, weight);
      }
    }
    size_t d = 0;
    for (; d < cursor.size(); ++d) {
      if (per_dim[d].empty()) break;
      if (++cursor[d] < per_dim[d].size()) break;
      cursor[d] = 0;
    }
    if (d == cursor.size() || per_dim[d].empty()) break;
  }
  return groups;
}

double AviHistogram::EstimatePointCount(const Tuple& point) const {
  DT_CHECK_EQ(point.size(), schema_.num_fields());
  if (total_count_ <= 0) return 0.0;
  double estimate = total_count_;
  for (size_t d = 0; d < point.size(); ++d) {
    auto it = marginals_[d].find(CellCoord(point.value(d).AsDouble()));
    if (it == marginals_[d].end()) return 0.0;
    double share = it->second / total_count_;
    if (schema_.field(d).type == FieldType::kInt64) {
      share /= ValuesPerCell();
    }
    estimate *= share;
  }
  return estimate;
}

void AviHistogram::SaveState(serde::Writer* writer) const {
  writer->WriteDouble(config_.cell_width);
  writer->WriteU64(marginals_.size());
  for (const auto& marginal : marginals_) {
    writer->WriteU64(marginal.size());
    for (const auto& [coord, mass] : marginal) {
      writer->WriteI64(coord);
      writer->WriteDouble(mass);
    }
  }
  writer->WriteDouble(total_count_);
}

Status AviHistogram::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(config_.cell_width, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(const uint64_t dims, reader->ReadCount(8));
  marginals_.assign(dims, {});
  for (uint64_t d = 0; d < dims; ++d) {
    DT_ASSIGN_OR_RETURN(const uint64_t cells, reader->ReadCount(16));
    for (uint64_t i = 0; i < cells; ++i) {
      DT_ASSIGN_OR_RETURN(const int64_t coord, reader->ReadI64());
      DT_ASSIGN_OR_RETURN(const double mass, reader->ReadDouble());
      marginals_[d].emplace(coord, mass);
    }
  }
  DT_ASSIGN_OR_RETURN(total_count_, reader->ReadDouble());
  return Status::OK();
}

}  // namespace datatriage::synopsis
