#ifndef DATATRIAGE_SYNOPSIS_SERDE_H_
#define DATATRIAGE_SYNOPSIS_SERDE_H_

#include "src/catalog/schema.h"
#include "src/common/result.h"
#include "src/common/serde.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

/// Schema round-trip for the session snapshot format (DESIGN.md §14).
void SaveSchema(serde::Writer* writer, const Schema& schema);
Result<Schema> LoadSchema(serde::Reader* reader);

/// Serializes `synopsis` (which may be null — window slots hold null
/// synopses before the first fold) as a presence flag, a type tag, the
/// schema, and the type-specific state written by Synopsis::SaveState.
void SaveSynopsis(serde::Writer* writer, const Synopsis* synopsis);

/// Inverse of SaveSynopsis: reconstructs a synopsis of the encoded type
/// over the encoded schema and replays its state. Returns nullptr for an
/// encoded null.
Result<SynopsisPtr> LoadSynopsis(serde::Reader* reader);

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_SERDE_H_
