#ifndef DATATRIAGE_SYNOPSIS_GRID_HISTOGRAM_H_
#define DATATRIAGE_SYNOPSIS_GRID_HISTOGRAM_H_

#include <map>
#include <vector>

#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

struct GridHistogramConfig {
  /// Edge length of the cubic cells, identical in every dimension (the
  /// paper's "sparse multidimensional histogram with cubic buckets",
  /// Sec. 5.2.2). For the integer-valued workloads of the paper, a width
  /// of w covers w distinct attribute values per cell.
  double cell_width = 4.0;
};

/// Sparse multidimensional histogram with cubic, grid-aligned buckets.
/// Only occupied cells are stored, so memory tracks the data's support
/// rather than the domain volume. Because all instances share one global
/// grid, equijoins reduce to cell-coordinate matching — the property that
/// makes this the paper's "fast" synopsis (Fig. 6).
///
/// Uniformity assumptions (documented in DESIGN.md): tuples are uniform
/// within a cell, and attribute domains are integer-valued, so a cell of
/// width w holds w distinct values of each attribute; equijoin selectivity
/// within a matching cell pair is 1/w per key.
class GridHistogram final : public Synopsis {
 public:
  /// Creates an empty histogram. Fails if the schema has non-numeric
  /// columns or cell_width <= 0.
  static Result<SynopsisPtr> Make(Schema schema,
                                  const GridHistogramConfig& config);

  SynopsisType type() const override {
    return SynopsisType::kGridHistogram;
  }

  void Insert(const Tuple& tuple) override;
  double TotalCount() const override { return total_count_; }
  size_t SizeInCells() const override { return cells_.size(); }
  size_t MemoryBytes() const override;
  SynopsisPtr Clone() const override;

  Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                   OpStats* stats) const override;
  Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const override;
  Result<SynopsisPtr> ProjectColumns(const std::vector<size_t>& indices,
                                     const std::vector<std::string>& names,
                                     OpStats* stats) const override;
  Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                             OpStats* stats) const override;
  Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const override;
  double EstimatePointCount(const Tuple& point) const override;

  void SaveState(serde::Writer* writer) const override;
  Status LoadState(serde::Reader* reader) override;

  double cell_width() const { return config_.cell_width; }

  /// Cell coordinates -> estimated tuple count; exposed for tests and the
  /// visualization example (cells render as the red rectangles of paper
  /// Fig. 3).
  const std::map<std::vector<int64_t>, double>& cells() const {
    return cells_;
  }

  /// Adds `count` estimated tuples at the given cell coordinates.
  void AddCell(const std::vector<int64_t>& coords, double count);

 private:
  GridHistogram(Schema schema, const GridHistogramConfig& config)
      : Synopsis(std::move(schema)), config_(config) {}

  int64_t CellCoord(double value) const;
  /// Number of distinct integer attribute values inside one cell edge.
  double ValuesPerCell() const;
  /// Midpoint of a cell along one dimension.
  double CellMidpoint(int64_t coord) const;

  GridHistogramConfig config_;
  std::map<std::vector<int64_t>, double> cells_;
  double total_count_ = 0.0;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_GRID_HISTOGRAM_H_
