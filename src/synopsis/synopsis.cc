#include "src/synopsis/synopsis.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace datatriage::synopsis {

std::string_view SynopsisTypeToString(SynopsisType type) {
  switch (type) {
    case SynopsisType::kGridHistogram:
      return "grid_histogram";
    case SynopsisType::kMHist:
      return "mhist";
    case SynopsisType::kAlignedMHist:
      return "aligned_mhist";
    case SynopsisType::kReservoirSample:
      return "reservoir_sample";
    case SynopsisType::kAviHistogram:
      return "avi_histogram";
    case SynopsisType::kExact:
      return "exact";
  }
  return "?";
}

void AggAccumulator::Add(double value, double weight) {
  if (weight <= 0) return;
  count += weight;
  sum += value * weight;
  min = std::min(min, value);
  max = std::max(max, value);
}

void AggAccumulator::MergeFrom(const AggAccumulator& other) {
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

Status Synopsis::CheckNumericSchema(const Schema& schema) {
  for (const Field& f : schema.fields()) {
    if (!IsNumericType(f.type)) {
      return Status::InvalidArgument(
          "synopses support only numeric columns; column '" + f.name +
          "' has type " + std::string(FieldTypeToString(f.type)));
    }
  }
  return Status::OK();
}

std::string Synopsis::DebugString() const {
  return StringPrintf("%s over [%s]: ~%.1f tuples in %zu cells",
                      std::string(SynopsisTypeToString(type())).c_str(),
                      schema_.ToString().c_str(), TotalCount(),
                      SizeInCells());
}

}  // namespace datatriage::synopsis
