#include "src/synopsis/grid_histogram.h"

#include <algorithm>
#include <cmath>

#include "src/common/mem_accounting.h"
#include "src/common/serde.h"
#include "src/common/string_util.h"

namespace datatriage::synopsis {

namespace {

/// Integer points covered by cell `coord` along a dimension of width `w`:
/// [ceil(coord*w), ceil((coord+1)*w) - 1].
void IntegerPointsInCell(int64_t coord, double w,
                         std::vector<double>* points) {
  const int64_t lo = static_cast<int64_t>(std::ceil(coord * w));
  const int64_t hi = static_cast<int64_t>(std::ceil((coord + 1) * w)) - 1;
  points->clear();
  for (int64_t v = lo; v <= hi; ++v) {
    points->push_back(static_cast<double>(v));
  }
  if (points->empty()) points->push_back(coord * w);
}

}  // namespace

Result<SynopsisPtr> GridHistogram::Make(Schema schema,
                                        const GridHistogramConfig& config) {
  DT_RETURN_IF_ERROR(CheckNumericSchema(schema));
  if (config.cell_width <= 0) {
    return Status::InvalidArgument("grid histogram cell_width must be > 0");
  }
  return SynopsisPtr(new GridHistogram(std::move(schema), config));
}

int64_t GridHistogram::CellCoord(double value) const {
  return static_cast<int64_t>(std::floor(value / config_.cell_width));
}

double GridHistogram::ValuesPerCell() const {
  return std::max(1.0, std::round(config_.cell_width));
}

double GridHistogram::CellMidpoint(int64_t coord) const {
  return (static_cast<double>(coord) + 0.5) * config_.cell_width;
}

size_t GridHistogram::MemoryBytes() const {
  // One map node per occupied cell: coordinate vector + count.
  const size_t per_cell = mem::kMapNodeBytes + mem::kVectorHeaderBytes +
                          8 * schema_.num_fields() + 8;
  return mem::kSynopsisBaseBytes + cells_.size() * per_cell;
}

void GridHistogram::Insert(const Tuple& tuple) {
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  std::vector<int64_t> coords;
  coords.reserve(tuple.size());
  for (size_t i = 0; i < tuple.size(); ++i) {
    coords.push_back(CellCoord(tuple.value(i).AsDouble()));
  }
  cells_[coords] += 1.0;
  total_count_ += 1.0;
}

void GridHistogram::AddCell(const std::vector<int64_t>& coords,
                            double count) {
  DT_CHECK_EQ(coords.size(), schema_.num_fields());
  if (count <= 0) return;
  cells_[coords] += count;
  total_count_ += count;
}

SynopsisPtr GridHistogram::Clone() const {
  auto clone =
      std::unique_ptr<GridHistogram>(new GridHistogram(schema_, config_));
  clone->cells_ = cells_;
  clone->total_count_ = total_count_;
  return clone;
}

Result<SynopsisPtr> GridHistogram::UnionAllWith(const Synopsis& other,
                                                OpStats* stats) const {
  if (other.type() != SynopsisType::kGridHistogram) {
    return Status::InvalidArgument(
        "cannot union grid histogram with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const GridHistogram&>(other);
  if (rhs.config_.cell_width != config_.cell_width) {
    return Status::InvalidArgument(
        StringPrintf("grid cell widths differ (%g vs %g)",
                     config_.cell_width, rhs.config_.cell_width));
  }
  if (rhs.schema_.num_fields() != schema_.num_fields()) {
    return Status::InvalidArgument("union of different-arity histograms");
  }
  auto result =
      std::unique_ptr<GridHistogram>(new GridHistogram(schema_, config_));
  result->cells_ = cells_;
  result->total_count_ = total_count_;
  for (const auto& [coords, count] : rhs.cells_) {
    result->cells_[coords] += count;
    result->total_count_ += count;
  }
  if (stats != nullptr) {
    stats->work += static_cast<int64_t>(cells_.size() + rhs.cells_.size());
  }
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> GridHistogram::EquiJoinWith(
    const Synopsis& other, const std::vector<std::pair<size_t, size_t>>& keys,
    OpStats* stats) const {
  if (other.type() != SynopsisType::kGridHistogram) {
    return Status::InvalidArgument(
        "cannot join grid histogram with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const GridHistogram&>(other);
  if (rhs.config_.cell_width != config_.cell_width) {
    return Status::InvalidArgument(
        StringPrintf("grid cell widths differ (%g vs %g)",
                     config_.cell_width, rhs.config_.cell_width));
  }
  DT_ASSIGN_OR_RETURN(Schema joined_schema, [&]() -> Result<Schema> {
    // Column names may collide across sides; uniquify with a side prefix.
    Schema s;
    for (const Field& f : schema_.fields()) {
      DT_RETURN_IF_ERROR(s.AddField(Field{"l." + f.name, f.type}));
    }
    for (const Field& f : rhs.schema_.fields()) {
      DT_RETURN_IF_ERROR(s.AddField(Field{"r." + f.name, f.type}));
    }
    return s;
  }());

  // Index the right side's cells by their join-key coordinates.
  std::vector<size_t> left_keys, right_keys;
  for (const auto& [l, r] : keys) {
    if (l >= schema_.num_fields() || r >= rhs.schema_.num_fields()) {
      return Status::OutOfRange("join key column out of range");
    }
    left_keys.push_back(l);
    right_keys.push_back(r);
  }
  std::map<std::vector<int64_t>,
           std::vector<const std::pair<const std::vector<int64_t>, double>*>>
      index;
  for (const auto& entry : rhs.cells_) {
    std::vector<int64_t> key_coords;
    key_coords.reserve(right_keys.size());
    for (size_t k : right_keys) key_coords.push_back(entry.first[k]);
    index[std::move(key_coords)].push_back(&entry);
  }

  // Within a matching cell pair, assume uniformity: each of the w distinct
  // values per key dimension is equally likely, so the expected number of
  // matching pairs is c1*c2 / w^|keys| (exact join count when keys is
  // empty, i.e. a cross product of one-tuple-per-window synopsis streams
  // as in paper Fig. 5).
  const double selectivity =
      std::pow(1.0 / ValuesPerCell(), static_cast<double>(keys.size()));

  auto result = std::unique_ptr<GridHistogram>(
      new GridHistogram(joined_schema, config_));
  int64_t work = static_cast<int64_t>(rhs.cells_.size());
  for (const auto& [lcoords, lcount] : cells_) {
    ++work;
    std::vector<int64_t> key_coords;
    key_coords.reserve(left_keys.size());
    for (size_t k : left_keys) key_coords.push_back(lcoords[k]);
    auto it = index.find(key_coords);
    if (it == index.end()) continue;
    for (const auto* rentry : it->second) {
      ++work;
      std::vector<int64_t> coords = lcoords;
      coords.insert(coords.end(), rentry->first.begin(),
                    rentry->first.end());
      const double count = lcount * rentry->second * selectivity;
      if (count <= 0) continue;
      result->cells_[std::move(coords)] += count;
      result->total_count_ += count;
    }
  }
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> GridHistogram::ProjectColumns(
    const std::vector<size_t>& indices, const std::vector<std::string>& names,
    OpStats* stats) const {
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "projection indices and names must have equal length");
  }
  Schema projected_schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= schema_.num_fields()) {
      return Status::OutOfRange(
          StringPrintf("projection index %zu out of range", indices[i]));
    }
    DT_RETURN_IF_ERROR(projected_schema.AddField(
        Field{names[i], schema_.field(indices[i]).type}));
  }
  auto result = std::unique_ptr<GridHistogram>(
      new GridHistogram(std::move(projected_schema), config_));
  for (const auto& [coords, count] : cells_) {
    std::vector<int64_t> projected;
    projected.reserve(indices.size());
    for (size_t i : indices) projected.push_back(coords[i]);
    result->cells_[std::move(projected)] += count;
    result->total_count_ += count;
  }
  if (stats != nullptr) stats->work += static_cast<int64_t>(cells_.size());
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> GridHistogram::Filter(const plan::BoundExpr& predicate,
                                          OpStats* stats) const {
  // Coarse bucket-granularity selection: the predicate is evaluated at
  // each cell's midpoint and the whole cell is kept or discarded.
  auto result =
      std::unique_ptr<GridHistogram>(new GridHistogram(schema_, config_));
  for (const auto& [coords, count] : cells_) {
    std::vector<Value> midpoint;
    midpoint.reserve(coords.size());
    for (size_t i = 0; i < coords.size(); ++i) {
      midpoint.push_back(Value::Double(CellMidpoint(coords[i])));
    }
    if (predicate.EvaluatesToTrue(Tuple(std::move(midpoint)))) {
      result->cells_[coords] += count;
      result->total_count_ += count;
    }
  }
  if (stats != nullptr) stats->work += static_cast<int64_t>(cells_.size());
  return SynopsisPtr(std::move(result));
}

Result<GroupedEstimate> GridHistogram::EstimateGroups(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  for (size_t g : group_columns) {
    if (g >= schema_.num_fields()) {
      return Status::OutOfRange("group column out of range");
    }
  }
  for (size_t a : agg_columns) {
    if (a != kCountOnlyColumn && a >= schema_.num_fields()) {
      return Status::OutOfRange("aggregate column out of range");
    }
  }

  GroupedEstimate groups;
  std::vector<double> dim_points;
  for (const auto& [coords, count] : cells_) {
    // Enumerate the group-coordinate points this cell spreads over:
    // integer-typed columns get one point per covered integer; real-valued
    // columns collapse to the cell midpoint.
    std::vector<std::vector<double>> per_dim;
    per_dim.reserve(group_columns.size());
    for (size_t g : group_columns) {
      if (schema_.field(g).type == FieldType::kInt64) {
        IntegerPointsInCell(coords[g], config_.cell_width, &dim_points);
        per_dim.push_back(dim_points);
      } else {
        per_dim.push_back({CellMidpoint(coords[g])});
      }
    }
    double num_points = 1.0;
    for (const auto& pts : per_dim) {
      num_points *= static_cast<double>(pts.size());
    }
    const double weight = count / num_points;

    // Walk the cartesian product of per-dimension points.
    std::vector<size_t> cursor(per_dim.size(), 0);
    while (true) {
      std::vector<Value> key;
      key.reserve(group_columns.size());
      for (size_t d = 0; d < per_dim.size(); ++d) {
        const double v = per_dim[d][cursor[d]];
        key.push_back(schema_.field(group_columns[d]).type ==
                              FieldType::kInt64
                          ? Value::Int64(static_cast<int64_t>(v))
                          : Value::Double(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(agg_columns.size());
      for (size_t a = 0; a < agg_columns.size(); ++a) {
        if (agg_columns[a] == kCountOnlyColumn) {
          it->second[a].count += weight;
          continue;
        }
        // If the aggregate column is one of the group columns, its value
        // at this point is the point coordinate itself; otherwise use the
        // cell midpoint along that column.
        double value = CellMidpoint(coords[agg_columns[a]]);
        for (size_t d = 0; d < group_columns.size(); ++d) {
          if (group_columns[d] == agg_columns[a]) {
            value = per_dim[d][cursor[d]];
            break;
          }
        }
        it->second[a].Add(value, weight);
      }
      // Advance the cartesian-product cursor.
      size_t d = 0;
      for (; d < cursor.size(); ++d) {
        if (++cursor[d] < per_dim[d].size()) break;
        cursor[d] = 0;
      }
      // All combinations visited (also exits immediately for the empty
      // group-by, whose single global group was handled above).
      if (d == cursor.size()) break;
    }
  }
  return groups;
}

double GridHistogram::EstimatePointCount(const Tuple& point) const {
  DT_CHECK_EQ(point.size(), schema_.num_fields());
  std::vector<int64_t> coords;
  coords.reserve(point.size());
  for (size_t i = 0; i < point.size(); ++i) {
    coords.push_back(CellCoord(point.value(i).AsDouble()));
  }
  auto it = cells_.find(coords);
  if (it == cells_.end()) return 0.0;
  // Spread the cell mass uniformly over the integer points it covers.
  double points = 1.0;
  for (size_t i = 0; i < point.size(); ++i) {
    if (schema_.field(i).type == FieldType::kInt64) {
      points *= ValuesPerCell();
    }
  }
  return it->second / points;
}

void GridHistogram::SaveState(serde::Writer* writer) const {
  writer->WriteDouble(config_.cell_width);
  writer->WriteU64(cells_.size());
  for (const auto& [coords, count] : cells_) {
    writer->WriteU64(coords.size());
    for (const int64_t c : coords) writer->WriteI64(c);
    writer->WriteDouble(count);
  }
  writer->WriteDouble(total_count_);
}

Status GridHistogram::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(config_.cell_width, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(const uint64_t num_cells, reader->ReadCount(16));
  cells_.clear();
  for (uint64_t i = 0; i < num_cells; ++i) {
    DT_ASSIGN_OR_RETURN(const uint64_t dims, reader->ReadCount(8));
    std::vector<int64_t> coords(dims);
    for (uint64_t d = 0; d < dims; ++d) {
      DT_ASSIGN_OR_RETURN(coords[d], reader->ReadI64());
    }
    DT_ASSIGN_OR_RETURN(const double count, reader->ReadDouble());
    cells_.emplace(std::move(coords), count);
  }
  DT_ASSIGN_OR_RETURN(total_count_, reader->ReadDouble());
  return Status::OK();
}

}  // namespace datatriage::synopsis
