#include "src/synopsis/exact_synopsis.h"

#include <cstdint>
#include <functional>

#include "src/common/flat_table.h"
#include "src/common/serde.h"
#include "src/common/string_util.h"
#include "src/tuple/serde.h"

namespace datatriage::synopsis {

Result<SynopsisPtr> ExactSynopsis::Make(Schema schema,
                                        bool vectorized_exec) {
  DT_RETURN_IF_ERROR(CheckNumericSchema(schema));
  return SynopsisPtr(new ExactSynopsis(std::move(schema), vectorized_exec));
}

void ExactSynopsis::Insert(const Tuple& tuple) {
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  row_bytes_ += mem::TupleBytes(tuple) + mem::kWeightedRowBytes;
  rows_.push_back(WeightedRow{tuple, 1.0});
}

void ExactSynopsis::AddRow(Tuple tuple, double weight) {
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  if (weight <= 0) return;
  row_bytes_ += mem::TupleBytes(tuple) + mem::kWeightedRowBytes;
  rows_.push_back(WeightedRow{std::move(tuple), weight});
}

void ExactSynopsis::RecomputeMemoryBytes() {
  row_bytes_ = mem::kSynopsisBaseBytes;
  for (const WeightedRow& r : rows_) {
    row_bytes_ += mem::TupleBytes(r.tuple) + mem::kWeightedRowBytes;
  }
}

double ExactSynopsis::TotalCount() const {
  double total = 0;
  for (const WeightedRow& r : rows_) total += r.weight;
  return total;
}

SynopsisPtr ExactSynopsis::Clone() const {
  auto clone = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(schema_, vectorized_));
  clone->rows_ = rows_;
  clone->row_bytes_ = row_bytes_;
  return clone;
}

Result<SynopsisPtr> ExactSynopsis::UnionAllWith(const Synopsis& other,
                                                OpStats* stats) const {
  if (other.type() != SynopsisType::kExact) {
    return Status::InvalidArgument(
        "cannot union exact synopsis with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const ExactSynopsis&>(other);
  if (rhs.schema_.num_fields() != schema_.num_fields()) {
    return Status::InvalidArgument("union of different-arity synopses");
  }
  auto result = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(schema_, vectorized_));
  result->rows_ = rows_;
  result->rows_.insert(result->rows_.end(), rhs.rows_.begin(),
                       rhs.rows_.end());
  result->RecomputeMemoryBytes();
  if (stats != nullptr) {
    stats->work += static_cast<int64_t>(rows_.size() + rhs.rows_.size());
  }
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ExactSynopsis::EquiJoinWith(
    const Synopsis& other, const std::vector<std::pair<size_t, size_t>>& keys,
    OpStats* stats) const {
  if (other.type() != SynopsisType::kExact) {
    return Status::InvalidArgument(
        "cannot join exact synopsis with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const ExactSynopsis&>(other);
  Schema joined_schema;
  for (const Field& f : schema_.fields()) {
    DT_RETURN_IF_ERROR(
        joined_schema.AddField(Field{"l." + f.name, f.type}));
  }
  for (const Field& f : rhs.schema_.fields()) {
    DT_RETURN_IF_ERROR(
        joined_schema.AddField(Field{"r." + f.name, f.type}));
  }
  auto result = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(std::move(joined_schema), vectorized_));
  // The algebra's cost model charges the full cross-product regardless of
  // how the matching pairs are found.
  const int64_t work =
      static_cast<int64_t>(rows_.size()) *
      static_cast<int64_t>(rhs.rows_.size());
  if (vectorized_ && !keys.empty() && !rows_.empty() &&
      !rhs.rows_.empty()) {
    // Hash join over whole key columns. Building on the right side and
    // probing with left rows in order emits matches in exactly the
    // nested loop's (left-outer, right-inner) order, so the row
    // sequence — and with it every downstream floating-point
    // accumulation — is unchanged.
    constexpr uint32_t kNil = UINT32_MAX;
    const size_t nr = rhs.rows_.size();
    auto key_hash = [&keys](const Tuple& t, bool left_side) {
      uint64_t h = keys.size();
      for (const auto& [lk, rk] : keys) {
        h = HashCombine(h, t.value(left_side ? lk : rk).Hash());
      }
      return h;
    };
    auto keys_match = [&keys](const Tuple& l, const Tuple& r) {
      for (const auto& [lk, rk] : keys) {
        if (!(l.value(lk) == r.value(rk))) return false;
      }
      return true;
    };
    struct Bucket {
      uint32_t head = kNil;
      uint32_t tail = kNil;
    };
    std::vector<uint64_t> right_hashes(nr);
    for (size_t i = 0; i < nr; ++i) {
      right_hashes[i] = key_hash(rhs.rows_[i].tuple, /*left_side=*/false);
    }
    FlatTable<Bucket> table;
    std::vector<uint32_t> next(nr, kNil);
    table.BuildFrom(
        right_hashes.data(), nr,
        [&](const Bucket& b, size_t i) {
          const Tuple& repr = rhs.rows_[b.head].tuple;
          const Tuple& cur = rhs.rows_[i].tuple;
          for (const auto& [lk, rk] : keys) {
            if (!(repr.value(rk) == cur.value(rk))) return false;
          }
          return true;
        },
        [&](size_t i) {
          const uint32_t pos = static_cast<uint32_t>(i);
          return Bucket{pos, pos};
        },
        [&](Bucket* b, size_t i) {
          next[b->tail] = static_cast<uint32_t>(i);
          b->tail = static_cast<uint32_t>(i);
        });
    for (const WeightedRow& l : rows_) {
      const uint64_t hash = key_hash(l.tuple, /*left_side=*/true);
      Bucket* bucket = table.Find(hash, [&](const Bucket& b) {
        return keys_match(l.tuple, rhs.rows_[b.head].tuple);
      });
      if (bucket == nullptr) continue;
      for (uint32_t ri = bucket->head; ri != kNil; ri = next[ri]) {
        const WeightedRow& r = rhs.rows_[ri];
        result->rows_.push_back(
            WeightedRow{l.tuple.Concat(r.tuple), l.weight * r.weight});
      }
    }
    result->RecomputeMemoryBytes();
    if (stats != nullptr) stats->work += work;
    return SynopsisPtr(std::move(result));
  }
  for (const WeightedRow& l : rows_) {
    for (const WeightedRow& r : rhs.rows_) {
      bool match = true;
      for (const auto& [lk, rk] : keys) {
        if (!(l.tuple.value(lk) == r.tuple.value(rk))) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      result->rows_.push_back(
          WeightedRow{l.tuple.Concat(r.tuple), l.weight * r.weight});
    }
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ExactSynopsis::ProjectColumns(
    const std::vector<size_t>& indices, const std::vector<std::string>& names,
    OpStats* stats) const {
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "projection indices and names must have equal length");
  }
  Schema projected_schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= schema_.num_fields()) {
      return Status::OutOfRange(
          StringPrintf("projection index %zu out of range", indices[i]));
    }
    DT_RETURN_IF_ERROR(projected_schema.AddField(
        Field{names[i], schema_.field(indices[i]).type}));
  }
  auto result = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(std::move(projected_schema), vectorized_));
  for (const WeightedRow& r : rows_) {
    result->rows_.push_back(WeightedRow{r.tuple.Project(indices), r.weight});
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += static_cast<int64_t>(rows_.size());
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ExactSynopsis::Filter(const plan::BoundExpr& predicate,
                                          OpStats* stats) const {
  auto result = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(schema_, vectorized_));
  for (const WeightedRow& r : rows_) {
    if (predicate.EvaluatesToTrue(r.tuple)) result->rows_.push_back(r);
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += static_cast<int64_t>(rows_.size());
  return SynopsisPtr(std::move(result));
}

Result<GroupedEstimate> ExactSynopsis::EstimateGroups(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  for (size_t g : group_columns) {
    if (g >= schema_.num_fields()) {
      return Status::OutOfRange("group column out of range");
    }
  }
  for (size_t a : agg_columns) {
    if (a != kCountOnlyColumn && a >= schema_.num_fields()) {
      return Status::OutOfRange("aggregate column out of range");
    }
  }
  if (vectorized_ && !rows_.empty()) {
    return EstimateGroupsVectorized(group_columns, agg_columns);
  }
  // Same staging as the engine's exact accumulator: groups hash borrowed
  // rows in a flat table, and the ordered GroupedEstimate is built once
  // per distinct group rather than once per row.
  struct Staged {
    const Tuple* repr = nullptr;
    size_t offset = 0;
  };
  const size_t stride = agg_columns.size();
  FlatTable<Staged> staged;
  std::vector<AggAccumulator> arena;
  for (const WeightedRow& r : rows_) {
    const uint64_t hash = HashValuesAt(r.tuple, group_columns);
    auto [entry, inserted] = staged.FindOrEmplace(
        hash,
        [&](const Staged& s) {
          return ValuesEqualAt(*s.repr, group_columns, r.tuple,
                               group_columns);
        },
        [&] {
          const size_t offset = arena.size();
          arena.resize(offset + stride);
          return Staged{&r.tuple, offset};
        });
    for (size_t a = 0; a < stride; ++a) {
      if (agg_columns[a] == kCountOnlyColumn) {
        arena[entry->offset + a].count += r.weight;
      } else {
        arena[entry->offset + a].Add(
            r.tuple.value(agg_columns[a]).AsDouble(), r.weight);
      }
    }
  }
  GroupedEstimate groups;
  staged.ForEach([&](const Staged& s) {
    std::vector<Value> key;
    key.reserve(group_columns.size());
    for (size_t g : group_columns) key.push_back(s.repr->value(g));
    groups.emplace(std::move(key),
                   std::vector<AggAccumulator>(
                       arena.begin() + static_cast<ptrdiff_t>(s.offset),
                       arena.begin() +
                           static_cast<ptrdiff_t>(s.offset + stride)));
  });
  return groups;
}

GroupedEstimate ExactSynopsis::EstimateGroupsVectorized(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  const size_t n = rows_.size();
  const size_t stride = agg_columns.size();

  // Gather the group key columns as promoted doubles (the schema is
  // numeric-only, so Value::Hash and operator== both reduce to the
  // double representation) and hash whole columns, HashValuesAt-style.
  std::vector<std::vector<double>> group_vals(group_columns.size());
  for (size_t k = 0; k < group_columns.size(); ++k) {
    group_vals[k].resize(n);
    const size_t c = group_columns[k];
    for (size_t i = 0; i < n; ++i) {
      group_vals[k][i] = rows_[i].tuple.value(c).AsDouble();
    }
  }
  std::vector<uint64_t> hashes(n, group_columns.size());
  std::hash<double> hasher;
  for (const std::vector<double>& col : group_vals) {
    for (size_t i = 0; i < n; ++i) {
      hashes[i] = HashCombine(hashes[i], hasher(col[i]));
    }
  }

  struct Staged {
    uint32_t repr_row = 0;
    uint32_t id = 0;
  };
  FlatTable<Staged> staged;
  std::vector<uint32_t> group_of(n);
  std::vector<uint32_t> repr_rows;
  for (size_t i = 0; i < n; ++i) {
    auto [entry, inserted] = staged.FindOrEmplace(
        hashes[i],
        [&](const Staged& s) {
          for (const std::vector<double>& col : group_vals) {
            if (!(col[s.repr_row] == col[i])) return false;
          }
          return true;
        },
        [&] {
          Staged s{static_cast<uint32_t>(i),
                   static_cast<uint32_t>(repr_rows.size())};
          repr_rows.push_back(static_cast<uint32_t>(i));
          return s;
        });
    group_of[i] = entry->id;
  }

  // One accumulation sweep per aggregate, in row order — the same
  // per-(group, aggregate) update sequence as the scalar loop.
  std::vector<AggAccumulator> arena(repr_rows.size() * stride);
  std::vector<double> agg_vals(n);
  for (size_t a = 0; a < stride; ++a) {
    if (agg_columns[a] == kCountOnlyColumn) {
      for (size_t i = 0; i < n; ++i) {
        arena[group_of[i] * stride + a].count += rows_[i].weight;
      }
      continue;
    }
    const size_t c = agg_columns[a];
    for (size_t i = 0; i < n; ++i) {
      agg_vals[i] = rows_[i].tuple.value(c).AsDouble();
    }
    for (size_t i = 0; i < n; ++i) {
      arena[group_of[i] * stride + a].Add(agg_vals[i], rows_[i].weight);
    }
  }

  GroupedEstimate groups;
  for (size_t g = 0; g < repr_rows.size(); ++g) {
    const Tuple& repr = rows_[repr_rows[g]].tuple;
    std::vector<Value> key;
    key.reserve(group_columns.size());
    for (size_t gc : group_columns) key.push_back(repr.value(gc));
    groups.emplace(std::move(key),
                   std::vector<AggAccumulator>(
                       arena.begin() + static_cast<ptrdiff_t>(g * stride),
                       arena.begin() +
                           static_cast<ptrdiff_t>((g + 1) * stride)));
  }
  return groups;
}

double ExactSynopsis::EstimatePointCount(const Tuple& point) const {
  double total = 0;
  for (const WeightedRow& r : rows_) {
    if (r.tuple == point) total += r.weight;
  }
  return total;
}

void ExactSynopsis::SaveState(serde::Writer* writer) const {
  writer->WriteBool(vectorized_);
  writer->WriteU64(rows_.size());
  for (const WeightedRow& r : rows_) {
    SaveTuple(writer, r.tuple);
    writer->WriteDouble(r.weight);
  }
}

Status ExactSynopsis::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(vectorized_, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(const uint64_t num_rows, reader->ReadCount(16));
  rows_.clear();
  rows_.reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    WeightedRow r;
    DT_ASSIGN_OR_RETURN(r.tuple, LoadTuple(reader));
    DT_ASSIGN_OR_RETURN(r.weight, reader->ReadDouble());
    rows_.push_back(std::move(r));
  }
  RecomputeMemoryBytes();
  return Status::OK();
}

}  // namespace datatriage::synopsis
