#include "src/synopsis/exact_synopsis.h"

#include "src/common/flat_table.h"
#include "src/common/string_util.h"

namespace datatriage::synopsis {

Result<SynopsisPtr> ExactSynopsis::Make(Schema schema) {
  DT_RETURN_IF_ERROR(CheckNumericSchema(schema));
  return SynopsisPtr(new ExactSynopsis(std::move(schema)));
}

void ExactSynopsis::Insert(const Tuple& tuple) {
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  rows_.push_back(WeightedRow{tuple, 1.0});
}

void ExactSynopsis::AddRow(Tuple tuple, double weight) {
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  if (weight <= 0) return;
  rows_.push_back(WeightedRow{std::move(tuple), weight});
}

double ExactSynopsis::TotalCount() const {
  double total = 0;
  for (const WeightedRow& r : rows_) total += r.weight;
  return total;
}

SynopsisPtr ExactSynopsis::Clone() const {
  auto clone = std::unique_ptr<ExactSynopsis>(new ExactSynopsis(schema_));
  clone->rows_ = rows_;
  return clone;
}

Result<SynopsisPtr> ExactSynopsis::UnionAllWith(const Synopsis& other,
                                                OpStats* stats) const {
  if (other.type() != SynopsisType::kExact) {
    return Status::InvalidArgument(
        "cannot union exact synopsis with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const ExactSynopsis&>(other);
  if (rhs.schema_.num_fields() != schema_.num_fields()) {
    return Status::InvalidArgument("union of different-arity synopses");
  }
  auto result = std::unique_ptr<ExactSynopsis>(new ExactSynopsis(schema_));
  result->rows_ = rows_;
  result->rows_.insert(result->rows_.end(), rhs.rows_.begin(),
                       rhs.rows_.end());
  if (stats != nullptr) {
    stats->work += static_cast<int64_t>(rows_.size() + rhs.rows_.size());
  }
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ExactSynopsis::EquiJoinWith(
    const Synopsis& other, const std::vector<std::pair<size_t, size_t>>& keys,
    OpStats* stats) const {
  if (other.type() != SynopsisType::kExact) {
    return Status::InvalidArgument(
        "cannot join exact synopsis with " +
        std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const ExactSynopsis&>(other);
  Schema joined_schema;
  for (const Field& f : schema_.fields()) {
    DT_RETURN_IF_ERROR(
        joined_schema.AddField(Field{"l." + f.name, f.type}));
  }
  for (const Field& f : rhs.schema_.fields()) {
    DT_RETURN_IF_ERROR(
        joined_schema.AddField(Field{"r." + f.name, f.type}));
  }
  auto result = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(std::move(joined_schema)));
  int64_t work = 0;
  for (const WeightedRow& l : rows_) {
    for (const WeightedRow& r : rhs.rows_) {
      ++work;
      bool match = true;
      for (const auto& [lk, rk] : keys) {
        if (!(l.tuple.value(lk) == r.tuple.value(rk))) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      result->rows_.push_back(
          WeightedRow{l.tuple.Concat(r.tuple), l.weight * r.weight});
    }
  }
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ExactSynopsis::ProjectColumns(
    const std::vector<size_t>& indices, const std::vector<std::string>& names,
    OpStats* stats) const {
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "projection indices and names must have equal length");
  }
  Schema projected_schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= schema_.num_fields()) {
      return Status::OutOfRange(
          StringPrintf("projection index %zu out of range", indices[i]));
    }
    DT_RETURN_IF_ERROR(projected_schema.AddField(
        Field{names[i], schema_.field(indices[i]).type}));
  }
  auto result = std::unique_ptr<ExactSynopsis>(
      new ExactSynopsis(std::move(projected_schema)));
  for (const WeightedRow& r : rows_) {
    result->rows_.push_back(WeightedRow{r.tuple.Project(indices), r.weight});
  }
  if (stats != nullptr) stats->work += static_cast<int64_t>(rows_.size());
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> ExactSynopsis::Filter(const plan::BoundExpr& predicate,
                                          OpStats* stats) const {
  auto result = std::unique_ptr<ExactSynopsis>(new ExactSynopsis(schema_));
  for (const WeightedRow& r : rows_) {
    if (predicate.EvaluatesToTrue(r.tuple)) result->rows_.push_back(r);
  }
  if (stats != nullptr) stats->work += static_cast<int64_t>(rows_.size());
  return SynopsisPtr(std::move(result));
}

Result<GroupedEstimate> ExactSynopsis::EstimateGroups(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  for (size_t g : group_columns) {
    if (g >= schema_.num_fields()) {
      return Status::OutOfRange("group column out of range");
    }
  }
  for (size_t a : agg_columns) {
    if (a != kCountOnlyColumn && a >= schema_.num_fields()) {
      return Status::OutOfRange("aggregate column out of range");
    }
  }
  // Same staging as the engine's exact accumulator: groups hash borrowed
  // rows in a flat table, and the ordered GroupedEstimate is built once
  // per distinct group rather than once per row.
  struct Staged {
    const Tuple* repr = nullptr;
    size_t offset = 0;
  };
  const size_t stride = agg_columns.size();
  FlatTable<Staged> staged;
  std::vector<AggAccumulator> arena;
  for (const WeightedRow& r : rows_) {
    const uint64_t hash = HashValuesAt(r.tuple, group_columns);
    auto [entry, inserted] = staged.FindOrEmplace(
        hash,
        [&](const Staged& s) {
          return ValuesEqualAt(*s.repr, group_columns, r.tuple,
                               group_columns);
        },
        [&] {
          const size_t offset = arena.size();
          arena.resize(offset + stride);
          return Staged{&r.tuple, offset};
        });
    for (size_t a = 0; a < stride; ++a) {
      if (agg_columns[a] == kCountOnlyColumn) {
        arena[entry->offset + a].count += r.weight;
      } else {
        arena[entry->offset + a].Add(
            r.tuple.value(agg_columns[a]).AsDouble(), r.weight);
      }
    }
  }
  GroupedEstimate groups;
  staged.ForEach([&](const Staged& s) {
    std::vector<Value> key;
    key.reserve(group_columns.size());
    for (size_t g : group_columns) key.push_back(s.repr->value(g));
    groups.emplace(std::move(key),
                   std::vector<AggAccumulator>(
                       arena.begin() + static_cast<ptrdiff_t>(s.offset),
                       arena.begin() +
                           static_cast<ptrdiff_t>(s.offset + stride)));
  });
  return groups;
}

double ExactSynopsis::EstimatePointCount(const Tuple& point) const {
  double total = 0;
  for (const WeightedRow& r : rows_) {
    if (r.tuple == point) total += r.weight;
  }
  return total;
}

}  // namespace datatriage::synopsis
