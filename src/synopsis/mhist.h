#ifndef DATATRIAGE_SYNOPSIS_MHIST_H_
#define DATATRIAGE_SYNOPSIS_MHIST_H_

#include <vector>

#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

struct MHistConfig {
  /// Bucket budget for the MAXDIFF build.
  size_t max_buckets = 64;
  /// When true, split boundaries snap to multiples of `alignment_step` —
  /// the constrained variant the paper proposes in Sec. 8.1 to avoid the
  /// quadratic bucket blowup of unaligned joins.
  bool aligned = false;
  double alignment_step = 4.0;
};

/// MHIST multidimensional histogram built with the MAXDIFF heuristic
/// (Poosala & Ioannidis), the paper's more accurate but slower synopsis.
///
/// Buckets are axis-aligned hyperrectangles [lo, hi) with a tuple count
/// under a per-bucket uniformity assumption. Tuples accumulate in a buffer
/// and the histogram is built lazily on first use; algebra results carry
/// materialized buckets directly.
///
/// Joining two MHISTs intersects bucket ranges on the key dimensions.
/// When bucket boundaries do not line up, each overlapping pair yields a
/// distinct output bucket — the quadratic blowup the paper observed
/// (Sec. 5.2.2); the work accounting makes that cost visible to the
/// engine's virtual-time model and to benchmark E1/Fig. 6.
class MHist final : public Synopsis {
 public:
  static Result<SynopsisPtr> Make(Schema schema, const MHistConfig& config);

  SynopsisType type() const override {
    return config_.aligned ? SynopsisType::kAlignedMHist
                           : SynopsisType::kMHist;
  }

  void Insert(const Tuple& tuple) override;
  double TotalCount() const override { return total_count_; }
  size_t SizeInCells() const override;
  size_t MemoryBytes() const override;
  SynopsisPtr Clone() const override;

  Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                   OpStats* stats) const override;
  Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const override;
  Result<SynopsisPtr> ProjectColumns(const std::vector<size_t>& indices,
                                     const std::vector<std::string>& names,
                                     OpStats* stats) const override;
  Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                             OpStats* stats) const override;
  Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const override;
  double EstimatePointCount(const Tuple& point) const override;

  void SaveState(serde::Writer* writer) const override;
  Status LoadState(serde::Reader* reader) override;

  struct Bucket {
    std::vector<double> lo;  // inclusive
    std::vector<double> hi;  // exclusive
    double count = 0.0;
  };

  /// Built buckets (triggers the lazy MAXDIFF build).
  const std::vector<Bucket>& buckets() const;

  const MHistConfig& config() const { return config_; }

 private:
  MHist(Schema schema, const MHistConfig& config)
      : Synopsis(std::move(schema)), config_(config) {}

  /// Runs the MAXDIFF build over buffered tuples if not yet built.
  /// Returns the work expended (0 if already built).
  int64_t EnsureBuilt() const;

  /// Number of integer lattice points of `bucket` along dimension `dim`
  /// (>= 1; used for uniformity-based estimates on integer columns).
  double PointsAlong(const Bucket& bucket, size_t dim) const;

  /// Model bytes of one bucket (two boundary vectors + count).
  size_t BucketModelBytes() const;

  /// Rebuilds state_bytes_ from buffer_/buckets_. Buckets only count
  /// once the lazy buffer is gone (built_ && buffer_.empty()), so a
  /// const-read EnsureBuilt never changes MemoryBytes() — see the
  /// Synopsis::MemoryBytes contract.
  void RecomputeMemoryBytes();

  MHistConfig config_;
  // Build inputs (sampling mode).
  std::vector<Tuple> buffer_;
  // Built or materialized buckets.
  mutable bool built_ = false;
  mutable std::vector<Bucket> buckets_;
  double total_count_ = 0.0;
  size_t state_bytes_ = 0;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_MHIST_H_
