#include "src/synopsis/factory.h"

#include "src/synopsis/exact_synopsis.h"

namespace datatriage::synopsis {

Result<SynopsisPtr> MakeSynopsis(const SynopsisConfig& config,
                                 Schema schema) {
  switch (config.type) {
    case SynopsisType::kGridHistogram:
      return GridHistogram::Make(std::move(schema), config.grid);
    case SynopsisType::kMHist: {
      MHistConfig mhist = config.mhist;
      mhist.aligned = false;
      return MHist::Make(std::move(schema), mhist);
    }
    case SynopsisType::kAlignedMHist: {
      MHistConfig mhist = config.mhist;
      mhist.aligned = true;
      return MHist::Make(std::move(schema), mhist);
    }
    case SynopsisType::kReservoirSample:
      return ReservoirSample::Make(std::move(schema), config.reservoir);
    case SynopsisType::kAviHistogram:
      return AviHistogram::Make(std::move(schema), config.avi);
    case SynopsisType::kExact:
      return ExactSynopsis::Make(std::move(schema), config.vectorized_exec);
  }
  return Status::InvalidArgument("unknown synopsis type");
}

}  // namespace datatriage::synopsis
