#ifndef DATATRIAGE_SYNOPSIS_EXACT_SYNOPSIS_H_
#define DATATRIAGE_SYNOPSIS_EXACT_SYNOPSIS_H_

#include <vector>

#include "src/common/mem_accounting.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

/// Lossless "synopsis": a weighted multiset of the actual tuples. Never
/// used for load shedding (it is as expensive as the data); it exists so
/// tests can verify the algebraic identity the Data Triage rewrite rests
/// on (paper Eq. 1: S = S_noisy − S+ + S−): running the shadow plan with
/// ExactSynopsis must reproduce the dropped query results exactly.
class ExactSynopsis final : public Synopsis {
 public:
  /// `vectorized_exec` routes EstimateGroups and EquiJoinWith through the
  /// column-at-a-time kernels (whole-column hashing, hash join instead of
  /// nested loops). Results — including floating-point accumulation order
  /// and reported OpStats work — are byte-identical either way; the flag
  /// is propagated to every synopsis derived from this one.
  static Result<SynopsisPtr> Make(Schema schema,
                                  bool vectorized_exec = true);

  SynopsisType type() const override { return SynopsisType::kExact; }

  void Insert(const Tuple& tuple) override;
  double TotalCount() const override;
  size_t SizeInCells() const override { return rows_.size(); }
  size_t MemoryBytes() const override { return row_bytes_; }
  SynopsisPtr Clone() const override;

  Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                   OpStats* stats) const override;
  Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const override;
  Result<SynopsisPtr> ProjectColumns(const std::vector<size_t>& indices,
                                     const std::vector<std::string>& names,
                                     OpStats* stats) const override;
  Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                             OpStats* stats) const override;
  Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const override;
  double EstimatePointCount(const Tuple& point) const override;

  void SaveState(serde::Writer* writer) const override;
  Status LoadState(serde::Reader* reader) override;

  const std::vector<WeightedRow>& rows() const { return rows_; }
  void AddRow(Tuple tuple, double weight);

 private:
  ExactSynopsis(Schema schema, bool vectorized_exec)
      : Synopsis(std::move(schema)), vectorized_(vectorized_exec) {}

  /// Column-at-a-time EstimateGroups (validated arguments, rows_ not
  /// empty): gathers the referenced columns as promoted doubles, hashes
  /// whole columns, and accumulates per aggregate in row order —
  /// byte-identical to the row-at-a-time staging.
  GroupedEstimate EstimateGroupsVectorized(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const;

  /// Rebuilds row_bytes_ from rows_; algebra builders call this once on
  /// their result instead of paying a per-row increment.
  void RecomputeMemoryBytes();

  std::vector<WeightedRow> rows_;
  size_t row_bytes_ = mem::kSynopsisBaseBytes;
  bool vectorized_ = true;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_EXACT_SYNOPSIS_H_
