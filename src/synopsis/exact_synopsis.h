#ifndef DATATRIAGE_SYNOPSIS_EXACT_SYNOPSIS_H_
#define DATATRIAGE_SYNOPSIS_EXACT_SYNOPSIS_H_

#include <vector>

#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

/// Lossless "synopsis": a weighted multiset of the actual tuples. Never
/// used for load shedding (it is as expensive as the data); it exists so
/// tests can verify the algebraic identity the Data Triage rewrite rests
/// on (paper Eq. 1: S = S_noisy − S+ + S−): running the shadow plan with
/// ExactSynopsis must reproduce the dropped query results exactly.
class ExactSynopsis final : public Synopsis {
 public:
  static Result<SynopsisPtr> Make(Schema schema);

  SynopsisType type() const override { return SynopsisType::kExact; }

  void Insert(const Tuple& tuple) override;
  double TotalCount() const override;
  size_t SizeInCells() const override { return rows_.size(); }
  SynopsisPtr Clone() const override;

  Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                   OpStats* stats) const override;
  Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const override;
  Result<SynopsisPtr> ProjectColumns(const std::vector<size_t>& indices,
                                     const std::vector<std::string>& names,
                                     OpStats* stats) const override;
  Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                             OpStats* stats) const override;
  Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const override;
  double EstimatePointCount(const Tuple& point) const override;

  const std::vector<WeightedRow>& rows() const { return rows_; }
  void AddRow(Tuple tuple, double weight);

 private:
  explicit ExactSynopsis(Schema schema) : Synopsis(std::move(schema)) {}

  std::vector<WeightedRow> rows_;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_EXACT_SYNOPSIS_H_
