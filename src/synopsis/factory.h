#ifndef DATATRIAGE_SYNOPSIS_FACTORY_H_
#define DATATRIAGE_SYNOPSIS_FACTORY_H_

#include "src/synopsis/avi_histogram.h"
#include "src/synopsis/grid_histogram.h"
#include "src/synopsis/mhist.h"
#include "src/synopsis/reservoir_sample.h"
#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

/// Union of the per-type parameters, selected by `type`. One SynopsisConfig
/// describes the synopsis family used for every channel of every stream in
/// an engine run (the algebra requires all participating synopses to share
/// a family).
struct SynopsisConfig {
  SynopsisType type = SynopsisType::kGridHistogram;
  GridHistogramConfig grid;
  MHistConfig mhist;
  ReservoirSampleConfig reservoir;
  AviHistogramConfig avi;
  /// kExact only: run the shadow algebra's group-by and equijoin on the
  /// column-at-a-time kernels. Byte-identical results either way; kept in
  /// sync with EngineConfig::vectorized_exec by the query sessions.
  bool vectorized_exec = true;
};

/// Creates an empty synopsis of the configured family over `schema`.
/// For kAlignedMHist the mhist config's `aligned` flag is forced on.
Result<SynopsisPtr> MakeSynopsis(const SynopsisConfig& config,
                                 Schema schema);

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_FACTORY_H_
