#ifndef DATATRIAGE_SYNOPSIS_AVI_HISTOGRAM_H_
#define DATATRIAGE_SYNOPSIS_AVI_HISTOGRAM_H_

#include <map>
#include <vector>

#include "src/synopsis/synopsis.h"

namespace datatriage::synopsis {

struct AviHistogramConfig {
  /// Cell width of each per-column marginal histogram.
  double cell_width = 4.0;
};

/// One-dimensional marginal histograms per column combined under the
/// Attribute Value Independence (AVI) assumption: the joint distribution
/// is modelled as the product of its marginals.
///
/// This is the classic baseline that multidimensional histograms like
/// MHIST exist to beat (Poosala & Ioannidis, "Selectivity estimation
/// without the attribute value independence assumption", cited by the
/// paper). It is included as an ablation point: memory is O(width x
/// dims) instead of O(occupied joint cells), joins are fast, but any
/// correlation between columns — e.g. the join-key structure a shadow
/// query's intermediate results carry — is lost, which shows up as
/// estimation error in the A1 ablation.
class AviHistogram final : public Synopsis {
 public:
  static Result<SynopsisPtr> Make(Schema schema,
                                  const AviHistogramConfig& config);

  SynopsisType type() const override {
    return SynopsisType::kAviHistogram;
  }

  void Insert(const Tuple& tuple) override;
  double TotalCount() const override { return total_count_; }
  size_t SizeInCells() const override;
  size_t MemoryBytes() const override;
  SynopsisPtr Clone() const override;

  Result<SynopsisPtr> UnionAllWith(const Synopsis& other,
                                   OpStats* stats) const override;
  Result<SynopsisPtr> EquiJoinWith(
      const Synopsis& other,
      const std::vector<std::pair<size_t, size_t>>& keys,
      OpStats* stats) const override;
  Result<SynopsisPtr> ProjectColumns(const std::vector<size_t>& indices,
                                     const std::vector<std::string>& names,
                                     OpStats* stats) const override;
  Result<SynopsisPtr> Filter(const plan::BoundExpr& predicate,
                             OpStats* stats) const override;
  Result<GroupedEstimate> EstimateGroups(
      const std::vector<size_t>& group_columns,
      const std::vector<size_t>& agg_columns) const override;
  double EstimatePointCount(const Tuple& point) const override;

  void SaveState(serde::Writer* writer) const override;
  Status LoadState(serde::Reader* reader) override;

  /// Marginal cell-coordinate -> mass for one dimension (testing hook).
  const std::map<int64_t, double>& marginal(size_t dim) const {
    return marginals_.at(dim);
  }

 private:
  AviHistogram(Schema schema, const AviHistogramConfig& config)
      : Synopsis(std::move(schema)),
        config_(config),
        marginals_(schema_.num_fields()) {}

  int64_t CellCoord(double value) const;
  double ValuesPerCell() const;
  double CellMidpoint(int64_t coord) const;
  /// Mean of dimension `dim`'s marginal (0 when empty).
  double MarginalMean(size_t dim) const;

  AviHistogramConfig config_;
  std::vector<std::map<int64_t, double>> marginals_;
  double total_count_ = 0.0;
};

}  // namespace datatriage::synopsis

#endif  // DATATRIAGE_SYNOPSIS_AVI_HISTOGRAM_H_
