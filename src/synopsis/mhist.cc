#include "src/synopsis/mhist.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/mem_accounting.h"
#include "src/common/serde.h"
#include "src/common/string_util.h"
#include "src/tuple/serde.h"

namespace datatriage::synopsis {

namespace {

/// Build-time bucket: bounds plus the tuples it currently holds.
struct BuildBucket {
  std::vector<double> lo;
  std::vector<double> hi;
  std::vector<const Tuple*> tuples;
};

struct SplitChoice {
  bool valid = false;
  size_t bucket = 0;
  size_t dim = 0;
  double split_point = 0.0;
  double score = -1.0;
};

/// Finds the MAXDIFF split for one bucket/dimension: the boundary between
/// the adjacent distinct values whose *areas* (frequency × spread to the
/// next value) differ the most — the MAXDIFF(V,A) variant of Poosala &
/// Ioannidis, which separates far-apart equal-frequency modes that a pure
/// frequency-difference metric would never split.
void ConsiderSplits(const BuildBucket& bucket, size_t bucket_index,
                    size_t dims, const MHistConfig& config,
                    SplitChoice* best) {
  for (size_t d = 0; d < dims; ++d) {
    // Marginal frequency of each distinct value along dimension d.
    std::map<double, int64_t> freq;
    for (const Tuple* t : bucket.tuples) {
      ++freq[t->value(d).AsDouble()];
    }
    if (freq.size() < 2) continue;
    std::vector<double> values, areas;
    values.reserve(freq.size());
    areas.reserve(freq.size());
    for (const auto& [value, count] : freq) values.push_back(value);
    size_t i = 0;
    for (const auto& [value, count] : freq) {
      const double spread =
          i + 1 < values.size() ? values[i + 1] - value : 1.0;
      areas.push_back(static_cast<double>(count) * spread);
      ++i;
    }
    for (size_t t = 0; t + 1 < values.size(); ++t) {
      const double score = std::abs(areas[t + 1] - areas[t]);
      double split = values[t + 1];
      if (config.aligned) {
        // Snap to the nearest allowed boundary; reject if it leaves the
        // bucket interior.
        split = std::round(split / config.alignment_step) *
                config.alignment_step;
        if (split <= bucket.lo[d] || split >= bucket.hi[d]) continue;
      }
      if (score > best->score) {
        best->valid = true;
        best->bucket = bucket_index;
        best->dim = d;
        best->split_point = split;
        best->score = score;
      }
    }
  }
}

}  // namespace

Result<SynopsisPtr> MHist::Make(Schema schema, const MHistConfig& config) {
  DT_RETURN_IF_ERROR(CheckNumericSchema(schema));
  if (config.max_buckets == 0) {
    return Status::InvalidArgument("MHIST bucket budget must be > 0");
  }
  if (config.aligned && config.alignment_step <= 0) {
    return Status::InvalidArgument("MHIST alignment step must be > 0");
  }
  return SynopsisPtr(new MHist(std::move(schema), config));
}

void MHist::Insert(const Tuple& tuple) {
  DT_CHECK(!built_) << "Insert after the MAXDIFF build ran";
  DT_CHECK_EQ(tuple.size(), schema_.num_fields());
  state_bytes_ += mem::TupleBytes(tuple);
  buffer_.push_back(tuple);
  total_count_ += 1.0;
}

size_t MHist::SizeInCells() const {
  EnsureBuilt();
  return buckets_.size();
}

size_t MHist::BucketModelBytes() const {
  return 2 * (mem::kVectorHeaderBytes + 8 * schema_.num_fields()) + 8;
}

size_t MHist::MemoryBytes() const {
  // The bucket budget is charged up front as a reservation: the lazy
  // MAXDIFF build may materialize up to max_buckets at any const read,
  // and accounting must not move on const reads.
  return mem::kSynopsisBaseBytes +
         config_.max_buckets * BucketModelBytes() + state_bytes_;
}

void MHist::RecomputeMemoryBytes() {
  state_bytes_ = mem::RelationBytes(buffer_);
  if (built_ && buffer_.empty()) {
    state_bytes_ += buckets_.size() * BucketModelBytes();
  }
}

const std::vector<MHist::Bucket>& MHist::buckets() const {
  EnsureBuilt();
  return buckets_;
}

int64_t MHist::EnsureBuilt() const {
  if (built_) return 0;
  built_ = true;
  if (buffer_.empty()) return 0;

  const size_t dims = schema_.num_fields();
  int64_t work = 0;

  // Seed with one bucket spanning the data (half-open: pad hi by 1 so the
  // maximum value is inside, matching integer-valued domains).
  BuildBucket root;
  root.lo.assign(dims, std::numeric_limits<double>::infinity());
  root.hi.assign(dims, -std::numeric_limits<double>::infinity());
  for (const Tuple& t : buffer_) {
    for (size_t d = 0; d < dims; ++d) {
      const double v = t.value(d).AsDouble();
      root.lo[d] = std::min(root.lo[d], v);
      root.hi[d] = std::max(root.hi[d], v);
    }
    root.tuples.push_back(&t);
  }
  for (size_t d = 0; d < dims; ++d) root.hi[d] += 1.0;

  std::vector<BuildBucket> building;
  building.push_back(std::move(root));

  // Each bucket's best split is computed once and cached; a split only
  // invalidates the two buckets it creates, keeping the build roughly
  // linear in tuples x splits instead of quadratic.
  std::vector<SplitChoice> best_for_bucket;
  auto compute_choice = [&](size_t index) {
    SplitChoice choice;
    work += static_cast<int64_t>(building[index].tuples.size()) *
            static_cast<int64_t>(dims);
    ConsiderSplits(building[index], index, dims, config_, &choice);
    return choice;
  };
  best_for_bucket.push_back(compute_choice(0));

  while (building.size() < config_.max_buckets) {
    SplitChoice best;
    for (const SplitChoice& choice : best_for_bucket) {
      if (choice.valid && choice.score > best.score) best = choice;
    }
    if (!best.valid) break;
    BuildBucket& victim = building[best.bucket];
    BuildBucket left, right;
    left.lo = victim.lo;
    left.hi = victim.hi;
    left.hi[best.dim] = best.split_point;
    right.lo = victim.lo;
    right.lo[best.dim] = best.split_point;
    right.hi = victim.hi;
    for (const Tuple* t : victim.tuples) {
      if (t->value(best.dim).AsDouble() < best.split_point) {
        left.tuples.push_back(t);
      } else {
        right.tuples.push_back(t);
      }
    }
    building[best.bucket] = std::move(left);
    building.push_back(std::move(right));
    best_for_bucket[best.bucket] = compute_choice(best.bucket);
    best_for_bucket.push_back(compute_choice(building.size() - 1));
  }

  buckets_.clear();
  buckets_.reserve(building.size());
  for (const BuildBucket& b : building) {
    if (b.tuples.empty()) continue;
    // Shrink the bucket to its data's extent so mass is not smeared over
    // empty ranges; the aligned variant snaps outward to the grid to keep
    // join boundaries aligned.
    Bucket bucket;
    bucket.lo.assign(dims, std::numeric_limits<double>::infinity());
    bucket.hi.assign(dims, -std::numeric_limits<double>::infinity());
    for (const Tuple* t : b.tuples) {
      for (size_t d = 0; d < dims; ++d) {
        const double v = t->value(d).AsDouble();
        bucket.lo[d] = std::min(bucket.lo[d], v);
        bucket.hi[d] = std::max(bucket.hi[d], v);
      }
    }
    for (size_t d = 0; d < dims; ++d) {
      bucket.hi[d] += 1.0;
      if (config_.aligned) {
        bucket.lo[d] = std::floor(bucket.lo[d] / config_.alignment_step) *
                       config_.alignment_step;
        bucket.hi[d] = std::ceil(bucket.hi[d] / config_.alignment_step) *
                       config_.alignment_step;
      }
    }
    bucket.count = static_cast<double>(b.tuples.size());
    buckets_.push_back(std::move(bucket));
  }
  return work;
}

double MHist::PointsAlong(const Bucket& bucket, size_t dim) const {
  if (schema_.field(dim).type != FieldType::kInt64) return 1.0;
  const double lo = std::ceil(bucket.lo[dim]);
  const double hi = std::ceil(bucket.hi[dim]) - 1.0;
  return std::max(1.0, hi - lo + 1.0);
}

SynopsisPtr MHist::Clone() const {
  auto clone = std::unique_ptr<MHist>(new MHist(schema_, config_));
  clone->buffer_ = buffer_;
  clone->built_ = built_;
  clone->buckets_ = buckets_;
  clone->total_count_ = total_count_;
  clone->state_bytes_ = state_bytes_;
  return clone;
}

Result<SynopsisPtr> MHist::UnionAllWith(const Synopsis& other,
                                        OpStats* stats) const {
  if (other.type() != type()) {
    return Status::InvalidArgument(
        "cannot union " + std::string(SynopsisTypeToString(type())) +
        " with " + std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const MHist&>(other);
  if (rhs.schema_.num_fields() != schema_.num_fields()) {
    return Status::InvalidArgument("union of different-arity histograms");
  }
  int64_t work = EnsureBuilt() + rhs.EnsureBuilt();
  auto result = std::unique_ptr<MHist>(new MHist(schema_, config_));
  result->built_ = true;
  result->buckets_ = buckets_;
  result->buckets_.insert(result->buckets_.end(), rhs.buckets_.begin(),
                          rhs.buckets_.end());
  result->total_count_ = total_count_ + rhs.total_count_;
  result->RecomputeMemoryBytes();
  work += static_cast<int64_t>(result->buckets_.size());
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> MHist::EquiJoinWith(
    const Synopsis& other, const std::vector<std::pair<size_t, size_t>>& keys,
    OpStats* stats) const {
  if (other.type() != type()) {
    return Status::InvalidArgument(
        "cannot join " + std::string(SynopsisTypeToString(type())) +
        " with " + std::string(SynopsisTypeToString(other.type())));
  }
  const auto& rhs = static_cast<const MHist&>(other);
  for (const auto& [l, r] : keys) {
    if (l >= schema_.num_fields() || r >= rhs.schema_.num_fields()) {
      return Status::OutOfRange("join key column out of range");
    }
  }
  Schema joined_schema;
  for (const Field& f : schema_.fields()) {
    DT_RETURN_IF_ERROR(joined_schema.AddField(Field{"l." + f.name, f.type}));
  }
  for (const Field& f : rhs.schema_.fields()) {
    DT_RETURN_IF_ERROR(joined_schema.AddField(Field{"r." + f.name, f.type}));
  }
  int64_t work = EnsureBuilt() + rhs.EnsureBuilt();

  auto result = std::unique_ptr<MHist>(
      new MHist(std::move(joined_schema), config_));
  result->built_ = true;

  const size_t ldims = schema_.num_fields();
  const size_t rdims = rhs.schema_.num_fields();
  // Every overlapping bucket pair produces an output bucket: with
  // unaligned boundaries this is the quadratic blowup of Sec. 5.2.2.
  // Output buckets with identical bounds are coalesced — the mechanism by
  // which the alignment-constrained variant (Sec. 8.1) keeps cascaded
  // joins compact, since snapped boundaries coincide often while
  // unconstrained ones almost never do.
  std::map<std::pair<std::vector<double>, std::vector<double>>, double>
      coalesced;
  for (const Bucket& bl : buckets_) {
    for (const Bucket& br : rhs.buckets_) {
      ++work;
      double count = bl.count * br.count;
      std::vector<double> lo(ldims + rdims), hi(ldims + rdims);
      for (size_t d = 0; d < ldims; ++d) {
        lo[d] = bl.lo[d];
        hi[d] = bl.hi[d];
      }
      for (size_t d = 0; d < rdims; ++d) {
        lo[ldims + d] = br.lo[d];
        hi[ldims + d] = br.hi[d];
      }
      bool overlaps = true;
      for (const auto& [lk, rk] : keys) {
        const double olo = std::max(bl.lo[lk], br.lo[rk]);
        const double ohi = std::min(bl.hi[lk], br.hi[rk]);
        if (olo >= ohi) {
          overlaps = false;
          break;
        }
        // Uniformity: fraction of each side's tuples whose key falls in
        // the overlap, matching with probability 1/(distinct values in
        // the overlap).
        const bool integral =
            schema_.field(lk).type == FieldType::kInt64 &&
            rhs.schema_.field(rk).type == FieldType::kInt64;
        double frac_l, frac_r, overlap_points;
        if (integral) {
          const double pl = PointsAlong(bl, lk);
          const double pr = rhs.PointsAlong(br, rk);
          overlap_points = std::max(
              1.0, (std::ceil(ohi) - 1.0) - std::ceil(olo) + 1.0);
          frac_l = std::min(1.0, overlap_points / pl);
          frac_r = std::min(1.0, overlap_points / pr);
        } else {
          const double wl = std::max(bl.hi[lk] - bl.lo[lk], 1e-12);
          const double wr = std::max(br.hi[rk] - br.lo[rk], 1e-12);
          overlap_points = 1.0;
          frac_l = std::min(1.0, (ohi - olo) / wl);
          frac_r = std::min(1.0, (ohi - olo) / wr);
        }
        count *= frac_l * frac_r / overlap_points;
        lo[lk] = olo;
        hi[lk] = ohi;
        lo[ldims + rk] = olo;
        hi[ldims + rk] = ohi;
      }
      if (!overlaps || count <= 0) continue;
      coalesced[{std::move(lo), std::move(hi)}] += count;
      result->total_count_ += count;
      ++work;
    }
  }
  result->buckets_.reserve(coalesced.size());
  for (auto& [bounds, count] : coalesced) {
    result->buckets_.push_back(
        Bucket{bounds.first, bounds.second, count});
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> MHist::ProjectColumns(
    const std::vector<size_t>& indices, const std::vector<std::string>& names,
    OpStats* stats) const {
  if (indices.size() != names.size()) {
    return Status::InvalidArgument(
        "projection indices and names must have equal length");
  }
  Schema projected_schema;
  for (size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= schema_.num_fields()) {
      return Status::OutOfRange(
          StringPrintf("projection index %zu out of range", indices[i]));
    }
    DT_RETURN_IF_ERROR(projected_schema.AddField(
        Field{names[i], schema_.field(indices[i]).type}));
  }
  int64_t work = EnsureBuilt();
  auto result = std::unique_ptr<MHist>(
      new MHist(std::move(projected_schema), config_));
  result->built_ = true;
  for (const Bucket& b : buckets_) {
    ++work;
    Bucket projected;
    for (size_t i : indices) {
      projected.lo.push_back(b.lo[i]);
      projected.hi.push_back(b.hi[i]);
    }
    projected.count = b.count;
    result->buckets_.push_back(std::move(projected));
    result->total_count_ += b.count;
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<SynopsisPtr> MHist::Filter(const plan::BoundExpr& predicate,
                                  OpStats* stats) const {
  int64_t work = EnsureBuilt();
  auto result = std::unique_ptr<MHist>(new MHist(schema_, config_));
  result->built_ = true;
  for (const Bucket& b : buckets_) {
    ++work;
    std::vector<Value> center;
    center.reserve(b.lo.size());
    for (size_t d = 0; d < b.lo.size(); ++d) {
      center.push_back(Value::Double((b.lo[d] + b.hi[d]) / 2.0));
    }
    if (predicate.EvaluatesToTrue(Tuple(std::move(center)))) {
      result->buckets_.push_back(b);
      result->total_count_ += b.count;
    }
  }
  result->RecomputeMemoryBytes();
  if (stats != nullptr) stats->work += work;
  return SynopsisPtr(std::move(result));
}

Result<GroupedEstimate> MHist::EstimateGroups(
    const std::vector<size_t>& group_columns,
    const std::vector<size_t>& agg_columns) const {
  for (size_t g : group_columns) {
    if (g >= schema_.num_fields()) {
      return Status::OutOfRange("group column out of range");
    }
  }
  for (size_t a : agg_columns) {
    if (a != kCountOnlyColumn && a >= schema_.num_fields()) {
      return Status::OutOfRange("aggregate column out of range");
    }
  }
  EnsureBuilt();
  GroupedEstimate groups;
  for (const Bucket& bucket : buckets_) {
    std::vector<std::vector<double>> per_dim;
    per_dim.reserve(group_columns.size());
    for (size_t g : group_columns) {
      std::vector<double> points;
      if (schema_.field(g).type == FieldType::kInt64) {
        const int64_t lo = static_cast<int64_t>(std::ceil(bucket.lo[g]));
        const int64_t hi =
            static_cast<int64_t>(std::ceil(bucket.hi[g])) - 1;
        for (int64_t v = lo; v <= hi; ++v) {
          points.push_back(static_cast<double>(v));
        }
        if (points.empty()) points.push_back(bucket.lo[g]);
      } else {
        points.push_back((bucket.lo[g] + bucket.hi[g]) / 2.0);
      }
      per_dim.push_back(std::move(points));
    }
    double num_points = 1.0;
    for (const auto& pts : per_dim) {
      num_points *= static_cast<double>(pts.size());
    }
    const double weight = bucket.count / num_points;

    std::vector<size_t> cursor(per_dim.size(), 0);
    while (true) {
      std::vector<Value> key;
      key.reserve(group_columns.size());
      for (size_t d = 0; d < per_dim.size(); ++d) {
        const double v = per_dim[d][cursor[d]];
        key.push_back(schema_.field(group_columns[d]).type ==
                              FieldType::kInt64
                          ? Value::Int64(static_cast<int64_t>(v))
                          : Value::Double(v));
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(agg_columns.size());
      for (size_t a = 0; a < agg_columns.size(); ++a) {
        if (agg_columns[a] == kCountOnlyColumn) {
          it->second[a].count += weight;
          continue;
        }
        double value = (bucket.lo[agg_columns[a]] +
                        bucket.hi[agg_columns[a]]) /
                       2.0;
        for (size_t d = 0; d < group_columns.size(); ++d) {
          if (group_columns[d] == agg_columns[a]) {
            value = per_dim[d][cursor[d]];
            break;
          }
        }
        it->second[a].Add(value, weight);
      }
      size_t d = 0;
      for (; d < cursor.size(); ++d) {
        if (++cursor[d] < per_dim[d].size()) break;
        cursor[d] = 0;
      }
      if (d == cursor.size()) break;
    }
  }
  return groups;
}

double MHist::EstimatePointCount(const Tuple& point) const {
  DT_CHECK_EQ(point.size(), schema_.num_fields());
  EnsureBuilt();
  double total = 0;
  for (const Bucket& b : buckets_) {
    bool inside = true;
    double points = 1.0;
    for (size_t d = 0; d < point.size(); ++d) {
      const double v = point.value(d).AsDouble();
      if (v < b.lo[d] || v >= b.hi[d]) {
        inside = false;
        break;
      }
      points *= PointsAlong(b, d);
    }
    if (inside) total += b.count / points;
  }
  return total;
}

void MHist::SaveState(serde::Writer* writer) const {
  writer->WriteU64(config_.max_buckets);
  writer->WriteBool(config_.aligned);
  writer->WriteDouble(config_.alignment_step);
  writer->WriteU64(buffer_.size());
  for (const Tuple& t : buffer_) SaveTuple(writer, t);
  // The lazy-build flag is part of the state: forcing a build here would
  // perturb a restore-vs-never-snapshot comparison.
  writer->WriteBool(built_);
  writer->WriteU64(buckets_.size());
  for (const Bucket& b : buckets_) {
    writer->WriteU64(b.lo.size());
    for (const double v : b.lo) writer->WriteDouble(v);
    for (const double v : b.hi) writer->WriteDouble(v);
    writer->WriteDouble(b.count);
  }
  writer->WriteDouble(total_count_);
}

Status MHist::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const uint64_t max_buckets, reader->ReadU64());
  config_.max_buckets = max_buckets;
  DT_ASSIGN_OR_RETURN(config_.aligned, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(config_.alignment_step, reader->ReadDouble());
  DT_ASSIGN_OR_RETURN(const uint64_t buffered, reader->ReadCount(16));
  buffer_.clear();
  for (uint64_t i = 0; i < buffered; ++i) {
    DT_ASSIGN_OR_RETURN(Tuple t, LoadTuple(reader));
    buffer_.push_back(std::move(t));
  }
  DT_ASSIGN_OR_RETURN(built_, reader->ReadBool());
  DT_ASSIGN_OR_RETURN(const uint64_t num_buckets, reader->ReadCount(8));
  buckets_.clear();
  for (uint64_t i = 0; i < num_buckets; ++i) {
    Bucket b;
    DT_ASSIGN_OR_RETURN(const uint64_t dims, reader->ReadCount(16));
    b.lo.resize(dims);
    b.hi.resize(dims);
    for (uint64_t d = 0; d < dims; ++d) {
      DT_ASSIGN_OR_RETURN(b.lo[d], reader->ReadDouble());
    }
    for (uint64_t d = 0; d < dims; ++d) {
      DT_ASSIGN_OR_RETURN(b.hi[d], reader->ReadDouble());
    }
    DT_ASSIGN_OR_RETURN(b.count, reader->ReadDouble());
    buckets_.push_back(std::move(b));
  }
  DT_ASSIGN_OR_RETURN(total_count_, reader->ReadDouble());
  RecomputeMemoryBytes();
  return Status::OK();
}

}  // namespace datatriage::synopsis
