#include "src/triage/utility_policy.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/mem_accounting.h"
#include "src/common/serde.h"
#include "src/tuple/serde.h"

namespace datatriage::triage {

namespace {

/// Cap on stored partials per (key, level). Bounds both the memory model
/// and the per-observe work; beyond the cap the oldest entry is replaced
/// only implicitly by WITHIN expiry, so the tracker stays deterministic.
constexpr size_t kMaxPartialsPerLevel = 32;

/// Live-partial counts saturate here for scoring; keeps the bonus term
/// strictly below one step's weight so step position always dominates.
constexpr size_t kBonusCap = 16;

class UtilityDropPolicy final : public DropPolicy {
 public:
  explicit UtilityDropPolicy(UtilityPatternSpec spec)
      : spec_(std::move(spec)) {
    DT_CHECK_GE(spec_.steps.size(), 2u);
    for (const plan::BoundExprPtr& step : spec_.steps) {
      DT_CHECK(step != nullptr);
    }
    DT_CHECK_GT(spec_.within_seconds, 0.0);
  }

  DropPolicyKind kind() const override { return DropPolicyKind::kUtility; }

  size_t ChooseVictim(const std::deque<Tuple>& queue) override {
    DT_CHECK(!queue.empty());
    // Scoring must not mutate the tracker: the queue only syncs policy
    // bytes around ObserveKept, so MemoryBytes() has to be stable here.
    size_t victim = 0;
    double victim_score = ScoreTuple(queue[0]);
    for (size_t i = 1; i < queue.size(); ++i) {
      const double score = ScoreTuple(queue[i]);
      if (score < victim_score) {
        victim = i;
        victim_score = score;
      }
    }
    return victim;
  }

  void ObserveKept(const Tuple& tuple) override {
    const size_t k = spec_.steps.size();
    bool any = false;
    std::vector<bool> step_hits(k);
    for (size_t j = 0; j < k; ++j) {
      step_hits[j] = spec_.steps[j]->EvaluatesToTrue(tuple);
      any = any || step_hits[j];
    }
    const double ts = tuple.timestamp();
    now_ = std::max(now_, ts);
    if (!any) return;
    if (tuple.size() <= spec_.key_index) return;
    auto it = state_.find(tuple.value(spec_.key_index));
    if (it == state_.end()) {
      it = state_
               .emplace(tuple.value(spec_.key_index),
                        std::vector<std::vector<double>>(k - 1))
               .first;
      ++num_keys_;
    }
    std::vector<std::vector<double>>& levels = it->second;
    // Descending levels, mirroring the pattern executor: a partial this
    // tuple starts is never extended by the same tuple.
    for (size_t j = k; j-- > 0;) {
      if (!step_hits[j]) continue;
      if (j == 0) {
        Prune(&levels[0]);
        if (levels[0].size() < kMaxPartialsPerLevel) {
          levels[0].push_back(ts);
          ++total_entries_;
        }
        continue;
      }
      if (j == k - 1) continue;  // completions leave no new partial
      Prune(&levels[j - 1]);
      Prune(&levels[j]);
      // Each live level-(j-1) partial extends to level j, keeping its
      // first timestamp (that is all the WITHIN check needs).
      for (const double first : levels[j - 1]) {
        if (ts - first > spec_.within_seconds) continue;
        if (levels[j].size() >= kMaxPartialsPerLevel) break;
        levels[j].push_back(first);
        ++total_entries_;
      }
    }
  }

  size_t MemoryBytes() const override {
    const size_t per_key =
        mem::kMapNodeBytes + mem::kValueSlotBytes +
        (spec_.steps.size() - 1) * mem::kVectorHeaderBytes;
    return num_keys_ * per_key + total_entries_ * mem::kWeightedRowBytes;
  }

  void ClearObservedState() override {
    state_.clear();
    num_keys_ = 0;
    total_entries_ = 0;
    now_ = 0.0;
  }

  void SaveState(serde::Writer* writer) const override {
    writer->WriteDouble(now_);
    writer->WriteU64(state_.size());
    for (const auto& [key, levels] : state_) {
      SaveValue(writer, key);
      for (const std::vector<double>& level : levels) {
        writer->WriteU64(level.size());
        for (const double first : level) writer->WriteDouble(first);
      }
    }
  }

  Status LoadState(serde::Reader* reader) override {
    ClearObservedState();
    DT_ASSIGN_OR_RETURN(now_, reader->ReadDouble());
    DT_ASSIGN_OR_RETURN(const uint64_t num_keys, reader->ReadCount(8));
    const size_t num_levels = spec_.steps.size() - 1;
    for (uint64_t i = 0; i < num_keys; ++i) {
      DT_ASSIGN_OR_RETURN(Value key, LoadValue(reader));
      std::vector<std::vector<double>> levels(num_levels);
      for (std::vector<double>& level : levels) {
        DT_ASSIGN_OR_RETURN(const uint64_t count, reader->ReadCount(8));
        level.reserve(count);
        for (uint64_t e = 0; e < count; ++e) {
          DT_ASSIGN_OR_RETURN(const double first, reader->ReadDouble());
          level.push_back(first);
        }
        total_entries_ += level.size();
      }
      state_.emplace(std::move(key), std::move(levels));
    }
    num_keys_ = state_.size();
    return Status::OK();
  }

 private:
  /// Drops partials that can no longer complete by the advancing
  /// watermark. Only ObserveKept calls this (see ChooseVictim).
  void Prune(std::vector<double>* level) {
    auto keep = std::remove_if(level->begin(), level->end(),
                               [&](double first) {
                                 return now_ - first >
                                        spec_.within_seconds;
                               });
    total_entries_ -= static_cast<size_t>(level->end() - keep);
    level->erase(keep, level->end());
  }

  double ScoreTuple(const Tuple& tuple) const {
    const size_t k = spec_.steps.size();
    if (tuple.size() <= spec_.key_index) return 0.0;
    const std::vector<std::vector<double>>* levels = nullptr;
    double best = 0.0;
    for (size_t j = 0; j < k; ++j) {
      if (!spec_.steps[j]->EvaluatesToTrue(tuple)) continue;
      double bonus = 0.0;
      if (j > 0) {
        if (levels == nullptr) {
          auto it = state_.find(tuple.value(spec_.key_index));
          levels = it == state_.end() ? &kNoLevels : &it->second;
        }
        if (j - 1 < levels->size()) {
          size_t live = 0;
          for (const double first : (*levels)[j - 1]) {
            const double age = tuple.timestamp() - first;
            if (age >= 0.0 && age <= spec_.within_seconds) ++live;
          }
          bonus = static_cast<double>(std::min(live, kBonusCap)) /
                  static_cast<double>(kBonusCap + 1);
        }
      }
      best = std::max(
          best, (static_cast<double>(j + 1) + bonus) /
                    static_cast<double>(k));
    }
    return best;
  }

  static const std::vector<std::vector<double>> kNoLevels;

  UtilityPatternSpec spec_;
  /// Per partition key, levels[j] holds first-timestamps of partials with
  /// steps 0..j matched (j in [0, k-2]); bounded per level.
  std::map<Value, std::vector<std::vector<double>>> state_;
  size_t num_keys_ = 0;
  size_t total_entries_ = 0;
  /// High-water timestamp over observed tuples; drives WITHIN expiry.
  double now_ = 0.0;
};

const std::vector<std::vector<double>> UtilityDropPolicy::kNoLevels;

}  // namespace

std::unique_ptr<DropPolicy> MakeUtilityPolicy(UtilityPatternSpec spec) {
  return std::make_unique<UtilityDropPolicy>(std::move(spec));
}

}  // namespace datatriage::triage
