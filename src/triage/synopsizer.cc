#include "src/triage/synopsizer.h"

#include "src/common/serde.h"
#include "src/obs/metrics.h"
#include "src/synopsis/serde.h"

namespace datatriage::triage {

WindowSynopsizer::WindowSynopsizer(std::string stream, Schema schema,
                                   synopsis::SynopsisConfig config,
                                   VirtualDuration window_seconds)
    : stream_(std::move(stream)),
      schema_(std::move(schema)),
      config_(config),
      window_seconds_(window_seconds) {
  DT_CHECK_GT(window_seconds_, 0.0);
}

Status WindowSynopsizer::AddDropped(const Tuple& tuple) {
  return AddDroppedToWindow(
      tuple, WindowIdFor(tuple.timestamp(), window_seconds_));
}

Status WindowSynopsizer::AddKept(const Tuple& tuple) {
  return AddKeptToWindow(tuple,
                         WindowIdFor(tuple.timestamp(), window_seconds_));
}

WindowSynopsizer::PerWindow* WindowSynopsizer::WindowSlot(
    WindowId window_id) {
  if (cached_slot_ != nullptr && cached_window_ == window_id) {
    return cached_slot_;
  }
  cached_slot_ = &windows_[window_id];
  cached_window_ = window_id;
  return cached_slot_;
}

Status WindowSynopsizer::AddDroppedToWindow(const Tuple& tuple,
                                            WindowId window_id) {
  PerWindow& window = *WindowSlot(window_id);
  size_t before = 0;
  if (window.dropped == nullptr) {
    DT_ASSIGN_OR_RETURN(window.dropped,
                        synopsis::MakeSynopsis(config_, schema_));
  } else {
    before = window.dropped->MemoryBytes();
  }
  window.dropped->Insert(tuple);
  ApplyDelta(before, window.dropped->MemoryBytes());
  ++window.dropped_count;
  if (instruments_.dropped_folded != nullptr) {
    instruments_.dropped_folded->Add(1);
  }
  return Status::OK();
}

Status WindowSynopsizer::AddKeptToWindow(const Tuple& tuple,
                                         WindowId window_id) {
  PerWindow& window = *WindowSlot(window_id);
  size_t before = 0;
  if (window.kept == nullptr) {
    DT_ASSIGN_OR_RETURN(window.kept,
                        synopsis::MakeSynopsis(config_, schema_));
  } else {
    before = window.kept->MemoryBytes();
  }
  window.kept->Insert(tuple);
  ApplyDelta(before, window.kept->MemoryBytes());
  ++window.kept_count;
  if (instruments_.kept_folded != nullptr) {
    instruments_.kept_folded->Add(1);
  }
  return Status::OK();
}

void WindowSynopsizer::SetAccount(mem::SessionAccount* account) {
  if (account_ == account) return;
  if (account_ != nullptr && accounted_bytes_ > 0) {
    account_->Release(mem::Component::kSynopses, accounted_bytes_);
  }
  account_ = account;
  if (account_ != nullptr && accounted_bytes_ > 0) {
    account_->Charge(mem::Component::kSynopses, accounted_bytes_);
  }
}

void WindowSynopsizer::ApplyDelta(size_t before, size_t after) {
  if (after >= before) {
    const size_t delta = after - before;
    accounted_bytes_ += delta;
    if (account_ != nullptr && delta > 0) {
      account_->Charge(mem::Component::kSynopses, delta);
    }
  } else {
    ReleaseBytes(before - after);
  }
}

void WindowSynopsizer::ReleaseBytes(size_t bytes) {
  DT_CHECK_GE(accounted_bytes_, bytes);
  accounted_bytes_ -= bytes;
  if (account_ != nullptr && bytes > 0) {
    account_->Release(mem::Component::kSynopses, bytes);
  }
}

const synopsis::Synopsis* WindowSynopsizer::PeekDropped(
    WindowId window) const {
  auto it = windows_.find(window);
  if (it == windows_.end()) return nullptr;
  return it->second.dropped.get();
}

WindowSynopsizer::WindowSynopses WindowSynopsizer::TakeWindow(
    WindowId window) {
  WindowSynopses result;
  auto it = windows_.find(window);
  if (it == windows_.end()) return result;
  result.kept = std::move(it->second.kept);
  result.dropped = std::move(it->second.dropped);
  result.kept_count = it->second.kept_count;
  result.dropped_count = it->second.dropped_count;
  size_t released = 0;
  if (result.kept != nullptr) released += result.kept->MemoryBytes();
  if (result.dropped != nullptr) released += result.dropped->MemoryBytes();
  ReleaseBytes(released);
  if (cached_slot_ == &it->second) cached_slot_ = nullptr;
  windows_.erase(it);
  return result;
}

void WindowSynopsizer::SaveState(serde::Writer* writer) const {
  writer->WriteU64(windows_.size());
  for (const auto& [window, slot] : windows_) {
    writer->WriteI64(window);
    synopsis::SaveSynopsis(writer, slot.kept.get());
    synopsis::SaveSynopsis(writer, slot.dropped.get());
    writer->WriteI64(slot.kept_count);
    writer->WriteI64(slot.dropped_count);
  }
}

Status WindowSynopsizer::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const uint64_t num_windows, reader->ReadCount(8));
  ReleaseBytes(accounted_bytes_);
  windows_.clear();
  cached_slot_ = nullptr;
  for (uint64_t i = 0; i < num_windows; ++i) {
    DT_ASSIGN_OR_RETURN(const WindowId window, reader->ReadI64());
    PerWindow slot;
    DT_ASSIGN_OR_RETURN(slot.kept, synopsis::LoadSynopsis(reader));
    DT_ASSIGN_OR_RETURN(slot.dropped, synopsis::LoadSynopsis(reader));
    DT_ASSIGN_OR_RETURN(slot.kept_count, reader->ReadI64());
    DT_ASSIGN_OR_RETURN(slot.dropped_count, reader->ReadI64());
    size_t loaded = 0;
    if (slot.kept != nullptr) loaded += slot.kept->MemoryBytes();
    if (slot.dropped != nullptr) loaded += slot.dropped->MemoryBytes();
    ApplyDelta(0, loaded);
    windows_.emplace(window, std::move(slot));
  }
  return Status::OK();
}

}  // namespace datatriage::triage
