#ifndef DATATRIAGE_TRIAGE_DROP_POLICY_H_
#define DATATRIAGE_TRIAGE_DROP_POLICY_H_

#include <deque>
#include <memory>
#include <string_view>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/tuple/tuple.h"

namespace datatriage::serde {
class Writer;
class Reader;
}  // namespace datatriage::serde

namespace datatriage::triage {

/// Victim-selection policies for a full triage queue (paper Sec. 5.2.1:
/// TelegraphCQ's build uses kRandom; Sec. 8.1 discusses alternatives,
/// which Data Triage tolerates because victims are synopsized rather than
/// lost).
enum class DropPolicyKind {
  kRandom,       // random victim from the buffer (the paper's default)
  kDropNewest,   // tail drop: reject the just-arrived tuple
  kDropOldest,   // head drop: evict the stalest tuple
  kSynergistic,  // prefer victims the synopsis summarizes "for free"
                 // (paper Sec. 8.1's proposed synergistic policy)
  kUtility,      // utility-aware CEP shedding for MATCH queries: score
                 // tuples by step position and live partial matches
                 // (eSPICE/pSPICE; DESIGN.md §17), evict the least useful
};

std::string_view DropPolicyKindToString(DropPolicyKind kind);

/// Oracle the synergistic policy consults: whether shedding `tuple` costs
/// the synopsis nothing extra (e.g. its histogram cell is already
/// occupied by previously shed tuples of the same window). Implemented by
/// the engine against the live per-window dropped synopses.
class SynopsisCoverageProbe {
 public:
  virtual ~SynopsisCoverageProbe() = default;
  virtual bool IsCovered(const Tuple& tuple) const = 0;
};

/// Chooses which queued tuple to evict when a triage queue overflows. The
/// incoming tuple has already been appended at the back when the policy
/// runs, so returning `queue.size() - 1` rejects the new arrival.
class DropPolicy {
 public:
  virtual ~DropPolicy() = default;

  DropPolicy(const DropPolicy&) = delete;
  DropPolicy& operator=(const DropPolicy&) = delete;

  virtual DropPolicyKind kind() const = 0;

  /// Index of the victim in [0, queue.size()). Requires a non-empty queue.
  virtual size_t ChooseVictim(const std::deque<Tuple>& queue) = 0;

  /// Session-snapshot hooks (DESIGN.md §14): serialize whatever internal
  /// state the next ChooseVictim depends on — for the randomized policies
  /// that is the RNG position; the deterministic ones write nothing. The
  /// restored policy must be of the same kind (the snapshot carries the
  /// EngineConfig, so the kind is re-derived before LoadState runs).
  virtual void SaveState(serde::Writer* writer) const;
  virtual Status LoadState(serde::Reader* reader);

  /// State-observation hooks for stateful policies (kUtility tracks
  /// partial-match progress per partition key). The queue calls
  /// ObserveKept for every tuple handed to the engine; MemoryBytes is the
  /// model-byte footprint of the observed state (folded into the queue's
  /// own MemoryBytes and charged to Component::kTriageQueues); Clear
  /// drops the state (called at session Finish so gauges drain to zero).
  /// Stateless policies inherit these no-ops.
  virtual void ObserveKept(const Tuple& tuple);
  virtual size_t MemoryBytes() const;
  virtual void ClearObservedState();

  /// Creates one of the probe-free policies. CHECK-fails for
  /// kSynergistic, which needs MakeSynergistic.
  static std::unique_ptr<DropPolicy> Make(DropPolicyKind kind,
                                          uint64_t seed);

  /// Creates the Sec. 8.1 synergistic policy: inspect up to `candidates`
  /// random queue entries and evict the first one `probe` reports as
  /// already covered by the synopsis; fall back to a random victim when
  /// none is. `probe` must outlive the policy.
  static std::unique_ptr<DropPolicy> MakeSynergistic(
      uint64_t seed, const SynopsisCoverageProbe* probe,
      size_t candidates = 4);

 protected:
  DropPolicy() = default;
};

}  // namespace datatriage::triage

#endif  // DATATRIAGE_TRIAGE_DROP_POLICY_H_
