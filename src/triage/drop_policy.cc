#include "src/triage/drop_policy.h"

#include "src/common/logging.h"
#include "src/common/serde.h"

namespace datatriage::triage {

std::string_view DropPolicyKindToString(DropPolicyKind kind) {
  switch (kind) {
    case DropPolicyKind::kRandom:
      return "random";
    case DropPolicyKind::kDropNewest:
      return "drop_newest";
    case DropPolicyKind::kDropOldest:
      return "drop_oldest";
    case DropPolicyKind::kSynergistic:
      return "synergistic";
    case DropPolicyKind::kUtility:
      return "utility";
  }
  return "?";
}

namespace {

class RandomDropPolicy final : public DropPolicy {
 public:
  explicit RandomDropPolicy(uint64_t seed) : rng_(seed) {}

  DropPolicyKind kind() const override { return DropPolicyKind::kRandom; }

  size_t ChooseVictim(const std::deque<Tuple>& queue) override {
    DT_CHECK(!queue.empty());
    return static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(queue.size()) - 1));
  }

  void SaveState(serde::Writer* writer) const override {
    serde::SaveRngEngine(writer, rng_.engine());
  }

  Status LoadState(serde::Reader* reader) override {
    return serde::LoadRngEngine(reader, &rng_.engine());
  }

 private:
  Rng rng_;
};

class DropNewestPolicy final : public DropPolicy {
 public:
  DropPolicyKind kind() const override {
    return DropPolicyKind::kDropNewest;
  }

  size_t ChooseVictim(const std::deque<Tuple>& queue) override {
    DT_CHECK(!queue.empty());
    return queue.size() - 1;
  }
};

class DropOldestPolicy final : public DropPolicy {
 public:
  DropPolicyKind kind() const override {
    return DropPolicyKind::kDropOldest;
  }

  size_t ChooseVictim(const std::deque<Tuple>& queue) override {
    DT_CHECK(!queue.empty());
    return 0;
  }
};

/// Sec. 8.1's "synergistic" policy: shed tuples the synopsis data
/// structure can summarize most efficiently. Sampling a handful of
/// candidates keeps eviction O(candidates) instead of scanning the whole
/// buffer.
class SynergisticDropPolicy final : public DropPolicy {
 public:
  SynergisticDropPolicy(uint64_t seed, const SynopsisCoverageProbe* probe,
                        size_t candidates)
      : rng_(seed), probe_(probe), candidates_(candidates) {
    DT_CHECK(probe_ != nullptr);
    DT_CHECK_GT(candidates_, 0u);
  }

  DropPolicyKind kind() const override {
    return DropPolicyKind::kSynergistic;
  }

  size_t ChooseVictim(const std::deque<Tuple>& queue) override {
    DT_CHECK(!queue.empty());
    const size_t fallback = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(queue.size()) - 1));
    for (size_t attempt = 0; attempt < candidates_; ++attempt) {
      const size_t index = attempt == 0
                               ? fallback
                               : static_cast<size_t>(rng_.UniformInt(
                                     0,
                                     static_cast<int64_t>(queue.size()) -
                                         1));
      if (probe_->IsCovered(queue[index])) return index;
    }
    return fallback;
  }

  void SaveState(serde::Writer* writer) const override {
    serde::SaveRngEngine(writer, rng_.engine());
  }

  Status LoadState(serde::Reader* reader) override {
    return serde::LoadRngEngine(reader, &rng_.engine());
  }

 private:
  Rng rng_;
  const SynopsisCoverageProbe* probe_;
  size_t candidates_;
};

}  // namespace

void DropPolicy::SaveState(serde::Writer* /*writer*/) const {}

Status DropPolicy::LoadState(serde::Reader* /*reader*/) {
  return Status::OK();
}

void DropPolicy::ObserveKept(const Tuple& /*tuple*/) {}

size_t DropPolicy::MemoryBytes() const { return 0; }

void DropPolicy::ClearObservedState() {}

std::unique_ptr<DropPolicy> DropPolicy::Make(DropPolicyKind kind,
                                             uint64_t seed) {
  switch (kind) {
    case DropPolicyKind::kRandom:
      return std::make_unique<RandomDropPolicy>(seed);
    case DropPolicyKind::kDropNewest:
      return std::make_unique<DropNewestPolicy>();
    case DropPolicyKind::kDropOldest:
      return std::make_unique<DropOldestPolicy>();
    case DropPolicyKind::kSynergistic:
      DT_CHECK(false)
          << "kSynergistic needs a coverage probe; use MakeSynergistic";
      return nullptr;
    case DropPolicyKind::kUtility:
      DT_CHECK(false) << "kUtility needs a pattern spec; use "
                         "MakeUtilityPolicy (utility_policy.h)";
      return nullptr;
  }
  DT_CHECK(false) << "unknown drop policy";
  return nullptr;
}

std::unique_ptr<DropPolicy> DropPolicy::MakeSynergistic(
    uint64_t seed, const SynopsisCoverageProbe* probe, size_t candidates) {
  return std::make_unique<SynergisticDropPolicy>(seed, probe, candidates);
}

}  // namespace datatriage::triage
