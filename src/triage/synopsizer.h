#ifndef DATATRIAGE_TRIAGE_SYNOPSIZER_H_
#define DATATRIAGE_TRIAGE_SYNOPSIZER_H_

#include <map>
#include <string>

#include "src/catalog/schema.h"
#include "src/common/mem_accounting.h"
#include "src/common/virtual_time.h"
#include "src/synopsis/factory.h"

namespace datatriage::obs {
class Counter;
}  // namespace datatriage::obs

namespace datatriage::triage {

/// Optional observability hooks (src/obs/): tuples folded into the
/// kept/dropped window synopses. Null members are skipped. The virtual
/// build-time cost lives with the engine, which charges it (see
/// CostModel::synopsis_insert_cost) and gauges it per stream.
struct SynopsizerInstruments {
  obs::Counter* kept_folded = nullptr;
  obs::Counter* dropped_folded = nullptr;
};

/// Per-stream builder of the auxiliary synopsis streams of paper Sec. 5.1:
/// one kept-tuple synopsis and one dropped-tuple synopsis per time window
/// (R_kept_syn / R_dropped_syn). Tuples are routed to the window their
/// timestamp falls in; at emission time the engine takes both synopses and
/// feeds them to the shadow plan.
class WindowSynopsizer {
 public:
  WindowSynopsizer(std::string stream, Schema schema,
                   synopsis::SynopsisConfig config,
                   VirtualDuration window_seconds);

  WindowSynopsizer(const WindowSynopsizer&) = delete;
  WindowSynopsizer& operator=(const WindowSynopsizer&) = delete;
  WindowSynopsizer(WindowSynopsizer&&) = default;
  WindowSynopsizer& operator=(WindowSynopsizer&&) = default;

  /// Folds a shed tuple into its window's dropped synopsis, routing by
  /// timestamp (tumbling windows of `window_seconds`).
  Status AddDropped(const Tuple& tuple);

  /// Folds a processed tuple into its window's kept synopsis, routing by
  /// timestamp.
  Status AddKept(const Tuple& tuple);

  /// Window-addressed variants: the caller chooses the target window
  /// (required for sliding windows, where one tuple feeds several
  /// windows and kept/dropped status is decided per window).
  Status AddDroppedToWindow(const Tuple& tuple, WindowId window);
  Status AddKeptToWindow(const Tuple& tuple, WindowId window);

  struct WindowSynopses {
    synopsis::SynopsisPtr kept;     // may be null if nothing was kept
    synopsis::SynopsisPtr dropped;  // may be null if nothing was dropped
    int64_t kept_count = 0;
    int64_t dropped_count = 0;
  };

  /// Removes and returns the synopses for `window` (null members when no
  /// tuple of that class arrived).
  WindowSynopses TakeWindow(WindowId window);

  /// Read-only view of the dropped synopsis accumulating for `window`
  /// (null until a tuple of that window is shed). Used by the
  /// synergistic drop policy to test coverage (paper Sec. 8.1).
  const synopsis::Synopsis* PeekDropped(WindowId window) const;

  const std::string& stream() const { return stream_; }
  VirtualDuration window_seconds() const { return window_seconds_; }

  /// Attaches metrics hooks; the pointed-to instruments must outlive the
  /// synopsizer.
  void SetInstruments(SynopsizerInstruments instruments) {
    instruments_ = instruments;
  }

  /// Attaches the session's memory account; window-slot synopses are
  /// charged to Component::kSynopses as they grow and released when
  /// TakeWindow removes the slot. Pass nullptr to detach (outstanding
  /// charge is released first).
  void SetAccount(mem::SessionAccount* account);

  /// Model bytes of all window-slot synopses (mirrors the account).
  size_t MemoryBytes() const { return accounted_bytes_; }

  /// Session-snapshot hooks (DESIGN.md §14): the per-window kept/dropped
  /// synopses and fold counts. LoadState resets the window-slot cache.
  void SaveState(serde::Writer* writer) const;
  Status LoadState(serde::Reader* reader);

 private:
  struct PerWindow {
    synopsis::SynopsisPtr kept;
    synopsis::SynopsisPtr dropped;
    int64_t kept_count = 0;
    int64_t dropped_count = 0;
  };

  /// Map slot for `window`, cached across calls: consecutive inserts
  /// overwhelmingly target the same window, so the common case skips the
  /// O(log n) map walk. std::map nodes are stable, keeping the cached
  /// pointer valid until that window is erased.
  PerWindow* WindowSlot(WindowId window);

  /// Applies the MemoryBytes delta of one synopsis mutation to the
  /// running total and the attached account.
  void ApplyDelta(size_t before, size_t after);
  void ReleaseBytes(size_t bytes);

  std::string stream_;
  Schema schema_;
  SynopsizerInstruments instruments_;
  synopsis::SynopsisConfig config_;
  VirtualDuration window_seconds_;
  mem::SessionAccount* account_ = nullptr;
  size_t accounted_bytes_ = 0;
  std::map<WindowId, PerWindow> windows_;
  WindowId cached_window_ = 0;
  PerWindow* cached_slot_ = nullptr;
};

}  // namespace datatriage::triage

#endif  // DATATRIAGE_TRIAGE_SYNOPSIZER_H_
