#ifndef DATATRIAGE_TRIAGE_UTILITY_POLICY_H_
#define DATATRIAGE_TRIAGE_UTILITY_POLICY_H_

#include <memory>
#include <vector>

#include "src/plan/expression.h"
#include "src/triage/drop_policy.h"

namespace datatriage::triage {

/// Pattern description the utility policy scores against, extracted from
/// a bound MATCH query (plan::BoundQuery::pattern_node). Step predicates
/// are bound against the stream's scan schema, so they evaluate directly
/// on raw queued tuples.
struct UtilityPatternSpec {
  std::vector<plan::BoundExprPtr> steps;
  size_t key_index = 0;
  double within_seconds = 0.0;
};

/// Creates the kUtility drop policy (DESIGN.md §17): deterministic,
/// RNG-free utility-aware shedding for MATCH queries in the spirit of
/// eSPICE (event-importance by step position) and pSPICE (partial-match
/// awareness).
///
/// The policy observes every tuple the engine keeps (ObserveKept) and
/// maintains, per partition key, bounded lists of live partial matches —
/// one level per matched prefix length, each entry the partial's first
/// timestamp so WITHIN expiry can prune it. On overflow, ChooseVictim
/// scores every queued tuple:
///
///   score = 0                                      if no step matches
///   score = max over matching steps j of
///           (j+1)/k + bonus(j)/k                   otherwise
///   bonus(j) = min(live partials at level j-1, 16) / 17  (0 for j = 0)
///
/// and evicts the minimum, breaking ties toward the oldest tuple. Noise
/// tuples (matching no step) always shed before pattern-relevant ones;
/// later steps outweigh earlier ones; a tuple that can complete live
/// partial matches outweighs one whose key has none.
///
/// The observed state is charged through the memory accountant
/// (MemoryBytes) and rides the session snapshot (SaveState/LoadState).
std::unique_ptr<DropPolicy> MakeUtilityPolicy(UtilityPatternSpec spec);

}  // namespace datatriage::triage

#endif  // DATATRIAGE_TRIAGE_UTILITY_POLICY_H_
