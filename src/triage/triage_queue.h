#ifndef DATATRIAGE_TRIAGE_TRIAGE_QUEUE_H_
#define DATATRIAGE_TRIAGE_TRIAGE_QUEUE_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/mem_accounting.h"
#include "src/common/virtual_time.h"
#include "src/triage/drop_policy.h"

namespace datatriage::obs {
class Counter;
class Gauge;
}  // namespace datatriage::obs

namespace datatriage::triage {

/// Optional observability hooks (src/obs/). Null members are skipped, so
/// an uninstrumented queue pays one branch per operation. The queue
/// distinguishes drop causes at the source: `policy_evicted` counts
/// victims the drop policy chose on overflow, `force_evicted` counts
/// tuples evicted by deadline (EvictOlderThan / EvictIf).
struct QueueInstruments {
  obs::Gauge* depth = nullptr;  // current depth; its max() is the HWM
  obs::Counter* policy_evicted = nullptr;
  obs::Counter* force_evicted = nullptr;
};

/// The bounded buffer between a data source and the query engine
/// (paper Fig. 1). Sources push; the engine pops in FIFO order. When the
/// queue is full, the drop policy selects a victim, which the caller then
/// either discards (drop-only shedding) or synopsizes (Data Triage).
class TriageQueue {
 public:
  /// `capacity` > 0 is the maximum number of buffered tuples.
  TriageQueue(size_t capacity, std::unique_ptr<DropPolicy> policy);

  TriageQueue(const TriageQueue&) = delete;
  TriageQueue& operator=(const TriageQueue&) = delete;
  TriageQueue(TriageQueue&&) = default;
  TriageQueue& operator=(TriageQueue&&) = default;

  /// Enqueues `tuple`. If the queue was full, returns the evicted victim
  /// (possibly the pushed tuple itself under a drop-newest policy).
  std::optional<Tuple> Push(Tuple tuple);

  bool empty() const { return queue_.empty(); }
  size_t size() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }

  /// Precondition: !empty(). Popping hands the tuple to the engine, so
  /// PopFront routes it through DropPolicy::ObserveKept first (stateful
  /// policies learn only from kept tuples; EvictIf removals are shed and
  /// never observed).
  const Tuple& Front() const;
  Tuple PopFront();

  /// Removes and returns every buffered tuple whose timestamp is strictly
  /// before `cutoff`. Used at window-emission deadlines to force-shed
  /// tuples the engine did not reach in time.
  std::vector<Tuple> EvictOlderThan(VirtualTime cutoff);

  /// Removes and returns every buffered tuple for which `predicate` is
  /// true (generalizes EvictOlderThan; used by sliding-window emission).
  std::vector<Tuple> EvictIf(
      const std::function<bool(const Tuple&)>& predicate);

  /// Visits every buffered tuple without removing it.
  void ForEach(const std::function<void(const Tuple&)>& visit) const;

  /// Attaches metrics hooks; the pointed-to instruments must outlive the
  /// queue. Passing default-constructed instruments detaches.
  void SetInstruments(QueueInstruments instruments);

  /// Attaches the session's memory account; buffered tuples are charged
  /// to Component::kTriageQueues. Call before any Push (typically right
  /// after construction). Pass nullptr to detach; any outstanding charge
  /// is released first.
  void SetAccount(mem::SessionAccount* account);

  /// Model bytes currently buffered — tuples plus the drop policy's
  /// observed state (mirrors the account's charge).
  size_t MemoryBytes() const { return buffered_bytes_; }

  /// Discards the drop policy's observed state (kUtility's partial-match
  /// tracker) and releases its bytes. Called at session Finish so the
  /// kTriageQueues gauge drains to zero.
  void ClearPolicyState();

  const DropPolicy& policy() const { return *policy_; }

  // Lifetime counters.
  int64_t total_pushed() const { return total_pushed_; }
  int64_t total_dropped() const { return total_dropped_; }
  int64_t total_popped() const { return total_popped_; }

  /// Session-snapshot hooks (DESIGN.md §14): buffered tuples in FIFO
  /// order, lifetime counters, and the drop policy's internal state.
  /// LoadState replaces the buffer wholesale; capacity and policy kind
  /// come from the EngineConfig the session was rebuilt with.
  void SaveState(serde::Writer* writer) const;
  Status LoadState(serde::Reader* reader);

 private:
  void UpdateDepthGauge();
  void ChargeBytes(size_t bytes);
  void ReleaseBytes(size_t bytes);
  /// Reconciles buffered_bytes_ (and the account) with the policy's
  /// MemoryBytes after a mutation; `before` is the pre-mutation value.
  void SyncPolicyBytes(size_t before);

  size_t capacity_;
  std::unique_ptr<DropPolicy> policy_;
  QueueInstruments instruments_;
  mem::SessionAccount* account_ = nullptr;
  std::deque<Tuple> queue_;
  size_t buffered_bytes_ = 0;
  int64_t total_pushed_ = 0;
  int64_t total_dropped_ = 0;
  int64_t total_popped_ = 0;
};

}  // namespace datatriage::triage

#endif  // DATATRIAGE_TRIAGE_TRIAGE_QUEUE_H_
