#ifndef DATATRIAGE_TRIAGE_SHEDDING_STRATEGY_H_
#define DATATRIAGE_TRIAGE_SHEDDING_STRATEGY_H_

#include <string_view>

#include "src/common/result.h"

namespace datatriage::triage {

/// The three load-shedding methods TelegraphCQ supports (paper
/// Sec. 5.2.1), implemented over one shared codebase exactly as the paper
/// describes: drop-only disables the synopsizer, summarize-only bypasses
/// the triage queue, and Data Triage uses both.
enum class SheddingStrategy {
  kDropOnly,       // discard overflow tuples; exact results over the rest
  kSummarizeOnly,  // synopsize every tuple; fully approximate results
  kDataTriage,     // exact over kept tuples + shadow estimate of the rest
};

std::string_view SheddingStrategyToString(SheddingStrategy strategy);

Result<SheddingStrategy> SheddingStrategyFromString(std::string_view name);

}  // namespace datatriage::triage

#endif  // DATATRIAGE_TRIAGE_SHEDDING_STRATEGY_H_
