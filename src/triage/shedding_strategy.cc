#include "src/triage/shedding_strategy.h"

#include <string>

#include "src/common/string_util.h"

namespace datatriage::triage {

std::string_view SheddingStrategyToString(SheddingStrategy strategy) {
  switch (strategy) {
    case SheddingStrategy::kDropOnly:
      return "drop_only";
    case SheddingStrategy::kSummarizeOnly:
      return "summarize_only";
    case SheddingStrategy::kDataTriage:
      return "data_triage";
  }
  return "?";
}

Result<SheddingStrategy> SheddingStrategyFromString(std::string_view name) {
  const std::string lower = ToLowerAscii(name);
  if (lower == "drop_only" || lower == "drop") {
    return SheddingStrategy::kDropOnly;
  }
  if (lower == "summarize_only" || lower == "summarize") {
    return SheddingStrategy::kSummarizeOnly;
  }
  if (lower == "data_triage" || lower == "triage") {
    return SheddingStrategy::kDataTriage;
  }
  return Status::InvalidArgument("unknown shedding strategy '" +
                                 std::string(name) + "'");
}

}  // namespace datatriage::triage
