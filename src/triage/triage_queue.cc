#include "src/triage/triage_queue.h"

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/obs/metrics.h"
#include "src/tuple/serde.h"

namespace datatriage::triage {

TriageQueue::TriageQueue(size_t capacity,
                         std::unique_ptr<DropPolicy> policy)
    : capacity_(capacity), policy_(std::move(policy)) {
  DT_CHECK_GT(capacity_, 0u) << "triage queue capacity must be positive";
  DT_CHECK(policy_ != nullptr);
}

std::optional<Tuple> TriageQueue::Push(Tuple tuple) {
  ++total_pushed_;
  ChargeBytes(mem::TupleBytes(tuple));
  queue_.push_back(std::move(tuple));
  if (queue_.size() <= capacity_) {
    UpdateDepthGauge();
    return std::nullopt;
  }
  const size_t victim_index = policy_->ChooseVictim(queue_);
  DT_CHECK_LT(victim_index, queue_.size());
  Tuple victim = std::move(queue_[victim_index]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim_index));
  ReleaseBytes(mem::TupleBytes(victim));
  ++total_dropped_;
  if (instruments_.policy_evicted != nullptr) {
    instruments_.policy_evicted->Add(1);
  }
  UpdateDepthGauge();
  return victim;
}

const Tuple& TriageQueue::Front() const {
  DT_CHECK(!queue_.empty());
  return queue_.front();
}

Tuple TriageQueue::PopFront() {
  DT_CHECK(!queue_.empty());
  Tuple front = std::move(queue_.front());
  queue_.pop_front();
  ReleaseBytes(mem::TupleBytes(front));
  ++total_popped_;
  const size_t policy_bytes = policy_->MemoryBytes();
  policy_->ObserveKept(front);
  SyncPolicyBytes(policy_bytes);
  UpdateDepthGauge();
  return front;
}

std::vector<Tuple> TriageQueue::EvictOlderThan(VirtualTime cutoff) {
  return EvictIf(
      [cutoff](const Tuple& t) { return t.timestamp() < cutoff; });
}

std::vector<Tuple> TriageQueue::EvictIf(
    const std::function<bool(const Tuple&)>& predicate) {
  std::vector<Tuple> evicted;
  // FIFO queues of a time-ordered source keep older tuples at the front,
  // but victim eviction can perturb strict ordering, so scan everything.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (predicate(*it)) {
      evicted.push_back(std::move(*it));
      ReleaseBytes(mem::TupleBytes(evicted.back()));
      it = queue_.erase(it);
      ++total_dropped_;
    } else {
      ++it;
    }
  }
  if (instruments_.force_evicted != nullptr && !evicted.empty()) {
    instruments_.force_evicted->Add(
        static_cast<int64_t>(evicted.size()));
  }
  UpdateDepthGauge();
  return evicted;
}

void TriageQueue::SetInstruments(QueueInstruments instruments) {
  instruments_ = instruments;
  UpdateDepthGauge();
}

void TriageQueue::SetAccount(mem::SessionAccount* account) {
  if (account_ == account) return;
  if (account_ != nullptr && buffered_bytes_ > 0) {
    account_->Release(mem::Component::kTriageQueues, buffered_bytes_);
  }
  account_ = account;
  if (account_ != nullptr && buffered_bytes_ > 0) {
    account_->Charge(mem::Component::kTriageQueues, buffered_bytes_);
  }
}

void TriageQueue::ChargeBytes(size_t bytes) {
  buffered_bytes_ += bytes;
  if (account_ != nullptr) {
    account_->Charge(mem::Component::kTriageQueues, bytes);
  }
}

void TriageQueue::SyncPolicyBytes(size_t before) {
  const size_t after = policy_->MemoryBytes();
  if (after > before) {
    ChargeBytes(after - before);
  } else if (before > after) {
    ReleaseBytes(before - after);
  }
}

void TriageQueue::ClearPolicyState() {
  const size_t policy_bytes = policy_->MemoryBytes();
  policy_->ClearObservedState();
  SyncPolicyBytes(policy_bytes);
}

void TriageQueue::ReleaseBytes(size_t bytes) {
  DT_CHECK_GE(buffered_bytes_, bytes);
  buffered_bytes_ -= bytes;
  if (account_ != nullptr) {
    account_->Release(mem::Component::kTriageQueues, bytes);
  }
}

void TriageQueue::UpdateDepthGauge() {
  if (instruments_.depth != nullptr) {
    instruments_.depth->Set(static_cast<double>(queue_.size()));
  }
}

void TriageQueue::ForEach(
    const std::function<void(const Tuple&)>& visit) const {
  for (const Tuple& t : queue_) visit(t);
}

void TriageQueue::SaveState(serde::Writer* writer) const {
  writer->WriteU64(queue_.size());
  for (const Tuple& t : queue_) SaveTuple(writer, t);
  writer->WriteI64(total_pushed_);
  writer->WriteI64(total_dropped_);
  writer->WriteI64(total_popped_);
  policy_->SaveState(writer);
}

Status TriageQueue::LoadState(serde::Reader* reader) {
  DT_ASSIGN_OR_RETURN(const uint64_t size, reader->ReadCount(16));
  ReleaseBytes(buffered_bytes_);
  queue_.clear();
  for (uint64_t i = 0; i < size; ++i) {
    DT_ASSIGN_OR_RETURN(Tuple t, LoadTuple(reader));
    ChargeBytes(mem::TupleBytes(t));
    queue_.push_back(std::move(t));
  }
  DT_ASSIGN_OR_RETURN(total_pushed_, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(total_dropped_, reader->ReadI64());
  DT_ASSIGN_OR_RETURN(total_popped_, reader->ReadI64());
  // The ReleaseBytes above wiped the policy's old charge along with the
  // buffer's, so re-charge whatever state the snapshot restored.
  DT_RETURN_IF_ERROR(policy_->LoadState(reader));
  SyncPolicyBytes(0);
  UpdateDepthGauge();
  return Status::OK();
}

}  // namespace datatriage::triage
