// Deterministic simulation fuzzer for the StreamServer (DESIGN.md
// Sec. 12): runs K seeded scenarios through the differential oracles in
// src/sim/ and, on failure, prints the seed plus a one-line replay
// command. Exit status 0 = every scenario passed.
//
//   sim_main --seeds 500 --workers 1,2,4            # CI smoke
//   sim_main --max-seconds 1800 --seeds 1000000     # nightly long-fuzz
//   sim_main --replay-seed 1234                     # reproduce one seed

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/string_util.h"
#include "src/sim/runner.h"

namespace {

constexpr const char* kUsage = R"(usage: sim_main [options]

  --seeds N          number of scenarios to run (default 100)
  --first-seed S     first seed (default 1); seeds S..S+N-1 are run
  --seed S           alias for --first-seed
  --replay-seed S    run exactly seed S, verbosely (sets --seeds 1)
  --replay           with --seed: same as --replay-seed
  --workers A,B,...  worker counts to compare against the serial run
                     (default 1,2,4)
  --no-faults        do not install the generated fault plans
  --force-memory-budgets
                     override every query config with a tight seed-derived
                     memory budget, exercising memory-triggered triage
  --force-pattern-queries
                     rewrite every generated query into a MATCH pattern
                     query, exercising the NFA executor and the utility
                     drop policy
  --max-seconds X    wall-clock budget; stop between scenarios once spent
  --failures-out P   append "<seed> <failure>" lines to file P
  --snapshot-dump-dir D
                     write failing scenarios' mid-run session snapshots
                     to D/seed-<seed>.dtss (D must exist)
  --verbose          describe every scenario as it runs
  --help             this text
)";

bool ParseUint64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  datatriage::sim::SimOptions options;
  bool replay = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string* {
      if (i + 1 >= args.size()) {
        std::cerr << arg << " needs a value\n" << kUsage;
        return nullptr;
      }
      return &args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--seeds") {
      const std::string* v = next();
      uint64_t n = 0;
      if (v == nullptr || !ParseUint64(*v, &n)) return 2;
      options.num_scenarios = static_cast<size_t>(n);
    } else if (arg == "--first-seed" || arg == "--seed") {
      const std::string* v = next();
      if (v == nullptr || !ParseUint64(*v, &options.first_seed)) return 2;
    } else if (arg == "--replay-seed") {
      const std::string* v = next();
      if (v == nullptr || !ParseUint64(*v, &options.first_seed)) return 2;
      replay = true;
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--workers") {
      const std::string* v = next();
      if (v == nullptr) return 2;
      options.worker_counts.clear();
      for (const std::string& part :
           datatriage::SplitString(*v, ',')) {
        uint64_t w = 0;
        if (!ParseUint64(part, &w) || w == 0) {
          std::cerr << "--workers wants positive counts, got '" << part
                    << "'\n";
          return 2;
        }
        options.worker_counts.push_back(static_cast<size_t>(w));
      }
    } else if (arg == "--no-faults") {
      options.with_faults = false;
    } else if (arg == "--force-memory-budgets") {
      options.force_memory_budgets = true;
    } else if (arg == "--force-pattern-queries") {
      options.force_pattern_queries = true;
    } else if (arg == "--max-seconds") {
      const std::string* v = next();
      if (v == nullptr) return 2;
      options.max_wall_seconds = std::atof(v->c_str());
    } else if (arg == "--failures-out") {
      const std::string* v = next();
      if (v == nullptr) return 2;
      options.failures_path = *v;
    } else if (arg == "--snapshot-dump-dir") {
      const std::string* v = next();
      if (v == nullptr) return 2;
      options.snapshot_dump_dir = *v;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::cerr << "unknown flag " << arg << "\n" << kUsage;
      return 2;
    }
  }

  if (replay) {
    options.num_scenarios = 1;
    options.verbose = true;
  }

  const datatriage::sim::SimReport report =
      datatriage::sim::RunSimulations(options, &std::cout);
  if (!report.ok()) {
    std::cerr << "\n" << report.failures.size()
              << " failing seed(s); reproduce with:\n";
    for (const datatriage::sim::SimFailure& failure : report.failures) {
      std::cerr << "  "
                << datatriage::sim::ReplayCommand(failure.seed, options)
                << "\n";
    }
    return 1;
  }
  return 0;
}
