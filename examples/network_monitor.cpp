// Network monitoring under a traffic burst — the paper's motivating
// scenario (Sec. 1): "bursts often produce not only more data, but also
// different data than usual ... crisis scenarios (network attacks)".
//
// A packet-header stream joins a table-like stream of watched ports; the
// query counts suspicious packets per port in one-second windows. Midway
// through the run a simulated attack multiplies the packet rate by 50x
// and shifts traffic onto one port. We run the same input through
// drop-only shedding and Data Triage and print, for the attack port, the
// ideal count, the drop-only answer, and the Data Triage composite
// answer per window — showing how triage recovers the burst that
// drop-only mostly discards.
//
// Build & run:  ./build/examples/network_monitor

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/metrics/ideal.h"
#include "src/plan/binder.h"
#include "src/sql/parser.h"

namespace {

using datatriage::Catalog;
using datatriage::FieldType;
using datatriage::Rng;
using datatriage::Schema;
using datatriage::Status;
using datatriage::Tuple;
using datatriage::Value;
using datatriage::engine::ContinuousQueryEngine;
using datatriage::engine::EngineConfig;
using datatriage::engine::StreamEvent;

constexpr int64_t kAttackPort = 80;
constexpr double kAttackStart = 4.0;
constexpr double kAttackEnd = 7.0;

std::vector<StreamEvent> BuildTraffic(uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamEvent> events;
  // Watched-ports stream: a slow feed re-announcing the ports of
  // interest each window (20, 22, 53, 80, 443).
  const int64_t watched[] = {20, 22, 53, 80, 443};
  for (double t = 0.05; t < 10.0; t += 0.2) {
    for (int64_t port : watched) {
      events.push_back(
          {"watched", Tuple({Value::Int64(port)}, t)});
    }
  }
  // Packet stream: ~120 packets/s background uniform over common ports;
  // during the attack, 50x rate concentrated on port 80.
  double t = 0.0;
  while (t < 10.0) {
    const bool attack = t >= kAttackStart && t < kAttackEnd;
    const double rate = attack ? 6000.0 : 120.0;
    t += rng.Exponential(rate);
    int64_t port;
    if (attack && rng.Bernoulli(0.9)) {
      port = kAttackPort;
    } else {
      const int64_t common[] = {20, 22, 25, 53, 80, 110, 143, 443, 8080};
      port = common[rng.UniformInt(0, 8)];
    }
    const int64_t size_bucket = rng.UniformInt(1, 15);
    events.push_back(
        {"packets",
         Tuple({Value::Int64(port), Value::Int64(size_bucket)}, t)});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.tuple.timestamp() < b.tuple.timestamp();
                   });
  return events;
}

double CountForPort(const datatriage::exec::Relation& rows, int64_t port) {
  for (const Tuple& row : rows) {
    if (row.value(0).int64() == port) return row.value(1).AsDouble();
  }
  return 0.0;
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog
           .RegisterStream({"packets",
                            Schema({{"dst_port", FieldType::kInt64},
                                    {"size_bucket", FieldType::kInt64}})})
           .ok() ||
      !catalog
           .RegisterStream(
               {"watched", Schema({{"port", FieldType::kInt64}})})
           .ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }
  const std::string query =
      "SELECT dst_port, COUNT(*) AS hits FROM packets, watched "
      "WHERE packets.dst_port = watched.port GROUP BY dst_port "
      "WINDOW packets['1 second'], watched['1 second']";

  std::vector<StreamEvent> events = BuildTraffic(7);

  auto run = [&](datatriage::triage::SheddingStrategy strategy)
      -> std::vector<datatriage::engine::WindowResult> {
    EngineConfig config;
    config.strategy = strategy;
    config.queue_capacity = 100;
    config.synopsis.grid.cell_width = 1.0;
    auto engine = ContinuousQueryEngine::Make(catalog, query, config);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n",
                   engine.status().ToString().c_str());
      std::exit(1);
    }
    for (const StreamEvent& e : events) {
      Status s = (*engine)->Push(e);
      if (!s.ok()) {
        std::fprintf(stderr, "push: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    if (Status s = (*engine)->Finish(); !s.ok()) {
      std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    return (*engine)->TakeResults();
  };

  auto drop_results =
      run(datatriage::triage::SheddingStrategy::kDropOnly);
  auto triage_results =
      run(datatriage::triage::SheddingStrategy::kDataTriage);

  // Ideal results for reference.
  auto stmt = datatriage::sql::ParseStatement(query);
  if (!stmt.ok()) {
    std::fprintf(stderr, "parse: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  auto bound = datatriage::plan::BindStatement(*stmt, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  auto ideal = datatriage::metrics::ComputeIdealResults(*bound, events,
                                                        1.0);
  if (!ideal.ok()) {
    std::fprintf(stderr, "ideal: %s\n",
                 ideal.status().ToString().c_str());
    return 1;
  }

  std::printf("Suspicious-packet counts on port %lld per 1s window\n",
              static_cast<long long>(kAttackPort));
  std::printf("(attack runs from t=%.0fs to t=%.0fs)\n\n", kAttackStart,
              kAttackEnd);
  std::printf("%6s %12s %12s %14s\n", "window", "ideal", "drop_only",
              "data_triage");
  std::map<datatriage::WindowId, double> drop_counts, triage_counts;
  for (const auto& r : drop_results) {
    drop_counts[r.window] = CountForPort(r.merged_rows, kAttackPort);
  }
  for (const auto& r : triage_results) {
    triage_counts[r.window] = CountForPort(r.merged_rows, kAttackPort);
  }
  for (const auto& [window, rows] : *ideal) {
    std::printf("%6lld %12.0f %12.0f %14.0f\n",
                static_cast<long long>(window),
                CountForPort(rows, kAttackPort), drop_counts[window],
                triage_counts[window]);
  }
  std::printf(
      "\nDuring the attack windows, drop-only loses most of the burst "
      "while Data Triage's composite count tracks the ideal.\n");
  return 0;
}
