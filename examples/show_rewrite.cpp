// Prints the Data Triage query rewrite as SQL — the substream DDL of
// paper Sec. 4.3, the Q_kept view of Fig. 4, and the synopsis-UDF
// Q_dropped view of Fig. 5 — for the paper's experimental query (default)
// or any query passed as argv[1] against the paper's catalog
// (R(a), S(b,c), T(d)).
//
// Build & run:  ./build/examples/show_rewrite
//               ./build/examples/show_rewrite "SELECT a FROM R, S WHERE R.a = S.b"

#include <cstdio>
#include <string>

#include "src/plan/binder.h"
#include "src/rewrite/sql_emitter.h"
#include "src/sql/parser.h"

int main(int argc, char** argv) {
  datatriage::Catalog catalog;
  using datatriage::FieldType;
  using datatriage::Schema;
  if (!catalog.RegisterStream({"R", Schema({{"a", FieldType::kInt64}})})
           .ok() ||
      !catalog
           .RegisterStream({"S", Schema({{"b", FieldType::kInt64},
                                         {"c", FieldType::kInt64}})})
           .ok() ||
      !catalog.RegisterStream({"T", Schema({{"d", FieldType::kInt64}})})
           .ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }

  const std::string query_sql =
      argc > 1 ? argv[1]
               : "SELECT a, COUNT(*) as count FROM R,S,T WHERE R.a = S.b "
                 "AND S.c = T.d GROUP BY a; WINDOW R['1 second'], "
                 "S['1 second'], T['1 second'];";

  auto stmt = datatriage::sql::ParseStatement(query_sql);
  if (!stmt.ok()) {
    std::fprintf(stderr, "parse: %s\n", stmt.status().ToString().c_str());
    return 1;
  }
  auto bound = datatriage::plan::BindStatement(*stmt, catalog);
  if (!bound.ok()) {
    std::fprintf(stderr, "bind: %s\n", bound.status().ToString().c_str());
    return 1;
  }
  auto triaged =
      datatriage::rewrite::RewriteForDataTriage(std::move(bound).value());
  if (!triaged.ok()) {
    std::fprintf(stderr, "rewrite: %s\n",
                 triaged.status().ToString().c_str());
    return 1;
  }

  std::printf("-- Original query:\n-- %s\n\n", query_sql.c_str());
  auto script =
      datatriage::rewrite::EmitRewrittenScript(catalog, *triaged);
  if (!script.ok()) {
    std::fprintf(stderr, "emit: %s\n", script.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", script->c_str());

  std::printf("\n-- Internal plan for Q_dropped (shadow query):\n");
  std::string plan_text = triaged->dropped_plan->ToString();
  // Prefix each line as a SQL comment.
  std::string commented = "-- ";
  for (char c : plan_text) {
    commented += c;
    if (c == '\n') commented += "-- ";
  }
  std::printf("%s\n", commented.c_str());
  return 0;
}
