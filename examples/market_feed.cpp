// Market-data monitoring — the paper's other motivating application
// ("market analysis", Sec. 1). A trade stream joins a quote stream on a
// symbol id; the query tracks per-symbol traded volume (SUM) and trade
// count per window. A news event triggers a burst of trades concentrated
// in a handful of symbols. The example contrasts the Data Triage
// composite SUM against the exact-only answer during the burst.
//
// Build & run:  ./build/examples/market_feed

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/engine/engine.h"

namespace {

using datatriage::Catalog;
using datatriage::FieldType;
using datatriage::Rng;
using datatriage::Schema;
using datatriage::Status;
using datatriage::Tuple;
using datatriage::Value;
using datatriage::engine::ContinuousQueryEngine;
using datatriage::engine::EngineConfig;
using datatriage::engine::StreamEvent;
using datatriage::engine::WindowResult;

constexpr int64_t kNumSymbols = 40;
constexpr int64_t kHotSymbol = 7;
constexpr double kNewsAt = 3.0;
constexpr double kNewsEnd = 6.0;

std::vector<StreamEvent> BuildFeed(uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamEvent> events;
  // Quotes: steady feed, one quote per symbol roughly every 0.5s.
  for (double t = 0.01; t < 9.0; t += 0.5) {
    for (int64_t symbol = 1; symbol <= kNumSymbols; ++symbol) {
      events.push_back(
          {"quotes", Tuple({Value::Int64(symbol)}, t + 0.001 * symbol)});
    }
  }
  // Trades: ~150/s background across all symbols; 30x burst concentrated
  // on the hot symbol while the news is out.
  double t = 0.0;
  while (t < 9.0) {
    const bool news = t >= kNewsAt && t < kNewsEnd;
    t += rng.Exponential(news ? 4500.0 : 150.0);
    const int64_t symbol = (news && rng.Bernoulli(0.8))
                               ? kHotSymbol
                               : rng.UniformInt(1, kNumSymbols);
    const int64_t shares = rng.UniformInt(1, 50);
    events.push_back(
        {"trades",
         Tuple({Value::Int64(symbol), Value::Int64(shares)}, t)});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.tuple.timestamp() < b.tuple.timestamp();
                   });
  return events;
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog
           .RegisterStream({"trades",
                            Schema({{"symbol", FieldType::kInt64},
                                    {"shares", FieldType::kInt64}})})
           .ok() ||
      !catalog
           .RegisterStream(
               {"quotes", Schema({{"symbol", FieldType::kInt64}})})
           .ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }
  // Per-symbol activity: trades joined to the symbols currently quoted.
  const std::string query =
      "SELECT trades.symbol, COUNT(*) AS trades, SUM(shares) AS volume "
      "FROM trades, quotes WHERE trades.symbol = quotes.symbol "
      "GROUP BY trades.symbol "
      "WINDOW trades['1 second'], quotes['1 second']";

  EngineConfig config;
  config.strategy = datatriage::triage::SheddingStrategy::kDataTriage;
  config.queue_capacity = 150;
  config.synopsis.grid.cell_width = 1.0;

  auto engine = ContinuousQueryEngine::Make(catalog, query, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  for (const StreamEvent& e : BuildFeed(99)) {
    Status s = (*engine)->Push(e);
    if (!s.ok()) {
      std::fprintf(stderr, "push: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = (*engine)->Finish(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Hot symbol %lld: per-window trade count and volume\n",
              static_cast<long long>(kHotSymbol));
  std::printf("(news burst from t=%.0fs to t=%.0fs)\n\n", kNewsAt,
              kNewsEnd);
  std::printf("%6s %8s | %12s %12s | %12s %12s\n", "window", "shed",
              "exact_trades", "exact_vol", "est_trades", "est_vol");
  for (const WindowResult& result : (*engine)->TakeResults()) {
    double exact_trades = 0, exact_volume = 0;
    for (const Tuple& row : result.exact_rows) {
      if (row.value(0).int64() == kHotSymbol) {
        exact_trades = row.value(1).AsDouble();
        exact_volume = row.value(2).AsDouble();
      }
    }
    double merged_trades = 0, merged_volume = 0;
    for (const Tuple& row : result.merged_rows) {
      if (row.value(0).int64() == kHotSymbol) {
        merged_trades = row.value(1).AsDouble();
        merged_volume = row.value(2).AsDouble();
      }
    }
    std::printf("%6lld %8lld | %12.0f %12.0f | %12.0f %12.0f\n",
                static_cast<long long>(result.window),
                static_cast<long long>(result.dropped_tuples),
                exact_trades, exact_volume, merged_trades, merged_volume);
  }
  std::printf(
      "\nWhere shedding kicks in, the estimated columns restore the "
      "burst volume the exact columns miss.\n");
  return 0;
}
