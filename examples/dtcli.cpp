// dtcli — run Data Triage continuous queries over a CSV event file.
//
//   dtcli [options] <script.sql> <events.csv>
//
// The SQL script contains CREATE STREAM statements followed by any
// number of continuous queries; more queries can be added with repeated
// --query flags. All queries (at least one, counting both sources) run
// together on one StreamServer over a single pass of the event feed.
// The events file has one arrival per line: `stream,timestamp,v1,v2,...`
// (see src/io/csv.h). Per-window results are written to stdout as CSV,
// with one `exact` row per exact result tuple and one `merged` row per
// composite (exact + estimated) tuple.
//
// With one query, output/--stats/--metrics-json keep the legacy
// single-engine format exactly. With several, stdout carries one
// `# query <i>` section per session, --stats lines are scoped
// with the `session.<i>.` metric prefix (DESIGN.md Sec. 10), and
// --metrics-json writes the combined StreamServer export.
//
// Options:
//   --query=SQL         add a continuous query (repeatable)
//   --strategy=data_triage|drop_only|summarize_only   (default data_triage)
//   --synopsis=grid|mhist|aligned_mhist|reservoir|exact (default grid)
//   --cell-width=W      grid cell width            (default 4)
//   --buckets=N         MHIST bucket budget        (default 64)
//   --reservoir=N       reservoir capacity         (default 64)
//   --queue-capacity=N  triage queue slots         (default 100)
//   --memory-budget=B   per-session memory budget in bytes (default 0 =
//                       unbounded). Over budget, the session folds its
//                       coldest buffered window into the synopsis and
//                       counts the evictions under the memory_shed drop
//                       cause (DESIGN.md §15). Minimum 65536
//   --workers=N         worker threads session execution is scheduled
//                       across; 0 = serial (default). Per-query output
//                       is byte-identical at any setting (DESIGN.md §11)
//   --dispatch=static|least-loaded|stealing
//                       how sessions map to workers (default static).
//                       least-loaded re-homes a session when its queue
//                       goes non-empty; stealing lets idle workers claim
//                       any pending session. Output is byte-identical
//                       across modes (DESIGN.md §16.1)
//   --intra-session-threads=N
//                       threads cooperating on one session's join /
//                       aggregation kernels, including the session's
//                       own worker (0 or 1 = off). Requires --workers
//                       >= 1; morsel partials merge deterministically,
//                       so results stay byte-identical (DESIGN.md §16.2)
//   --register-at=I:T   rolling deployment: hold query I back and
//                       register it mid-stream, just before the first
//                       event with timestamp >= T. It observes only
//                       whole windows from the next window boundary
//                       after the arrival clock (DESIGN.md §14)
//   --unregister-at=I:T retire query I just before the first event with
//                       timestamp >= T: its queued tuples drain, its
//                       in-flight windows emit, and its results/stats
//                       stay readable at the end of the run
//   --drop-policy=random|drop_newest|drop_oldest|synergistic|utility
//   --seed=N            drop-policy seed           (default 1)
//   --scalar-exec       run windows on the tuple-at-a-time reference
//                       executor instead of the vectorized columnar one
//                       (results are byte-identical; escape hatch for
//                       differential debugging and perf comparison)
//   --sort-events       time-sort the event file before feeding
//   --show-rewrite      print the rewritten SQL (paper Figs. 4-5) and exit
//   --stats             print run statistics to stderr, including each
//                       memory component's peak accounted bytes and
//                       (under a budget) the memory_shed drop counts
//   --metrics-json=PATH write the obs metrics registry + per-window
//                       trace as JSON (schema: DESIGN.md Sec. 9.3);
//                       `--metrics-json PATH` also works
//
// Example:
//   ./build/examples/dtcli --stats script.sql events.csv > results.csv

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/io/csv.h"
#include "src/obs/export.h"
#include "src/rewrite/sql_emitter.h"
#include "src/server/stream_server.h"
#include "src/sql/parser.h"

namespace {

using datatriage::Catalog;
using datatriage::Schema;
using datatriage::Status;

int Fail(const std::string& message) {
  std::fprintf(stderr, "dtcli: %s\n", message.c_str());
  return 1;
}

bool ConsumeFlag(const std::string& arg, const std::string& name,
                 std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

/// One --register-at / --unregister-at op: applied just before the first
/// event with timestamp >= time.
struct LifecycleOp {
  double time = 0.0;
  size_t query = 0;
  bool is_register = false;
};

bool ParseLifecycleOp(const std::string& value, bool is_register,
                      std::vector<LifecycleOp>* ops) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= value.size()) {
    return false;
  }
  LifecycleOp op;
  op.query = static_cast<size_t>(std::atoll(value.substr(0, colon).c_str()));
  op.time = std::atof(value.substr(colon + 1).c_str());
  op.is_register = is_register;
  ops->push_back(op);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  datatriage::engine::EngineConfig config;
  datatriage::engine::StreamServerOptions server_options;
  config.queue_capacity = 100;
  std::string synopsis_kind = "grid";
  std::string metrics_json_path;
  bool show_rewrite = false, print_stats = false, sort_events = false;
  std::vector<std::string> positional;
  std::vector<std::string> query_flags;
  std::vector<LifecycleOp> lifecycle_ops;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ConsumeFlag(arg, "query", &value)) {
      query_flags.push_back(value);
    } else if (arg == "--query" && i + 1 < argc) {
      query_flags.push_back(argv[++i]);
    } else if (ConsumeFlag(arg, "strategy", &value)) {
      auto strategy = datatriage::triage::SheddingStrategyFromString(value);
      if (!strategy.ok()) return Fail(strategy.status().ToString());
      config.strategy = strategy.value();
    } else if (ConsumeFlag(arg, "synopsis", &value)) {
      synopsis_kind = value;
    } else if (ConsumeFlag(arg, "cell-width", &value)) {
      config.synopsis.grid.cell_width = std::atof(value.c_str());
    } else if (ConsumeFlag(arg, "buckets", &value)) {
      config.synopsis.mhist.max_buckets =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "reservoir", &value)) {
      config.synopsis.reservoir.capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "queue-capacity", &value)) {
      config.queue_capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "memory-budget", &value)) {
      config.memory_budget_bytes =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "workers", &value)) {
      server_options.scheduler.worker_threads =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "dispatch", &value)) {
      if (value == "static") {
        server_options.scheduler.dispatch =
            datatriage::engine::DispatchMode::kStatic;
      } else if (value == "least-loaded") {
        server_options.scheduler.dispatch =
            datatriage::engine::DispatchMode::kLeastLoaded;
      } else if (value == "stealing") {
        server_options.scheduler.dispatch =
            datatriage::engine::DispatchMode::kStealing;
      } else {
        return Fail("unknown dispatch mode '" + value +
                    "' (static|least-loaded|stealing)");
      }
    } else if (ConsumeFlag(arg, "intra-session-threads", &value)) {
      server_options.scheduler.intra_session_threads =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "seed", &value)) {
      config.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "drop-policy", &value)) {
      if (value == "random") {
        config.drop_policy = datatriage::triage::DropPolicyKind::kRandom;
      } else if (value == "drop_newest") {
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kDropNewest;
      } else if (value == "drop_oldest") {
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kDropOldest;
      } else if (value == "synergistic") {
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kSynergistic;
      } else if (value == "utility") {
        // Utility-aware CEP shedding (DESIGN.md §17); the query must be
        // a MATCH pattern query, which the engine checks at registration.
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kUtility;
      } else {
        return Fail("unknown drop policy '" + value + "'");
      }
    } else if (ConsumeFlag(arg, "register-at", &value)) {
      if (!ParseLifecycleOp(value, /*is_register=*/true, &lifecycle_ops)) {
        return Fail("--register-at wants <query>:<time>, got '" + value +
                    "'");
      }
    } else if (ConsumeFlag(arg, "unregister-at", &value)) {
      if (!ParseLifecycleOp(value, /*is_register=*/false,
                            &lifecycle_ops)) {
        return Fail("--unregister-at wants <query>:<time>, got '" + value +
                    "'");
      }
    } else if (ConsumeFlag(arg, "metrics-json", &value)) {
      metrics_json_path = value;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--show-rewrite") {
      show_rewrite = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--sort-events") {
      sort_events = true;
    } else if (arg == "--scalar-exec") {
      config.vectorized_exec = false;
      config.vectorized_min_rows = 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown option '" + arg + "' (see header comment)");
    } else {
      positional.push_back(arg);
    }
  }
  if (synopsis_kind == "grid") {
    config.synopsis.type =
        datatriage::synopsis::SynopsisType::kGridHistogram;
  } else if (synopsis_kind == "mhist") {
    config.synopsis.type = datatriage::synopsis::SynopsisType::kMHist;
  } else if (synopsis_kind == "aligned_mhist") {
    config.synopsis.type =
        datatriage::synopsis::SynopsisType::kAlignedMHist;
  } else if (synopsis_kind == "reservoir") {
    config.synopsis.type =
        datatriage::synopsis::SynopsisType::kReservoirSample;
  } else if (synopsis_kind == "exact") {
    config.synopsis.type = datatriage::synopsis::SynopsisType::kExact;
  } else {
    return Fail("unknown synopsis kind '" + synopsis_kind + "'");
  }
  if (positional.size() != 2) {
    return Fail("usage: dtcli [options] <script.sql> <events.csv>");
  }

  // --- Load and split the script: CREATE STREAMs + queries, then any
  // --query flags (session ids follow that order).
  auto script_text = datatriage::io::ReadFileToString(positional[0]);
  if (!script_text.ok()) return Fail(script_text.status().ToString());
  auto statements = datatriage::sql::ParseScript(*script_text);
  if (!statements.ok()) return Fail(statements.status().ToString());

  Catalog catalog;
  std::vector<const datatriage::sql::Statement*> query_statements;
  for (const datatriage::sql::Statement& statement : *statements) {
    if (statement.kind ==
        datatriage::sql::Statement::Kind::kCreateStream) {
      Schema schema;
      for (const auto& column : statement.create_stream->columns) {
        if (Status s = schema.AddField({column.name, column.type});
            !s.ok()) {
          return Fail(s.ToString());
        }
      }
      if (Status s = catalog.RegisterStream(
              {statement.create_stream->name, std::move(schema)});
          !s.ok()) {
        return Fail(s.ToString());
      }
    } else {
      query_statements.push_back(&statement);
    }
  }

  std::vector<datatriage::sql::Statement> flag_statements;
  flag_statements.reserve(query_flags.size());
  for (const std::string& sql : query_flags) {
    auto statement = datatriage::sql::ParseStatement(sql);
    if (!statement.ok()) return Fail(statement.status().ToString());
    flag_statements.push_back(std::move(statement).value());
  }
  for (const datatriage::sql::Statement& statement : flag_statements) {
    query_statements.push_back(&statement);
  }
  if (query_statements.empty()) {
    return Fail("no query: the script has none and no --query was given");
  }

  std::vector<datatriage::plan::BoundQuery> bound_queries;
  for (const datatriage::sql::Statement* statement : query_statements) {
    auto bound = datatriage::plan::BindStatement(*statement, catalog);
    if (!bound.ok()) return Fail(bound.status().ToString());
    bound_queries.push_back(std::move(bound).value());
  }
  const size_t num_queries = bound_queries.size();

  if (show_rewrite) {
    for (size_t i = 0; i < num_queries; ++i) {
      auto triaged = datatriage::rewrite::RewriteForDataTriage(
          std::move(bound_queries[i]));
      if (!triaged.ok()) return Fail(triaged.status().ToString());
      auto script = datatriage::rewrite::EmitRewrittenScript(catalog,
                                                             *triaged);
      if (!script.ok()) return Fail(script.status().ToString());
      if (num_queries > 1) {
        std::printf("%s-- query %zu\n", i == 0 ? "" : "\n", i);
      }
      std::printf("%s", script->c_str());
    }
    return 0;
  }

  // --- Events.
  auto events_text = datatriage::io::ReadFileToString(positional[1]);
  if (!events_text.ok()) return Fail(events_text.status().ToString());
  auto events = datatriage::io::ParseEventsCsv(*events_text, catalog);
  if (!events.ok()) return Fail(events.status().ToString());
  if (sort_events) datatriage::io::SortEventsByTime(&events.value());

  // --- Run: every query as one session on a shared StreamServer.
  std::vector<std::vector<std::string>> column_names(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    for (const datatriage::Field& f :
         bound_queries[i].plan->schema().fields()) {
      column_names[i].push_back(f.name);
    }
  }
  if (Status s = server_options.Validate(); !s.ok()) {
    return Fail(s.ToString());
  }
  for (const LifecycleOp& op : lifecycle_ops) {
    if (op.query >= num_queries) {
      return Fail("lifecycle op names query " + std::to_string(op.query) +
                  " but only " + std::to_string(num_queries) +
                  " queries are defined");
    }
  }
  std::stable_sort(lifecycle_ops.begin(), lifecycle_ops.end(),
                   [](const LifecycleOp& a, const LifecycleOp& b) {
                     return a.time < b.time;
                   });

  datatriage::server::StreamServer server(catalog, server_options);
  // Queries with a --register-at op are held back and join mid-stream;
  // the rest register up front. `ids` maps query order to session ids.
  std::vector<datatriage::server::SessionId> ids(num_queries, 0);
  std::vector<bool> registered(num_queries, false);
  for (size_t i = 0; i < num_queries; ++i) {
    bool held_back = false;
    for (const LifecycleOp& op : lifecycle_ops) {
      if (op.is_register && op.query == i) held_back = true;
    }
    if (held_back) continue;
    auto id = server.RegisterQuery(std::move(bound_queries[i]), config);
    if (!id.ok()) return Fail(id.status().ToString());
    ids[i] = *id;
    registered[i] = true;
  }

  const auto apply_op = [&](const LifecycleOp& op) -> Status {
    if (op.is_register) {
      auto id =
          server.RegisterQuery(std::move(bound_queries[op.query]), config);
      if (!id.ok()) return id.status();
      ids[op.query] = *id;
      registered[op.query] = true;
      return Status::OK();
    }
    if (!registered[op.query]) {
      return Status::InvalidArgument(
          "--unregister-at fires for query " + std::to_string(op.query) +
          " before it is registered");
    }
    return server.UnregisterQuery(ids[op.query]);
  };

  // Push in batches split at lifecycle-op boundaries: each op fires just
  // before the first event with timestamp >= its time. Within a segment,
  // PushBatch keeps the one-pass validation and routing memoization.
  const std::span<const datatriage::engine::StreamEvent> feed(*events);
  size_t e = 0, o = 0;
  while (e < feed.size()) {
    while (o < lifecycle_ops.size() &&
           feed[e].tuple.timestamp() >= lifecycle_ops[o].time) {
      if (Status s = apply_op(lifecycle_ops[o++]); !s.ok()) {
        return Fail(s.ToString());
      }
    }
    size_t n = feed.size() - e;
    if (o < lifecycle_ops.size()) {
      size_t j = e;
      while (j < feed.size() &&
             feed[j].tuple.timestamp() < lifecycle_ops[o].time) {
        ++j;
      }
      n = j - e;
    }
    if (Status s = server.PushBatch(feed.subspan(e, n)); !s.ok()) {
      return Fail(s.ToString());
    }
    e += n;
  }
  // Ops past the end of the feed still fire, in order, before Finish.
  while (o < lifecycle_ops.size()) {
    if (Status s = apply_op(lifecycle_ops[o++]); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  if (Status s = server.Finish(); !s.ok()) return Fail(s.ToString());

  for (size_t i = 0; i < num_queries; ++i) {
    if (num_queries > 1) std::printf("# query %zu\n", i);
    auto& session = server.session(ids[i]);
    std::fputs(datatriage::io::FormatResultsCsv(session.TakeResults(),
                                                column_names[i])
                   .c_str(),
               stdout);
  }

  if (!metrics_json_path.empty()) {
    // One query keeps the legacy single-registry schema (Sec. 9.3);
    // several write the combined server export (Sec. 10).
    if (num_queries == 1) {
      auto& session = server.session(ids[0]);
      if (Status s = datatriage::obs::WriteMetricsJson(
              session.metrics(), &session.trace(), metrics_json_path);
          !s.ok()) {
        return Fail(s.ToString());
      }
    } else {
      std::FILE* out = std::fopen(metrics_json_path.c_str(), "w");
      if (out == nullptr) {
        return Fail("cannot open '" + metrics_json_path +
                    "' for writing");
      }
      const std::string json = server.MetricsJson();
      const bool ok =
          std::fwrite(json.data(), 1, json.size(), out) == json.size();
      if (std::fclose(out) != 0 || !ok) {
        return Fail("cannot write '" + metrics_json_path + "'");
      }
    }
  }

  if (print_stats) {
    for (size_t i = 0; i < num_queries; ++i) {
      const auto& session = server.session(ids[i]);
      const datatriage::engine::EngineStatsSnapshot snapshot =
          session.StatsSnapshot();
      const datatriage::engine::EngineStats& stats = snapshot.core;
      // With several sessions each stderr line carries the session's
      // metric scope (the same "session.<id>." prefix the combined JSON
      // export uses — the id, not the query order, since mid-stream
      // registration can reorder them); with one the legacy unscoped
      // format is kept.
      const std::string scope =
          num_queries > 1 ? "session." + std::to_string(ids[i]) + "."
                          : "";
      std::fprintf(
          stderr,
          "%singested=%lld kept=%lld dropped=%lld windows=%lld "
          "exact_work=%.4fs synopsis_work=%.4fs\n",
          scope.c_str(), static_cast<long long>(stats.tuples_ingested),
          static_cast<long long>(stats.tuples_kept),
          static_cast<long long>(stats.tuples_dropped),
          static_cast<long long>(stats.windows_emitted),
          stats.exact_work_seconds, stats.synopsis_work_seconds);
      // Per-stream drop causes and queue high-watermarks from the obs
      // registry embedded in the snapshot.
      for (const auto& [name, value] : snapshot.counters) {
        if (name.rfind("stream.", 0) == 0 && value > 0 &&
            name.find(".dropped.") != std::string::npos) {
          std::fprintf(stderr, "%s%s=%lld\n", scope.c_str(),
                       name.c_str(), static_cast<long long>(value));
        }
      }
      for (const auto& [name, value] : snapshot.gauge_maxima) {
        if (name.rfind("stream.", 0) == 0 &&
            name.find(".queue_depth") != std::string::npos) {
          std::fprintf(stderr, "%s%s.hwm=%g\n", scope.c_str(),
                       name.c_str(), value);
        }
      }
      // Peak accounted bytes per memory component (DESIGN.md §15). The
      // mem.*.bytes gauges read 0 after Finish — the high-watermark is
      // the interesting number. Accounting is always on, so these print
      // whether or not a budget was set.
      for (const auto& [name, value] : snapshot.gauge_maxima) {
        if (name.rfind("mem.", 0) == 0 && value > 0) {
          std::fprintf(stderr, "%s%s.peak=%g\n", scope.c_str(),
                       name.c_str(), value);
        }
      }
    }
  }
  return 0;
}
