// dtcli — run a Data Triage continuous query over a CSV event file.
//
//   dtcli [options] <script.sql> <events.csv>
//
// The SQL script contains CREATE STREAM statements followed by exactly
// one continuous query. The events file has one arrival per line:
// `stream,timestamp,v1,v2,...` (see src/io/csv.h). Per-window results are
// written to stdout as CSV, with one `exact` row per exact result tuple
// and one `merged` row per composite (exact + estimated) tuple.
//
// Options:
//   --strategy=data_triage|drop_only|summarize_only   (default data_triage)
//   --synopsis=grid|mhist|aligned_mhist|reservoir|exact (default grid)
//   --cell-width=W      grid cell width            (default 4)
//   --buckets=N         MHIST bucket budget        (default 64)
//   --reservoir=N       reservoir capacity         (default 64)
//   --queue-capacity=N  triage queue slots         (default 100)
//   --drop-policy=random|drop_newest|drop_oldest|synergistic
//   --seed=N            drop-policy seed           (default 1)
//   --sort-events       time-sort the event file before feeding
//   --show-rewrite      print the rewritten SQL (paper Figs. 4-5) and exit
//   --stats             print run statistics to stderr
//   --metrics-json=PATH write the obs metrics registry + per-window
//                       trace as JSON (schema: DESIGN.md Sec. 9.3);
//                       `--metrics-json PATH` also works
//
// Example:
//   ./build/examples/dtcli --stats script.sql events.csv > results.csv

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/io/csv.h"
#include "src/obs/export.h"
#include "src/rewrite/sql_emitter.h"
#include "src/sql/parser.h"

namespace {

using datatriage::Catalog;
using datatriage::Schema;
using datatriage::Status;

int Fail(const std::string& message) {
  std::fprintf(stderr, "dtcli: %s\n", message.c_str());
  return 1;
}

bool ConsumeFlag(const std::string& arg, const std::string& name,
                 std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  datatriage::engine::EngineConfig config;
  config.queue_capacity = 100;
  std::string synopsis_kind = "grid";
  std::string metrics_json_path;
  bool show_rewrite = false, print_stats = false, sort_events = false;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ConsumeFlag(arg, "strategy", &value)) {
      auto strategy = datatriage::triage::SheddingStrategyFromString(value);
      if (!strategy.ok()) return Fail(strategy.status().ToString());
      config.strategy = strategy.value();
    } else if (ConsumeFlag(arg, "synopsis", &value)) {
      synopsis_kind = value;
    } else if (ConsumeFlag(arg, "cell-width", &value)) {
      config.synopsis.grid.cell_width = std::atof(value.c_str());
    } else if (ConsumeFlag(arg, "buckets", &value)) {
      config.synopsis.mhist.max_buckets =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "reservoir", &value)) {
      config.synopsis.reservoir.capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "queue-capacity", &value)) {
      config.queue_capacity =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "seed", &value)) {
      config.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "drop-policy", &value)) {
      if (value == "random") {
        config.drop_policy = datatriage::triage::DropPolicyKind::kRandom;
      } else if (value == "drop_newest") {
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kDropNewest;
      } else if (value == "drop_oldest") {
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kDropOldest;
      } else if (value == "synergistic") {
        config.drop_policy =
            datatriage::triage::DropPolicyKind::kSynergistic;
      } else {
        return Fail("unknown drop policy '" + value + "'");
      }
    } else if (ConsumeFlag(arg, "metrics-json", &value)) {
      metrics_json_path = value;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg == "--show-rewrite") {
      show_rewrite = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--sort-events") {
      sort_events = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Fail("unknown option '" + arg + "' (see header comment)");
    } else {
      positional.push_back(arg);
    }
  }
  if (synopsis_kind == "grid") {
    config.synopsis.type =
        datatriage::synopsis::SynopsisType::kGridHistogram;
  } else if (synopsis_kind == "mhist") {
    config.synopsis.type = datatriage::synopsis::SynopsisType::kMHist;
  } else if (synopsis_kind == "aligned_mhist") {
    config.synopsis.type =
        datatriage::synopsis::SynopsisType::kAlignedMHist;
  } else if (synopsis_kind == "reservoir") {
    config.synopsis.type =
        datatriage::synopsis::SynopsisType::kReservoirSample;
  } else if (synopsis_kind == "exact") {
    config.synopsis.type = datatriage::synopsis::SynopsisType::kExact;
  } else {
    return Fail("unknown synopsis kind '" + synopsis_kind + "'");
  }
  if (positional.size() != 2) {
    return Fail("usage: dtcli [options] <script.sql> <events.csv>");
  }

  // --- Load and split the script: CREATE STREAMs + one query.
  auto script_text = datatriage::io::ReadFileToString(positional[0]);
  if (!script_text.ok()) return Fail(script_text.status().ToString());
  auto statements = datatriage::sql::ParseScript(*script_text);
  if (!statements.ok()) return Fail(statements.status().ToString());

  Catalog catalog;
  const datatriage::sql::Statement* query_statement = nullptr;
  for (const datatriage::sql::Statement& statement : *statements) {
    if (statement.kind ==
        datatriage::sql::Statement::Kind::kCreateStream) {
      Schema schema;
      for (const auto& column : statement.create_stream->columns) {
        if (Status s = schema.AddField({column.name, column.type});
            !s.ok()) {
          return Fail(s.ToString());
        }
      }
      if (Status s = catalog.RegisterStream(
              {statement.create_stream->name, std::move(schema)});
          !s.ok()) {
        return Fail(s.ToString());
      }
    } else {
      if (query_statement != nullptr) {
        return Fail("script must contain exactly one query");
      }
      query_statement = &statement;
    }
  }
  if (query_statement == nullptr) {
    return Fail("script contains no query");
  }
  auto bound = datatriage::plan::BindStatement(*query_statement, catalog);
  if (!bound.ok()) return Fail(bound.status().ToString());

  if (show_rewrite) {
    auto triaged =
        datatriage::rewrite::RewriteForDataTriage(std::move(bound).value());
    if (!triaged.ok()) return Fail(triaged.status().ToString());
    auto script = datatriage::rewrite::EmitRewrittenScript(catalog,
                                                           *triaged);
    if (!script.ok()) return Fail(script.status().ToString());
    std::printf("%s", script->c_str());
    return 0;
  }

  // --- Events.
  auto events_text = datatriage::io::ReadFileToString(positional[1]);
  if (!events_text.ok()) return Fail(events_text.status().ToString());
  auto events = datatriage::io::ParseEventsCsv(*events_text, catalog);
  if (!events.ok()) return Fail(events.status().ToString());
  if (sort_events) datatriage::io::SortEventsByTime(&events.value());

  // --- Run.
  std::vector<std::string> column_names;
  for (const datatriage::Field& f : bound->plan->schema().fields()) {
    column_names.push_back(f.name);
  }
  auto engine = datatriage::engine::ContinuousQueryEngine::Make(
      catalog, std::move(bound).value(), config);
  if (!engine.ok()) return Fail(engine.status().ToString());
  for (const datatriage::engine::StreamEvent& event : *events) {
    if (Status s = (*engine)->Push(event); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  if (Status s = (*engine)->Finish(); !s.ok()) return Fail(s.ToString());

  std::vector<datatriage::engine::WindowResult> results =
      (*engine)->TakeResults();
  std::fputs(
      datatriage::io::FormatResultsCsv(results, column_names).c_str(),
      stdout);

  if (!metrics_json_path.empty()) {
    if (Status s = datatriage::obs::WriteMetricsJson(
            (*engine)->metrics(), &(*engine)->trace(), metrics_json_path);
        !s.ok()) {
      return Fail(s.ToString());
    }
  }

  if (print_stats) {
    const datatriage::engine::EngineStatsSnapshot snapshot =
        (*engine)->StatsSnapshot();
    const datatriage::engine::EngineStats& stats = snapshot.core;
    std::fprintf(
        stderr,
        "ingested=%lld kept=%lld dropped=%lld windows=%lld "
        "exact_work=%.4fs synopsis_work=%.4fs\n",
        static_cast<long long>(stats.tuples_ingested),
        static_cast<long long>(stats.tuples_kept),
        static_cast<long long>(stats.tuples_dropped),
        static_cast<long long>(stats.windows_emitted),
        stats.exact_work_seconds, stats.synopsis_work_seconds);
    // Per-stream drop causes and queue high-watermarks from the obs
    // registry embedded in the snapshot.
    for (const auto& [name, value] : snapshot.counters) {
      if (name.rfind("stream.", 0) == 0 && value > 0 &&
          name.find(".dropped.") != std::string::npos) {
        std::fprintf(stderr, "%s=%lld\n", name.c_str(),
                     static_cast<long long>(value));
      }
    }
    for (const auto& [name, value] : snapshot.gauge_maxima) {
      if (name.rfind("stream.", 0) == 0 &&
          name.find(".queue_depth") != std::string::npos) {
        std::fprintf(stderr, "%s.hwm=%g\n", name.c_str(), value);
      }
    }
  }
  return 0;
}
