// Quickstart: the complete Data Triage pipeline in one file.
//
//  1. Register streams in a catalog (the paper's R(a), S(b,c), T(d)).
//  2. Submit the continuous query of paper Fig. 7.
//  3. Feed timestamped tuples through the engine; the triage queues shed
//     load when arrivals outrun the (virtual-time) processing capacity.
//  4. Read per-window composite results: the exact answer over kept
//     tuples plus the shadow plan's estimate of what shedding removed.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/engine/engine.h"
#include "src/workload/scenario.h"

using datatriage::engine::ContinuousQueryEngine;
using datatriage::engine::EngineConfig;
using datatriage::engine::WindowResult;

int main() {
  // --- 1. Streams + query. BuildPaperScenario assembles the paper's
  // catalog, its Fig. 7 query, and a synthetic Gaussian workload. Here we
  // ask for 3x200 tuples/s against an engine that can process ~400/s, so
  // roughly a third of the input must be shed.
  datatriage::workload::ScenarioConfig workload;
  workload.tuples_per_stream = 2000;
  workload.rate_per_stream = 200.0;
  workload.tuples_per_window = 100.0;
  workload.seed = 42;
  auto scenario = datatriage::workload::BuildPaperScenario(workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", scenario->query_sql.c_str());

  // --- 2. Engine configuration: Data Triage with the paper's sparse
  // cubic-bucket grid histogram as the synopsis.
  EngineConfig config;
  config.strategy = datatriage::triage::SheddingStrategy::kDataTriage;
  config.queue_capacity = 100;
  config.synopsis.type =
      datatriage::synopsis::SynopsisType::kGridHistogram;
  config.synopsis.grid.cell_width = 4.0;

  auto engine = ContinuousQueryEngine::Make(scenario->catalog,
                                            scenario->query_sql, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // --- 3. Feed the timeline.
  for (const datatriage::engine::StreamEvent& event : scenario->events) {
    datatriage::Status s = (*engine)->Push(event);
    if (!s.ok()) {
      std::fprintf(stderr, "push: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (datatriage::Status s = (*engine)->Finish(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 4. Inspect composite results.
  std::printf("%6s %6s %8s %22s %22s\n", "window", "kept", "dropped",
              "exact groups (count)", "merged groups (count)");
  for (const WindowResult& result : (*engine)->TakeResults()) {
    double exact_total = 0, merged_total = 0;
    for (const datatriage::Tuple& row : result.exact_rows) {
      exact_total += row.value(1).AsDouble();
    }
    for (const datatriage::Tuple& row : result.merged_rows) {
      merged_total += row.value(1).AsDouble();
    }
    std::printf("%6lld %6lld %8lld %10zu (%9.0f) %10zu (%9.0f)\n",
                static_cast<long long>(result.window),
                static_cast<long long>(result.kept_tuples),
                static_cast<long long>(result.dropped_tuples),
                result.exact_rows.size(), exact_total,
                result.merged_rows.size(), merged_total);
  }

  const datatriage::engine::EngineStats& stats = (*engine)->stats();
  std::printf(
      "\ningested %lld tuples: kept %lld, shed %lld "
      "(synopsized and reflected in the merged column)\n",
      static_cast<long long>(stats.tuples_ingested),
      static_cast<long long>(stats.tuples_kept),
      static_cast<long long>(stats.tuples_dropped));
  return 0;
}
