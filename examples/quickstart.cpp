// Quickstart: the complete Data Triage pipeline in one file.
//
//  1. Register streams in a catalog (the paper's R(a), S(b,c), T(d)).
//  2. Submit the continuous query of paper Fig. 7.
//  3. Install a streaming window sink: each per-window composite result
//     (exact answer over kept tuples + the shadow plan's estimate of
//     what shedding removed) is delivered at emission time, while the
//     run is still in flight. (Call TakeResults() after Finish() instead
//     if you prefer buffered delivery.)
//  4. Feed timestamped tuples through the engine; the triage queues shed
//     load when arrivals outrun the (virtual-time) processing capacity.
//  5. Read the run accounting — StatsSnapshot() embeds the obs metrics
//     registry: per-stream queue high-watermarks and drop causes.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/engine/engine.h"
#include "src/workload/scenario.h"

using datatriage::engine::ContinuousQueryEngine;
using datatriage::engine::EngineConfig;
using datatriage::engine::WindowResult;

int main() {
  // --- 1. Streams + query. BuildPaperScenario assembles the paper's
  // catalog, its Fig. 7 query, and a synthetic Gaussian workload. Here we
  // ask for 3x200 tuples/s against an engine that can process ~400/s, so
  // roughly a third of the input must be shed.
  datatriage::workload::ScenarioConfig workload;
  workload.tuples_per_stream = 2000;
  workload.rate_per_stream = 200.0;
  workload.tuples_per_window = 100.0;
  workload.seed = 42;
  auto scenario = datatriage::workload::BuildPaperScenario(workload);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", scenario->query_sql.c_str());

  // --- 2. Engine configuration: Data Triage with the paper's sparse
  // cubic-bucket grid histogram as the synopsis.
  EngineConfig config;
  config.strategy = datatriage::triage::SheddingStrategy::kDataTriage;
  config.queue_capacity = 100;
  config.synopsis.type =
      datatriage::synopsis::SynopsisType::kGridHistogram;
  config.synopsis.grid.cell_width = 4.0;
  if (datatriage::Status s = config.Validate(); !s.ok()) {
    std::fprintf(stderr, "config: %s\n", s.ToString().c_str());
    return 1;
  }

  auto engine = ContinuousQueryEngine::Make(scenario->catalog,
                                            scenario->query_sql, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // --- 3. Streaming results: print each window as it emits.
  std::printf("%6s %6s %8s %22s %22s\n", "window", "kept", "dropped",
              "exact groups (count)", "merged groups (count)");
  (*engine)->SetWindowSink([](WindowResult&& result) {
    double exact_total = 0, merged_total = 0;
    for (const datatriage::Tuple& row : result.exact_rows) {
      exact_total += row.value(1).AsDouble();
    }
    for (const datatriage::Tuple& row : result.merged_rows) {
      merged_total += row.value(1).AsDouble();
    }
    std::printf("%6lld %6lld %8lld %10zu (%9.0f) %10zu (%9.0f)\n",
                static_cast<long long>(result.window),
                static_cast<long long>(result.kept_tuples),
                static_cast<long long>(result.dropped_tuples),
                result.exact_rows.size(), exact_total,
                result.merged_rows.size(), merged_total);
  });

  // --- 4. Feed the timeline.
  for (const datatriage::engine::StreamEvent& event : scenario->events) {
    datatriage::Status s = (*engine)->Push(event);
    if (!s.ok()) {
      std::fprintf(stderr, "push: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (datatriage::Status s = (*engine)->Finish(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 5. Run accounting, including the obs registry totals.
  const datatriage::engine::EngineStatsSnapshot stats =
      (*engine)->StatsSnapshot();
  std::printf(
      "\ningested %lld tuples: kept %lld, shed %lld "
      "(synopsized and reflected in the merged column)\n",
      static_cast<long long>(stats.core.tuples_ingested),
      static_cast<long long>(stats.core.tuples_kept),
      static_cast<long long>(stats.core.tuples_dropped));
  for (const auto& [name, hwm] : stats.gauge_maxima) {
    if (name.find(".queue_depth") != std::string::npos) {
      std::printf("%s high-watermark: %.0f\n", name.c_str(), hwm);
    }
  }
  return 0;
}
