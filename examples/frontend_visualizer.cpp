// Recreates the data behind the paper's Fig. 3 front-end: a query that
// returns two-dimensional tuples, visualized as exact result points plus
// rectangles for the system's estimate of lost results (the cells of the
// dropped-results synopsis, shaded by estimated tuple count).
//
// The example runs a non-aggregate projection query under overload and
// writes CSV to stdout:
//   point,<window>,<x>,<y>
//   rect,<window>,<x_lo>,<y_lo>,<x_hi>,<y_hi>,<estimated_count>
// Pipe it to a plotting tool to recreate the screenshot's blue points and
// red rectangles.
//
// Build & run:  ./build/examples/frontend_visualizer > viz.csv

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/synopsis/grid_histogram.h"

namespace {

using datatriage::Catalog;
using datatriage::FieldType;
using datatriage::Rng;
using datatriage::Schema;
using datatriage::Status;
using datatriage::Tuple;
using datatriage::Value;
using datatriage::engine::ContinuousQueryEngine;
using datatriage::engine::EngineConfig;
using datatriage::engine::StreamEvent;
using datatriage::engine::WindowResult;

std::vector<StreamEvent> BuildCloud(uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamEvent> events;
  double t = 0.0;
  // Two clusters drifting over time; rate far beyond capacity so most
  // tuples are shed and reported through the synopsis rectangles.
  while (t < 4.0) {
    t += rng.Exponential(1500.0);
    const bool second_cluster = rng.Bernoulli(0.4);
    const double cx = second_cluster ? 70.0 : 30.0 + 5.0 * t;
    const double cy = second_cluster ? 25.0 : 60.0;
    const int64_t x = std::clamp<int64_t>(
        static_cast<int64_t>(rng.Gaussian(cx, 6.0)), 1, 100);
    const int64_t y = std::clamp<int64_t>(
        static_cast<int64_t>(rng.Gaussian(cy, 6.0)), 1, 100);
    events.push_back(
        {"points", Tuple({Value::Int64(x), Value::Int64(y)}, t)});
  }
  return events;
}

}  // namespace

int main() {
  Catalog catalog;
  if (!catalog
           .RegisterStream({"points", Schema({{"x", FieldType::kInt64},
                                              {"y", FieldType::kInt64}})})
           .ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }
  const std::string query =
      "SELECT x, y FROM points WINDOW points['1 second']";

  EngineConfig config;
  config.strategy = datatriage::triage::SheddingStrategy::kDataTriage;
  config.queue_capacity = 60;
  config.synopsis.type =
      datatriage::synopsis::SynopsisType::kGridHistogram;
  config.synopsis.grid.cell_width = 8.0;

  auto engine = ContinuousQueryEngine::Make(catalog, query, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  for (const StreamEvent& e : BuildCloud(5)) {
    Status s = (*engine)->Push(e);
    if (!s.ok()) {
      std::fprintf(stderr, "push: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = (*engine)->Finish(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("kind,window,x0,y0,x1,y1,weight\n");
  for (const WindowResult& result : (*engine)->TakeResults()) {
    for (const Tuple& row : result.exact_rows) {
      std::printf("point,%lld,%lld,%lld,,,\n",
                  static_cast<long long>(result.window),
                  static_cast<long long>(row.value(0).int64()),
                  static_cast<long long>(row.value(1).int64()));
    }
    if (result.result_synopsis == nullptr) continue;
    // The projected loss synopsis is a grid histogram over (x, y); its
    // occupied cells are exactly Fig. 3's red rectangles.
    const auto* grid = dynamic_cast<const datatriage::synopsis::GridHistogram*>(
        result.result_synopsis.get());
    if (grid == nullptr) continue;
    const double w = grid->cell_width();
    for (const auto& [coords, count] : grid->cells()) {
      std::printf("rect,%lld,%.1f,%.1f,%.1f,%.1f,%.2f\n",
                  static_cast<long long>(result.window),
                  static_cast<double>(coords[0]) * w,
                  static_cast<double>(coords[1]) * w,
                  static_cast<double>(coords[0] + 1) * w,
                  static_cast<double>(coords[1] + 1) * w, count);
    }
  }
  return 0;
}
