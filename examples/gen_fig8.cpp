// gen_fig8 — materialize the paper's Fig. 8 constant-rate scenario as a
// dtcli-runnable (script.sql, events.csv) pair.
//
//   gen_fig8 [--rate=N] [--tuples=N] [--seed=N] [--prefix=PATH]
//
// Writes <prefix>.sql (CREATE STREAMs + the Fig. 7 query with windows
// scaled to the rate) and <prefix>.csv (the merged, time-ordered event
// timeline). Defaults: aggregate rate 600 tuples/s (overload — the
// engine saturates near 400), 2000 tuples/stream, seed 1, prefix
// "fig8". Replay with:
//
//   ./build/examples/gen_fig8 --prefix=/tmp/fig8
//   ./build/examples/dtcli --metrics-json=/tmp/fig8_metrics.json \
//       /tmp/fig8.sql /tmp/fig8.csv > /tmp/fig8_results.csv

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/io/csv.h"
#include "src/workload/scenario.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "gen_fig8: %s\n", message.c_str());
  return 1;
}

bool ConsumeFlag(const std::string& arg, const std::string& name,
                 std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Fail("cannot open '" + path + "'");
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  datatriage::workload::ScenarioConfig config;
  config.tuples_per_stream = 2000;
  config.tuples_per_window = 60.0;
  double aggregate_rate = 600.0;
  std::string prefix = "fig8";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ConsumeFlag(arg, "rate", &value)) {
      aggregate_rate = std::atof(value.c_str());
    } else if (ConsumeFlag(arg, "tuples", &value)) {
      config.tuples_per_stream =
          static_cast<size_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "seed", &value)) {
      config.seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (ConsumeFlag(arg, "prefix", &value)) {
      prefix = value;
    } else {
      return Fail("unknown option '" + arg + "' (see header comment)");
    }
  }
  if (aggregate_rate <= 0) return Fail("--rate must be positive");
  config.rate_per_stream = aggregate_rate / 3.0;

  auto scenario = datatriage::workload::BuildPaperScenario(config);
  if (!scenario.ok()) return Fail(scenario.status().ToString());

  // The scenario's streams are r(a), s(b,c), t(d), all INTEGER (paper
  // Sec. 6.2.1); query_sql already carries the scaled WINDOW clause.
  std::string script =
      "CREATE STREAM R (a INTEGER);\n"
      "CREATE STREAM S (b INTEGER, c INTEGER);\n"
      "CREATE STREAM T (d INTEGER);\n";
  script += scenario->query_sql;
  script += '\n';

  if (int rc = WriteFile(prefix + ".sql", script); rc != 0) return rc;
  if (int rc = WriteFile(prefix + ".csv",
                         datatriage::io::FormatEventsCsv(scenario->events));
      rc != 0) {
    return rc;
  }
  std::fprintf(stderr,
               "gen_fig8: wrote %s.sql and %s.csv (%zu events, window "
               "%.6fs, aggregate %.0f tuples/s)\n",
               prefix.c_str(), prefix.c_str(), scenario->events.size(),
               scenario->window_seconds, scenario->aggregate_rate);
  return 0;
}
