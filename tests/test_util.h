#ifndef DATATRIAGE_TESTS_TEST_UTIL_H_
#define DATATRIAGE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/random.h"
#include "src/exec/relation.h"
#include "src/plan/binder.h"
#include "src/sql/parser.h"
#include "src/tuple/tuple.h"

namespace datatriage::testing {

/// Integer row shorthand.
inline Tuple Row(std::initializer_list<int64_t> values, double ts = 0.0) {
  std::vector<Value> v;
  for (int64_t x : values) v.push_back(Value::Int64(x));
  return Tuple(std::move(v), ts);
}

/// The paper's experimental catalog: R(a), S(b, c), T(d), all INTEGER
/// (Sec. 4.3 / 6.2.1).
inline Catalog PaperCatalog() {
  Catalog catalog;
  DT_CHECK(
      catalog.RegisterStream({"R", Schema({{"a", FieldType::kInt64}})})
          .ok());
  DT_CHECK(catalog
               .RegisterStream({"S", Schema({{"b", FieldType::kInt64},
                                             {"c", FieldType::kInt64}})})
               .ok());
  DT_CHECK(
      catalog.RegisterStream({"T", Schema({{"d", FieldType::kInt64}})})
          .ok());
  return catalog;
}

/// The paper's Fig. 7 continuous query.
inline constexpr char kPaperQuery[] =
    "SELECT a, COUNT(*) as count FROM R,S,T WHERE R.a = S.b AND "
    "S.c = T.d GROUP BY a; WINDOW R['1 second'], S['1 second'], "
    "T['1 second'];";

/// Parses and binds a query against a catalog, CHECK-failing on error so
/// tests stay terse.
inline plan::BoundQuery MustBind(const std::string& text,
                                 const Catalog& catalog) {
  auto stmt = sql::ParseStatement(text);
  DT_CHECK(stmt.ok()) << stmt.status().ToString();
  auto bound = plan::BindStatement(*stmt, catalog);
  DT_CHECK(bound.ok()) << bound.status().ToString();
  return std::move(bound).value();
}

/// Random relation of integer tuples with values uniform in [lo, hi].
inline exec::Relation RandomRelation(Rng* rng, size_t rows, size_t cols,
                                     int64_t lo, int64_t hi) {
  exec::Relation relation;
  relation.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> values;
    values.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      values.push_back(Value::Int64(rng->UniformInt(lo, hi)));
    }
    relation.emplace_back(std::move(values));
  }
  return relation;
}

/// Randomly splits `input` into (kept, dropped) with the given drop
/// probability.
inline std::pair<exec::Relation, exec::Relation> RandomSplit(
    Rng* rng, const exec::Relation& input, double drop_probability) {
  exec::Relation kept, dropped;
  for (const Tuple& t : input) {
    (rng->Bernoulli(drop_probability) ? dropped : kept).push_back(t);
  }
  return {std::move(kept), std::move(dropped)};
}

/// Order-insensitive multiset equality for relations.
inline bool SameMultiset(exec::Relation a, exec::Relation b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

/// Human-readable multiset rendering for failure messages.
inline std::string RelationToString(exec::Relation r) {
  std::sort(r.begin(), r.end());
  std::string out = "{";
  for (size_t i = 0; i < r.size(); ++i) {
    if (i > 0) out += ", ";
    out += r[i].ToString();
  }
  return out + "}";
}

}  // namespace datatriage::testing

#endif  // DATATRIAGE_TESTS_TEST_UTIL_H_
