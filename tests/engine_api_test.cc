// Tests for the engine's public-API surface added by the observability
// PR: EngineConfig::Validate, SetWindowSink streaming delivery,
// StatsSnapshot, Push timestamp hardening, and deterministic metrics
// export at the engine level.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/io/csv.h"
#include "src/obs/export.h"
#include "src/plan/binder.h"
#include "src/server/stream_server.h"
#include "src/sql/parser.h"
#include "src/workload/scenario.h"
#include "tests/test_util.h"

namespace datatriage::engine {
namespace {

using triage::DropPolicyKind;
using triage::SheddingStrategy;
using testing::PaperCatalog;
using testing::Row;

EngineConfig TriageConfig() {
  EngineConfig config;
  config.strategy = SheddingStrategy::kDataTriage;
  config.queue_capacity = 50;
  config.synopsis.type = synopsis::SynopsisType::kGridHistogram;
  config.synopsis.grid.cell_width = 4.0;
  return config;
}

/// An overload scenario (600 tuples/s aggregate against a ~400 tuples/s
/// engine) so shedding, force-shed accounting, and synopsis work all
/// actually happen.
workload::Scenario OverloadScenario(uint64_t seed = 1) {
  workload::ScenarioConfig config;
  config.tuples_per_stream = 400;
  config.tuples_per_window = 60.0;
  config.rate_per_stream = 200.0;
  config.seed = seed;
  auto scenario = workload::BuildPaperScenario(config);
  DT_CHECK(scenario.ok()) << scenario.status().ToString();
  return *std::move(scenario);
}

// --- EngineConfig::Validate ---------------------------------------------

TEST(EngineConfigValidateTest, AcceptsDefaults) {
  EXPECT_TRUE(TriageConfig().Validate().ok());
}

TEST(EngineConfigValidateTest, RejectsZeroQueueCapacity) {
  EngineConfig config = TriageConfig();
  config.queue_capacity = 0;
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("queue_capacity"), std::string::npos);
  // Make() must refuse with the same diagnosis, not crash later.
  auto engine = ContinuousQueryEngine::Make(
      PaperCatalog(), testing::kPaperQuery, config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status(), status);
}

TEST(EngineConfigValidateTest, RejectsSynergisticWithoutSynopsizing) {
  EngineConfig config = TriageConfig();
  config.strategy = SheddingStrategy::kDropOnly;
  config.drop_policy = DropPolicyKind::kSynergistic;
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("synergistic"), std::string::npos);
}

TEST(EngineConfigValidateTest, RejectsZeroSynergisticCandidates) {
  EngineConfig config = TriageConfig();
  config.drop_policy = DropPolicyKind::kSynergistic;
  config.synergistic_candidates = 0;
  Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("synergistic_candidates"),
            std::string::npos);
}

// --- SchedulerOptions / StreamServerOptions::Validate -------------------

TEST(SchedulerOptionsValidateTest, AcceptsDefaultsAndFullConfig) {
  EXPECT_TRUE(engine::SchedulerOptions{}.Validate().ok());
  engine::SchedulerOptions full;
  full.worker_threads = 8;
  full.dispatch = engine::DispatchMode::kStealing;
  full.intra_session_threads = 4;
  full.parallel_min_rows = 4096;
  EXPECT_TRUE(full.Validate().ok());
}

TEST(SchedulerOptionsValidateTest, RejectsIntraSessionThreadsWithoutPool) {
  engine::SchedulerOptions options;
  options.intra_session_threads = 2;  // worker_threads stays 0
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("intra_session_threads"),
            std::string::npos);
  EXPECT_NE(status.message().find("worker_threads"), std::string::npos);
  // 0 and 1 both mean "off" and are legal without a pool.
  options.intra_session_threads = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(SchedulerOptionsValidateTest, RejectsThreadCountCeilings) {
  engine::SchedulerOptions options;
  options.worker_threads = 257;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("worker_threads"), std::string::npos);
  options.worker_threads = 4;
  options.intra_session_threads = 65;
  status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("intra_session_threads"),
            std::string::npos);
}

TEST(StreamServerOptionsValidateTest, DeprecatedShimFoldsIntoScheduler) {
  engine::StreamServerOptions options;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  options.worker_threads = 3;  // legacy aggregate-init style
#pragma GCC diagnostic pop
  EXPECT_TRUE(options.Validate().ok());
  const engine::SchedulerOptions effective = options.EffectiveScheduler();
  EXPECT_EQ(effective.worker_threads, 3u);
  EXPECT_EQ(effective.dispatch, engine::DispatchMode::kStatic);
  EXPECT_EQ(effective.intra_session_threads, 0u);
}

TEST(StreamServerOptionsValidateTest, RejectsBothWorkerKnobsSet) {
  engine::StreamServerOptions options;
  options.scheduler.worker_threads = 2;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  options.worker_threads = 3;
#pragma GCC diagnostic pop
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("deprecated"), std::string::npos);
  EXPECT_NE(status.message().find("scheduler.worker_threads"),
            std::string::npos);
}

TEST(StreamServerOptionsValidateTest, SurfacesSchedulerInvariants) {
  // The nested scheduler's own invariants surface through the
  // server-level Validate, so a bad deployment fails before any thread
  // spawns.
  engine::StreamServerOptions options;
  options.scheduler.intra_session_threads = 2;
  Status status = options.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("intra_session_threads"),
            std::string::npos);
}

// --- Push timestamp hardening -------------------------------------------

TEST(EnginePushTest, RejectsNonFiniteTimestampsWithoutSideEffects) {
  auto engine = ContinuousQueryEngine::Make(
      PaperCatalog(), testing::kPaperQuery, TriageConfig());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const double bad_timestamps[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
  for (double ts : bad_timestamps) {
    Status status = (*engine)->Push({"r", Row({5}, ts)});
    ASSERT_FALSE(status.ok()) << "timestamp " << ts;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("finite"), std::string::npos);
  }

  // The rejected pushes left no trace: the engine still accepts the full
  // in-order timeline and accounts only for it.
  for (int w = 0; w < 3; ++w) {
    const double base = static_cast<double>(w);
    ASSERT_TRUE((*engine)->Push({"r", Row({5}, base + 0.1)}).ok());
    ASSERT_TRUE((*engine)->Push({"s", Row({5, 7}, base + 0.2)}).ok());
    ASSERT_TRUE((*engine)->Push({"t", Row({7}, base + 0.3)}).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  const EngineStatsSnapshot snapshot = (*engine)->StatsSnapshot();
  EXPECT_EQ(snapshot.core.tuples_ingested, 9);
  EXPECT_EQ(snapshot.counters.at("engine.tuples_ingested"), 9);
  EXPECT_EQ((*engine)->TakeResults().size(), 3u);
}

// --- SetWindowSink ------------------------------------------------------

std::vector<std::string> ResultColumns() { return {"a", "count"}; }

std::string RunBuffered(const workload::Scenario& scenario,
                        const EngineConfig& config) {
  auto engine = ContinuousQueryEngine::Make(scenario.catalog,
                                            scenario.query_sql, config);
  DT_CHECK(engine.ok()) << engine.status().ToString();
  for (const StreamEvent& event : scenario.events) {
    DT_CHECK((*engine)->Push(event).ok());
  }
  DT_CHECK((*engine)->Finish().ok());
  return io::FormatResultsCsv((*engine)->TakeResults(), ResultColumns());
}

TEST(WindowSinkTest, DeliversExactlyTheBufferedWindows) {
  const workload::Scenario scenario = OverloadScenario();
  const EngineConfig config = TriageConfig();
  const std::string buffered = RunBuffered(scenario, config);

  auto engine = ContinuousQueryEngine::Make(scenario.catalog,
                                            scenario.query_sql, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<WindowResult> streamed;
  (*engine)->SetWindowSink(
      [&](WindowResult&& result) { streamed.push_back(std::move(result)); });
  for (const StreamEvent& event : scenario.events) {
    ASSERT_TRUE((*engine)->Push(event).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // With a sink installed nothing is buffered...
  EXPECT_TRUE((*engine)->TakeResults().empty());
  // ...and the streamed windows are byte-for-byte the buffered run's,
  // in the same order.
  EXPECT_GT(streamed.size(), 0u);
  EXPECT_EQ(io::FormatResultsCsv(streamed, ResultColumns()), buffered);
}

TEST(WindowSinkTest, LateInstallFlushesBufferedWindowsInOrder) {
  const workload::Scenario scenario = OverloadScenario();
  const EngineConfig config = TriageConfig();
  const std::string buffered = RunBuffered(scenario, config);

  auto engine = ContinuousQueryEngine::Make(scenario.catalog,
                                            scenario.query_sql, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  // Feed half the timeline buffered, then switch to streaming: the sink
  // must first receive everything already emitted.
  const size_t half = scenario.events.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE((*engine)->Push(scenario.events[i]).ok());
  }
  std::vector<WindowResult> streamed;
  (*engine)->SetWindowSink(
      [&](WindowResult&& result) { streamed.push_back(std::move(result)); });
  for (size_t i = half; i < scenario.events.size(); ++i) {
    ASSERT_TRUE((*engine)->Push(scenario.events[i]).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  EXPECT_TRUE((*engine)->TakeResults().empty());
  EXPECT_EQ(io::FormatResultsCsv(streamed, ResultColumns()), buffered);
  for (size_t i = 1; i < streamed.size(); ++i) {
    EXPECT_LT(streamed[i - 1].window, streamed[i].window);
  }
}

// --- StatsSnapshot + metrics --------------------------------------------

TEST(StatsSnapshotTest, EmbedsRegistryConsistentWithCoreStats) {
  const workload::Scenario scenario = OverloadScenario();
  auto engine = ContinuousQueryEngine::Make(
      scenario.catalog, scenario.query_sql, TriageConfig());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const StreamEvent& event : scenario.events) {
    ASSERT_TRUE((*engine)->Push(event).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const EngineStatsSnapshot snapshot = (*engine)->StatsSnapshot();
  EXPECT_GT(snapshot.core.tuples_dropped, 0);
  EXPECT_EQ(snapshot.counters.at("engine.tuples_ingested"),
            snapshot.core.tuples_ingested);
  EXPECT_EQ(snapshot.counters.at("engine.tuples_kept"),
            snapshot.core.tuples_kept);
  EXPECT_EQ(snapshot.counters.at("engine.tuples_dropped"),
            snapshot.core.tuples_dropped);
  EXPECT_EQ(snapshot.counters.at("engine.windows_emitted"),
            snapshot.core.windows_emitted);

  // Every drop has exactly one recorded cause: policy eviction at the
  // queue, force shed at a deadline, or the summarize-only bypass.
  int64_t by_cause = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("stream.", 0) == 0 &&
        name.find(".dropped.") != std::string::npos) {
      by_cause += value;
    }
  }
  EXPECT_EQ(by_cause, snapshot.core.tuples_dropped);

  // Overload must have backed up the queues: some stream hit a nonzero
  // depth high-watermark (bounded by the configured capacity).
  double max_depth = 0.0;
  for (const auto& [name, value] : snapshot.gauge_maxima) {
    if (name.find(".queue_depth") != std::string::npos) {
      max_depth = std::max(max_depth, value);
    }
  }
  EXPECT_GT(max_depth, 0.0);
  EXPECT_LE(max_depth, 50.0);

  // The per-window trace covers every emitted window, in order.
  const auto& records = (*engine)->trace().records();
  ASSERT_EQ(records.size(),
            static_cast<size_t>(snapshot.core.windows_emitted));
  int64_t traced_kept = 0;
  for (const auto& record : records) traced_kept += record.kept_tuples;
  EXPECT_EQ(traced_kept, snapshot.core.tuples_kept);
}

TEST(StatsSnapshotTest, MetricsJsonIsDeterministicAcrossRuns) {
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    const workload::Scenario scenario = OverloadScenario(3);
    auto engine = ContinuousQueryEngine::Make(
        scenario.catalog, scenario.query_sql, TriageConfig());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const StreamEvent& event : scenario.events) {
      ASSERT_TRUE((*engine)->Push(event).ok());
    }
    ASSERT_TRUE((*engine)->Finish().ok());
    *out = obs::MetricsJson((*engine)->metrics(), &(*engine)->trace());
  }
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"windows\": ["), std::string::npos);
}

// --- Session lifecycle error paths (DESIGN.md §14) ----------------------
//
// Every lifecycle misuse returns a specific, actionable Status in the
// EngineConfig::Validate() style: the message names what was wrong and
// what to do instead, never just "error".

TEST(SessionLifecycleErrorTest, UnregisterUnknownSessionIsNotFound) {
  const workload::Scenario scenario = OverloadScenario();
  server::StreamServer server(scenario.catalog);
  auto id = server.RegisterQuery(scenario.query_sql, TriageConfig());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  Status status = server.UnregisterQuery(41);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("no session with id 41"),
            std::string::npos);
  EXPECT_NE(status.message().find("[0, 1)"), std::string::npos);
}

TEST(SessionLifecycleErrorTest, DoubleUnregisterIsFailedPrecondition) {
  const workload::Scenario scenario = OverloadScenario();
  server::StreamServer server(scenario.catalog);
  auto keeper = server.RegisterQuery(scenario.query_sql, TriageConfig());
  ASSERT_TRUE(keeper.ok()) << keeper.status().ToString();
  auto id = server.RegisterQuery(scenario.query_sql, TriageConfig());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(server.Push(scenario.events.front()).ok());

  ASSERT_TRUE(server.UnregisterQuery(*id).ok());
  EXPECT_EQ(server.session(*id).lifecycle(),
            server::SessionLifecycle::kDetached);
  EXPECT_EQ(server.live_session_count(), 1u);

  Status again = server.UnregisterQuery(*id);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(again.message().find("already kDetached"), std::string::npos);
  // The detached session's results stay readable, as the message says.
  EXPECT_NE(again.message().find("results and metrics stay readable"),
            std::string::npos);
  (void)server.session(*id).StatsSnapshot();
}

TEST(SessionLifecycleErrorTest, PushWithNoSessionsIsFailedPrecondition) {
  const workload::Scenario scenario = OverloadScenario();
  server::StreamServer server(scenario.catalog);

  Status status = server.Push(scenario.events.front());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("zero live sessions"),
            std::string::npos);
  EXPECT_NE(status.message().find("RegisterQuery"), std::string::npos);
  // The rejected push did not seal the registration phase.
  EXPECT_EQ(server.state(), server::ServerState::kRegistering);
}

TEST(SessionLifecycleErrorTest,
     PushAfterLastSessionUnregistersIsFailedPrecondition) {
  const workload::Scenario scenario = OverloadScenario();
  server::StreamServer server(scenario.catalog);
  auto id = server.RegisterQuery(scenario.query_sql, TriageConfig());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(server.Push(scenario.events[0]).ok());
  ASSERT_TRUE(server.UnregisterQuery(*id).ok());

  Status status = server.Push(scenario.events[1]);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("zero live sessions"),
            std::string::npos);
  // The message distinguishes "no sessions ever" from "all detached" by
  // reporting the hosted count.
  EXPECT_NE(status.message().find("hosts 1 session(s)"),
            std::string::npos);
}

TEST(SessionLifecycleErrorTest, SnapshotErrorsNameTheirCause) {
  const workload::Scenario scenario = OverloadScenario();
  server::StreamServer server(scenario.catalog);
  auto id = server.RegisterQuery(scenario.query_sql, TriageConfig());
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Unknown id: bounds-checked like every session lookup.
  auto missing = server.SnapshotSession(7);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // A session registered from an already-bound query carries no SQL text
  // for restore to re-bind, and says so.
  auto statement = sql::ParseStatement(scenario.query_sql);
  ASSERT_TRUE(statement.ok());
  auto bound = plan::BindStatement(*statement, scenario.catalog);
  ASSERT_TRUE(bound.ok());
  auto bound_id = server.RegisterQuery(*std::move(bound), TriageConfig());
  ASSERT_TRUE(bound_id.ok()) << bound_id.status().ToString();
  auto unsnapshottable = server.SnapshotSession(*bound_id);
  ASSERT_FALSE(unsnapshottable.ok());
  EXPECT_EQ(unsnapshottable.status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_NE(unsnapshottable.status().message().find("already-bound"),
            std::string::npos);
  EXPECT_NE(unsnapshottable.status().message().find("SQL overload"),
            std::string::npos);

  // A detached session has been drained; its pre-drain state is gone.
  ASSERT_TRUE(server.Push(scenario.events.front()).ok());
  ASSERT_TRUE(server.UnregisterQuery(*id).ok());
  auto detached = server.SnapshotSession(*id);
  ASSERT_FALSE(detached.ok());
  EXPECT_EQ(detached.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(detached.status().message().find("kDetached"),
            std::string::npos);
}

TEST(SessionLifecycleErrorTest, LifecycleOpsOnFinishedServerAreRejected) {
  const workload::Scenario scenario = OverloadScenario();
  server::StreamServer server(scenario.catalog);
  auto id = server.RegisterQuery(scenario.query_sql, TriageConfig());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(server.Push(scenario.events.front()).ok());
  auto snapshot = server.SnapshotSession(*id);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(server.Finish().ok());

  Status unregistered = server.UnregisterQuery(*id);
  ASSERT_FALSE(unregistered.ok());
  EXPECT_EQ(unregistered.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(unregistered.message().find("kFinished"), std::string::npos);

  auto restored = server.RestoreSession(*snapshot);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(restored.status().message().find("kFinished"),
            std::string::npos);
}

}  // namespace
}  // namespace datatriage::engine
