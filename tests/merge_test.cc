#include "src/engine/merge.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace datatriage::engine {
namespace {

using synopsis::AggAccumulator;
using synopsis::GroupedEstimate;
using testing::MustBind;
using testing::PaperCatalog;
using testing::Row;

plan::BoundQuery PaperQuery() {
  Catalog catalog = PaperCatalog();
  return MustBind(testing::kPaperQuery, catalog);
}

TEST(MergeTest, SpecFromPaperQuery) {
  plan::BoundQuery query = PaperQuery();
  auto spec = MakeAggregationSpec(query);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->group_columns, (std::vector<size_t>{0}));
  EXPECT_EQ(spec->agg_columns,
            (std::vector<size_t>{synopsis::kCountOnlyColumn}));
}

TEST(MergeTest, SpecRequiresAggregates) {
  Catalog catalog = PaperCatalog();
  plan::BoundQuery query = MustBind("SELECT a FROM R", catalog);
  EXPECT_FALSE(MakeAggregationSpec(query).ok());
}

TEST(MergeTest, AccumulateExactCountsPerGroup) {
  plan::BoundQuery query = PaperQuery();
  AggregationSpec spec = MakeAggregationSpec(query).value();
  // SPJ rows: schema (r.a, s.b, s.c, t.d); group on column 0.
  exec::Relation rows = {Row({1, 1, 7, 7}), Row({1, 1, 8, 8}),
                         Row({2, 2, 7, 7})};
  GroupedEstimate groups = AccumulateExact(rows, spec);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_DOUBLE_EQ(groups.at({Value::Int64(1)})[0].count, 2.0);
  EXPECT_DOUBLE_EQ(groups.at({Value::Int64(2)})[0].count, 1.0);
}

TEST(MergeTest, MergeAddsAccumulators) {
  GroupedEstimate a, b;
  a[{Value::Int64(1)}].resize(1);
  a[{Value::Int64(1)}][0].count = 2.0;
  b[{Value::Int64(1)}].resize(1);
  b[{Value::Int64(1)}][0].count = 3.5;
  b[{Value::Int64(9)}].resize(1);
  b[{Value::Int64(9)}][0].count = 1.0;
  MergeGroupedEstimates(&a, b);
  EXPECT_DOUBLE_EQ(a.at({Value::Int64(1)})[0].count, 5.5);
  EXPECT_DOUBLE_EQ(a.at({Value::Int64(9)})[0].count, 1.0);
}

TEST(MergeTest, BuildRowsExactTypesRoundCounts) {
  plan::BoundQuery query = PaperQuery();
  AggregationSpec spec = MakeAggregationSpec(query).value();
  GroupedEstimate groups;
  groups[{Value::Int64(5)}].resize(1);
  groups[{Value::Int64(5)}][0].count = 3.0;
  auto rows = BuildAggregateRows(groups, query, spec, /*exact_types=*/true);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].value(0).int64(), 5);
  EXPECT_TRUE((*rows)[0].value(1).is_int64());
  EXPECT_EQ((*rows)[0].value(1).int64(), 3);
}

TEST(MergeTest, BuildRowsEstimatesStayFractional) {
  plan::BoundQuery query = PaperQuery();
  AggregationSpec spec = MakeAggregationSpec(query).value();
  GroupedEstimate groups;
  groups[{Value::Int64(5)}].resize(1);
  groups[{Value::Int64(5)}][0].count = 2.25;
  auto rows =
      BuildAggregateRows(groups, query, spec, /*exact_types=*/false);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0].value(1).dbl(), 2.25);
}

TEST(MergeTest, BuildRowsSkipsZeroWeightGroups) {
  plan::BoundQuery query = PaperQuery();
  AggregationSpec spec = MakeAggregationSpec(query).value();
  GroupedEstimate groups;
  groups[{Value::Int64(1)}].resize(1);  // zero count
  groups[{Value::Int64(2)}].resize(1);
  groups[{Value::Int64(2)}][0].count = 1.0;
  auto rows =
      BuildAggregateRows(groups, query, spec, /*exact_types=*/false);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].value(0).int64(), 2);
}

TEST(MergeTest, AllAggregateFunctionsRender) {
  Catalog catalog = PaperCatalog();
  plan::BoundQuery query = MustBind(
      "SELECT b, COUNT(*), SUM(c), AVG(c), MIN(c), MAX(c) FROM S "
      "GROUP BY b",
      catalog);
  AggregationSpec spec = MakeAggregationSpec(query).value();
  // SPJ rows have schema (s.b, s.c).
  exec::Relation rows = {Row({1, 10}), Row({1, 30})};
  GroupedEstimate groups = AccumulateExact(rows, spec);
  auto out = BuildAggregateRows(groups, query, spec, /*exact_types=*/true);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  const Tuple& row = (*out)[0];
  EXPECT_EQ(row.value(0).int64(), 1);   // group b
  EXPECT_EQ(row.value(1).int64(), 2);   // count
  EXPECT_EQ(row.value(2).int64(), 40);  // sum
  EXPECT_DOUBLE_EQ(row.value(3).dbl(), 20.0);  // avg (double even exact)
  EXPECT_EQ(row.value(4).int64(), 10);  // min
  EXPECT_EQ(row.value(5).int64(), 30);  // max
}

}  // namespace
}  // namespace datatriage::engine
