#include "src/plan/binder.h"

#include <gtest/gtest.h>

#include "src/sql/parser.h"

namespace datatriage::plan {
namespace {

Catalog PaperCatalog() {
  // The paper's three streams: R(a), S(b, c), T(d); Sec. 4.3 / 6.2.1.
  Catalog catalog;
  EXPECT_TRUE(catalog
                  .RegisterStream({"R", Schema({{"a", FieldType::kInt64}})})
                  .ok());
  EXPECT_TRUE(catalog
                  .RegisterStream({"S", Schema({{"b", FieldType::kInt64},
                                                {"c", FieldType::kInt64}})})
                  .ok());
  EXPECT_TRUE(catalog
                  .RegisterStream({"T", Schema({{"d", FieldType::kInt64}})})
                  .ok());
  return catalog;
}

Result<BoundQuery> Bind(const std::string& text,
                        const Catalog& catalog) {
  auto stmt = sql::ParseStatement(text);
  if (!stmt.ok()) return stmt.status();
  return BindStatement(*stmt, catalog);
}

TEST(BinderTest, PaperFigure7QueryBinds) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "SELECT a, COUNT(*) as count FROM R,S,T WHERE R.a = S.b AND "
      "S.c = T.d GROUP BY a; WINDOW R['1 second'], S['1 second'], "
      "T['1 second'];",
      catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();

  EXPECT_TRUE(bound->has_aggregate);
  ASSERT_EQ(bound->group_by.size(), 1u);
  EXPECT_EQ(bound->group_by[0].input_index, 0u);  // r.a
  EXPECT_EQ(bound->group_by[0].output_name, "a");
  ASSERT_EQ(bound->aggregates.size(), 1u);
  EXPECT_EQ(bound->aggregates[0].func, sql::AggFunc::kCount);
  EXPECT_TRUE(bound->aggregates[0].count_star);
  EXPECT_EQ(bound->aggregates[0].output_name, "count");

  EXPECT_EQ(bound->from_streams,
            (std::vector<std::string>{"r", "s", "t"}));
  EXPECT_EQ(bound->window_seconds.at("r"), 1.0);
  EXPECT_EQ(bound->window_seconds.at("t"), 1.0);

  // SPJ core: ((R join S) join T) with keys on the equijoin columns.
  const std::string plan_text = bound->spj_core->ToString();
  EXPECT_NE(plan_text.find("Join on L$0=R$0"), std::string::npos)
      << plan_text;  // r.a = s.b
  EXPECT_NE(plan_text.find("Join on L$2=R$0"), std::string::npos)
      << plan_text;  // s.c = t.d
  EXPECT_EQ(bound->spj_core->schema().num_fields(), 4u);
  EXPECT_EQ(bound->spj_core->schema().field(0).name, "r.a");
  EXPECT_EQ(bound->spj_core->schema().field(3).name, "t.d");

  // The full plan aggregates on top of the SPJ core.
  EXPECT_EQ(bound->plan->kind(), LogicalPlan::Kind::kAggregate);
  EXPECT_EQ(bound->plan->schema().field(0).name, "a");
  EXPECT_EQ(bound->plan->schema().field(1).name, "count");
}

TEST(BinderTest, SingleTablePredicatePushdown) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "SELECT a FROM R, S WHERE R.a = S.b AND R.a > 10 AND S.c < 5",
      catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const std::string plan_text = bound->spj_core->ToString();
  // Pushed filters sit below the join (indented deeper than the join).
  EXPECT_NE(plan_text.find("Filter ($0 > 10)"), std::string::npos)
      << plan_text;
  EXPECT_NE(plan_text.find("Filter ($1 < 5)"), std::string::npos)
      << plan_text;
  EXPECT_EQ(plan_text.find("Join"), plan_text.find("Join on L$0=R$0"))
      << plan_text;
}

TEST(BinderTest, NonEquiMultiStreamPredicateBecomesResidual) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind("SELECT a FROM R, S WHERE R.a < S.b", catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const std::string plan_text = bound->spj_core->ToString();
  // Cross product with a residual filter on top.
  EXPECT_NE(plan_text.find("Filter ($0 < $1)"), std::string::npos)
      << plan_text;
  EXPECT_NE(plan_text.find("Join (cross)"), std::string::npos) << plan_text;
}

TEST(BinderTest, SelfJoinWithAliases) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "SELECT x.a FROM R x, R y WHERE x.a = y.a", catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->from_streams, (std::vector<std::string>{"r", "r"}));
  EXPECT_EQ(bound->from_aliases, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(bound->spj_core->schema().field(0).name, "x.a");
  EXPECT_EQ(bound->spj_core->schema().field(1).name, "y.a");
}

TEST(BinderTest, DuplicateAliasRejected) {
  Catalog catalog = PaperCatalog();
  EXPECT_EQ(Bind("SELECT a FROM R, R", catalog).status().code(),
            StatusCode::kBindError);
}

TEST(BinderTest, UnknownStreamAndColumn) {
  Catalog catalog = PaperCatalog();
  EXPECT_EQ(Bind("SELECT a FROM Nope", catalog).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT zzz FROM R", catalog).status().code(),
            StatusCode::kBindError);
}

TEST(BinderTest, UngroupedColumnRejected) {
  Catalog catalog = PaperCatalog();
  auto bound =
      Bind("SELECT b, COUNT(*) FROM S GROUP BY c", catalog);
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST(BinderTest, StarExpansionUsesBaseNames) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind("SELECT * FROM R, S", catalog);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->projection_names,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(BinderTest, StarCollisionFallsBackToQualifiedName) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterStream({"U", Schema({{"a", FieldType::kInt64}})})
          .ok());
  ASSERT_TRUE(
      catalog.RegisterStream({"V", Schema({{"a", FieldType::kInt64}})})
          .ok());
  auto bound = Bind("SELECT * FROM U, V", catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->projection_names,
            (std::vector<std::string>{"a", "v.a"}));
}

TEST(BinderTest, DefaultWindowApplied) {
  Catalog catalog = PaperCatalog();
  BindOptions options;
  options.default_window_seconds = 7.5;
  auto stmt = sql::ParseStatement("SELECT a FROM R");
  ASSERT_TRUE(stmt.ok());
  auto bound = BindStatement(*stmt, catalog, options);
  ASSERT_TRUE(bound.ok());
  EXPECT_DOUBLE_EQ(bound->window_seconds.at("r"), 7.5);
}

TEST(BinderTest, ConflictingWindowsRejected) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "SELECT x.a FROM R x, R y WINDOW x['1 second'], y['2 seconds']",
      catalog);
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST(BinderTest, AggregateAliasesAndDeduplication) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "SELECT c, COUNT(*), SUM(b), SUM(c) AS totc FROM S GROUP BY c",
      catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  ASSERT_EQ(bound->aggregates.size(), 3u);
  EXPECT_EQ(bound->aggregates[0].output_name, "count");
  EXPECT_EQ(bound->aggregates[1].output_name, "sum");
  EXPECT_EQ(bound->aggregates[2].output_name, "totc");
}

TEST(BinderTest, SetOpBindsUnionCompatibleSelects) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "(SELECT a FROM R) EXCEPT (SELECT b FROM S)", catalog);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->plan->kind(), LogicalPlan::Kind::kSetDifference);
  EXPECT_FALSE(bound->has_aggregate);
  EXPECT_EQ(bound->from_streams, (std::vector<std::string>{"r", "s"}));
}

TEST(BinderTest, SetOpRejectsAggregates) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind(
      "(SELECT COUNT(*) FROM R) UNION ALL (SELECT COUNT(*) FROM S)",
      catalog);
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST(BinderTest, CreateStreamIsRejectedAsQuery) {
  Catalog catalog = PaperCatalog();
  EXPECT_EQ(Bind("CREATE STREAM Z (x INTEGER)", catalog).status().code(),
            StatusCode::kBindError);
}

TEST(BinderTest, DistinctFlagPropagates) {
  Catalog catalog = PaperCatalog();
  auto bound = Bind("SELECT DISTINCT a FROM R", catalog);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->distinct);
}

}  // namespace
}  // namespace datatriage::plan
