#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "src/metrics/ideal.h"
#include "src/metrics/rms.h"
#include "src/workload/scenario.h"
#include "tests/test_util.h"

namespace datatriage::engine {
namespace {

using triage::SheddingStrategy;
using testing::PaperCatalog;
using testing::Row;

EngineConfig FastConfig(SheddingStrategy strategy) {
  EngineConfig config;
  config.strategy = strategy;
  config.queue_capacity = 50;
  config.synopsis.type = synopsis::SynopsisType::kGridHistogram;
  config.synopsis.grid.cell_width = 4.0;
  return config;
}

struct RunOutput {
  std::vector<WindowResult> results;
  EngineStats stats;
};

RunOutput MustRun(const Catalog& catalog, const std::string& sql,
                  EngineConfig config,
                  const std::vector<StreamEvent>& events) {
  auto engine = ContinuousQueryEngine::Make(catalog, sql, config);
  DT_CHECK(engine.ok()) << engine.status().ToString();
  for (const StreamEvent& e : events) {
    Status s = (*engine)->Push(e);
    DT_CHECK(s.ok()) << s.ToString();
  }
  Status s = (*engine)->Finish();
  DT_CHECK(s.ok()) << s.ToString();
  RunOutput out;
  out.results = (*engine)->TakeResults();
  out.stats = (*engine)->StatsSnapshot().core;
  return out;
}

std::vector<StreamEvent> OneMatchPerWindow(int windows) {
  // Per window w: r=(5), s=(5,7), t=(7) -> exactly one join result with
  // a=5, count 1.
  std::vector<StreamEvent> events;
  for (int w = 0; w < windows; ++w) {
    const double base = static_cast<double>(w);
    events.push_back({"r", Row({5}, base + 0.1)});
    events.push_back({"s", Row({5, 7}, base + 0.2)});
    events.push_back({"t", Row({7}, base + 0.3)});
  }
  return events;
}

TEST(EngineTest, UnderloadProducesExactResults) {
  Catalog catalog = PaperCatalog();
  RunOutput out =
      MustRun(catalog, testing::kPaperQuery,
              FastConfig(SheddingStrategy::kDataTriage),
              OneMatchPerWindow(5));
  EXPECT_EQ(out.stats.tuples_dropped, 0);
  EXPECT_EQ(out.stats.tuples_kept, 15);
  ASSERT_EQ(out.results.size(), 5u);
  for (const WindowResult& r : out.results) {
    ASSERT_EQ(r.exact_rows.size(), 1u) << "window " << r.window;
    EXPECT_EQ(r.exact_rows[0].value(0).int64(), 5);
    EXPECT_EQ(r.exact_rows[0].value(1).int64(), 1);
    ASSERT_EQ(r.merged_rows.size(), 1u);
    EXPECT_DOUBLE_EQ(r.merged_rows[0].value(1).AsDouble(), 1.0);
    EXPECT_EQ(r.kept_tuples, 3);
    EXPECT_EQ(r.dropped_tuples, 0);
  }
}

TEST(EngineTest, ResultsEmittedInWindowOrderWithDeadlines) {
  Catalog catalog = PaperCatalog();
  RunOutput out =
      MustRun(catalog, testing::kPaperQuery,
              FastConfig(SheddingStrategy::kDataTriage),
              OneMatchPerWindow(4));
  ASSERT_EQ(out.results.size(), 4u);
  for (size_t i = 0; i < out.results.size(); ++i) {
    EXPECT_EQ(out.results[i].window, static_cast<WindowId>(i));
    // Deadline = window_end + delay_factor * W = w + 2 (1s windows).
    EXPECT_GE(out.results[i].emit_time,
              static_cast<double>(i) + 2.0);
  }
}

TEST(EngineTest, QueueOverflowShedsAndTriageEstimatesLoss) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  config.queue_capacity = 5;
  // Saturate: per-tuple cost default 1/400 s, but send 300 identical
  // tuples per stream within one window at effectively infinite rate.
  std::vector<StreamEvent> events;
  for (int i = 0; i < 300; ++i) {
    const double t = 0.1 + 1e-4 * i;
    events.push_back({"r", Row({5}, t)});
    events.push_back({"s", Row({5, 7}, t)});
    events.push_back({"t", Row({7}, t)});
  }
  RunOutput out = MustRun(catalog, testing::kPaperQuery, config, events);
  EXPECT_GT(out.stats.tuples_dropped, 0);
  ASSERT_EQ(out.results.size(), 1u);
  const WindowResult& r = out.results[0];
  EXPECT_EQ(r.kept_tuples + r.dropped_tuples, 900);
  // Ideal count for group 5 is 300*300*300 / ... no: join is
  // r(5) x s(5,7) x t(7): 300*300*300? No - each r joins each s (same b),
  // each s joins each t: 300*300*300 = 2.7e7. The merged estimate must be
  // far closer to ideal than the exact-only result.
  const double ideal = 300.0 * 300.0 * 300.0;
  // The histogram spreads its estimate across the cell's integer points,
  // so merged_rows may contain neighbouring groups; score group a=5.
  double merged = 0.0;
  for (const Tuple& row : r.merged_rows) {
    if (row.value(0).int64() == 5) merged = row.value(1).AsDouble();
  }
  ASSERT_GT(merged, 0.0);
  const double exact = r.exact_rows.empty()
                           ? 0.0
                           : r.exact_rows[0].value(1).AsDouble();
  EXPECT_LT(std::abs(merged - ideal), std::abs(exact - ideal));
  EXPECT_GT(merged, exact);
}

TEST(EngineTest, SummarizeOnlyKeepsNothingButEstimates) {
  Catalog catalog = PaperCatalog();
  RunOutput out =
      MustRun(catalog, testing::kPaperQuery,
              FastConfig(SheddingStrategy::kSummarizeOnly),
              OneMatchPerWindow(3));
  EXPECT_EQ(out.stats.tuples_kept, 0);
  EXPECT_EQ(out.stats.tuples_dropped, 9);
  ASSERT_EQ(out.results.size(), 3u);
  for (const WindowResult& r : out.results) {
    EXPECT_TRUE(r.exact_rows.empty());
    EXPECT_FALSE(r.merged_rows.empty());
  }
}

TEST(EngineTest, DropOnlyNeverEstimates) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDropOnly);
  config.queue_capacity = 2;
  std::vector<StreamEvent> events;
  for (int i = 0; i < 50; ++i) {
    const double t = 0.1 + 1e-5 * i;
    events.push_back({"r", Row({5}, t)});
    events.push_back({"s", Row({5, 7}, t)});
    events.push_back({"t", Row({7}, t)});
  }
  RunOutput out = MustRun(catalog, testing::kPaperQuery, config, events);
  EXPECT_GT(out.stats.tuples_dropped, 0);
  for (const WindowResult& r : out.results) {
    EXPECT_TRUE(r.shadow_estimate.empty());
    EXPECT_EQ(r.result_synopsis, nullptr);
    // Exact and merged coincide (both come from kept tuples only).
    EXPECT_EQ(r.exact_rows.size(), r.merged_rows.size());
  }
}

TEST(EngineTest, NonAggregateQueryDeliversRowsAndLossSynopsis) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  config.queue_capacity = 3;
  std::vector<StreamEvent> events;
  for (int i = 0; i < 40; ++i) {
    events.push_back({"r", Row({5}, 0.1 + 1e-5 * i)});
  }
  RunOutput out = MustRun(catalog, "SELECT a FROM R", config, events);
  ASSERT_EQ(out.results.size(), 1u);
  const WindowResult& r = out.results[0];
  EXPECT_GT(r.kept_tuples, 0);
  EXPECT_GT(r.dropped_tuples, 0);
  EXPECT_EQ(r.exact_rows.size(), static_cast<size_t>(r.kept_tuples));
  ASSERT_NE(r.result_synopsis, nullptr);
  EXPECT_NEAR(r.result_synopsis->TotalCount(),
              static_cast<double>(r.dropped_tuples), 1e-6);
}

TEST(EngineTest, RejectsBadUsage) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  auto engine =
      ContinuousQueryEngine::Make(catalog, testing::kPaperQuery, config);
  ASSERT_TRUE(engine.ok());
  // Unknown stream.
  EXPECT_EQ((*engine)->Push({"zzz", Row({1}, 0.1)}).code(),
            StatusCode::kNotFound);
  // Arity mismatch.
  EXPECT_EQ((*engine)->Push({"s", Row({1}, 0.1)}).code(),
            StatusCode::kInvalidArgument);
  // Out-of-order timestamps.
  ASSERT_TRUE((*engine)->Push({"r", Row({1}, 5.0)}).ok());
  EXPECT_EQ((*engine)->Push({"r", Row({1}, 4.0)}).code(),
            StatusCode::kInvalidArgument);
  // Push after Finish.
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_FALSE((*engine)->Push({"r", Row({1}, 9.0)}).ok());
  // Finish is idempotent.
  EXPECT_TRUE((*engine)->Finish().ok());
}

TEST(EngineTest, RejectsUnsupportedQueries) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  EXPECT_EQ(ContinuousQueryEngine::Make(catalog, "SELECT DISTINCT a FROM R",
                                        config)
                .status()
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(
      ContinuousQueryEngine::Make(
          catalog,
          "SELECT a FROM R, S WHERE R.a = S.b WINDOW R['1 second'], "
          "S['2 seconds']",
          config)
          .status()
          .code(),
      StatusCode::kUnimplemented);
  EXPECT_EQ(ContinuousQueryEngine::Make(
                catalog, "(SELECT a FROM R) EXCEPT (SELECT d FROM T)",
                config)
                .status()
                .code(),
            StatusCode::kUnimplemented);
  // ... but EXCEPT is fine under drop-only shedding (no shadow plan).
  EngineConfig drop_config = FastConfig(SheddingStrategy::kDropOnly);
  EXPECT_TRUE(ContinuousQueryEngine::Make(
                  catalog, "(SELECT a FROM R) EXCEPT (SELECT d FROM T)",
                  drop_config)
                  .ok());
}

TEST(EngineTest, AllAggregatesLosslessUnderExactSynopsis) {
  // SUM/AVG/MIN/MAX flow through the shadow estimate and the merge; with
  // a lossless synopsis the composite must equal the no-shedding answer
  // for every aggregate function, even under heavy shedding.
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterStream({"m", Schema({{"g", FieldType::kInt64},
                                                {"v", FieldType::kInt64}})})
                  .ok());
  const std::string query =
      "SELECT g, COUNT(*) AS n, SUM(v) AS total, AVG(v) AS mean, "
      "MIN(v) AS lo, MAX(v) AS hi FROM m GROUP BY g "
      "WINDOW m['1 second']";

  Rng rng(21);
  std::vector<StreamEvent> events;
  double t = 0.0;
  std::map<std::pair<WindowId, int64_t>,
           std::vector<int64_t>>
      per_group_values;
  for (int i = 0; i < 1200; ++i) {
    t += rng.Exponential(1000.0);  // well beyond capacity
    const int64_t g = rng.UniformInt(1, 4);
    const int64_t v = rng.UniformInt(1, 100);
    events.push_back({"m", Tuple({Value::Int64(g), Value::Int64(v)}, t)});
    per_group_values[{WindowIdFor(t, 1.0), g}].push_back(v);
  }

  EngineConfig config;
  config.strategy = SheddingStrategy::kDataTriage;
  config.queue_capacity = 30;
  config.synopsis.type = synopsis::SynopsisType::kExact;
  RunOutput out = MustRun(catalog, query, config, events);
  EXPECT_GT(out.stats.tuples_dropped, 0);

  for (const WindowResult& r : out.results) {
    for (const Tuple& row : r.merged_rows) {
      const auto& values =
          per_group_values[{r.window, row.value(0).int64()}];
      ASSERT_FALSE(values.empty());
      double sum = 0;
      int64_t lo = values[0], hi = values[0];
      for (int64_t v : values) {
        sum += static_cast<double>(v);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      EXPECT_NEAR(row.value(1).AsDouble(),
                  static_cast<double>(values.size()), 1e-9);
      EXPECT_NEAR(row.value(2).AsDouble(), sum, 1e-9);
      EXPECT_NEAR(row.value(3).AsDouble(),
                  sum / static_cast<double>(values.size()), 1e-9);
      EXPECT_NEAR(row.value(4).AsDouble(), static_cast<double>(lo), 1e-9);
      EXPECT_NEAR(row.value(5).AsDouble(), static_cast<double>(hi), 1e-9);
    }
  }
}

TEST(EngineTest, SynergisticPolicyRequiresSynopsizingStrategy) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDropOnly);
  config.drop_policy = triage::DropPolicyKind::kSynergistic;
  EXPECT_EQ(ContinuousQueryEngine::Make(catalog, testing::kPaperQuery,
                                        config)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, SynergisticPolicyRunsUnderDataTriage) {
  Catalog catalog = PaperCatalog();
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  config.drop_policy = triage::DropPolicyKind::kSynergistic;
  config.queue_capacity = 10;
  std::vector<StreamEvent> events;
  for (int i = 0; i < 200; ++i) {
    const double t = 0.1 + 1e-5 * i;
    events.push_back({"r", Row({5}, t)});
    events.push_back({"s", Row({5, 7}, t)});
    events.push_back({"t", Row({7}, t)});
  }
  RunOutput out = MustRun(catalog, testing::kPaperQuery, config, events);
  EXPECT_GT(out.stats.tuples_dropped, 0);
  ASSERT_EQ(out.results.size(), 1u);
  EXPECT_FALSE(out.results[0].merged_rows.empty());
}

TEST(EngineTest, DeterministicForFixedSeed) {
  workload::ScenarioConfig scenario_config;
  scenario_config.tuples_per_stream = 400;
  scenario_config.rate_per_stream = 250.0;  // overload -> drops happen
  scenario_config.seed = 77;
  auto scenario = workload::BuildPaperScenario(scenario_config);
  ASSERT_TRUE(scenario.ok());
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  config.seed = 5;
  RunOutput a = MustRun(scenario->catalog, scenario->query_sql, config,
                        scenario->events);
  RunOutput b = MustRun(scenario->catalog, scenario->query_sql, config,
                        scenario->events);
  ASSERT_EQ(a.results.size(), b.results.size());
  EXPECT_GT(a.stats.tuples_dropped, 0);
  EXPECT_EQ(a.stats.tuples_dropped, b.stats.tuples_dropped);
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_TRUE(testing::SameMultiset(a.results[i].merged_rows,
                                      b.results[i].merged_rows))
        << "window " << i;
  }
}

TEST(EngineTest, ExactMatchesIdealWhenNothingDropped) {
  workload::ScenarioConfig scenario_config;
  scenario_config.tuples_per_stream = 200;
  scenario_config.rate_per_stream = 20.0;  // far below capacity
  scenario_config.seed = 3;
  auto scenario = workload::BuildPaperScenario(scenario_config);
  ASSERT_TRUE(scenario.ok());
  EngineConfig config = FastConfig(SheddingStrategy::kDataTriage);
  RunOutput out = MustRun(scenario->catalog, scenario->query_sql, config,
                          scenario->events);
  EXPECT_EQ(out.stats.tuples_dropped, 0);

  auto stmt = sql::ParseStatement(scenario->query_sql);
  ASSERT_TRUE(stmt.ok());
  auto bound = plan::BindStatement(*stmt, scenario->catalog);
  ASSERT_TRUE(bound.ok());
  auto ideal = metrics::ComputeIdealResults(*bound, scenario->events,
                                            scenario->window_seconds);
  ASSERT_TRUE(ideal.ok());
  auto rms = metrics::RmsError(*ideal, out.results, 1,
                               metrics::ResultChannel::kExact);
  ASSERT_TRUE(rms.ok()) << rms.status().ToString();
  EXPECT_DOUBLE_EQ(rms.value(), 0.0);
}

}  // namespace
}  // namespace datatriage::engine
